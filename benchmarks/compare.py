"""Diff two bench JSONs and fail on wall-clock regressions.

Compares the tracked spans of two ``benchmarks/hotpath.py`` result
files (or any bench JSON with a ``spans: {name: {best_ms}}`` section)
and exits non-zero when any span regressed by more than the threshold::

    PYTHONPATH=src python benchmarks/compare.py old.json new.json \
        --threshold 0.25

``--calibrate`` scales the old file's times by the ratio of the two
files' ``calibration_ms`` machine-speed tokens before comparing, which
makes a baseline recorded on one machine usable as a regression gate
on another (CI vs a developer laptop). The token is a fixed seeded
numpy workload, so the scaling is crude but monotone — pair it with a
generous threshold, not a tight one.

``--against-baseline FILE`` compares FILE's ``spans`` section against
the pinned ``baseline`` section inside the same file.
"""

from __future__ import annotations

import argparse
import json
import pathlib


def load_spans(path: "pathlib.Path") -> "tuple[dict, float]":
    doc = json.loads(path.read_text())
    spans = doc.get("spans")
    if not isinstance(spans, dict) or not spans:
        raise SystemExit(f"{path}: no spans section")
    return spans, float(doc.get("calibration_ms") or 0.0)


def compare(
    old: "dict[str, dict]",
    new: "dict[str, dict]",
    *,
    threshold: float,
    scale: float = 1.0,
) -> "tuple[list[str], list[str]]":
    """Return (report lines, regression lines)."""
    lines: "list[str]" = []
    regressions: "list[str]" = []
    for name in old:
        if name not in new:
            lines.append(f"{name:<28} missing from new run")
            continue
        old_ms = float(old[name]["best_ms"]) * scale
        new_ms = float(new[name]["best_ms"])
        if old_ms <= 0:
            continue
        delta = new_ms / old_ms - 1.0
        marker = ""
        if delta > threshold:
            marker = "  << REGRESSION"
            regressions.append(name)
        lines.append(
            f"{name:<28} {old_ms:>10.3f} -> {new_ms:>10.3f} ms "
            f"({delta:+.1%}){marker}"
        )
    for name in new:
        if name not in old:
            lines.append(f"{name:<28} new span (no old reference)")
    return lines, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("old", nargs="?", help="reference bench JSON")
    parser.add_argument("new", nargs="?", help="candidate bench JSON")
    parser.add_argument(
        "--against-baseline", metavar="FILE",
        help="compare FILE's spans vs the baseline pinned inside FILE",
    )
    parser.add_argument(
        "--threshold", type=float, default=0.25,
        help="max tolerated slowdown fraction (default 0.25 = +25%%)",
    )
    parser.add_argument(
        "--calibrate", action="store_true",
        help="scale old times by the calibration_ms ratio of the files",
    )
    args = parser.parse_args(argv)

    if args.against_baseline:
        doc = json.loads(pathlib.Path(args.against_baseline).read_text())
        old = doc.get("baseline")
        new = doc.get("spans")
        if not old:
            raise SystemExit(f"{args.against_baseline}: no pinned baseline")
        scale = 1.0
        print(f"# {args.against_baseline}: spans vs pinned baseline")
    else:
        if not (args.old and args.new):
            parser.error("need OLD and NEW files (or --against-baseline)")
        old, old_cal = load_spans(pathlib.Path(args.old))
        new, new_cal = load_spans(pathlib.Path(args.new))
        scale = 1.0
        if args.calibrate:
            if old_cal <= 0 or new_cal <= 0:
                raise SystemExit("--calibrate needs calibration_ms in both files")
            scale = new_cal / old_cal
            print(f"# calibration: old times scaled by {scale:.3f}")
        print(f"# {args.old} -> {args.new} (threshold +{args.threshold:.0%})")

    lines, regressions = compare(
        old, new, threshold=args.threshold, scale=scale
    )
    print("\n".join(lines))
    if regressions:
        print(f"FAIL: {len(regressions)} span(s) regressed "
              f"beyond +{args.threshold:.0%}: {', '.join(regressions)}")
        return 1
    print("ok: no span regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
