"""Shared infrastructure for the experiment benchmarks.

Each benchmark regenerates one paper table/figure at the full Table II
workload list (11 game configurations, 2 frames each, scale 0.25) and
writes the formatted table to ``bench_results/<experiment>.txt``. The
shared context renders every frame exactly once per pytest session, so
the whole suite costs one render pass plus the design-point sweeps.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.experiments.runner import (
    ExperimentContext,
    ExperimentResult,
    format_table,
)
from repro.ioutil import atomic_write_text

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "bench_results"


@pytest.fixture(scope="session")
def ctx() -> ExperimentContext:
    return ExperimentContext(scale=0.25, frames=2)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture()
def record_result(results_dir):
    """Write an ExperimentResult's table to bench_results/ and stdout."""

    def _record(result: ExperimentResult) -> ExperimentResult:
        text = format_table(result)
        atomic_write_text(results_dir / f"{result.experiment}.txt", text)
        print()
        print(text)
        return result

    return _record


@pytest.fixture()
def run_once(benchmark):
    """Run an experiment exactly once under pytest-benchmark timing."""

    def _run(fn):
        return benchmark.pedantic(fn, rounds=1, iterations=1)

    return _run
