"""Micro-benchmark: experiment-engine scaling across worker counts.

Runs the Fig. 17 threshold sweep on one workload at 1, 2 and 4 worker
processes (each leg on a cold capture store, so every leg pays the
same render + evaluate work) and writes wall-clock numbers to
``bench_results/engine_scaling.json``. The serial table is the
reference; every parallel leg must reproduce it byte-for-byte, so the
benchmark doubles as a determinism check.

Usage::

    PYTHONPATH=src python benchmarks/engine_scaling.py [--scale 0.1]

Speedups depend on the machine: with fewer cores than workers the
process backend's pool overhead dominates and ratios sit near (or
below) 1.0 — the point of the artifact is to make that measurable.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import tempfile
import time

from repro.experiments import fig17_threshold
from repro.experiments.runner import ExperimentContext, format_table
from repro.ioutil import atomic_write_text

RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "bench_results" / "engine_scaling.json"
)

WORKER_COUNTS = (1, 2, 4)


def _time_leg(jobs: int, args) -> "tuple[float, str, dict]":
    with tempfile.TemporaryDirectory(prefix="repro-bench-captures-") as root:
        ctx = ExperimentContext(
            scale=args.scale, frames=args.frames,
            workloads=(args.workload,), jobs=jobs, capture_cache=root,
        )
        start = time.perf_counter()
        result = fig17_threshold.run(ctx)
        elapsed = time.perf_counter() - start
        report = ctx.engine.report
        counts = {
            "planned": report.planned,
            "executed": report.executed,
            "skipped": report.skipped,
            "failed": report.failed,
        }
    return elapsed, format_table(result), counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="doom3-1280x1024")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--frames", type=int, default=1)
    parser.add_argument("--out", default=str(RESULTS_PATH))
    args = parser.parse_args(argv)

    legs = []
    serial_seconds = None
    serial_table = None
    for jobs in WORKER_COUNTS:
        elapsed, table, counts = _time_leg(jobs, args)
        if serial_table is None:
            serial_seconds, serial_table = elapsed, table
        elif table != serial_table:
            raise SystemExit(
                f"--jobs {jobs} table differs from serial output"
            )
        legs.append(
            {
                "jobs": jobs,
                "seconds": round(elapsed, 3),
                "speedup_vs_serial": round(serial_seconds / elapsed, 3),
                **counts,
            }
        )
        print(f"jobs={jobs}: {elapsed:.2f}s "
              f"({serial_seconds / elapsed:.2f}x vs serial)")

    payload = {
        "benchmark": "engine_scaling",
        "experiment": "fig17",
        "workload": args.workload,
        "scale": args.scale,
        "frames": args.frames,
        "tables_identical_across_jobs": True,
        "legs": legs,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
