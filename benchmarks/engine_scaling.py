"""Micro-benchmark: experiment-engine scaling across worker counts.

Methodology: one shared capture store is pre-warmed (untimed) by
running the Fig. 17 threshold sweep once serially, so every timed leg
afterwards does the *same, symmetric* eval-only work — render cost and
store population never leak into one leg but not another. Each worker
count first runs one *discarded* warm-up repetition — the rep that
pays pool fork + worker warm-up, since the shared pool registry keeps
worker processes warm across contexts — and then ``--reps`` timed
repetitions on fresh :class:`ExperimentContext` instances over that
store, recording the best wall clock. Without the discarded rep the
first leg of each worker count carried the fork cost while later reps
did not, skewing best-of toward whichever rep happened to dodge it.
The serial table is the reference; every leg
must reproduce it byte-for-byte, so the benchmark doubles as a
determinism check, and every leg must report ``executed == planned``
(the cross-process dedup invariant).

Usage::

    PYTHONPATH=src python benchmarks/engine_scaling.py [--scale 0.1]

Speedups depend on the machine: with fewer cores than workers the
process backend's dispatch overhead dominates and ratios sit near
1.0 — the point of the artifact is to make that measurable. The
``calibration_ms`` token (shared with ``benchmarks/hotpath.py``) lets
``benchmarks/compare.py --calibrate`` diff runs across machines.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
import tempfile
import time

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
from hotpath import calibration_token, machine_info  # noqa: E402

from repro.engine.scheduler import shutdown_pools  # noqa: E402
from repro.experiments import fig17_threshold  # noqa: E402
from repro.experiments.runner import (  # noqa: E402
    ExperimentContext,
    format_table,
)
from repro.ioutil import atomic_write_text  # noqa: E402

RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "bench_results" / "engine_scaling.json"
)

WORKER_COUNTS = (1, 2, 4)


def _run_once(jobs: int, store_root: str, args) -> "tuple[float, str, dict]":
    """One full sweep on a fresh context over the shared store."""
    with ExperimentContext(
        scale=args.scale, frames=args.frames,
        workloads=(args.workload,), jobs=jobs, capture_cache=store_root,
    ) as ctx:
        start = time.perf_counter()
        result = fig17_threshold.run(ctx)
        elapsed = time.perf_counter() - start
        report = ctx.engine.report
        counts = {
            "planned": report.planned,
            "executed": report.executed,
            "skipped": report.skipped,
            "failed": report.failed,
        }
    return elapsed, format_table(result), counts


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workload", default="doom3-1280x1024")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--frames", type=int, default=1)
    parser.add_argument("--reps", type=int, default=3,
                        help="timed repetitions per worker count (best-of)")
    parser.add_argument("--cooldown", type=float, default=0.4,
                        help="idle seconds between reps so one rep's tail "
                             "(pool teardown, page cache churn) cannot "
                             "bleed into the next rep's timing")
    parser.add_argument("--out", default=str(RESULTS_PATH))
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="repro-bench-captures-") as root:
        prewarm_start = time.perf_counter()
        _, reference_table, prewarm_counts = _run_once(1, root, args)
        prewarm_seconds = time.perf_counter() - prewarm_start
        print(f"prewarm (serial, cold store): {prewarm_seconds:.2f}s")

        legs = []
        serial_seconds = None
        for jobs in WORKER_COUNTS:
            # Discarded warm-up rep: pays pool fork + worker warm-up so
            # every *timed* rep below measures steady state.
            warm_elapsed, warm_table, _warm_counts = _run_once(
                jobs, root, args
            )
            if warm_table != reference_table:
                raise SystemExit(
                    f"--jobs {jobs} warm-up table differs from serial output"
                )
            print(f"jobs={jobs}: warm-up rep {warm_elapsed:.2f}s (discarded)")
            rep_seconds = []
            for _ in range(args.reps):
                time.sleep(args.cooldown)
                elapsed, table, counts = _run_once(jobs, root, args)
                if table != reference_table:
                    raise SystemExit(
                        f"--jobs {jobs} table differs from serial output"
                    )
                if counts["executed"] != counts["planned"]:
                    raise SystemExit(
                        f"--jobs {jobs}: executed {counts['executed']} != "
                        f"planned {counts['planned']} "
                        f"(skipped {counts['skipped']}, "
                        f"failed {counts['failed']})"
                    )
                rep_seconds.append(elapsed)
            best = min(rep_seconds)
            if serial_seconds is None:
                serial_seconds = best
            legs.append(
                {
                    "jobs": jobs,
                    "seconds": round(best, 3),
                    "rep_seconds": [round(s, 3) for s in rep_seconds],
                    "speedup_vs_serial": round(serial_seconds / best, 3),
                    **counts,
                }
            )
            print(f"jobs={jobs}: best {best:.2f}s of "
                  f"{[f'{s:.2f}' for s in rep_seconds]} "
                  f"({serial_seconds / best:.2f}x vs serial)")
        shutdown_pools()

    payload = {
        "benchmark": "engine_scaling",
        "experiment": "fig17",
        "params": {
            "workload": args.workload,
            "scale": args.scale,
            "frames": args.frames,
            "reps": args.reps,
        },
        "machine": machine_info(),
        "calibration_ms": round(calibration_token(), 3),
        "methodology": "pre-warmed shared store; eval-only legs; one "
                       "discarded warm-up rep then best-of-reps per "
                       "worker count",
        "prewarm": {
            "seconds": round(prewarm_seconds, 3),
            **prewarm_counts,
        },
        "tables_identical_across_jobs": True,
        "legs": legs,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
