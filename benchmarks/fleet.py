"""Cross-config benchmark fleet: the perf matrix as ledger history.

Expands a matrix over {workload (Table II names, ``fuzz@<seed>`` and
other engine request names), resolution scale, ``--jobs``, raster
backend} and runs one small PATU evaluation per cell — a baseline +
``patu`` design point over ``--frames`` frames — under the same
telemetry span harness ``benchmarks/hotpath.py`` uses. Every cell
appends one ``fleet`` record to the persistent run ledger, so
``repro trends --check`` gates each cell's wall clock, stage times and
deterministic counters against that exact configuration's history.
Records from several machines or CI shards merge with
``repro trends --ledger DIR [DIR...]`` (multi-ledger aggregation,
calibration-scaled).

Usage::

    PYTHONPATH=src python benchmarks/fleet.py                 # default matrix
    PYTHONPATH=src python benchmarks/fleet.py --quick         # 2x2 CI smoke
    PYTHONPATH=src python benchmarks/fleet.py \
        --workloads wolf-640x480 fuzz@3:grazing --scales 0.125 0.25 \
        --jobs 1 2 --rasters binned legacy

A summary of all cells goes to ``bench_results/fleet.json``.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time
from dataclasses import dataclass

RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "bench_results" / "fleet.json"
)

SCHEMA = 1

#: Default matrix axes (kept small: the fleet's value is history depth,
#: not single-run breadth).
DEFAULT_WORKLOADS = ("wolf-640x480", "doom3-640x480", "fuzz@0", "fuzz@1:grazing")
DEFAULT_SCALES = (0.125,)
DEFAULT_JOBS = (1,)
DEFAULT_RASTERS = ("binned",)

#: The 2x2 CI smoke matrix: one real game and one generated scenario
#: through both raster backends.
QUICK_WORKLOADS = ("wolf-640x480", "fuzz@0")
QUICK_RASTERS = ("binned", "legacy")
QUICK_SCALE = 0.0625


@dataclass(frozen=True)
class FleetCell:
    """One point of the benchmark matrix (hashable for dedup)."""

    workload: str
    scale: float
    jobs: int
    raster: str

    @property
    def label(self) -> str:
        return f"{self.workload} s{self.scale:g} j{self.jobs} {self.raster}"

    def config(self) -> "dict[str, object]":
        """The cell's run-shaping dict (the ledger digest is over this)."""
        return {
            "workload": self.workload,
            "scale": self.scale,
            "jobs": self.jobs,
            "raster": self.raster,
        }


def expand_matrix(
    workloads, scales, jobs, rasters
) -> "list[FleetCell]":
    """The deduplicated cell list of a matrix, in stable axis order."""
    seen: "set[FleetCell]" = set()
    cells: "list[FleetCell]" = []
    for workload in workloads:
        for scale in scales:
            for n_jobs in jobs:
                for raster in rasters:
                    cell = FleetCell(
                        workload=str(workload),
                        scale=float(scale),
                        jobs=int(n_jobs),
                        raster=str(raster),
                    )
                    if cell not in seen:
                        seen.add(cell)
                        cells.append(cell)
    return cells


def run_cell(
    cell: FleetCell, *, frames: int, threshold: float
) -> "dict[str, float]":
    """Execute one cell; returns its flat trend-metrics map.

    Runs a baseline + ``patu`` evaluation of the cell's workload
    through the real engine (so the ``jobs`` axis exercises the
    process backend and the ``raster`` axis the chosen G-buffer
    pipeline), with telemetry armed hotpath-style: the cell's ledger
    record carries per-stage self-times next to the wall clock.
    """
    from repro.engine.jobs import eval_job
    from repro.experiments.runner import ExperimentContext
    from repro.obs import TELEMETRY
    from repro.obs.ledger import trend_metrics

    TELEMETRY.reset()
    TELEMETRY.enabled = True
    t0 = time.perf_counter()
    with ExperimentContext(
        scale=cell.scale,
        frames=frames,
        workloads=(cell.workload,),
        jobs=cell.jobs,
        raster=cell.raster,
    ) as ctx:
        jobs = []
        for frame in range(frames):
            jobs.append(eval_job(cell.workload, frame, "baseline", 1.0))
            jobs.append(eval_job(cell.workload, frame, "patu", threshold))
        ctx.execute(jobs)
        base = ctx.mean_over_frames(cell.workload, "baseline", 1.0)
        patu = ctx.mean_over_frames(cell.workload, "patu", threshold)
    cell_ms = (time.perf_counter() - t0) * 1e3
    metrics = trend_metrics(
        TELEMETRY,
        extra={
            "cell_ms": round(cell_ms, 3),
            "mssim": patu["mssim"],
            "speedup": base["cycles"] / patu["cycles"],
            "approximation_rate": patu["approximation_rate"],
        },
    )
    TELEMETRY.reset()
    TELEMETRY.enabled = False
    return metrics


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--workloads", nargs="+", default=list(DEFAULT_WORKLOADS),
                        help="workload request names (Table II, fuzz@<seed>"
                             "[:profile], VR@..., R.Bench-*)")
    parser.add_argument("--scales", nargs="+", type=float,
                        default=list(DEFAULT_SCALES))
    parser.add_argument("--jobs", nargs="+", type=int, default=list(DEFAULT_JOBS),
                        help="worker-process counts (1 = serial)")
    parser.add_argument("--rasters", nargs="+", default=list(DEFAULT_RASTERS),
                        choices=("binned", "legacy"))
    parser.add_argument("--frames", type=int, default=1)
    parser.add_argument("--threshold", type=float, default=0.4)
    parser.add_argument("--quick", action="store_true",
                        help="2x2 mini-matrix at a tiny scale (CI smoke)")
    parser.add_argument("--out", default=str(RESULTS_PATH))
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="run-ledger directory (default .repro/ledger)")
    parser.add_argument("--no-ledger", action="store_true", dest="no_ledger",
                        help="skip appending per-cell ledger records")
    args = parser.parse_args(argv)
    if args.quick:
        args.workloads = list(QUICK_WORKLOADS)
        args.rasters = list(QUICK_RASTERS)
        args.scales = [QUICK_SCALE]
        args.jobs = [1]
        args.frames = 1

    from repro.ioutil import atomic_write_text
    from repro.obs import append_record, build_record
    from repro.obs.machine import calibration_token, machine_info

    cells = expand_matrix(args.workloads, args.scales, args.jobs, args.rasters)
    print(f"fleet: {len(cells)} cell(s)")
    calibration_ms = round(calibration_token(), 3)
    summary: "list[dict[str, object]]" = []
    appended = 0
    for cell in cells:
        started = time.perf_counter()
        metrics = run_cell(cell, frames=args.frames, threshold=args.threshold)
        duration_s = time.perf_counter() - started
        print(f"{cell.label:<44} {metrics['cell_ms']:>10.1f} ms  "
              f"mssim {metrics['mssim']:.3f}  "
              f"speedup {metrics['speedup']:.2f}x")
        config = {
            **cell.config(),
            "frames": args.frames,
            "threshold": args.threshold,
        }
        summary.append({"cell": cell.config(), "metrics": metrics})
        if args.no_ledger:
            continue
        try:
            record = build_record(
                "fleet",
                command="benchmarks/fleet.py",
                config=config,
                duration_s=duration_s,
                exit_status=0,
                metrics=metrics,
                calibration_ms=calibration_ms,
            )
            append_record(record, args.ledger)
            appended += 1
        except Exception as exc:  # noqa: BLE001 — the cell itself passed
            print(f"warning: could not append ledger record: {exc}")

    payload = {
        "benchmark": "fleet",
        "schema": SCHEMA,
        "params": {
            "workloads": args.workloads,
            "scales": args.scales,
            "jobs": args.jobs,
            "rasters": args.rasters,
            "frames": args.frames,
            "threshold": args.threshold,
            "quick": args.quick,
        },
        "machine": machine_info(),
        "calibration_ms": calibration_ms,
        "cells": summary,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")
    if not args.no_ledger:
        print(f"ledger: {appended} fleet record(s) appended")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
