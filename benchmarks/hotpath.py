"""Micro-benchmarks for the texture-filtering hot path.

Times the spans that dominate a frame capture (see ``repro profile``):
``texture.footprints``, ``texture.trilinear_variants``,
``texture.anisotropic`` and the enclosing ``texture.filter_batch``
wall-clock, on a seeded synthetic fragment batch whose anisotropy
distribution resembles a real game frame (log-uniform derivative
magnitudes over ~4 decades, a few degenerate footprints). A second
section renders one real game frame per :data:`RASTER_SCENARIOS`
through *both* rasterizer backends (``raster.<backend>.<label>``
spans) and prints the binned-vs-legacy speedup of the sort-middle
pipeline.

Results go to ``bench_results/hotpath.json``. The file carries two
sections: ``spans`` (the latest run) and ``baseline`` (a pinned earlier
run, recorded with ``--record-baseline``); when both are present the
per-span ``speedup_vs_baseline`` ratios are computed and printed. A
``calibration_ms`` machine-speed token (``repro.obs.machine``, shared
with the run ledger) is stored alongside so
``benchmarks/compare.py --calibrate`` can diff runs from
differently-sized machines. Each run also appends a ``hotpath`` record
to the persistent run ledger (``--ledger DIR`` / ``--no-ledger``), so
``repro trends --check`` gates span times against their history.

Usage::

    PYTHONPATH=src python benchmarks/hotpath.py                # full run
    PYTHONPATH=src python benchmarks/hotpath.py --quick        # CI smoke
    PYTHONPATH=src python benchmarks/hotpath.py --record-baseline

Span timings come from the repro telemetry stage timers (the same
numbers ``repro profile`` prints), so the benchmark keeps measuring
the real instrumented code path even as kernels are rewritten.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import time

import numpy as np

RESULTS_PATH = (
    pathlib.Path(__file__).resolve().parent.parent
    / "bench_results" / "hotpath.json"
)

#: The stage-timer spans tracked by this benchmark (and by
#: benchmarks/compare.py regressions). ``texture.filter_batch`` is the
#: wall-clock of the whole call, measured outside telemetry.
TRACKED_SPANS = (
    "texture.footprints",
    "texture.trilinear_variants",
    "texture.anisotropic",
    "texture.filter_batch",
)

#: Rasterizer scenarios: one real game frame each, rendered through
#: both G-buffer backends (``raster.<backend>.<label>`` spans). doom3
#: is the many-triangles indoor scene, stal the high-resolution one —
#: the two workloads the sort-middle rewrite targets.
RASTER_SCENARIOS = (
    ("doom3", "doom3-640x480"),
    ("stal", "stal-1280x1024"),
)

SCHEMA = 1


def _build_unit(texture_size: int, seed: int, max_aniso: int):
    from repro.texture.addressing import TextureLayout
    from repro.texture.mipmap import MipChain
    from repro.texture.unit import TextureUnit
    from repro.workloads.proctex import facade_texture

    chain = MipChain(facade_texture("hotpath", size=texture_size, seed=seed))
    layout = TextureLayout([chain])
    return TextureUnit(layout, max_aniso=max_aniso)


def _fragments(rng: np.random.Generator, count: int):
    """Seeded fragments spanning isotropic to max-aniso footprints."""
    u = rng.uniform(-2.0, 3.0, count)
    v = rng.uniform(-2.0, 3.0, count)
    mag = 10.0 ** rng.uniform(-4.0, -0.5, (count, 4))
    sign = rng.choice([-1.0, 1.0], (count, 4))
    d = mag * sign
    degenerate = rng.random(count) < 0.02
    d[degenerate, 2:] = 0.0
    return u, v, d[:, 0], d[:, 1], d[:, 2], d[:, 3]


def run_once(unit, frags, telemetry) -> "dict[str, float]":
    """One timed pass; returns per-span milliseconds."""
    telemetry.reset()
    telemetry.enabled = True
    t0 = time.perf_counter()
    unit.filter_batch(0, *frags)
    wall_ms = (time.perf_counter() - t0) * 1e3
    summary = telemetry.stage_summary()
    telemetry.reset()
    telemetry.enabled = False
    out = {"texture.filter_batch": wall_ms}
    for name in TRACKED_SPANS:
        if name in summary:
            out[name] = summary[name]["total_us"] / 1e3
    return out


def measure_raster(args) -> "dict[str, dict]":
    """Best-of wall-clock of one frame's G-buffer per backend."""
    from repro.renderer.pipeline import render_gbuffer
    from repro.workloads.games import get_workload

    spans: "dict[str, dict]" = {}
    # Full published resolution by default: the binned pipeline's
    # hierarchical-Z win grows with pixel count (binning overhead is
    # per-triangle, the cull win per-tile), so tiny frames would
    # understate — even invert — the speedup.
    scale = 0.25 if args.quick else 1.0
    for label, name in RASTER_SCENARIOS:
        workload = get_workload(name)
        width, height = workload.scaled_size(scale)
        camera = workload.camera(0)
        for backend in ("legacy", "binned"):
            best = float("inf")
            for rep in range(args.repeats + 1):  # first pass is warmup
                t0 = time.perf_counter()
                render_gbuffer(
                    workload.scene, camera, width, height, raster=backend
                )
                ms = (time.perf_counter() - t0) * 1e3
                if rep:
                    best = min(best, ms)
            spans[f"raster.{backend}.{label}"] = {"best_ms": round(best, 3)}
    return spans


def measure(args) -> "dict[str, object]":
    from repro.obs import TELEMETRY

    unit = _build_unit(args.texture_size, args.seed, args.max_aniso)
    rng = np.random.default_rng(args.seed)
    frags = _fragments(rng, args.fragments)

    run_once(unit, frags, TELEMETRY)  # warmup (first-touch, caches)
    best: "dict[str, float]" = {}
    for _ in range(args.repeats):
        sample = run_once(unit, frags, TELEMETRY)
        for name, ms in sample.items():
            best[name] = min(best.get(name, float("inf")), ms)

    fp = unit.filter_batch(0, *frags)
    spans = {
        name: {"best_ms": round(best[name], 3)}
        for name in TRACKED_SPANS
        if name in best
    }
    spans.update(measure_raster(args))
    return {
        "spans": spans,
        "workload": {
            "fragments": args.fragments,
            "af_samples": int(fp.total_af_samples),
            "mean_aniso": round(float(fp.n.mean()), 3),
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fragments", type=int, default=16384)
    parser.add_argument("--repeats", type=int, default=5)
    parser.add_argument("--texture-size", type=int, default=256)
    parser.add_argument("--max-aniso", type=int, default=16)
    parser.add_argument("--seed", type=int, default=2024)
    parser.add_argument("--quick", action="store_true",
                        help="small batch / few repeats (CI smoke)")
    parser.add_argument("--record-baseline", action="store_true",
                        help="pin this run as the baseline section")
    parser.add_argument("--out", default=str(RESULTS_PATH))
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="run-ledger directory (default .repro/ledger)")
    parser.add_argument("--no-ledger", action="store_true", dest="no_ledger",
                        help="skip appending a run record to the ledger")
    args = parser.parse_args(argv)
    if args.quick:
        args.fragments = min(args.fragments, 4096)
        args.repeats = min(args.repeats, 3)

    from repro.ioutil import atomic_write_text
    from repro.obs.machine import calibration_token, machine_info

    started = time.perf_counter()
    measured = measure(args)
    payload = {
        "benchmark": "hotpath",
        "schema": SCHEMA,
        "params": {
            "fragments": args.fragments,
            "repeats": args.repeats,
            "texture_size": args.texture_size,
            "max_aniso": args.max_aniso,
            "seed": args.seed,
            "quick": args.quick,
        },
        "machine": machine_info(),
        "calibration_ms": round(calibration_token(), 3),
        "spans": measured["spans"],
        "workload": measured["workload"],
    }

    out = pathlib.Path(args.out)
    previous = None
    if out.exists():
        try:
            previous = json.loads(out.read_text())
        except ValueError:
            previous = None
    if args.record_baseline:
        payload["baseline"] = measured["spans"]
        payload["baseline_machine"] = payload["machine"]
    elif previous and "baseline" in previous:
        payload["baseline"] = previous["baseline"]
        if "baseline_machine" in previous:
            payload["baseline_machine"] = previous["baseline_machine"]

    if "baseline" in payload:
        payload["speedup_vs_baseline"] = {
            name: round(
                payload["baseline"][name]["best_ms"] / entry["best_ms"], 3
            )
            for name, entry in payload["spans"].items()
            if name in payload["baseline"]
            and entry["best_ms"] > 0
        }

    # Binned-vs-legacy within the same run: the sort-middle pipeline's
    # headline ratio, independent of any pinned baseline.
    payload["raster_speedup"] = {
        label: round(
            payload["spans"][f"raster.legacy.{label}"]["best_ms"]
            / payload["spans"][f"raster.binned.{label}"]["best_ms"],
            3,
        )
        for label, _ in RASTER_SCENARIOS
        if payload["spans"].get(f"raster.binned.{label}", {}).get("best_ms")
    }

    for name, entry in payload["spans"].items():
        ratio = payload.get("speedup_vs_baseline", {}).get(name)
        suffix = f"  ({ratio:.2f}x vs baseline)" if ratio else ""
        print(f"{name:<28} {entry['best_ms']:>10.3f} ms{suffix}")
    for label, ratio in payload["raster_speedup"].items():
        print(f"raster {label}: binned is {ratio:.2f}x vs legacy")

    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if not args.no_ledger:
        # Feed the same per-span numbers into the persistent run
        # ledger, so `repro trends` gates hotpath regressions with the
        # median±MAD history instead of a single pinned baseline.
        from repro.obs import append_record, build_record

        try:
            record = build_record(
                "hotpath",
                command="benchmarks/hotpath.py",
                config=dict(payload["params"]),
                duration_s=time.perf_counter() - started,
                exit_status=0,
                metrics={
                    f"stage_ms.{name}": entry["best_ms"]
                    for name, entry in payload["spans"].items()
                },
                calibration_ms=payload["calibration_ms"],
            )
            path = append_record(record, args.ledger)
        except Exception as exc:  # noqa: BLE001 — the bench itself passed
            print(f"warning: could not append ledger record: {exc}")
        else:
            print(f"ledger: hotpath record appended to {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
