"""Cross-backend G-buffer digest smoke: binned must equal legacy.

Renders one frame of each scenario through both rasterizer backends,
hashes every G-buffer array, and exits non-zero on any digest
mismatch — the cheapest end-to-end check of the sort-middle pipeline's
bit-identity contract, sized for a CI smoke job::

    PYTHONPATH=src python benchmarks/raster_digest.py          # full
    PYTHONPATH=src python benchmarks/raster_digest.py --quick  # CI

The full differential coverage (all seven games, hostile triangle
soups) lives in ``tests/properties/test_raster_differential.py``; this
script exists so the bench workflow catches a divergence even when the
unit-test job is skipped or trimmed.
"""

from __future__ import annotations

import argparse
import hashlib
import sys

GB_ARRAYS = ("tex_id", "depth", "u", "v", "dudx", "dvdx", "dudy", "dvdy")

SCENARIOS = (
    ("wolf-640x480", 0.125),
    ("doom3-640x480", 0.125),
    ("stal-1280x1024", 0.0625),
)


def gbuffer_digest(gbuffer) -> str:
    """sha256 over every array of one G-buffer, order-stable."""
    h = hashlib.sha256()
    for name in GB_ARRAYS:
        h.update(getattr(gbuffer, name).tobytes())
    return h.hexdigest()[:16]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--quick", action="store_true",
                        help="first scenario only (CI smoke)")
    parser.add_argument("--frame", type=int, default=0)
    args = parser.parse_args(argv)

    from repro.renderer.pipeline import render_gbuffer
    from repro.workloads.games import get_workload

    scenarios = SCENARIOS[:1] if args.quick else SCENARIOS
    mismatches = 0
    for name, scale in scenarios:
        workload = get_workload(name)
        width, height = workload.scaled_size(scale)
        camera = workload.camera(args.frame)
        digests = {}
        for backend in ("legacy", "binned"):
            frame = render_gbuffer(
                workload.scene, camera, width, height, raster=backend
            )
            digests[backend] = gbuffer_digest(frame.gbuffer)
        ok = digests["legacy"] == digests["binned"]
        mismatches += not ok
        verdict = "ok" if ok else "MISMATCH"
        print(
            f"{name:<18} {width}x{height}  legacy={digests['legacy']}  "
            f"binned={digests['binned']}  {verdict}"
        )
    if mismatches:
        print(f"FAIL: {mismatches} scenario(s) diverged between backends")
        return 1
    print("ok: binned G-buffers are bit-identical to legacy")
    return 0


if __name__ == "__main__":
    sys.exit(main())
