"""Service benchmark: N concurrent synthetic clients vs a live server.

Starts ``repro serve`` as a subprocess, then measures three phases
over one shared design-point request set (all clients walk the same
set, so in-flight requests overlap — the cross-request coalescing
case the batcher exists for):

1. **warm** (untimed) — one client walks the set once, populating the
   sharded capture store and the engine's metric cache (and, under
   ``--chaos-worker-kill``, absorbing the worker kills so the timed
   phases measure steady state, exactly like
   ``benchmarks/engine_scaling.py``'s warm-up rep);
2. **sequential** (timed) — one request in flight at a time: the
   baseline, and the byte-identity reference for every later response;
3. **concurrent** (timed) — ``--clients`` threads, each with its own
   connection, walking the set closed-loop. Requests that arrive
   while the engine is busy coalesce into batches.

Reported: sustained requests/sec, p50/p99 latency, batch-coalescing
rate, store shard hit rates, speedup over the sequential baseline —
appended to the run ledger as one ``serve`` record (gated by ``repro
trends``) and written to ``bench_results/service_bench.json``.

The benchmark *fails* (exit 1) when any concurrent response is not
byte-identical to the sequential baseline's response for the same
design point, when a chaos-marked job does not quarantine exactly as
planned, or when measured speedup falls below ``--min-speedup``.

Usage::

    PYTHONPATH=src python benchmarks/service_bench.py            # default
    PYTHONPATH=src python benchmarks/service_bench.py --quick    # CI smoke
    PYTHONPATH=src python benchmarks/service_bench.py \
        --backend remote --jobs 2 --chaos-worker-kill 0.3
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import subprocess
import sys
import tempfile
import threading
import time

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC_ROOT = REPO_ROOT / "src"
RESULTS_PATH = REPO_ROOT / "bench_results" / "service_bench.json"

SCHEMA = 1

sys.path.insert(0, str(SRC_ROOT))


def build_requests(args) -> "list[dict]":
    """The shared request set every client walks, in a fixed order."""
    requests = []
    for workload in args.workloads:
        for frame in range(args.frames):
            for threshold in args.thresholds:
                requests.append({
                    "op": "eval",
                    "workload": workload,
                    "frame": frame,
                    "scenario": "patu",
                    "threshold": threshold,
                })
    return requests


def request_key(request: dict) -> str:
    return json.dumps(
        {k: v for k, v in request.items() if k != "id"}, sort_keys=True
    )


def canonical_response(raw: bytes) -> bytes:
    """One response line with its ``id`` removed, re-canonicalized."""
    payload = json.loads(raw)
    payload.pop("id", None)
    return json.dumps(payload, sort_keys=True, separators=(",", ":")).encode()


def scan_chaos_seed(requests: "list[dict]", kill_rate: float):
    """A seed whose kills mark some-but-not-all evals, no captures.

    Chaos decisions are keyed by job identity (machine-independent),
    so the benchmark can precompute exactly which design points the
    server will quarantine and assert on them.
    """
    from repro.engine.jobs import capture_job, eval_job
    from repro.engine.worker import chaos_identity
    from repro.resilience.faults import FaultInjector, FaultPlan

    evals = [
        eval_job(r["workload"], r["frame"], r["scenario"], r["threshold"])
        for r in requests
    ]
    captures = {
        chaos_identity(capture_job(r["workload"], r["frame"]))
        for r in requests
    }
    probe = FaultInjector()
    for seed in range(2000):
        probe.configure(FaultPlan(seed=seed).with_chaos(kill=kill_rate))
        marks = [
            probe.should_kill_worker(chaos_identity(job)) for job in evals
        ]
        if not (any(marks) and not all(marks)):
            continue
        if any(probe.should_kill_worker(identity) for identity in captures):
            continue
        return seed, marks
    raise SystemExit("no chaos seed marks some-but-not-all eval jobs")


class Server:
    """The ``repro serve`` subprocess under benchmark."""

    def __init__(self, args, store_root: str, chaos_seed: "int | None"):
        command = [
            sys.executable, "-m", "repro", "serve",
            "--port", str(args.port),
            "--scale", str(args.scale),
            "--jobs", str(args.jobs),
            "--capture-cache", store_root,
            "--store-prefix", str(args.store_prefix),
            "--max-batch", str(args.max_batch),
        ]
        if args.backend:
            command += ["--backend", args.backend]
        if args.chaos_worker_kill:
            command += [
                "--chaos-worker-kill", str(args.chaos_worker_kill),
                "--fault-seed", str(chaos_seed),
                "--job-timeout", "60",
            ]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(SRC_ROOT)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        self.proc = subprocess.Popen(
            command, env=env, stderr=subprocess.PIPE, text=True
        )
        self.port = self._wait_ready()

    def _wait_ready(self) -> int:
        deadline = time.monotonic() + 120.0
        for line in self.proc.stderr:
            print(f"  server: {line.rstrip()}", file=sys.stderr)
            if "listening on" in line:
                port = int(line.rsplit(":", 1)[1])
                threading.Thread(target=self._drain, daemon=True).start()
                return port
            if time.monotonic() > deadline:
                break
        self.proc.kill()
        raise SystemExit("server never became ready")

    def _drain(self) -> None:
        for line in self.proc.stderr:
            print(f"  server: {line.rstrip()}", file=sys.stderr)

    def stop(self, client=None) -> int:
        try:
            if client is not None:
                client.shutdown()
            return self.proc.wait(timeout=60)
        except Exception:  # noqa: BLE001 — benchmark teardown
            self.proc.kill()
            return self.proc.wait(timeout=10)


def run_client(port: int, requests: "list[dict]", prefix: str):
    """Walk the request set once; return (latencies_s, responses)."""
    from repro.service.client import ServiceClient

    latencies: "list[float]" = []
    responses: "dict[str, bytes]" = {}
    client = ServiceClient("127.0.0.1", port)
    try:
        for i, request in enumerate(requests):
            t0 = time.perf_counter()
            _response, raw = client.request_raw(
                {**request, "id": f"{prefix}-{i}"}
            )
            latencies.append(time.perf_counter() - t0)
            responses[request_key(request)] = canonical_response(raw)
    finally:
        client.close()
    return latencies, responses


def percentile(values: "list[float]", q: float) -> float:
    ordered = sorted(values)
    index = min(len(ordered) - 1, int(round(q * (len(ordered) - 1))))
    return ordered[index]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent synthetic clients (default 8)")
    parser.add_argument("--workloads", nargs="+", default=["wolf-640x480"],
                        help="workload request names (default wolf-640x480)")
    parser.add_argument("--frames", type=int, default=2)
    parser.add_argument("--thresholds", type=float, nargs="+",
                        default=[0.2, 0.3, 0.4, 0.5, 0.6, 0.8])
    parser.add_argument("--scale", type=float, default=0.125)
    parser.add_argument("--jobs", type=int, default=2,
                        help="server worker count (default 2)")
    parser.add_argument("--backend", default=None,
                        choices=(None, "serial", "process", "remote"),
                        help="server backend (default: process)")
    parser.add_argument("--port", type=int, default=0,
                        help="server port (default 0 = ephemeral)")
    parser.add_argument("--store", default=None, metavar="DIR",
                        help="capture store directory (default: temp)")
    parser.add_argument("--store-prefix", type=int, default=1,
                        dest="store_prefix")
    parser.add_argument("--max-batch", type=int, default=64,
                        dest="max_batch")
    parser.add_argument("--chaos-worker-kill", type=float, default=0.0,
                        dest="chaos_worker_kill", metavar="RATE",
                        help="arm seeded worker kills on the server and "
                             "assert supervision semantics")
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        dest="min_speedup", metavar="X",
                        help="fail when concurrent/sequential throughput "
                             "falls below X (default 0 = report only)")
    parser.add_argument("--quick", action="store_true",
                        help="small CI configuration (4 clients, "
                             "1 frame, 4 thresholds)")
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="run-ledger directory (default .repro/ledger)")
    parser.add_argument("--no-ledger", action="store_true", dest="no_ledger")
    parser.add_argument("--out", default=str(RESULTS_PATH))
    args = parser.parse_args(argv)
    if args.quick:
        args.clients = min(args.clients, 4)
        args.frames = 1
        args.thresholds = args.thresholds[:4]

    from repro.ioutil import atomic_write_text
    from repro.obs import append_record, build_record
    from repro.obs.machine import calibration_token

    requests = build_requests(args)
    chaos_seed = marks = None
    if args.chaos_worker_kill:
        chaos_seed, marks = scan_chaos_seed(requests, args.chaos_worker_kill)
        print(f"chaos: seed {chaos_seed} marks "
              f"{sum(marks)}/{len(marks)} design point(s) for kill")

    started = time.perf_counter()
    calibration_ms = round(calibration_token(), 3)
    store_tmp = None
    store_root = args.store
    if store_root is None:
        store_tmp = tempfile.TemporaryDirectory(prefix="repro-serve-bench-")
        store_root = store_tmp.name

    server = Server(args, store_root, chaos_seed)
    from repro.service.client import ServiceClient

    failures: "list[str]" = []
    try:
        control = ServiceClient("127.0.0.1", server.port)
        print(f"== service_bench: {len(requests)} design point(s), "
              f"{args.clients} client(s), backend "
              f"{args.backend or 'process'}, jobs {args.jobs} ==")

        # Phase 1: warm (untimed) — store + metric caches, chaos kills.
        t0 = time.perf_counter()
        _warm_lat, warm_responses = run_client(server.port, requests, "w")
        print(f"warm: {len(requests)} request(s) "
              f"in {time.perf_counter() - t0:.2f}s")

        # Phase 2: sequential baseline (timed, one in flight).
        t0 = time.perf_counter()
        seq_latencies, seq_responses = run_client(server.port, requests, "s")
        seq_wall = time.perf_counter() - t0
        seq_rps = len(requests) / seq_wall
        if seq_responses != warm_responses:
            failures.append("sequential responses differ from warm pass")
        stats_before = control.stats()

        # Phase 3: concurrent clients (timed, closed-loop per client).
        results: "list[tuple[list[float], dict[str, bytes]]]" = [None] * args.clients
        threads = []
        barrier = threading.Barrier(args.clients)

        def worker(slot: int) -> None:
            barrier.wait()
            results[slot] = run_client(server.port, requests, f"c{slot}")

        t0 = time.perf_counter()
        for slot in range(args.clients):
            thread = threading.Thread(target=worker, args=(slot,))
            thread.start()
            threads.append(thread)
        for thread in threads:
            thread.join()
        conc_wall = time.perf_counter() - t0
        stats_after = control.stats()

        conc_latencies = [lat for lats, _ in results for lat in lats]
        total_requests = len(conc_latencies)
        conc_rps = total_requests / conc_wall
        speedup = conc_rps / seq_rps if seq_rps else 0.0

        # Byte-identity: every concurrent response must equal the
        # sequential baseline's response for that design point.
        mismatches = 0
        for _lats, responses in results:
            for key, body in responses.items():
                if seq_responses.get(key) != body:
                    mismatches += 1
        if mismatches:
            failures.append(
                f"{mismatches} concurrent response(s) not byte-identical "
                "to the sequential baseline"
            )

        # Chaos: precomputed marked design points must have quarantined
        # (typed WorkerCrashError errors), survivors must have passed,
        # and the server must still be responsive.
        if marks is not None:
            for request, marked in zip(requests, marks):
                payload = json.loads(seq_responses[request_key(request)])
                if marked:
                    if payload.get("ok"):
                        failures.append(
                            f"chaos-marked point answered ok: {request}"
                        )
                    elif payload["error"]["type"] != "WorkerCrashError":
                        failures.append(
                            "chaos-marked point failed with "
                            f"{payload['error']['type']}, expected "
                            f"WorkerCrashError: {request}"
                        )
                elif not payload.get("ok"):
                    failures.append(
                        f"unmarked design point failed under chaos: "
                        f"{request}: {payload.get('error')}"
                    )
            if not control.ping().get("ok"):
                failures.append("server unresponsive after chaos run")

        batches = stats_after["batches"] - stats_before["batches"]
        batched = (stats_after["batched_requests"]
                   - stats_before["batched_requests"])
        coalesced_jobs = (stats_after["coalesced_jobs"]
                          - stats_before["coalesced_jobs"])
        coalesced_batches = (stats_after["coalesced_batches"]
                             - stats_before["coalesced_batches"])
        coalesce_rate = coalesced_jobs / batched if batched else 0.0
        store_stats = stats_after.get("store") or {}
        lookups = store_stats.get("hits", 0) + store_stats.get("misses", 0)
        store_hit_rate = store_stats.get("hits", 0) / lookups if lookups else 0.0
        shard_hits = {
            shard: bucket
            for shard, bucket in (stats_after.get("shards") or {}).items()
        }

        if args.min_speedup and speedup < args.min_speedup:
            failures.append(
                f"speedup {speedup:.2f}x below --min-speedup "
                f"{args.min_speedup:g}x"
            )

        metrics = {
            "requests_per_sec": round(conc_rps, 3),
            "sequential_rps": round(seq_rps, 3),
            "speedup_vs_sequential": round(speedup, 3),
            "p50_ms": round(percentile(conc_latencies, 0.50) * 1e3, 3),
            "p99_ms": round(percentile(conc_latencies, 0.99) * 1e3, 3),
            "seq_p50_ms": round(percentile(seq_latencies, 0.50) * 1e3, 3),
            "seq_p99_ms": round(percentile(seq_latencies, 0.99) * 1e3, 3),
            "batches": float(batches),
            "coalesced_batches": float(coalesced_batches),
            "coalesced_jobs": float(coalesced_jobs),
            "coalesce_rate": round(coalesce_rate, 4),
            "batch_size_mean": round(batched / batches, 3) if batches else 0.0,
            "rejected": float(stats_after.get("rejected", 0)),
            "peak_queue_depth": float(stats_after.get("peak_depth", 0)),
            "store_hit_rate": round(store_hit_rate, 4),
            "byte_identical": 0.0 if mismatches else 1.0,
        }
        if marks is not None:
            metrics["chaos_marked_points"] = float(sum(marks))

        print(f"sequential: {seq_rps:.1f} req/s "
              f"(p50 {metrics['seq_p50_ms']:.1f} ms, "
              f"p99 {metrics['seq_p99_ms']:.1f} ms)")
        print(f"concurrent: {conc_rps:.1f} req/s over {total_requests} "
              f"request(s) (p50 {metrics['p50_ms']:.1f} ms, "
              f"p99 {metrics['p99_ms']:.1f} ms) -> "
              f"{speedup:.2f}x sequential")
        print(f"coalescing: {batches} batch(es), "
              f"{coalesced_batches} coalesced, "
              f"mean size {metrics['batch_size_mean']:.2f}, "
              f"{coalesced_jobs} duplicate job(s) deduped "
              f"({coalesce_rate:.1%} of batched requests)")
        print(f"store: hit rate {store_hit_rate:.1%} over "
              f"{lookups} lookup(s); shards: "
              + (", ".join(
                  f"{shard}={bucket.get('hits', 0)}h/{bucket.get('entries', 0)}e"
                  for shard, bucket in sorted(shard_hits.items())
              ) or "n/a"))

        rc = server.stop(control)
        if rc != 0:
            failures.append(f"server exited with status {rc}")
    except BaseException:
        server.proc.kill()
        raise
    finally:
        if store_tmp is not None:
            store_tmp.cleanup()

    exit_status = 1 if failures else 0
    config = {
        "clients": args.clients,
        "requests_per_client": len(requests),
        "workloads": list(args.workloads),
        "frames": args.frames,
        "thresholds": list(args.thresholds),
        "scale": args.scale,
        "jobs": args.jobs,
        "backend": args.backend or "process",
        "store_prefix": args.store_prefix,
        "max_batch": args.max_batch,
        "chaos_worker_kill": args.chaos_worker_kill,
        "quick": args.quick,
    }
    payload = {
        "schema": SCHEMA,
        "config": config,
        "metrics": metrics,
        "shards": shard_hits,
        "failures": failures,
        "calibration_ms": calibration_ms,
    }
    out = pathlib.Path(args.out)
    out.parent.mkdir(parents=True, exist_ok=True)
    atomic_write_text(out, json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out}")

    if not args.no_ledger:
        record = build_record(
            "serve",
            command="service_bench " + " ".join(argv or sys.argv[1:]),
            config=config,
            duration_s=time.perf_counter() - started,
            exit_status=exit_status,
            metrics=metrics,
            calibration_ms=calibration_ms,
        )
        path = append_record(record, args.ledger)
        print(f"ledger: serve record appended to {path}")

    for failure in failures:
        print(f"FAIL: {failure}", file=sys.stderr)
    return exit_status


if __name__ == "__main__":
    raise SystemExit(main())
