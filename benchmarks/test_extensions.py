"""Benches: the extension and ablation experiments.

These go beyond the paper's artifacts: a stereo-VR transfer check and
three design ablations (split thresholds, hash-table capacity, max AF
level) that probe the robustness of the paper's design choices.
"""

import pytest

from repro.experiments import (
    ablation_hash_entries,
    ablation_max_aniso,
    ablation_split_threshold,
    ext_compression,
    ext_software,
    ext_vr,
)


def test_ext_vr(ctx, run_once, record_result):
    result = run_once(lambda: ext_vr.run(ctx))
    record_result(result)
    for row in result.rows:
        # Both eyes see essentially the same approximation opportunity.
        assert row["left_approx"] == pytest.approx(row["right_approx"], abs=0.05)
        # Stereo per-eye speedup tracks the mono speedup.
        assert row["left_speedup"] == pytest.approx(row["mono_speedup"], rel=0.2)
        assert row["mssim"] > 0.9


def test_ext_compression(ctx, run_once, record_result):
    result = run_once(lambda: ext_compression.run(ctx))
    record_result(result)
    for row in result.rows:
        # Compression is lossy but mild, and cuts DRAM traffic hard.
        assert row["compression_mssim"] > 0.95
        assert row["dram_reduction_compress"] > 0.4
        # The combined configuration beats PATU alone outright, and sits
        # within predictor-overhead noise of compression alone (at our
        # scaled working sets compression fully de-bottlenecks memory;
        # see the experiment notes).
        assert row["combined_speedup"] >= row["patu_speedup_raw"] - 1e-9
        assert row["combined_speedup"] >= 0.97 * row["compress_speedup"]
        # PATU still removes its share of filtering work under compression.
        assert row["patu_texel_reduction_compressed"] > 0.2


def test_ext_software(ctx, run_once, record_result):
    result = run_once(lambda: ext_software.run(ctx))
    record_result(result)
    for row in result.rows:
        # Granularity: the per-pixel knob exposes far more operating
        # points; the software knob is bounded by the draw-call count.
        assert row["hw_operating_points"] >= 2 * row["sw_operating_points"]
        assert row["sw_operating_points"] <= row["draw_calls"] + 1
    # On the heterogeneous-surface workload (HL2's ground planes span
    # the full anisotropy range) per-pixel targeting wins at the
    # quality target.
    hl2 = next(r for r in result.rows if r["workload"].startswith("HL2"))
    assert hl2["hw_speedup_at_target"] > hl2["sw_speedup_at_target"]


def test_ablation_split_threshold(ctx, run_once, record_result):
    result = run_once(lambda: ablation_split_threshold.run(ctx))
    record_result(result)
    for name in ablation_split_threshold.WORKLOADS:
        rows = [r for r in result.rows if r["workload"] == name]
        best_split = max(r["metric"] for r in rows)
        best_unified = max(
            r["metric"] for r in rows
            if r["stage1_threshold"] == r["stage2_threshold"]
        )
        # The paper's unified-threshold simplification costs < 5%.
        assert best_unified >= 0.95 * best_split


def test_ablation_hash_entries(ctx, run_once, record_result):
    result = run_once(lambda: ablation_hash_entries.run(ctx))
    record_result(result)
    by_entries = {r["entries"]: r for r in result.rows}
    # Shrinking the table sacrifices approximation coverage...
    assert (
        by_entries[4]["approximation_rate"]
        < by_entries[16]["approximation_rate"]
    )
    # ...for proportional SRAM savings.
    assert by_entries[4]["sram_kb_per_unit"] == pytest.approx(
        by_entries[16]["sram_kb_per_unit"] / 4, abs=0.02
    )
    # Quality never drops below the full table's (overflow pixels keep AF).
    assert by_entries[4]["mssim"] >= by_entries[16]["mssim"] - 0.01


def test_ablation_max_aniso(ctx, run_once, record_result):
    result = run_once(lambda: ablation_max_aniso.run(ctx))
    record_result(result)
    by_level = {r["max_aniso"]: r for r in result.rows}
    assert by_level[16]["baseline_quality_vs_16x"] == pytest.approx(1.0)
    assert by_level[4]["baseline_quality_vs_16x"] < 1.0 + 1e-9
    assert (
        by_level[4]["mean_n"] < by_level[8]["mean_n"] < by_level[16]["mean_n"]
    )
