"""Bench: quantify Fig. 3 (AF enhances sharpness at oblique angles)."""

from repro.experiments import fig03_sharpness


def test_fig03_sharpness(ctx, run_once, record_result):
    result = run_once(lambda: fig03_sharpness.run(ctx))
    record_result(result)
    for row in result.rows:
        # AF is strictly sharper than trilinear on oblique surfaces,
        # in every single workload.
        assert row["sharpness_gain_oblique"] > 1.05
    avg = result.rows[-1]
    assert avg["workload"] == "average"
    assert avg["sharpness_gain_oblique"] >= avg["sharpness_gain_frame"]
