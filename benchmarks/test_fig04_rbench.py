"""Bench: regenerate Fig. 4 (R.Bench fps, AF on/off, 2K and 4K).

Paper shape to hold: disabling AF improves fps at both resolutions,
and 4K gains more than 2K.
"""

import numpy as np

from repro.experiments import fig04_rbench


def test_fig04_rbench(ctx, run_once, record_result):
    result = run_once(lambda: fig04_rbench.run(ctx))
    record_result(result)
    by_res = {}
    for row in result.rows:
        assert row["fps_af_off"] > row["fps_af_on"]
        by_res.setdefault(row["resolution"], []).append(row["improvement"])
    mean_2k = float(np.mean(by_res["2K"]))
    mean_4k = float(np.mean(by_res["4K"]))
    # Paper: 21% at 2K, 43% at 4K — higher resolution gains more.
    assert mean_2k > 0.05
    assert mean_4k > mean_2k
