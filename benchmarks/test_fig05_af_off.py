"""Bench: regenerate Fig. 5 (speedup & energy reduction with AF off).

Paper shape to hold: disabling AF speeds up every game (paper avg
1.41x, up to 1.60x) and reduces total energy (paper avg 28%).
"""

from repro.experiments import fig05_af_off


def test_fig05_af_off(ctx, run_once, record_result):
    result = run_once(lambda: fig05_af_off.run(ctx))
    record_result(result)
    per_game = result.rows[:-1]
    avg = result.rows[-1]
    assert all(r["speedup"] >= 1.0 for r in per_game)
    # Average in the paper's neighbourhood (1.41x): accept a wide band
    # since our substrate is a model, but the effect must be large.
    assert 1.15 < avg["speedup"] < 1.9
    assert 0.10 < avg["energy_reduction"] < 0.5
