"""Bench: regenerate Fig. 6 (memory-bandwidth breakdown, AF on/off).

Paper shape to hold: texture fetching dominates DRAM bandwidth with AF
on (paper ~71%), and disabling AF cuts total traffic (paper ~28%)
almost entirely out of the texture share.
"""

import numpy as np

from repro.experiments import fig06_bandwidth


def test_fig06_bandwidth(ctx, run_once, record_result):
    result = run_once(lambda: fig06_bandwidth.run(ctx))
    record_result(result)
    on_rows = [r for r in result.rows if r["mode"] == "AF-on"]
    off_rows = [r for r in result.rows if r["mode"] == "AF-off"]
    tex_share = float(np.mean([r["texture"] for r in on_rows]))
    assert 0.5 < tex_share < 0.95  # paper: ~71%
    for on, off in zip(on_rows, off_rows):
        assert on["total"] == 1.0 or abs(on["total"] - 1.0) < 1e-9
        assert off["total"] < on["total"]
        # The cut comes from texture, not the fixed categories.
        assert off["texture"] < on["texture"]
        assert abs(off["color"] - on["color"]) < 1e-9
