"""Bench: regenerate Fig. 7 (MSSIM loss when AF is disabled).

Paper shape to hold: disabling AF visibly damages perceived quality in
every game. Absolute magnitudes are smaller than the paper's 28%
because procedural textures carry less fine detail than commercial
game art (see EXPERIMENTS.md).
"""

from repro.experiments import fig07_quality


def test_fig07_quality(ctx, run_once, record_result):
    result = run_once(lambda: fig07_quality.run(ctx))
    record_result(result)
    per_game = result.rows[:-1]
    avg = result.rows[-1]
    assert all(0.0 < r["quality_loss"] < 0.5 for r in per_game)
    assert avg["quality_loss"] > 0.02
    assert avg["mssim_af_off"] < 0.98
