"""Bench: regenerate Fig. 8 (SSIM index map of an HL2 frame).

Paper shape to hold: more than half of the pixels keep high SSIM
without AF — the observation motivating selective filtering — while a
visible minority degrades.
"""

from repro.experiments import fig08_ssim_map


def test_fig08_ssim_map(ctx, run_once, record_result):
    result = run_once(lambda: fig08_ssim_map.run(ctx))
    record_result(result)
    row = result.rows[0]
    assert row["frac_pixels_ssim>=0.9"] > 0.5
    assert row["map_min"] < 0.9  # some pixels genuinely need AF
    images = result.images
    assert images["ssim_map"].shape == images["af_on"].shape
    assert images["ssim_map"].min() >= -1.0 and images["ssim_map"].max() <= 1.0
