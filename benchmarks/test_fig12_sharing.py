"""Bench: regenerate Fig. 12 (AF samples sharing TF texel sets).

Paper shape to hold: a majority-scale fraction of AF's input samples
share the same texel set as TF (paper: 62% average) — the headroom the
distribution-based prediction exploits.
"""

from repro.experiments import fig12_sharing


def test_fig12_sharing(ctx, run_once, record_result):
    result = run_once(lambda: fig12_sharing.run(ctx))
    record_result(result)
    avg = result.rows[-1]["sharing_fraction"]
    assert 0.35 < avg < 0.85
    for row in result.rows[:-1]:
        assert 0.2 < row["sharing_fraction"] < 0.95
