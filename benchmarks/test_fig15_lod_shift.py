"""Bench: quantify Fig. 15 (LOD shift and PATU's LOD-reuse recovery)."""

from repro.experiments import fig15_lod_shift


def test_fig15_lod_shift(ctx, run_once, record_result):
    result = run_once(lambda: fig15_lod_shift.run(ctx))
    record_result(result)
    avg = result.rows[-1]
    assert avg["workload"] == "average"
    # The naive substitution visibly blurs the approximated region...
    assert avg["sharpness_vs_af_shift"] < 0.9
    # ...LOD reuse restores its detail level to at least AF's...
    assert avg["sharpness_vs_af_reuse"] > 0.95
    # ...and lifts the frame MSSIM (the Section V-C(2) fix).
    assert avg["mssim_lod_reuse"] > avg["mssim_lod_shift"]
