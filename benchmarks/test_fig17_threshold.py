"""Bench: regenerate Fig. 17 (threshold sweep, performance vs quality).

Paper shape to hold: the "X"-shaped tradeoff (speedup falls, MSSIM
rises with the threshold), a genuine interior tuning space (several
games' best points sit strictly inside (0, 1)), and lower best points
for higher resolutions on aggregate. Magnitudes are compressed
relative to the paper because procedural textures lose less quality
without AF than commercial game art (EXPERIMENTS.md §fig17).
"""

import numpy as np

from repro.experiments import fig17_threshold


def test_fig17_threshold(ctx, run_once, record_result):
    result = run_once(lambda: fig17_threshold.run(ctx))
    record_result(result)
    avg_rows = {r["threshold"]: r for r in result.rows if r["workload"] == "average"}
    thresholds = sorted(avg_rows)

    # X shape on the average curve: speedup monotone non-increasing,
    # quality monotone non-decreasing (allowing sub-1% model noise).
    speedups = [avg_rows[t]["speedup"] for t in thresholds]
    quality = [avg_rows[t]["mssim"] for t in thresholds]
    assert all(a >= b - 0.01 for a, b in zip(speedups, speedups[1:]))
    assert all(a <= b + 0.01 for a, b in zip(quality, quality[1:]))

    # Threshold 1 approximates nothing: quality is exactly the baseline
    # and the only cost left is PATU's predictor overhead (sub-2%).
    assert abs(avg_rows[1.0]["mssim"] - 1.0) < 1e-9
    assert abs(avg_rows[1.0]["speedup"] - 1.0) < 0.02
    # Threshold 0 (no AF) is the fastest and lowest-quality point.
    assert speedups[0] >= max(speedups) - 1e-9
    assert quality[0] <= min(quality) + 1e-6

    # The tuning space pays off: some operating point beats running
    # the baseline everywhere under the paper's speedup x MSSIM metric.
    metric = [avg_rows[t]["speedup_x_mssim"] for t in thresholds]
    assert max(metric) > metric[-1] + 0.005

    # Several games have best points strictly inside the interval.
    interior = [
        bp for wl, bp in result.best_points.items()
        if wl != "average" and 0.1 <= bp <= 0.9
    ]
    assert len(interior) >= 3

    # Resolution trend on aggregate: the highest-resolution configs
    # prefer thresholds at least as low as the lowest-resolution ones.
    bp = result.best_points
    high_res = np.mean([bp["HL2-1600x1200"], bp["doom3-1600x1200"]])
    low_res = np.mean([bp["HL2-640x480"], bp["doom3-640x480"], bp["wolf-640x480"]])
    assert high_res <= low_res + 0.15
