"""Bench: regenerate Fig. 18 (normalized texture filtering latency).

Paper shape to hold: all approximating designs reduce filtering latency
(paper: PATU -29% average, up to -42%); the combined design is at
least as good as the sample-area-only design.
"""

from repro.experiments import fig18_latency


def test_fig18_latency(ctx, run_once, record_result):
    result = run_once(lambda: fig18_latency.run(ctx))
    record_result(result)
    avg = result.rows[-1]
    assert avg["baseline"] == 1.0
    assert avg["afssim_n_txds"] <= avg["afssim_n"] + 1e-9
    # PATU's latency reduction lands in the paper's neighbourhood.
    assert 0.10 < 1.0 - avg["patu"] < 0.55
    for row in result.rows[:-1]:
        assert row["patu"] <= 1.0 + 1e-9
