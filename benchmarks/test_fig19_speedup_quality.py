"""Bench: regenerate Fig. 19 (speedup + perceived quality, 4 designs).

Paper shape to hold at the default threshold 0.4: N+Txds is the
fastest design and loses the most quality; AF-SSIM(N) gains less;
PATU recovers quality above N+Txds (paper: >= 93% MSSIM) while keeping
a clear speedup over baseline; higher resolutions gain more.
"""

from repro.experiments import fig19_speedup_quality


def test_fig19_speedup_quality(ctx, run_once, record_result):
    result = run_once(lambda: fig19_speedup_quality.run(ctx))
    record_result(result)
    avg = result.rows[-1]

    # Who wins on speed: N+Txds >= N-only; PATU keeps a real speedup.
    assert avg["afssim_n_txds_speedup"] >= avg["afssim_n_speedup"] - 1e-9
    assert avg["patu_speedup"] > 1.02
    assert 1.0 <= avg["afssim_n_txds_speedup"] < 1.6

    # Who wins on quality: PATU > N+Txds; PATU lands at high MSSIM.
    assert avg["patu_mssim"] > avg["afssim_n_txds_mssim"]
    assert avg["patu_mssim"] >= 0.90  # paper: 93% average

    # Resolution trend within HL2.
    rows = {r["workload"]: r for r in result.rows}
    assert (
        rows["HL2-1600x1200"]["patu_speedup"]
        >= rows["HL2-640x480"]["patu_speedup"] - 1e-9
    )
