"""Bench: regenerate Fig. 20 (normalized GPU energy, 4 designs).

Paper shape to hold: every approximating design saves energy (paper:
PATU -11% average, up to -16%), with PATU paying slightly more than
N+Txds for its LOD reuse (paper: ~1%).
"""

from repro.experiments import fig20_energy


def test_fig20_energy(ctx, run_once, record_result):
    result = run_once(lambda: fig20_energy.run(ctx))
    record_result(result)
    avg = result.rows[-1]
    assert avg["baseline"] == 1.0
    # PATU's reduction in the paper's neighbourhood.
    assert 0.04 < 1.0 - avg["patu"] < 0.35
    # LOD reuse costs a little extra energy vs the combined design.
    assert avg["patu"] >= avg["afssim_n_txds"] - 1e-9
    for row in result.rows[:-1]:
        assert row["patu"] <= 1.0 + 1e-9
