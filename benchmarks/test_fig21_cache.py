"""Bench: regenerate Fig. 21 (cache-sensitivity study).

Paper shape to hold: scaling caches alone barely helps (rendering
streams texture data); adding PATU helps at every cache point and its
benefit does not shrink as the LLC grows — the designs are orthogonal.
"""

from repro.experiments import fig21_cache


def test_fig21_cache(ctx, run_once, record_result):
    result = run_once(lambda: fig21_cache.run(ctx))
    record_result(result)
    avg = result.rows[-1]

    # Capacity alone: modest gains (well under PATU's).
    for label in ("2xLLC", "4xLLC", "2xTC+4xLLC"):
        assert 1.0 - 1e-9 <= avg[label] < 1.25

    # PATU adds a clear speedup at every cache configuration.
    for label in ("1x", "2xLLC", "4xLLC", "2xTC+4xLLC"):
        assert avg[f"{label}+PATU"] > avg[label] + 0.01

    # Orthogonality: PATU's multiplicative benefit holds as LLC grows.
    gain_1x = avg["1x+PATU"] / avg["1x"]
    gain_4x = avg["4xLLC+PATU"] / avg["4xLLC"]
    assert gain_4x > 0.8 * gain_1x
