"""Bench: regenerate Fig. 22 (user satisfaction over thresholds).

Paper shape to hold: PATU's intermediate thresholds score at least as
well as both extremes (AF always-on at 1.0, AF-off at 0.0), and
high-resolution replays prefer lower thresholds than low-resolution
ones.
"""

from repro.experiments import fig22_user_study


def test_fig22_user_study(ctx, run_once, record_result):
    result = run_once(lambda: fig22_user_study.run(ctx))
    record_result(result)
    rows = {(r["workload"], r["threshold"]): r for r in result.rows}

    for name in fig22_user_study.WORKLOADS:
        best = result.preferred[name]
        score_best = rows[(name, best)]["score"]
        score_off = rows[(name, 0.0)]["score"]
        score_base = rows[(name, 1.0)]["score"]
        assert score_best >= score_off - 1e-9
        assert score_best >= score_base - 1e-9
        # All scores in the 1-5 instrument range.
        for t in fig22_user_study.THRESHOLDS:
            assert 1.0 <= rows[(name, t)]["score"] <= 5.0

    # Resolution preference trend (paper observation 1 vs 2).
    assert (
        result.preferred["doom3-1280x1024"]
        <= result.preferred["doom3-640x480"] + 1e-9
    )
