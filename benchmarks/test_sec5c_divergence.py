"""Bench: regenerate the Sec. V-C quad-divergence statistic.

Paper shape to hold: only ~1% of quads (up to 1.6%) diverge in their
PATU approximation decisions.
"""

from repro.experiments import sec5c_divergence


def test_sec5c_divergence(ctx, run_once, record_result):
    result = run_once(lambda: sec5c_divergence.run(ctx))
    record_result(result)
    avg = result.rows[-1]["quad_divergence"]
    assert avg < 0.03  # paper: ~1% average
    for row in result.rows[:-1]:
        assert row["quad_divergence"] < 0.06  # paper max: 1.6%
