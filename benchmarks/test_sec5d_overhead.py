"""Bench: regenerate the Sec. V-D PATU hardware-overhead numbers."""

import pytest

from repro.experiments import sec5d_overhead


def test_sec5d_overhead(run_once, record_result):
    result = run_once(lambda: sec5d_overhead.run())
    record_result(result)
    values = {r["quantity"]: r["value"] for r in result.rows}
    assert values["hash table entries"] == 16
    assert values["bits per entry"] == 260
    assert values["SRAM per texture unit (KB)"] == pytest.approx(2.03, abs=0.01)
    assert values["area per cluster (mm^2)"] == pytest.approx(0.15, abs=0.02)
    assert float(values["fraction of 66 mm^2 GPU"].rstrip("%")) < 1.0
