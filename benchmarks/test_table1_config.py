"""Bench: regenerate Table I (simulator configuration)."""

from repro.experiments import table1_config


def test_table1_config(run_once, record_result):
    result = run_once(lambda: table1_config.run())
    record_result(result)
    labels = [r["parameter"] for r in result.rows]
    assert labels[0] == "Frequency"
    assert len(labels) == 10
