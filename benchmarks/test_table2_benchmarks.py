"""Bench: regenerate Table II (benchmark list)."""

from repro.experiments import table2_benchmarks


def test_table2_benchmarks(run_once, record_result):
    result = run_once(lambda: table2_benchmarks.run())
    record_result(result)
    assert len(result.rows) == 11
    names = {r["abbr"] for r in result.rows}
    assert names == {"HL2", "doom3", "grid", "nfs", "stal", "Ut3", "wolf"}
