#!/usr/bin/env python
"""Adaptive quality control: hold a MSSIM target across a replay.

The paper's threshold is a static knob ("either tuned by users'
experience or set to a static optimal value", Section VII-A). This demo
runs the natural runtime extension from ``repro.core.tuning``: a
closed-loop controller that measures each frame's MSSIM and nudges the
threshold toward a quality target, trading speed for quality only when
the content demands it.

Usage::

    python examples/adaptive_quality.py [--target 0.99]
"""

from __future__ import annotations

import argparse

from repro import RenderSession, get_workload
from repro.core.tuning import AdaptiveThresholdController, threshold_for_quality


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="HL2-1280x1024")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--target", type=float, default=0.99)
    parser.add_argument("--frames", type=int, default=6)
    args = parser.parse_args()

    session = RenderSession(scale=args.scale)
    workload = get_workload(args.workload)
    captures = [
        session.capture_frame(workload, f % workload.num_frames)
        for f in range(args.frames)
    ]

    # Static answer first: the one threshold meeting the target on frame 0.
    static = threshold_for_quality(session, captures[0], args.target,
                                   tolerance=0.05)
    print(f"Static threshold meeting MSSIM >= {args.target} on frame 0: "
          f"{static:.2f}\n")

    controller = AdaptiveThresholdController(
        target_mssim=args.target, initial_threshold=0.0, gain=3.0
    )
    points = controller.run(session, captures)
    print(f"{'frame':>5} {'threshold':>10} {'speedup':>8} {'MSSIM':>7}")
    for i, p in enumerate(points):
        print(f"{i:>5} {p.threshold:>10.2f} {p.speedup:>7.2f}x {p.mssim:>7.3f}")
    final_err = abs(points[-1].mssim - args.target)
    print(f"\nController settled within {final_err:.3f} of the target while "
          f"keeping a {points[-1].speedup:.2f}x speedup.")


if __name__ == "__main__":
    main()
