#!/usr/bin/env python
"""Capture workflow: render once, save, sweep design points later.

Rendering is the expensive half of every experiment; evaluations are
cheap post-processing. This demo renders a frame, serializes the
capture to disk (`repro.renderer.serialization`), reloads it in a
"second session" and sweeps thresholds against the loaded capture —
the workflow for studying design points without re-rendering (or for
rendering on one machine and analyzing on another).

Usage::

    python examples/capture_workflow.py [--path capture.npz]
"""

from __future__ import annotations

import argparse
import os
import time

from repro import RenderSession, SCENARIOS, get_workload
from repro.renderer.serialization import load_capture, save_capture


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="doom3-1280x1024")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--path", default="capture.npz")
    args = parser.parse_args()

    session = RenderSession(scale=args.scale)
    workload = get_workload(args.workload)

    t0 = time.time()
    capture = session.capture_frame(workload, 0)
    render_seconds = time.time() - t0
    path = save_capture(args.path, capture)
    size_kb = os.path.getsize(path) / 1024
    print(f"Rendered {workload.name} in {render_seconds:.2f}s and saved "
          f"{capture.num_pixels} pixels of capture state to {path} "
          f"({size_kb:.0f} KiB)\n")

    # A fresh session (imagine a different machine) reloads and sweeps.
    analyzer = RenderSession(scale=args.scale)
    loaded = load_capture(path)
    baseline = analyzer.evaluate(loaded, SCENARIOS["baseline"], 1.0)
    print(f"{'threshold':>9} {'speedup':>8} {'MSSIM':>7} {'eval time':>10}")
    for threshold in (0.0, 0.2, 0.4, 0.6, 0.8):
        t0 = time.time()
        r = analyzer.evaluate(loaded, SCENARIOS["patu"], threshold)
        dt = time.time() - t0
        print(f"{threshold:>9.1f} {baseline.frame_cycles / r.frame_cycles:>7.2f}x "
              f"{r.mssim:>7.3f} {dt:>9.2f}s")
    print("\nEach design point costs a fraction of the render it reuses.")


if __name__ == "__main__":
    main()
