#!/usr/bin/env python
"""Game showcase: run PATU across every Table II configuration.

Reproduces the per-game rows of Figs. 18-20 in one table: speedup,
MSSIM, energy and texture-latency reduction of PATU at the default
threshold for all 11 game/resolution configurations, highlighting the
paper's resolution trend (higher resolutions gain more).

Usage::

    python examples/game_showcase.py [--scale 0.2] [--frames 1]
"""

from __future__ import annotations

import argparse

from repro import RenderSession, SCENARIOS, get_workload, workload_names


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--frames", type=int, default=1)
    parser.add_argument("--threshold", type=float, default=0.4)
    args = parser.parse_args()

    session = RenderSession(scale=args.scale)
    print(f"{'workload':<18}{'N':>6}{'speedup':>9}{'MSSIM':>8}"
          f"{'energy red.':>13}{'latency red.':>14}")
    for name in workload_names():
        workload = get_workload(name)
        speed = quality = energy = latency = aniso = 0.0
        for frame in range(args.frames):
            capture = session.capture_frame(workload, frame)
            base = session.evaluate(capture, SCENARIOS["baseline"], 1.0)
            patu = session.evaluate(capture, SCENARIOS["patu"], args.threshold)
            speed += base.frame_cycles / patu.frame_cycles / args.frames
            quality += patu.mssim / args.frames
            energy += (1 - patu.total_energy_nj / base.total_energy_nj) / args.frames
            latency += (1 - patu.request_latency / base.request_latency) / args.frames
            aniso += capture.mean_anisotropy / args.frames
        print(f"{name:<18}{aniso:>6.2f}{speed:>8.2f}x{quality:>8.3f}"
              f"{energy:>12.1%}{latency:>13.1%}")
    print("\nPaper reference (averages): 17% speedup, 93% MSSIM, "
          "11% energy reduction, 29% texture-latency reduction.")


if __name__ == "__main__":
    main()
