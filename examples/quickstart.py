#!/usr/bin/env python
"""Quickstart: render one game frame and compare PATU against baseline AF.

Runs the whole stack on a single Half-Life 2 frame: capture the frame
once, then evaluate the four design points of the paper (baseline 16x
AF, AF-SSIM(N), AF-SSIM(N)+(Txds), full PATU) at the default threshold
0.4 and print the Fig. 18/19/20-style comparison.

Usage::

    python examples/quickstart.py [--scale 0.25] [--workload HL2-1600x1200]
"""

from __future__ import annotations

import argparse

from repro import RenderSession, SCENARIOS, get_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="HL2-1600x1200")
    parser.add_argument("--scale", type=float, default=0.25,
                        help="render-resolution scale factor")
    parser.add_argument("--threshold", type=float, default=0.4,
                        help="unified AF-SSIM threshold (paper default: 0.4)")
    args = parser.parse_args()

    session = RenderSession(scale=args.scale)
    workload = get_workload(args.workload)
    print(f"Rendering {workload.name} at scale {args.scale} "
          f"({workload.scaled_size(args.scale)[0]}x"
          f"{workload.scaled_size(args.scale)[1]} pixels)...")
    capture = session.capture_frame(workload, frame_index=0)
    print(f"  {capture.num_pixels} visible pixels, "
          f"mean anisotropy N = {capture.mean_anisotropy:.2f}, "
          f"mean Txds = {capture.txds.mean():.2f}")

    baseline = session.evaluate(capture, SCENARIOS["baseline"], 1.0)
    print(f"\n{'design':<20}{'speedup':>9}{'MSSIM':>8}{'energy':>8}"
          f"{'tex latency':>13}{'approx':>8}")
    for name in ("baseline", "afssim_n", "afssim_n_txds", "patu"):
        threshold = 1.0 if name == "baseline" else args.threshold
        r = session.evaluate(capture, SCENARIOS[name], threshold)
        print(
            f"{SCENARIOS[name].label:<20}"
            f"{baseline.frame_cycles / r.frame_cycles:>8.2f}x"
            f"{r.mssim:>8.3f}"
            f"{r.total_energy_nj / baseline.total_energy_nj:>8.2f}"
            f"{r.request_latency / baseline.request_latency:>12.2f}x"
            f"{r.approximation_rate:>8.1%}"
        )
    print("\n(speedup/energy/latency are relative to the 16x-AF baseline;"
          " MSSIM is measured against the baseline image)")


if __name__ == "__main__":
    main()
