#!/usr/bin/env python
"""SSIM map demo: regenerate the three panels of Fig. 8 as PGM images.

Renders the HL2 frame with AF on and off, computes the per-pixel SSIM
index map between the two, and writes three grayscale PGM files
(viewable with any image tool) plus the summary statistics: lighter
areas of the map are pixels whose perceived quality does not depend on
AF — the approximation opportunity PATU exploits.

Usage::

    python examples/ssim_map_demo.py [--out-dir fig8_out]
"""

from __future__ import annotations

import argparse
import pathlib

from repro import RenderSession, get_workload
from repro.quality.imageio import write_pgm
from repro.quality.ssim import ssim_map


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="HL2-1600x1200")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--out-dir", default="fig8_out")
    args = parser.parse_args()

    out = pathlib.Path(args.out_dir)
    out.mkdir(exist_ok=True)

    session = RenderSession(scale=args.scale)
    capture = session.capture_frame(get_workload(args.workload), 0)
    af_on = capture.baseline_luminance
    af_off = capture.luminance_image(capture.tf_color)
    index_map = ssim_map(af_off, af_on)

    write_pgm(out / "af_on.pgm", af_on)
    write_pgm(out / "af_off.pgm", af_off)
    # Map SSIM [-1, 1] to [0, 1] for display (lighter = more similar).
    write_pgm(out / "ssim_map.pgm", (index_map + 1.0) / 2.0)

    high = float((index_map >= 0.9).mean())
    print(f"Wrote {out}/af_on.pgm, af_off.pgm, ssim_map.pgm")
    print(f"MSSIM (AF off vs on): {index_map.mean():.3f}")
    print(f"Pixels with SSIM >= 0.9 without AF: {high:.1%}")
    print("Paper: 'more than half of the pixels ... still exhibit high"
          " perceived quality without AF' — the motivation for PATU.")


if __name__ == "__main__":
    main()
