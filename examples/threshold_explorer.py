#!/usr/bin/env python
"""Threshold explorer: the Fig. 17 performance-quality tuning space.

Sweeps the unified AF-SSIM threshold for one game and prints the
speedup/MSSIM curve plus the best point (argmax of speedup x MSSIM),
rendering the "X"-shaped tradeoff as an ASCII chart.

Usage::

    python examples/threshold_explorer.py [--workload doom3-1280x1024]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro import RenderSession, SCENARIOS, get_workload


def _bar(value: float, lo: float, hi: float, width: int = 30) -> str:
    if hi <= lo:
        return ""
    frac = (value - lo) / (hi - lo)
    return "#" * max(int(round(frac * width)), 0)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="doom3-1280x1024")
    parser.add_argument("--scale", type=float, default=0.25)
    args = parser.parse_args()

    session = RenderSession(scale=args.scale)
    workload = get_workload(args.workload)
    capture = session.capture_frame(workload, 0)
    baseline = session.evaluate(capture, SCENARIOS["baseline"], 1.0)

    thresholds = np.round(np.arange(0.0, 1.01, 0.1), 1)
    points = []
    for t in thresholds:
        r = session.evaluate(capture, SCENARIOS["patu"], float(t))
        points.append((float(t), baseline.frame_cycles / r.frame_cycles, r.mssim))

    speeds = [p[1] for p in points]
    best = max(points, key=lambda p: p[1] * p[2])
    print(f"Threshold sweep for {workload.name} (PATU design):\n")
    print(f"{'thr':>4} {'speedup':>8} {'MSSIM':>7}  speedup curve")
    for t, speed, quality in points:
        marker = "  <- BP" if t == best[0] else ""
        print(f"{t:>4.1f} {speed:>7.2f}x {quality:>7.3f}  "
              f"{_bar(speed, min(speeds), max(speeds)):<30}{marker}")
    print(f"\nBest point: threshold {best[0]:.1f} "
          f"({best[1]:.2f}x speedup at {best[2]:.1%} MSSIM)")
    print("Paper: BPs lie strictly inside (0, 1) for most games; the"
          " average BP across games is 0.4.")


if __name__ == "__main__":
    main()
