#!/usr/bin/env python
"""User-study demo: the Fig. 22 satisfaction-vs-threshold experiment.

Builds vsync-paced replays of a game at several PATU thresholds, runs
them past the simulated 30-participant population, and prints the mean
satisfaction scores — showing that intermediate thresholds beat both
always-on AF and no AF.

Usage::

    python examples/user_study_demo.py [--workload doom3-1280x1024]
"""

from __future__ import annotations

import argparse

from repro import RenderSession, SCENARIOS, get_workload
from repro.replay.vsync import (
    VsyncSimulator,
    frame_complexity,
    nominal_frame_cycles,
)
from repro.study.users import UserStudy


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="doom3-1280x1024")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--frames", type=int, default=6)
    parser.add_argument("--participants", type=int, default=30)
    args = parser.parse_args()

    session = RenderSession(scale=args.scale)
    workload = get_workload(args.workload)
    study = UserStudy(num_participants=args.participants)
    vsync = VsyncSimulator()

    captures = [session.capture_frame(workload, f) for f in range(args.frames)]
    print(f"Replaying {workload.name}: {args.frames} frames, "
          f"{args.participants} simulated participants\n")
    print(f"{'threshold':>9} {'fps':>6} {'lag':>6} {'MSSIM':>7} "
          f"{'score':>6}  histogram")

    best = (0.0, None)
    for threshold in (0.0, 0.2, 0.4, 0.6, 0.8, 1.0):
        scenario = SCENARIOS["baseline" if threshold == 1.0 else "patu"]
        cycles = []
        quality = 0.0
        for frame, capture in enumerate(captures):
            r = session.evaluate(capture, scenario, threshold)
            cycles.append(
                nominal_frame_cycles(
                    r.frame_cycles, args.scale, frame_complexity(frame)
                )
            )
            quality += r.mssim / len(captures)
        stats = vsync.replay(cycles)
        result = study.evaluate(quality, stats.average_fps, stats.lag_fraction)
        bar = "*" * int(round(result.mean_score * 6))
        print(f"{threshold:>9.1f} {stats.average_fps:>6.1f} "
              f"{stats.lag_fraction:>6.1%} {quality:>7.3f} "
              f"{result.mean_score:>6.2f}  {bar}")
        if result.mean_score > best[0]:
            best = (result.mean_score, threshold)

    print(f"\nPreferred threshold: {best[1]:.1f} "
          f"(mean satisfaction {best[0]:.2f}/5)")
    print("Paper: users prefer PATU's intermediate thresholds over both"
          " the AF-on baseline and disabling AF; high resolutions favour"
          " lower thresholds.")


if __name__ == "__main__":
    main()
