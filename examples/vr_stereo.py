#!/usr/bin/env python
"""VR stereo demo: PATU on a multi-view workload.

Renders left/right eye pairs of a game (the paper's simulator
integration includes multi-view VR, Section VI) and shows that PATU's
approximation decisions and speedups agree across the two eyes — the
precondition for applying it to stereo headset rendering.

Usage::

    python examples/vr_stereo.py [--workload doom3-1280x1024]
"""

from __future__ import annotations

import argparse

from repro import RenderSession, SCENARIOS
from repro.workloads.vr import vr_workload


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--workload", default="doom3-1280x1024")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--steps", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=0.4)
    args = parser.parse_args()

    session = RenderSession(scale=args.scale)
    stereo = vr_workload(args.workload, time_steps=args.steps)
    print(f"Stereo workload {stereo.name}: {stereo.num_frames} views "
          f"({args.steps} time steps x 2 eyes)\n")
    print(f"{'view':>10} {'N':>6} {'approx':>8} {'speedup':>9} {'MSSIM':>7}")
    for frame in range(stereo.num_frames):
        eye = "left" if frame % 2 == 0 else "right"
        capture = session.capture_frame(stereo, frame)
        base = session.evaluate(capture, SCENARIOS["baseline"], 1.0)
        r = session.evaluate(capture, SCENARIOS["patu"], args.threshold)
        print(f"t{frame // 2}-{eye:<6} {capture.mean_anisotropy:>6.2f} "
              f"{r.approximation_rate:>8.1%} "
              f"{base.frame_cycles / r.frame_cycles:>8.2f}x {r.mssim:>7.3f}")
    print("\nBoth eyes see near-identical anisotropy and approximation"
          " opportunity: PATU transfers to multi-view rendering unchanged.")


if __name__ == "__main__":
    main()
