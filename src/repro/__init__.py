"""repro — reproduction of "Perception-Oriented 3D Rendering Approximation
for Modern Graphics Processors" (HPCA 2018).

Public API quick tour::

    from repro import RenderSession, SCENARIOS, get_workload

    session = RenderSession(scale=0.25)
    capture = session.capture_frame(get_workload("HL2-1600x1200"), frame_index=0)
    result = session.evaluate(capture, SCENARIOS["patu"], threshold=0.4)
    print(result.mssim, result.fps, result.approximation_rate)

Subpackages:

* :mod:`repro.core` — AF-SSIM prediction, hash table, PATU (the paper's
  contribution).
* :mod:`repro.geometry`, :mod:`repro.raster`, :mod:`repro.texture` —
  the rasterization GPU pipeline substrate.
* :mod:`repro.memsys`, :mod:`repro.timing`, :mod:`repro.power` — the
  architecture models (caches/DRAM, cycles, energy/area).
* :mod:`repro.quality` — SSIM/MSSIM image-quality analysis.
* :mod:`repro.workloads` — the Table II game scenes and R.Bench.
* :mod:`repro.renderer` — the end-to-end render/evaluate session.
* :mod:`repro.replay`, :mod:`repro.study` — vsync replay + user study.
* :mod:`repro.experiments` — one module per paper table/figure.
"""

from .config import BASELINE_CONFIG, GpuConfig, MAX_ANISOTROPY
from .core import SCENARIOS, PerceptionAwareTextureUnit, af_ssim_n, af_ssim_txds
from .errors import ReproError
from .renderer import FrameCapture, FrameResult, RenderSession
from .workloads import GAME_WORKLOADS, get_workload, rbench_workload, workload_names

__version__ = "1.0.0"

__all__ = [
    "BASELINE_CONFIG",
    "FrameCapture",
    "FrameResult",
    "GAME_WORKLOADS",
    "GpuConfig",
    "MAX_ANISOTROPY",
    "PerceptionAwareTextureUnit",
    "RenderSession",
    "ReproError",
    "SCENARIOS",
    "af_ssim_n",
    "af_ssim_txds",
    "get_workload",
    "rbench_workload",
    "workload_names",
    "__version__",
]
