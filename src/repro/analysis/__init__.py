"""Result analysis: headline-claim extraction and report generation.

Turns a set of :class:`~repro.experiments.runner.ExperimentResult`
objects into (a) a structured comparison against the paper's headline
numbers and (b) a markdown report — the programmatic counterpart of
EXPERIMENTS.md.
"""

from .claims import Claim, PAPER_CLAIMS, evaluate_claims
from .report import build_report, run_all

__all__ = ["Claim", "PAPER_CLAIMS", "build_report", "evaluate_claims", "run_all"]
