"""The paper's headline claims, as checkable predicates over results.

Each :class:`Claim` names the paper's number, how to extract the
measured counterpart from the experiment results, and the acceptance
band within which the reproduction counts as matching the claim's
*shape*. The bands are deliberately wide — see EXPERIMENTS.md for why
magnitudes can differ — but every claim still has a falsifiable
direction (a sign, an ordering, or a ratio range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from ..errors import ExperimentError
from ..experiments.runner import ExperimentResult

#: Extractor: experiment-id -> result mapping, returns the measured value.
Extractor = Callable[[dict], float]


@dataclass(frozen=True)
class Claim:
    """One falsifiable headline claim."""

    name: str
    paper_value: float
    lo: float
    hi: float
    experiment: str
    extract: Extractor

    def measure(self, results: "dict[str, ExperimentResult]") -> float:
        if self.experiment not in results:
            raise ExperimentError(
                f"claim {self.name!r} needs experiment {self.experiment!r}"
            )
        return float(self.extract(results))

    def holds(self, results: "dict[str, ExperimentResult]") -> bool:
        return self.lo <= self.measure(results) <= self.hi


def _avg_row(results, experiment):
    rows = results[experiment].rows
    for row in rows:
        if row.get("workload") == "average":
            return row
    raise ExperimentError(f"{experiment} has no average row")


PAPER_CLAIMS: "tuple[Claim, ...]" = (
    Claim(
        name="AF-off speedup (Fig. 5)",
        paper_value=1.41, lo=1.15, hi=1.9,
        experiment="fig5",
        extract=lambda r: _avg_row(r, "fig5")["speedup"],
    ),
    Claim(
        name="AF-off energy reduction (Fig. 5)",
        paper_value=0.28, lo=0.1, hi=0.5,
        experiment="fig5",
        extract=lambda r: _avg_row(r, "fig5")["energy_reduction"],
    ),
    Claim(
        name="AF-off quality loss (Fig. 7)",
        paper_value=0.28, lo=0.02, hi=0.45,
        experiment="fig7",
        extract=lambda r: _avg_row(r, "fig7")["quality_loss"],
    ),
    Claim(
        name="texel-set sharing (Fig. 12)",
        paper_value=0.62, lo=0.35, hi=0.85,
        experiment="fig12",
        extract=lambda r: _avg_row(r, "fig12")["sharing_fraction"],
    ),
    Claim(
        name="PATU speedup @0.4 (Fig. 19)",
        paper_value=1.17, lo=1.03, hi=1.45,
        experiment="fig19",
        extract=lambda r: _avg_row(r, "fig19")["patu_speedup"],
    ),
    Claim(
        name="PATU MSSIM @0.4 (Fig. 19)",
        paper_value=0.93, lo=0.90, hi=1.0,
        experiment="fig19",
        extract=lambda r: _avg_row(r, "fig19")["patu_mssim"],
    ),
    Claim(
        name="PATU energy reduction (Fig. 20)",
        paper_value=0.11, lo=0.04, hi=0.35,
        experiment="fig20",
        extract=lambda r: 1.0 - _avg_row(r, "fig20")["patu"],
    ),
    Claim(
        name="PATU filtering-latency reduction (Fig. 18)",
        paper_value=0.29, lo=0.10, hi=0.55,
        experiment="fig18",
        extract=lambda r: 1.0 - _avg_row(r, "fig18")["patu"],
    ),
    Claim(
        name="quad divergence (Sec. V-C)",
        paper_value=0.01, lo=0.0, hi=0.03,
        experiment="sec5c",
        extract=lambda r: _avg_row(r, "sec5c")["quad_divergence"],
    ),
)


@dataclass(frozen=True)
class ClaimOutcome:
    """Evaluation of one claim against a result set."""

    claim: Claim
    measured: float
    holds: bool


def evaluate_claims(
    results: "dict[str, ExperimentResult]",
    claims: "tuple[Claim, ...]" = PAPER_CLAIMS,
) -> "list[ClaimOutcome]":
    """Check every claim whose experiment is present in ``results``."""
    outcomes = []
    for claim in claims:
        if claim.experiment not in results:
            continue
        measured = claim.measure(results)
        outcomes.append(
            ClaimOutcome(
                claim=claim,
                measured=measured,
                holds=claim.lo <= measured <= claim.hi,
            )
        )
    return outcomes
