"""Dependency-free ASCII charts for experiment results.

The paper's figures are line/bar charts; these helpers render their
reproduction counterparts directly in a terminal (used by the CLI's
``experiment --plot`` flag and handy in notebooks without matplotlib).
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError

#: Marker characters assigned to series in order.
_MARKERS = "ox+*#@%&"


def line_chart(
    x: "list[float]",
    series: "dict[str, list[float]]",
    *,
    width: int = 60,
    height: int = 16,
    title: str = "",
    y_label: str = "",
) -> str:
    """Render one or more y(x) series as an ASCII chart.

    All series share the x grid; y axes are scaled to the joint range.
    """
    if not series:
        raise ReproError("need at least one series")
    if width < 10 or height < 4:
        raise ReproError("chart must be at least 10x4")
    xs = np.asarray(x, dtype=np.float64)
    if xs.size < 2:
        raise ReproError("need at least two x values")
    for name, ys in series.items():
        if len(ys) != xs.size:
            raise ReproError(f"series {name!r} length mismatch")

    all_y = np.concatenate([np.asarray(v, dtype=np.float64) for v in series.values()])
    y_lo, y_hi = float(all_y.min()), float(all_y.max())
    if y_hi - y_lo < 1e-12:
        y_hi = y_lo + 1.0
    x_lo, x_hi = float(xs.min()), float(xs.max())

    grid = [[" "] * width for _ in range(height)]
    for si, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[si % len(_MARKERS)]
        for xv, yv in zip(xs, np.asarray(ys, dtype=np.float64)):
            col = int(round((xv - x_lo) / (x_hi - x_lo) * (width - 1)))
            row = int(round((yv - y_lo) / (y_hi - y_lo) * (height - 1)))
            grid[height - 1 - row][col] = marker

    lines = []
    if title:
        lines.append(title)
    lines.append(f"{y_hi:10.3f} +" + "-" * width + "+")
    for i, row in enumerate(grid):
        prefix = y_label.rjust(10) if (y_label and i == height // 2) else " " * 10
        lines.append(prefix + " |" + "".join(row) + "|")
    lines.append(f"{y_lo:10.3f} +" + "-" * width + "+")
    lines.append(" " * 12 + f"{x_lo:<.2f}".ljust(width // 2)
                 + f"{x_hi:>.2f}".rjust(width // 2))
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def bar_chart(
    labels: "list[str]",
    values: "list[float]",
    *,
    width: int = 40,
    title: str = "",
    baseline: "float | None" = None,
) -> str:
    """Render labelled horizontal bars; optionally mark a baseline value."""
    if len(labels) != len(values):
        raise ReproError("labels and values length mismatch")
    if not labels:
        raise ReproError("need at least one bar")
    vals = np.asarray(values, dtype=np.float64)
    v_max = float(max(vals.max(), baseline or 0.0))
    if v_max <= 0:
        raise ReproError("bar chart needs positive values")
    label_w = max(len(label) for label in labels)
    lines = [title] if title else []
    for label, value in zip(labels, vals):
        bar = "#" * max(int(round(value / v_max * width)), 0)
        line = f"{label.rjust(label_w)} |{bar:<{width}}| {value:.3f}"
        if baseline is not None:
            mark = min(int(round(baseline / v_max * width)), width - 1)
            chars = list(line)
            pos = label_w + 2 + mark
            if 0 <= pos < len(chars) and chars[pos] == " ":
                chars[pos] = ":"
            line = "".join(chars)
        lines.append(line)
    return "\n".join(lines)
