"""Command-line interface: ``python -m repro <command>``.

Subcommands:

* ``list`` — available workloads and experiment ids.
* ``experiment <id>`` — run one paper table/figure reproduction and
  print its table (optionally at a custom scale / frame count).
* ``render <workload>`` — render a frame under a design point and
  write the color image (PPM), the baseline image and the SSIM map
  (PGM) to a directory.
* ``compare <workload>`` — the quickstart comparison of all four
  design scenarios on one frame.
* ``profile <workload>`` — render N frames with telemetry on, print a
  per-stage time/counter table and write ``trace.json`` (Perfetto /
  ``chrome://tracing``) plus ``metrics.jsonl`` (one record per frame).
* ``verify`` — run the differential/metamorphic/golden oracle suite
  (``docs/testing.md``), print the per-oracle table and write a JSON
  report; ``--update-goldens`` regenerates changed golden artifacts.
* ``trends`` — analyze the persistent run ledger: compare each
  metric's newest value against a median±MAD band over comparable
  past runs; ``--check`` exits nonzero on flagged regressions.
* ``serve`` — run the render service: an asyncio JSON-lines front-end
  that coalesces concurrent eval/render requests into engine batches
  and executes them on the in-process pool or remote socket workers
  (``docs/architecture.md``, service section).
* ``worker`` — run one remote socket worker that dials into a serve
  parent (normally spawned automatically by ``--backend remote``).
* ``store`` — capture-store maintenance: ``store stats`` reports
  per-shard entry counts/bytes plus the ``.corrupt/`` quarantine,
  ``store prune`` applies the size-bounded LRU eviction offline.

``experiment``/``report``/``profile``/``verify`` append one
schema-versioned record per run to the run ledger (default
``.repro/ledger``, override with ``--ledger DIR``, suppress with
``--no-ledger``) — the history ``trends`` analyzes. See
``docs/observability.md``.

Commands that render (``experiment``/``render``/``compare``/``report``/
``profile``) accept ``--raster {binned,legacy}`` to pick the raster
backend (the sort-middle tiled pipeline is the default; the legacy
per-triangle rasterizer is the bit-identical differential reference)
and ``--tile-size PX`` to tune the binned backend's tile edge.

``experiment``/``render``/``compare``/``report`` accept ``--trace`` and
``--metrics`` to capture the same artifacts for any run, and
``--verbose`` for per-stage progress on stderr. Result tables go to
stdout; informational messages go to stderr, so stdout stays pipeable.

Engine (see ``docs/architecture.md``): ``experiment``/``report`` accept
``--jobs N`` to execute the planned job graph on N worker processes
(tables are byte-identical to serial) and ``--capture-cache DIR`` to
keep rendered frames in a persistent content-addressed store shared
with ``profile`` — a warm store skips every render. Store traffic is
reported on stderr.

Resilience (see ``docs/resilience.md``): ``experiment``/``report``
accept ``--checkpoint PATH`` to persist evaluated design points and
``--resume`` to continue an interrupted sweep (SIGINT flushes the
checkpoint before exiting with status 130); ``--inject-faults`` (with
``--fault-rate``/``--fault-seed``) exercises the graceful-degradation
paths with deterministic corruption. The process backend is
supervised: ``--job-timeout SECONDS`` bounds each worker chunk (300 s
per job by default, 0 disables), and ``--chaos-worker-kill`` /
``--chaos-worker-hang`` / ``--chaos-chunk-corrupt`` inject seeded
process-level failures (killed/hung workers, torn IPC payloads) to
test the supervision layer end-to-end.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
import time

import numpy as np

from .core.patu import FilterMode, PerceptionAwareTextureUnit
from .core.scenarios import SCENARIOS, get_scenario
from .errors import ReproError, WorkloadError
from .experiments import REGISTRY, ExperimentContext
from .experiments.runner import DEFAULT_WORKLOADS, format_table, run_experiment
from .ioutil import atomic_write_text
from .obs import (
    TELEMETRY,
    append_record,
    build_record,
    write_chrome_trace,
    write_metrics_jsonl,
)
from .obs.trends import (
    DEFAULT_EXACT_FLOOR,
    DEFAULT_K,
    DEFAULT_TIME_FLOOR,
    DEFAULT_WINDOW,
)
from .resilience import DEFAULT_MAX_PENDING, FAULTS, FaultPlan
from .quality.imageio import write_pgm, write_ppm
from .quality.ssim import ssim_map
from .renderer.pipeline import DEFAULT_RASTER, DEFAULT_RASTER_TILE, RASTER_MODES
from .renderer.session import RenderSession
from .workloads.games import get_workload, workload_names


def _info(message: str) -> None:
    """Informational output goes to stderr; stdout stays pipeable."""
    print(message, file=sys.stderr)


def _add_session_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.25,
                        help="render-resolution scale factor (default 0.25)")
    parser.add_argument("--raster", choices=RASTER_MODES,
                        default=DEFAULT_RASTER,
                        help="raster backend: 'binned' = sort-middle tiled "
                             "pipeline with hierarchical-Z culling (default), "
                             "'legacy' = per-triangle bounding-box reference")
    parser.add_argument("--tile-size", type=int, default=DEFAULT_RASTER_TILE,
                        dest="raster_tile", metavar="PX",
                        help="binned-raster tile edge in pixels "
                             f"(default {DEFAULT_RASTER_TILE}; see "
                             "docs/performance.md for tuning)")


def _add_engine_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes for planned experiment "
                             "jobs (default 1 = serial, same output)")
    parser.add_argument("--capture-cache", metavar="DIR", default=None,
                        dest="capture_cache",
                        help="persistent capture store directory; "
                             "rendered frames are reused across runs")
    parser.add_argument("--job-timeout", type=float, default=None,
                        dest="job_timeout", metavar="SECONDS",
                        help="per-job wall-clock budget for process-"
                             "backend chunk deadlines (default 300; "
                             "0 disables deadlines)")


def _engine_end(ctx: ExperimentContext) -> None:
    """Report capture-store traffic for the finished run."""
    stats = ctx.capture_store_stats()
    if stats is not None:
        _info(f"capture store: {stats}")
        _note(store={
            "hits": stats.hits,
            "misses": stats.misses,
            "writes": stats.writes,
            "corrupt": stats.corrupt,
        })


# -- run ledger (see repro.obs.ledger) ---------------------------------

#: CLI commands that append a ledger record, mapped to the record kind.
_LEDGER_KINDS = {
    "experiment": "experiment",
    "report": "report",
    "profile": "profile",
    "verify": "verify",
}

#: Parsed-args entries that change where artifacts land but not what
#: the run computes — excluded from the ledger's config digest so
#: re-runs into different output paths stay trend-comparable.
_NON_SHAPING_ARGS = frozenset({
    "command", "out", "plot", "trace", "metrics", "emit_metrics",
    "verbose", "ledger", "no_ledger", "capture_cache", "checkpoint",
    "resume", "report", "quality_maps", "fuzz_save",
})

#: Facts a handler stashes for the ledger record written in ``main``'s
#: finally block (currently: capture-store traffic).
_RUN_NOTES: "dict[str, object]" = {}


def _note(**fields) -> None:
    _RUN_NOTES.update(fields)


def _add_ledger_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--ledger", metavar="DIR", default=None,
                        help="run-ledger directory (default .repro/ledger)")
    parser.add_argument("--no-ledger", action="store_true", dest="no_ledger",
                        help="skip appending a run record to the ledger")


def _ledger_active(args) -> bool:
    return (
        getattr(args, "command", None) in _LEDGER_KINDS
        and not getattr(args, "no_ledger", False)
    )


def _ledger_config(args) -> "dict[str, object]":
    return {
        name: value
        for name, value in sorted(vars(args).items())
        if name not in _NON_SHAPING_ARGS
    }


def _ledger_end(args, argv, rc: int, started: float) -> None:
    """Append this run's record to the ledger (never fails the run)."""
    if not _ledger_active(args):
        return
    kind = _LEDGER_KINDS[args.command]
    command = "repro " + " ".join(
        argv if argv is not None else sys.argv[1:]
    )
    try:
        record = build_record(
            kind,
            command=command,
            config=_ledger_config(args),
            duration_s=time.perf_counter() - started,
            exit_status=rc,
            telemetry=TELEMETRY if TELEMETRY.enabled else None,
            store=_RUN_NOTES.get("store"),
        )
        path = append_record(record, getattr(args, "ledger", None))
    except Exception as exc:  # noqa: BLE001 — the run itself succeeded
        print(f"warning: could not append ledger record: {exc}",
              file=sys.stderr)
        return
    _info(f"ledger: {kind} record appended to {path}")


def _add_obs_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--trace", metavar="PATH", default=None,
                        help="write a Chrome/Perfetto trace JSON here")
    parser.add_argument("--metrics", metavar="PATH", default=None,
                        help="write per-frame metrics JSONL here")
    parser.add_argument("--verbose", action="store_true",
                        help="per-stage progress lines on stderr")


def _add_fault_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--inject-faults", action="store_true",
                        dest="inject_faults",
                        help="enable deterministic fault injection "
                             "(texel/hash/count-tag/fetch corruption)")
    parser.add_argument("--fault-rate", type=float, default=0.01,
                        dest="fault_rate", metavar="RATE",
                        help="per-site fault probability (default 0.01)")
    parser.add_argument("--fault-seed", type=int, default=0,
                        dest="fault_seed", metavar="SEED",
                        help="seed for the fault injector (default 0)")
    parser.add_argument("--chaos-worker-kill", type=float, default=0.0,
                        dest="chaos_worker_kill", metavar="RATE",
                        help="probability a pool worker self-kills "
                             "before a job (process chaos; needs "
                             "--jobs > 1)")
    parser.add_argument("--chaos-worker-hang", type=float, default=0.0,
                        dest="chaos_worker_hang", metavar="RATE",
                        help="probability a pool worker hangs before a "
                             "job (reaped by the chunk deadline)")
    parser.add_argument("--chaos-chunk-corrupt", type=float, default=0.0,
                        dest="chaos_chunk_corrupt", metavar="RATE",
                        help="probability a chunk's IPC result payload "
                             "is truncated/garbled")


def _add_checkpoint_args(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--checkpoint", metavar="PATH", default=None,
                        help="persist evaluated design points here "
                             "(atomic, versioned JSON)")
    parser.add_argument("--resume", action="store_true",
                        help="load the checkpoint before running; "
                             "already-evaluated points are skipped")


DEFAULT_CHECKPOINT = "repro-checkpoint.json"


def _checkpoint_path(args) -> "str | None":
    """Resolve the checkpoint path: --resume implies the default path."""
    path = getattr(args, "checkpoint", None)
    if path is None and getattr(args, "resume", False):
        path = DEFAULT_CHECKPOINT
    return path


def _chaos_rates(args) -> "tuple[float, float, float]":
    return (
        getattr(args, "chaos_worker_kill", 0.0),
        getattr(args, "chaos_worker_hang", 0.0),
        getattr(args, "chaos_chunk_corrupt", 0.0),
    )


def _faults_begin(args) -> None:
    """Arm the fault injector from the parsed flags."""
    kill, hang, corrupt = _chaos_rates(args)
    data_faults = getattr(args, "inject_faults", False)
    if not (data_faults or kill or hang or corrupt):
        return
    # Degradation counters live in telemetry; a faulted run without
    # --trace/--metrics still wants them, so arm telemetry too.
    if not TELEMETRY.enabled:
        TELEMETRY.reset()
        TELEMETRY.enabled = True
    rate = args.fault_rate if data_faults else 0.0
    FAULTS.configure(
        FaultPlan.uniform(rate, seed=args.fault_seed).with_chaos(
            kill=kill, hang=hang, corrupt=corrupt
        )
    )
    if data_faults:
        _info(f"fault injection on: rate {args.fault_rate:g}, "
              f"seed {args.fault_seed}")
    if kill or hang or corrupt:
        _info(f"process chaos on: kill {kill:g}, hang {hang:g}, "
              f"chunk-corrupt {corrupt:g}, seed {args.fault_seed}")


def _faults_end(args) -> None:
    """Report what the injector did, then disarm it."""
    kill, hang, corrupt = _chaos_rates(args)
    armed = getattr(args, "inject_faults", False) or kill or hang or corrupt
    if armed and FAULTS.enabled:
        if getattr(args, "inject_faults", False):
            degraded = TELEMETRY.counter_value("resilience.degraded_pixels")
            fallback = TELEMETRY.counter_value("resilience.fallback_af_pixels")
            _info(f"fault injection: {FAULTS.total_injected} fault(s) "
                  f"injected, {degraded:g} pixel prediction(s) degraded, "
                  f"{fallback:g} pixel(s) fell back to exact AF")
        restarts = TELEMETRY.counter_value("resilience.worker_restarts")
        retries = TELEMETRY.counter_value("resilience.chunk_retries")
        quarantined = TELEMETRY.counter_value("resilience.jobs_quarantined")
        if restarts or retries or quarantined:
            _info(f"chaos: {restarts:g} worker restart(s), "
                  f"{retries:g} chunk retry(ies), "
                  f"{quarantined:g} job(s) quarantined")
    FAULTS.disable()


def _resume_begin(args, ctx: ExperimentContext) -> None:
    """Seed the context's metrics cache from the checkpoint, if asked."""
    if getattr(args, "resume", False):
        loaded = ctx.load_checkpoint()
        _info(f"resumed {loaded} design point(s) from {ctx.checkpoint_path}")


def _metrics_path(args) -> "str | None":
    return getattr(args, "metrics", None) or getattr(args, "emit_metrics", None)


def _obs_begin(args) -> None:
    """Arm telemetry / progress reporting from the parsed flags.

    A pending ledger record also arms telemetry: its rollups (stage
    times, counters, quality histograms, per-worker attribution) are
    the record's payload. Stdout output never depends on telemetry,
    so tables stay byte-identical either way.
    """
    if (
        getattr(args, "trace", None)
        or _metrics_path(args)
        or _ledger_active(args)
    ):
        TELEMETRY.reset()
        TELEMETRY.enabled = True
    if getattr(args, "verbose", False):
        TELEMETRY.progress_sink = _info


def _obs_end(args) -> bool:
    """Write requested artifacts, then disarm telemetry.

    Returns False if an artifact could not be written (the run itself
    already finished; the caller maps this to a non-zero exit).
    """
    ok = True
    try:
        trace_path = getattr(args, "trace", None)
        if trace_path and TELEMETRY.enabled:
            try:
                write_chrome_trace(TELEMETRY, trace_path)
                _info(f"wrote trace to {trace_path}")
            except OSError as exc:
                print(f"error: cannot write trace: {exc}", file=sys.stderr)
                ok = False
        metrics_path = _metrics_path(args)
        if metrics_path and TELEMETRY.enabled:
            try:
                write_metrics_jsonl(TELEMETRY.frame_records, metrics_path)
                _info(f"wrote {len(TELEMETRY.frame_records)} frame record(s) "
                      f"to {metrics_path}")
            except OSError as exc:
                print(f"error: cannot write metrics: {exc}", file=sys.stderr)
                ok = False
    finally:
        TELEMETRY.enabled = False
        TELEMETRY.progress_sink = None
    return ok


def _resolve_workload(name: str):
    """Find a workload by exact name, or fuzzily by game abbreviation.

    ``hl2`` (any case) resolves to the smallest-resolution HL2 config,
    so quick profiling runs don't need the full ``HL2-640x480`` name.
    Engine request names (``fuzz@<seed>[:profile]``, ``VR@<steps>:...``,
    ``R.Bench-*``) resolve through the engine's resolver, so generated
    scenarios work everywhere a game name does.
    """
    if "@" in name or name.startswith("R.Bench"):
        from .engine.worker import resolve_workload

        return resolve_workload(name)
    names = workload_names()
    lowered = name.lower()
    for candidate in names:
        if candidate.lower() == lowered:
            return get_workload(candidate)
    matches = [n for n in names if n.split("-", 1)[0].lower() == lowered]
    if matches:
        def pixel_count(workload_name: str) -> int:
            width, height = workload_name.rsplit("-", 1)[1].split("x")
            return int(width) * int(height)

        return get_workload(min(matches, key=pixel_count))
    raise WorkloadError(
        f"unknown workload {name!r}; available: {sorted(names)}"
    )


def _cmd_list(_args) -> int:
    print("Workloads (Table II):")
    for name in workload_names():
        print(f"  {name}")
    print("\nExperiments:")
    for exp_id, module in REGISTRY.items():
        print(f"  {exp_id:<26} {module.TITLE}")
    return 0


def _cmd_experiment(args) -> int:
    if args.id not in REGISTRY:
        print(f"unknown experiment {args.id!r}; run `list` to see ids",
              file=sys.stderr)
        return 2
    workloads = tuple(args.workloads) if args.workloads else DEFAULT_WORKLOADS
    ctx = ExperimentContext(
        scale=args.scale, frames=args.frames, workloads=workloads,
        checkpoint_path=_checkpoint_path(args),
        jobs=args.jobs, capture_cache=args.capture_cache,
        job_timeout=args.job_timeout,
        raster=args.raster, raster_tile=args.raster_tile,
    )
    _resume_begin(args, ctx)
    try:
        result = run_experiment(args.id, REGISTRY[args.id], ctx)
    except KeyboardInterrupt:
        saved = ctx.save_checkpoint()
        if saved is not None:
            _info(f"interrupted; checkpoint flushed to {saved} "
                  "(rerun with --resume to continue)")
        else:
            _info("interrupted (no --checkpoint path; nothing persisted)")
        return 130
    print(format_table(result))
    _engine_end(ctx)
    if result.failures:
        _info(f"{len(result.failures)} isolated failure(s); "
              "see table footer for details")
    if args.plot:
        chart = _plot_result(result)
        if chart:
            print(chart)
        else:
            print("(no plottable structure in this experiment)")
    if args.out:
        path = pathlib.Path(args.out)
        atomic_write_text(path, format_table(result))
        _info(f"wrote {path}")
    return 0


def _plot_result(result) -> "str | None":
    """Best-effort ASCII chart for an experiment's rows."""
    from .analysis.plots import bar_chart, line_chart

    rows = result.rows
    if not rows:
        return None
    avg_rows = [r for r in rows if r.get("workload") == "average"]
    if avg_rows and "threshold" in avg_rows[0]:
        xs = [r["threshold"] for r in avg_rows]
        series = {
            k: [r[k] for r in avg_rows]
            for k in avg_rows[0]
            if k not in ("workload", "threshold")
            and isinstance(avg_rows[0][k], (int, float))
        }
        return line_chart(xs, series, title=f"{result.experiment} (average)")
    if avg_rows:
        numeric = {
            k: v for k, v in avg_rows[-1].items()
            if isinstance(v, (int, float))
        }
        if numeric:
            return bar_chart(
                list(numeric), list(numeric.values()),
                title=f"{result.experiment} (average)", baseline=1.0,
            )
    return None


def _cmd_render(args) -> int:
    session = RenderSession(
        scale=args.scale, raster=args.raster, raster_tile=args.raster_tile
    )
    workload = _resolve_workload(args.workload)
    scenario = get_scenario(args.scenario)
    capture = session.capture_frame(workload, args.frame)
    result = session.evaluate(
        capture, scenario, args.threshold, store_image=True
    )

    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)
    frame_rgb = np.zeros((capture.height, capture.width, 3), dtype=np.float64)
    frame_rgb[:] = np.asarray(workload.scene.clear_color[:3])
    device = PerceptionAwareTextureUnit(scenario, args.threshold)
    decision = device.decide(capture.n, capture.txds)
    selected = capture.af_color.copy()
    for mode, table in (
        (FilterMode.TF_TF_LOD, capture.tf_color),
        (FilterMode.TF_AF_LOD, capture.tfa_color),
    ):
        mask = decision.mode == mode
        selected[mask] = table[mask]
    frame_rgb[capture.rows, capture.cols] = selected[:, :3]

    write_ppm(out / "frame.ppm", frame_rgb)
    write_pgm(out / "baseline_luminance.pgm", capture.baseline_luminance)
    if result.luminance is not None:
        index_map = ssim_map(result.luminance, capture.baseline_luminance)
        write_pgm(out / "ssim_map.pgm", (index_map + 1.0) / 2.0)

    _info(f"wrote frame.ppm / baseline_luminance.pgm / ssim_map.pgm to {out}")
    print(f"MSSIM {result.mssim:.3f}, approximation rate "
          f"{result.approximation_rate:.1%}")
    return 0


def _cmd_report(args) -> int:
    from .analysis.report import build_report, run_all

    workloads = tuple(args.workloads) if args.workloads else DEFAULT_WORKLOADS
    ctx = ExperimentContext(
        scale=args.scale, frames=args.frames, workloads=workloads,
        checkpoint_path=_checkpoint_path(args),
        jobs=args.jobs, capture_cache=args.capture_cache,
        job_timeout=args.job_timeout,
        raster=args.raster, raster_tile=args.raster_tile,
    )
    _resume_begin(args, ctx)
    ids = tuple(args.experiments) if args.experiments else None
    try:
        results = run_all(ctx, experiment_ids=ids)
    except KeyboardInterrupt:
        saved = ctx.save_checkpoint()
        if saved is not None:
            _info(f"interrupted; checkpoint flushed to {saved} "
                  "(rerun with --resume to continue)")
        return 130
    _engine_end(ctx)
    text = build_report(results)
    out = pathlib.Path(args.out)
    atomic_write_text(out, text)
    print(text.split("## Experiment tables")[0])
    _info(f"full report written to {out}")
    return 0


def _cmd_compare(args) -> int:
    session = RenderSession(
        scale=args.scale, raster=args.raster, raster_tile=args.raster_tile
    )
    workload = _resolve_workload(args.workload)
    capture = session.capture_frame(workload, args.frame)
    baseline = session.evaluate(capture, SCENARIOS["baseline"], 1.0)
    print(f"{workload.name}: {capture.num_pixels} pixels, "
          f"mean N {capture.mean_anisotropy:.2f}")
    print(f"{'design':<20}{'speedup':>9}{'MSSIM':>8}{'energy':>8}{'approx':>8}")
    for name, scenario in SCENARIOS.items():
        threshold = 1.0 if name == "baseline" else args.threshold
        r = session.evaluate(capture, scenario, threshold)
        print(f"{scenario.label:<20}"
              f"{baseline.frame_cycles / r.frame_cycles:>8.2f}x"
              f"{r.mssim:>8.3f}"
              f"{r.total_energy_nj / baseline.total_energy_nj:>8.2f}"
              f"{r.approximation_rate:>8.1%}")
    return 0


def _cmd_verify(args) -> int:
    """Run the correctness oracle suite (see ``docs/testing.md``)."""
    from .verify import default_goldens_root, list_oracles, run_verify

    if args.list_oracles:
        for name, layer in list_oracles():
            print(f"{name:<28} {layer}")
        return 0
    goldens_root = (
        pathlib.Path(args.goldens) if args.goldens else default_goldens_root()
    )
    report = run_verify(
        seed=args.seed,
        quick=args.quick,
        only=args.only,
        goldens_root=goldens_root,
        update_goldens=args.update_goldens,
        fuzz=args.fuzz,
        fuzz_save=(
            pathlib.Path(args.fuzz_save) if args.fuzz_save else None
        ),
    )
    print(report.format_summary())
    write_failed = False
    if args.report:
        try:
            path = report.write(args.report)
            _info(f"wrote JSON report to {path}")
        except OSError as exc:
            print(f"error: cannot write report: {exc}", file=sys.stderr)
            write_failed = True
    for failure in report.failures:
        # A golden oracle may merge several goldens; look one level
        # into nested per-golden details for their diffs too.
        diffs = [(failure.name, failure.details.get("diff"))]
        diffs += [
            (name, d.get("diff"))
            for name, d in failure.details.items()
            if isinstance(d, dict)
        ]
        for name, diff in diffs:
            if diff:
                _info(f"--- {name} diff ---\n{diff}")
        # Fuzz failures carry shrunk minimal repro specs — print them
        # so a CI log alone is enough to reproduce locally.
        for entry in failure.details.get("failures", ()):
            if isinstance(entry, dict) and "minimal_spec" in entry:
                import json as _json

                _info(
                    f"fuzz repro {entry.get('request')} "
                    f"(failed: {', '.join(entry.get('failed', ()))})\n"
                    "  minimal spec: "
                    + _json.dumps(entry["minimal_spec"], sort_keys=True)
                )
        if failure.details.get("saved"):
            _info("fuzz regressions saved: "
                  + ", ".join(map(str, failure.details["saved"])))
    if args.update_goldens:
        changed = []
        for r in report.layer_results("golden"):
            if "changed" in r.details:
                if r.details["changed"]:
                    changed.append(r.name)
                continue
            changed.extend(
                name for name, d in r.details.items()
                if isinstance(d, dict) and d.get("changed")
            )
        summary = ", ".join(changed) if changed else "none (already up to date)"
        _info(f"goldens updated: {summary}")
    return 0 if report.passed and not write_failed else 1


def _cmd_profile(args) -> int:
    """Render N frames with telemetry on; table to stdout, files to disk."""
    from .engine import CaptureStore
    from .engine.jobs import DEFAULT_VARIANT
    from .engine.worker import capture_spec_for

    workload = _resolve_workload(args.workload)
    scenario = get_scenario(args.scenario)
    session = RenderSession(
        scale=args.scale, raster=args.raster, raster_tile=args.raster_tile
    )
    store = CaptureStore(args.capture_cache) if args.capture_cache else None
    want_maps = getattr(args, "quality_maps", None)
    map_files = 0
    with TELEMETRY.span(
        "profile", workload=workload.name, frames=args.frames
    ):
        for frame in range(args.frames):
            capture = None
            if store is not None:
                spec = capture_spec_for(
                    workload.name, frame,
                    base_config=session.config, scale=args.scale,
                    variant=DEFAULT_VARIANT,
                    raster=args.raster, raster_tile=args.raster_tile,
                )
                capture = store.get(spec)
            if capture is None:
                capture = session.capture_frame(workload, frame)
                if store is not None:
                    store.put(spec, capture)
            result = session.evaluate(
                capture, scenario, args.threshold,
                store_image=want_maps is not None,
            )
            if want_maps and result.luminance is not None:
                from .quality.heatmap import export_quality_maps

                paths = export_quality_maps(
                    capture, result.luminance, want_maps,
                    scenario=scenario.name, threshold=args.threshold,
                )
                map_files += len(paths)
    print(f"== profile: {workload.name} x{args.frames} frame(s), "
          f"scenario {scenario.name} @ {args.threshold:g}, "
          f"scale {args.scale:g} ==\n")
    print(TELEMETRY.format_summary())
    if want_maps:
        _info(f"wrote {map_files} quality-map file(s) to {want_maps}")
    if store is not None:
        _info(f"capture store: {store.stats}")
        _note(store={
            "hits": store.stats.hits,
            "misses": store.stats.misses,
            "writes": store.stats.writes,
            "corrupt": store.stats.corrupt,
        })
    return 0


def _cmd_serve(args) -> int:
    """Run the render service until a client sends ``shutdown``."""
    from .service.server import ServeConfig, run_server

    config = ServeConfig(
        host=args.host,
        port=args.port,
        scale=args.scale,
        jobs=args.jobs,
        backend=args.backend,
        store_root=args.capture_cache,
        store_prefix=args.store_prefix,
        store_max_bytes=args.store_max_bytes,
        max_pending=args.max_pending,
        max_batch=args.max_batch,
        batch_window_s=args.batch_window,
        job_timeout=args.job_timeout,
        raster=args.raster,
        raster_tile=args.raster_tile,
    )
    return run_server(config)


def _cmd_worker(args) -> int:
    """Run one remote socket worker (see ``repro.engine.remote``)."""
    from .engine.remote import worker_main

    host, _, port = args.connect.rpartition(":")
    if not host or not port.isdigit():
        print(f"error: --connect expects HOST:PORT, got {args.connect!r}",
              file=sys.stderr)
        return 2
    return worker_main(host, int(port))


def _format_bytes(n: int) -> str:
    value = float(n)
    for unit in ("B", "KiB", "MiB", "GiB"):
        if value < 1024 or unit == "GiB":
            return f"{value:.1f} {unit}" if unit != "B" else f"{int(value)} B"
        value /= 1024
    return f"{value:.1f} GiB"


def _cmd_store(args) -> int:
    """Capture-store maintenance: per-shard stats + offline eviction."""
    from .engine.capture_store import ShardedCaptureStore, detect_shard_prefix

    root = pathlib.Path(args.dir)
    if not root.is_dir():
        print(f"error: {root} is not a directory", file=sys.stderr)
        return 2
    prefix = args.prefix or detect_shard_prefix(root) or 1
    store = ShardedCaptureStore(root, prefix=prefix)
    if args.store_command == "prune":
        if args.dry_run:
            entries = store.entries()
            total = sum(size for _, size, _ in entries)
            over = max(0, total - args.max_bytes)
            would = 0
            acc = 0
            for _path, size, _ in entries:
                if acc >= over:
                    break
                acc += size
                would += 1
            print(f"would evict {would} entry(ies), "
                  f"{_format_bytes(acc)} of {_format_bytes(total)}")
            return 0
        evicted, freed = store.prune(args.max_bytes)
        print(f"evicted {evicted} entry(ies), freed {_format_bytes(freed)}")
    shard_stats = store.shard_stats()
    entries = store.entries()
    total = sum(size for _, size, _ in entries)
    print(f"== capture store: {root} (shard prefix {prefix}, "
          f"{len(entries)} entry(ies), {_format_bytes(total)}) ==")
    if shard_stats:
        width = max(len("shard"), *(len(s or "(flat)") for s in shard_stats))
        print(f"{'shard':<{width}}  {'entries':>8}  {'bytes':>12}")
        for shard in sorted(shard_stats):
            bucket = shard_stats[shard]
            print(f"{shard or '(flat)':<{width}}  "
                  f"{bucket['entries']:>8}  "
                  f"{_format_bytes(bucket['bytes']):>12}")
    corrupt_count, corrupt_size = store.corrupt_bytes()
    print(f".corrupt/ quarantine: {corrupt_count} file(s), "
          f"{_format_bytes(corrupt_size)}")
    return 0


def _cmd_trends(args) -> int:
    """Analyze the run ledger for metric regressions."""
    from .obs import analyze_ledger

    report = analyze_ledger(
        args.ledger,
        k=args.k,
        window=args.window,
        time_floor=args.time_floor,
        exact_floor=args.exact_floor,
        kind=args.kind,
        metric_filter=args.metric,
    )
    print(report.format(only_flagged=args.only_flagged), end="")
    return 1 if args.check and report.regressions else 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="PATU (HPCA 2018) reproduction toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list workloads and experiments")

    p_exp = sub.add_parser("experiment", help="run one table/figure")
    p_exp.add_argument("id", help="experiment id (e.g. fig19)")
    p_exp.add_argument("--frames", type=int, default=2)
    p_exp.add_argument("--workloads", nargs="*", default=None)
    p_exp.add_argument("--out", default=None, help="also write the table here")
    p_exp.add_argument("--plot", action="store_true",
                       help="render an ASCII chart of the average rows")
    p_exp.add_argument("--emit-metrics", metavar="PATH", default=None,
                       dest="emit_metrics",
                       help="write per-frame metrics JSONL here "
                            "(alias of --metrics)")
    _add_session_args(p_exp)
    _add_engine_args(p_exp)
    _add_obs_args(p_exp)
    _add_ledger_args(p_exp)
    _add_checkpoint_args(p_exp)
    _add_fault_args(p_exp)

    p_render = sub.add_parser("render", help="render a frame to image files")
    p_render.add_argument("workload")
    p_render.add_argument("--frame", type=int, default=0)
    p_render.add_argument("--scenario", default="patu",
                          choices=sorted(SCENARIOS))
    p_render.add_argument("--threshold", type=float, default=0.4)
    p_render.add_argument("--out", default="render_out")
    _add_session_args(p_render)
    _add_obs_args(p_render)

    p_cmp = sub.add_parser("compare", help="compare the four designs")
    p_cmp.add_argument("workload")
    p_cmp.add_argument("--frame", type=int, default=0)
    p_cmp.add_argument("--threshold", type=float, default=0.4)
    _add_session_args(p_cmp)
    _add_obs_args(p_cmp)

    p_rep = sub.add_parser("report", help="run experiments, build a report")
    p_rep.add_argument("--experiments", nargs="*", default=None,
                       help="experiment ids (default: all paper artifacts)")
    p_rep.add_argument("--frames", type=int, default=2)
    p_rep.add_argument("--workloads", nargs="*", default=None)
    p_rep.add_argument("--out", default="report.md")
    _add_session_args(p_rep)
    _add_engine_args(p_rep)
    _add_obs_args(p_rep)
    _add_ledger_args(p_rep)
    _add_checkpoint_args(p_rep)
    _add_fault_args(p_rep)

    p_ver = sub.add_parser(
        "verify",
        help="run the differential/metamorphic/golden oracle suite",
    )
    p_ver.add_argument("--quick", action="store_true",
                       help="smaller captures, skip the process-pool oracle")
    p_ver.add_argument("--seed", type=int, default=0,
                       help="base seed for the random fragment batches")
    p_ver.add_argument("--only", metavar="FILTER", default=None,
                       help="run only oracles whose name or layer "
                            "contains FILTER")
    p_ver.add_argument("--report", metavar="PATH",
                       default="verify_report.json",
                       help="machine-readable JSON report path "
                            "(default verify_report.json)")
    p_ver.add_argument("--goldens", metavar="DIR", default=None,
                       help="golden store root (default tests/goldens)")
    p_ver.add_argument("--update-goldens", action="store_true",
                       dest="update_goldens",
                       help="regenerate changed goldens instead of checking")
    p_ver.add_argument("--fuzz", type=int, default=0, metavar="N",
                       help="run N generated scenarios through the "
                            "oracle stack (fuzz lane; default 0 = off)")
    p_ver.add_argument("--fuzz-save", metavar="DIR", dest="fuzz_save",
                       nargs="?", const="tests/goldens/fuzz_regressions",
                       default=None,
                       help="save shrunk failing specs as regression-"
                            "corpus files (default DIR: "
                            "tests/goldens/fuzz_regressions)")
    p_ver.add_argument("--list", action="store_true", dest="list_oracles",
                       help="list registered oracles and exit")
    _add_obs_args(p_ver)
    _add_ledger_args(p_ver)

    p_prof = sub.add_parser(
        "profile", help="render frames with telemetry, export trace + metrics"
    )
    p_prof.add_argument("workload",
                        help="workload name or game abbreviation (e.g. hl2)")
    p_prof.add_argument("--frames", type=int, default=2)
    p_prof.add_argument("--scenario", default="patu", choices=sorted(SCENARIOS))
    p_prof.add_argument("--threshold", type=float, default=0.4)
    _add_session_args(p_prof)
    p_prof.add_argument("--capture-cache", metavar="DIR", default=None,
                        dest="capture_cache",
                        help="reuse rendered frames from this capture "
                             "store directory (shared with experiments)")
    p_prof.add_argument("--trace", metavar="PATH", default="trace.json",
                        help="Chrome/Perfetto trace output (default trace.json)")
    p_prof.add_argument("--metrics", metavar="PATH", default="metrics.jsonl",
                        help="per-frame metrics output (default metrics.jsonl)")
    p_prof.add_argument("--verbose", action="store_true",
                        help="per-stage progress lines on stderr")
    p_prof.add_argument("--quality-maps", metavar="DIR", default=None,
                        dest="quality_maps",
                        help="write per-frame AF-SSIM heatmaps here "
                             "(npz + png per frame)")
    _add_ledger_args(p_prof)
    _add_fault_args(p_prof)

    p_srv = sub.add_parser(
        "serve",
        help="run the render service (JSON-lines over TCP; see "
             "docs/architecture.md)",
    )
    p_srv.add_argument("--host", default="127.0.0.1",
                       help="bind address (default 127.0.0.1; the "
                            "protocol is a trusted internal channel)")
    p_srv.add_argument("--port", type=int, default=7070,
                       help="TCP port (default 7070; 0 = ephemeral, "
                            "printed on stderr)")
    p_srv.add_argument("--backend",
                       choices=("serial", "process", "remote"),
                       default=None,
                       help="execution backend (default: process when "
                            "--jobs > 1, else serial; 'remote' uses "
                            "TCP socket workers)")
    p_srv.add_argument("--max-pending", type=int, dest="max_pending",
                       default=DEFAULT_MAX_PENDING, metavar="N",
                       help="admission control: reject (429-style) "
                            "beyond N queued+executing requests "
                            f"(default {DEFAULT_MAX_PENDING})")
    p_srv.add_argument("--max-batch", type=int, dest="max_batch",
                       default=64, metavar="N",
                       help="largest request batch one engine dispatch "
                            "coalesces (default 64)")
    p_srv.add_argument("--batch-window", type=float, dest="batch_window",
                       default=0.0, metavar="SECONDS",
                       help="extra wait for stragglers after the first "
                            "queued request (default 0 = drain-only "
                            "batching, lone clients never delayed)")
    p_srv.add_argument("--store-prefix", type=int, dest="store_prefix",
                       default=1, metavar="HEXCHARS",
                       help="capture-store shard prefix width "
                            "(default 1 = 16 shards)")
    p_srv.add_argument("--store-max-bytes", type=int,
                       dest="store_max_bytes", default=None,
                       metavar="BYTES",
                       help="LRU-evict the capture store beyond this "
                            "size (default: unbounded)")
    _add_session_args(p_srv)
    _add_engine_args(p_srv)
    _add_obs_args(p_srv)
    _add_fault_args(p_srv)

    p_wrk = sub.add_parser(
        "worker",
        help="run one remote socket worker (spawned by serve "
             "--backend remote, or started by hand)",
    )
    p_wrk.add_argument("--connect", required=True, metavar="HOST:PORT",
                       help="dial this serve parent's worker listener")

    p_store = sub.add_parser(
        "store",
        help="capture-store maintenance: per-shard stats, offline "
             "LRU eviction",
    )
    store_sub = p_store.add_subparsers(dest="store_command", required=True)
    p_sstats = store_sub.add_parser(
        "stats", help="per-shard entry counts/bytes + quarantine size"
    )
    p_sstats.add_argument("dir", help="capture store directory")
    p_sstats.add_argument("--prefix", type=int, default=None,
                          metavar="HEXCHARS",
                          help="shard prefix width (default: detected)")
    p_sprune = store_sub.add_parser(
        "prune", help="apply the size-bounded LRU eviction offline"
    )
    p_sprune.add_argument("dir", help="capture store directory")
    p_sprune.add_argument("--max-bytes", type=int, required=True,
                          dest="max_bytes", metavar="BYTES",
                          help="evict oldest entries until the store "
                               "fits this budget")
    p_sprune.add_argument("--prefix", type=int, default=None,
                          metavar="HEXCHARS",
                          help="shard prefix width (default: detected)")
    p_sprune.add_argument("--dry-run", action="store_true", dest="dry_run",
                          help="report what would be evicted, delete "
                               "nothing")

    p_tr = sub.add_parser(
        "trends",
        help="analyze the run ledger: flag metrics leaving their trend band",
    )
    p_tr.add_argument("--ledger", metavar="DIR", nargs="+", default=None,
                      help="ledger directory (default .repro/ledger); "
                           "several DIRs merge by creation time (CI "
                           "shards, multiple machines)")
    p_tr.add_argument("--kind", default=None,
                      help="only analyze records of this kind (experiment, "
                           "report, profile, verify, hotpath, fleet, serve)")
    p_tr.add_argument("--metric", default=None, metavar="SUBSTR",
                      help="only metrics whose name contains SUBSTR")
    p_tr.add_argument("--window", type=int, default=DEFAULT_WINDOW,
                      metavar="N",
                      help=f"baseline uses at most the last N comparable "
                           f"runs (default {DEFAULT_WINDOW})")
    p_tr.add_argument("--k", type=float, default=DEFAULT_K,
                      help=f"MAD multiplier of the trend band "
                           f"(default {DEFAULT_K:g}, ~4 sigma)")
    p_tr.add_argument("--time-floor", type=float, dest="time_floor",
                      default=DEFAULT_TIME_FLOOR, metavar="FRAC",
                      help=f"relative band floor for wall-clock metrics "
                           f"(default {DEFAULT_TIME_FLOOR:g})")
    p_tr.add_argument("--exact-floor", type=float, dest="exact_floor",
                      default=DEFAULT_EXACT_FLOOR, metavar="FRAC",
                      help=f"relative band floor for deterministic metrics "
                           f"(default {DEFAULT_EXACT_FLOOR:g})")
    p_tr.add_argument("--check", action="store_true",
                      help="exit 1 when any metric regressed")
    p_tr.add_argument("--only-flagged", action="store_true",
                      dest="only_flagged",
                      help="print flagged metrics only")

    return parser


def main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    handlers = {
        "list": _cmd_list,
        "experiment": _cmd_experiment,
        "render": _cmd_render,
        "compare": _cmd_compare,
        "report": _cmd_report,
        "profile": _cmd_profile,
        "verify": _cmd_verify,
        "trends": _cmd_trends,
        "serve": _cmd_serve,
        "worker": _cmd_worker,
        "store": _cmd_store,
    }
    started = time.perf_counter()
    _RUN_NOTES.clear()
    _obs_begin(args)
    rc = 0
    try:
        # inside the try: a bad --fault-rate/--chaos-* value must exit
        # through the `error: ...` path like any other ReproError
        _faults_begin(args)
        rc = handlers[args.command](args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        rc = 1
    except BrokenPipeError:
        # stdout's consumer went away (e.g. `repro list | head`);
        # standard Unix behavior is a quiet exit. Point stdout at
        # /dev/null so interpreter shutdown doesn't re-raise on flush.
        import os

        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        rc = 0
    finally:
        _faults_end(args)
        # The ledger record must capture telemetry before _obs_end
        # disarms it.
        _ledger_end(args, argv, rc, started)
        if not _obs_end(args):
            rc = rc or 1
    return rc


if __name__ == "__main__":
    raise SystemExit(main())
