"""GPU and experiment configuration (paper Table I).

The baseline architecture mirrors the paper's ATTILA-sim configuration,
which itself references the PowerVR Rogue mobile GPU: 4 unified-shader
clusters, one texture unit per cluster, a 16 KB 4-way texture L1, a
128 KB 8-way texture L2 (the GPU LLC for texture traffic), and a
1 GB / 16 bytes-per-cycle / 8-channel / 8-banks-per-channel memory.

:class:`GpuConfig` is the single source of truth consumed by the timing,
power and memory models; experiments that scale caches (Fig. 21) do so by
deriving new configs through :meth:`GpuConfig.scaled`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .errors import ConfigError

#: Paper VI: monitor refresh interval expressed in GPU cycles (60 Hz @ 1 GHz).
REFRESH_INTERVAL_CYCLES = 16_666_667

#: Paper VI: fixed CPU latency per frame = half the refresh interval.
CPU_LATENCY_CYCLES = REFRESH_INTERVAL_CYCLES // 2

#: Paper II-B / V-A: maximum anisotropy degree supported by the texture unit.
MAX_ANISOTROPY = 16


@dataclass(frozen=True)
class CacheConfig:
    """Geometry of one cache level.

    Sizes follow the usual set-associative decomposition: ``size_bytes``
    must be divisible by ``ways * line_bytes``; the remainder is the
    number of sets.
    """

    size_bytes: int
    ways: int
    line_bytes: int = 64

    def __post_init__(self) -> None:
        if self.size_bytes <= 0 or self.ways <= 0 or self.line_bytes <= 0:
            raise ConfigError(f"cache parameters must be positive: {self}")
        if self.size_bytes % (self.ways * self.line_bytes):
            raise ConfigError(
                f"cache size {self.size_bytes} not divisible by "
                f"ways*line ({self.ways}*{self.line_bytes})"
            )

    @property
    def num_sets(self) -> int:
        return self.size_bytes // (self.ways * self.line_bytes)

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    def scaled(self, factor: int) -> "CacheConfig":
        """Return a cache ``factor`` times larger (same ways/line size)."""
        if factor < 1:
            raise ConfigError(f"scale factor must be >= 1, got {factor}")
        return dataclasses.replace(self, size_bytes=self.size_bytes * factor)

    def scaled_down(self, divisor: int) -> "CacheConfig":
        """Return a cache ``divisor`` times smaller, floored at one set.

        Used by the render session to shrink caches in proportion to
        the rendered pixel count so that cache-vs-working-set ratios
        match the nominal resolution (DESIGN.md §2).
        """
        if divisor < 1:
            raise ConfigError(f"divisor must be >= 1, got {divisor}")
        min_size = self.ways * self.line_bytes
        return dataclasses.replace(
            self, size_bytes=max(self.size_bytes // divisor, min_size)
        )


@dataclass(frozen=True)
class MemoryConfig:
    """Off-chip memory configuration (Table I bottom rows)."""

    capacity_bytes: int = 1 << 30  # 1 GB
    bytes_per_cycle: int = 16
    channels: int = 8
    banks_per_channel: int = 8
    #: Un-contended access latency in GPU cycles (row hit, single request).
    base_latency_cycles: int = 120
    #: Extra latency when a request misses the open row.
    row_miss_penalty_cycles: int = 60

    def __post_init__(self) -> None:
        if min(
            self.capacity_bytes,
            self.bytes_per_cycle,
            self.channels,
            self.banks_per_channel,
            self.base_latency_cycles,
        ) <= 0:
            raise ConfigError(f"memory parameters must be positive: {self}")

    @property
    def peak_bandwidth_bytes_per_cycle(self) -> int:
        return self.bytes_per_cycle


@dataclass(frozen=True)
class TextureUnitConfig:
    """Per-cluster texture unit (Table I middle rows)."""

    address_alus: int = 4
    filtering_alus: int = 8
    #: Throughput of the filtering datapath: cycles per trilinear sample.
    cycles_per_trilinear: int = 2
    #: Pixels processed together under the SIMD model (a quad).
    quad_size: int = 4
    max_anisotropy: int = MAX_ANISOTROPY

    def __post_init__(self) -> None:
        if min(self.address_alus, self.filtering_alus,
               self.cycles_per_trilinear, self.quad_size) <= 0:
            raise ConfigError(f"texture unit parameters must be positive: {self}")
        if not 1 <= self.max_anisotropy <= 16:
            raise ConfigError(
                f"max_anisotropy must be in [1, 16], got {self.max_anisotropy}"
            )


@dataclass(frozen=True)
class GpuConfig:
    """Full baseline GPU configuration (paper Table I)."""

    frequency_hz: int = 1_000_000_000
    num_clusters: int = 4
    shaders_per_cluster: int = 16
    simd_width: int = 4  # SIMD4-scale ALUs
    shader_elements: int = 4
    tile_size: int = 16  # 16x16 tiles
    texture_units_per_cluster: int = 1
    texture_unit: TextureUnitConfig = TextureUnitConfig()
    texture_l1: CacheConfig = CacheConfig(size_bytes=16 * 1024, ways=4)
    texture_l2: CacheConfig = CacheConfig(size_bytes=128 * 1024, ways=8)
    memory: MemoryConfig = MemoryConfig()

    def __post_init__(self) -> None:
        if min(self.frequency_hz, self.num_clusters, self.shaders_per_cluster,
               self.simd_width, self.shader_elements, self.tile_size,
               self.texture_units_per_cluster) <= 0:
            raise ConfigError(f"GPU parameters must be positive: {self}")
        if self.tile_size % 2:
            raise ConfigError("tile_size must be even (quads are 2x2 pixels)")

    @property
    def num_texture_units(self) -> int:
        return self.num_clusters * self.texture_units_per_cluster

    @property
    def total_shaders(self) -> int:
        return self.num_clusters * self.shaders_per_cluster

    def scaled(self, *, texture_l1: int = 1, texture_l2: int = 1) -> "GpuConfig":
        """Derive a config with scaled cache capacities (Fig. 21 study)."""
        return dataclasses.replace(
            self,
            texture_l1=self.texture_l1.scaled(texture_l1),
            texture_l2=self.texture_l2.scaled(texture_l2),
        )

    def table1_rows(self) -> "list[tuple[str, str]]":
        """Render the configuration as paper Table I rows (label, value)."""
        tu = self.texture_unit
        mem = self.memory
        return [
            ("Frequency", f"{self.frequency_hz / 1e9:g}GHz"),
            ("Number of cluster", str(self.num_clusters)),
            ("Unified shader per cluster", str(self.shaders_per_cluster)),
            ("Unified shader configuration",
             f"SIMD{self.simd_width}-scale ALUs, "
             f"{self.shader_elements} shader elements, "
             f"{self.tile_size}x{self.tile_size} tile size"),
            ("Number of Texture Units",
             f"{self.texture_units_per_cluster} per cluster"),
            ("Texture unit configuration",
             f"{tu.address_alus} address ALUs, {tu.filtering_alus} filtering ALUs"),
            ("Texture throughput", f"{tu.cycles_per_trilinear} cycle per trilinear"),
            ("Texture L1 cache",
             f"{self.texture_l1.size_bytes // 1024}KB, {self.texture_l1.ways}-way"),
            ("Texture L2 cache",
             f"{self.texture_l2.size_bytes // 1024}KB, {self.texture_l2.ways}-way"),
            ("Memory configuration",
             f"{mem.capacity_bytes >> 30}GB, {mem.bytes_per_cycle} bytes/cycle, "
             f"{mem.channels} channel, {mem.banks_per_channel} banks per channel"),
        ]


#: The paper's baseline configuration, shared by all experiments.
BASELINE_CONFIG = GpuConfig()
