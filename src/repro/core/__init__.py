"""The paper's primary contribution: runtime AF approximation.

* :mod:`af_ssim` — the AF-SSIM formulation (Eq. 4-6, 8-10): similarity
  degree, sample-area based prediction ``AF_SSIM(N)``, texel
  distribution similarity ``Txds`` and ``AF_SSIM(Txds)``.
* :mod:`hash_table` — the 16-entry texel-address hash table with count
  tags (PATU component 2 in Fig. 14).
* :mod:`predictor` — the two-stage runtime prediction flow (Fig. 13).
* :mod:`scenarios` — the evaluated design points (Baseline,
  AF-SSIM(N), AF-SSIM(N)+(Txds), PATU).
* :mod:`patu` — the Perception-Aware Texture Unit putting it together,
  including the LOD-shift elimination of Section V-C(2).
"""

from .af_ssim import (
    af_ssim_from_similarity,
    af_ssim_n,
    af_ssim_txds,
    entropy,
    sharing_fraction_from_csr,
    txds,
    txds_from_csr,
)
from .hash_table import TexelAddressHashTable, HASH_TABLE_ENTRIES
from .predictor import PredictionResult, TwoStagePredictor
from .scenarios import Scenario, SCENARIOS, BASELINE, AFSSIM_N, AFSSIM_N_TXDS, PATU
from .patu import FilterMode, PatuDecision, PerceptionAwareTextureUnit

__all__ = [
    "AFSSIM_N",
    "AFSSIM_N_TXDS",
    "BASELINE",
    "FilterMode",
    "HASH_TABLE_ENTRIES",
    "PATU",
    "PatuDecision",
    "PerceptionAwareTextureUnit",
    "PredictionResult",
    "SCENARIOS",
    "Scenario",
    "TexelAddressHashTable",
    "TwoStagePredictor",
    "af_ssim_from_similarity",
    "af_ssim_n",
    "af_ssim_txds",
    "entropy",
    "sharing_fraction_from_csr",
    "txds",
    "txds_from_csr",
]
