"""AF-SSIM: the runtime-predictable structure-similarity formulation.

Section IV of the paper derives, from the hardware filtering method
(Eq. 3), that the AF and TF colors of a pixel relate by a scalar
*similarity degree* ``mu = Y / X`` (Eq. 4), collapses SSIM to a
function of that degree alone (Eq. 5), and then substitutes two
runtime-computable proxies for ``mu``:

* the anisotropy degree ``N`` (sample-area based prediction, Eq. 6) —
  available right after texel generation;
* the texel distribution similarity ``Txds`` (Eq. 9), derived from the
  entropy (Eq. 8) of how AF's trilinear samples cluster into shared
  texel sets — available right after texel address calculation.

All functions are numpy-vectorized; the CSR variants operate on the
flattened per-sample footprint keys the texture unit captures.
"""

from __future__ import annotations

import numpy as np

from ..errors import DegenerateInputError, ReproError

#: Stabilizing constant of Eq. (5); same role as C1 in classic SSIM.
C1 = 1e-4


def af_ssim_from_similarity(mu: np.ndarray, c1: float = C1) -> np.ndarray:
    """Eq. (5): AF-SSIM as a function of the similarity degree ``mu``.

    ``mu = 1`` (AF output identical to TF output) gives 1.0; the index
    decays symmetrically as ``mu`` moves away from 1 in ratio.
    """
    mu = np.asarray(mu, dtype=np.float64)
    return ((2.0 * mu + c1) / (mu * mu + 1.0 + c1)) ** 2


def af_ssim_n(n: np.ndarray) -> np.ndarray:
    """Eq. (6): sample-area based prediction ``AF_SSIM(N) = (2N/(N^2+1))^2``.

    ``N = 1`` (isotropic footprint) predicts 1.0 — AF degenerates to
    trilinear; ``N = 16`` predicts ~0.0155 — AF is essential.

    Degenerate inputs (NaN, infinity, ``N < 1``) raise
    :class:`~repro.errors.DegenerateInputError` — the result is always
    finite and in ``[0, 1]``, never NaN. The predictor sanitizes
    corrupted hardware state *before* calling in (see
    :mod:`repro.resilience.guards`).
    """
    n = np.asarray(n, dtype=np.float64)
    if not np.all(np.isfinite(n)):
        raise DegenerateInputError("anisotropy degree N must be finite")
    if np.any(n < 1):
        raise DegenerateInputError("anisotropy degree N must be >= 1")
    # 2N/(N^2+1) rewritten as 2/(N + 1/N): overflow-free for huge N.
    return (2.0 / (n + 1.0 / n)) ** 2


def entropy(p: np.ndarray) -> float:
    """Eq. (8): Shannon entropy of a probability vector (bits).

    Zero-probability events contribute nothing (the usual
    ``0 log 0 = 0`` convention).
    """
    p = np.asarray(p, dtype=np.float64)
    if p.size == 0:
        raise ReproError("probability vector must be non-empty")
    if np.any(p < 0) or not np.isclose(p.sum(), 1.0, atol=1e-9):
        raise ReproError(f"not a probability vector: {p}")
    nz = p[p > 0]
    return float(-(nz * np.log2(nz)).sum())


def txds(p: np.ndarray, n: int) -> float:
    """Eq. (9): texel distribution similarity ``1 - H(P)/log2(N)``.

    ``n`` is the AF sample size; for ``n == 1`` there is a single
    (trivially concentrated) sample and Txds is defined as 1.
    """
    if n < 1:
        raise ReproError(f"sample size must be >= 1, got {n}")
    if n == 1:
        return 1.0
    h = entropy(p)
    return float(1.0 - h / np.log2(n))


def af_ssim_txds(txds_value: np.ndarray) -> np.ndarray:
    """Eq. (10): distribution based prediction from Txds in [0, 1].

    Degenerate inputs (NaN, infinity, out-of-range) raise
    :class:`~repro.errors.DegenerateInputError`; the result is always
    finite and in ``[0, 1]``.
    """
    t = np.asarray(txds_value, dtype=np.float64)
    if not np.all(np.isfinite(t)):
        raise DegenerateInputError("Txds must be finite")
    if np.any(t < -1e-9) or np.any(t > 1.0 + 1e-9):
        raise DegenerateInputError("Txds must lie in [0, 1]")
    return (2.0 * t / (t * t + 1.0)) ** 2


def _per_row_counts(keys: np.ndarray) -> np.ndarray:
    """For dense ``(rows, n)`` keys: how many row-mates equal each entry."""
    eq = keys[:, :, None] == keys[:, None, :]
    return eq.sum(axis=2)


def _row_entropy_from_counts(counts: np.ndarray) -> np.ndarray:
    """Row-wise entropy from per-element duplicate counts.

    For a row whose distinct groups have sizes ``c_g`` summing to ``n``,
    the entropy ``-sum p_g log2 p_g`` equals ``-(1/n) sum_j log2(c_j/n)``
    where ``c_j`` is the group size of *element* ``j`` — each group of
    size ``c`` contributes its term ``c`` times, scaled by ``1/c``
    through the per-element weight ``1/n`` rather than ``p_g``.
    """
    n = counts.shape[1]
    return -(np.log2(counts / n)).sum(axis=1) / n


def txds_from_csr(keys: np.ndarray, row_ptr: np.ndarray) -> np.ndarray:
    """Per-pixel Txds from CSR-packed sample footprint keys.

    ``keys[row_ptr[i]:row_ptr[i+1]]`` are pixel ``i``'s AF sample keys.
    Pixels with a single sample get Txds = 1. Rows are processed in
    equal-length groups so each group is one dense vectorized kernel.
    """
    keys = np.asarray(keys, dtype=np.int64)
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    num_rows = row_ptr.size - 1
    lengths = np.diff(row_ptr)
    out = np.ones(num_rows, dtype=np.float64)
    for n in np.unique(lengths):
        n = int(n)
        if n <= 1:
            continue
        rows = np.nonzero(lengths == n)[0]
        slots = row_ptr[rows][:, None] + np.arange(n)[None, :]
        counts = _per_row_counts(keys[slots])
        out[rows] = 1.0 - _row_entropy_from_counts(counts) / np.log2(n)
    return np.clip(out, 0.0, 1.0)


def sharing_fraction_from_csr(keys: np.ndarray, row_ptr: np.ndarray) -> np.ndarray:
    """Per-pixel fraction of AF samples sharing the central sample's texel set.

    The central sample is ``X_0`` in Fig. 9/11 — the trilinear sample
    at the pixel's own (u, v), i.e. the one TF itself would take (at
    AF's level). This is the quantity Fig. 12 averages across frames.
    """
    keys = np.asarray(keys, dtype=np.int64)
    row_ptr = np.asarray(row_ptr, dtype=np.int64)
    num_rows = row_ptr.size - 1
    lengths = np.diff(row_ptr)
    out = np.ones(num_rows, dtype=np.float64)
    for n in np.unique(lengths):
        n = int(n)
        if n <= 1:
            continue
        rows = np.nonzero(lengths == n)[0]
        slots = row_ptr[rows][:, None] + np.arange(n)[None, :]
        dense = keys[slots]
        center = dense[:, (n - 1) // 2][:, None]
        out[rows] = (dense == center).mean(axis=1)
    return out
