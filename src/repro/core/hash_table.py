"""The runtime texel-address hash table (PATU component 2, Fig. 14).

A fully-associative 16-entry SRAM table, one per texture filtering
pipeline. As the address ALU emits each trilinear sample's texel
addresses, the table is probed top-to-bottom: a hit increments the
entry's count tag, a miss allocates the first free entry. When all of
a pixel's samples have been inserted, the count tags form the
probability vector of Eq. (8); the table is then reset for the next
pixel.

This sequential model is the behavioural reference the vectorized
:func:`repro.core.af_ssim.txds_from_csr` path is validated against in
the test suite, and it carries the §V-D storage accounting
(260 bits/entry: eight 32-bit addresses + a 4-bit count tag).
"""

from __future__ import annotations

from ..errors import ReproError

#: Max AF level on modern GPUs = max entries ever needed (Section V-A).
HASH_TABLE_ENTRIES = 16
#: Eight 32-bit texel addresses per entry.
ADDRESS_BITS_PER_ENTRY = 8 * 32
#: Count tag width (counts up to the 16 samples of one pixel).
COUNT_TAG_BITS = 4
#: Total bits per entry: (8x32) + 4 = 260 (Section V-D).
BITS_PER_ENTRY = ADDRESS_BITS_PER_ENTRY + COUNT_TAG_BITS


class TexelAddressHashTable:
    """Sequential model of the 16-entry texel-address table."""

    def __init__(self, entries: int = HASH_TABLE_ENTRIES) -> None:
        if entries < 1:
            raise ReproError(f"hash table needs >= 1 entry, got {entries}")
        self.entries = entries
        self._keys: "list[int]" = []
        self._counts: "list[int]" = []
        self.insertions = 0

    def reset(self) -> None:
        """Clear the table for the next pixel (Section V-B)."""
        self._keys.clear()
        self._counts.clear()
        self.insertions = 0

    def insert(self, key: int) -> bool:
        """Insert one trilinear sample's texel-set key.

        Returns True on a hit (count tag incremented), False on an
        allocation. Raises if more distinct keys arrive than the table
        has entries — impossible in hardware because a pixel has at
        most ``max AF level`` samples.
        """
        self.insertions += 1
        for i, existing in enumerate(self._keys):
            if existing == key:
                self._counts[i] += 1
                return True
        if len(self._keys) >= self.entries:
            raise ReproError("texel address hash table overflow")
        self._keys.append(key)
        self._counts.append(1)
        return False

    @property
    def occupancy(self) -> int:
        return len(self._keys)

    def probability_vector(self) -> "list[float]":
        """The probability vector P of Eq. (8) for the inserted samples."""
        if self.insertions == 0:
            raise ReproError("no samples inserted")
        total = float(self.insertions)
        return [c / total for c in self._counts]

    @classmethod
    def storage_bits(cls, entries: int = HASH_TABLE_ENTRIES) -> int:
        """SRAM bits for one table instance (Section V-D)."""
        return entries * BITS_PER_ENTRY
