"""The Perception-Aware Texture Unit (PATU), Section V.

PATU augments the conventional texture unit with the two-stage
predictor, the texel-address hash table and the approximation
controller (Fig. 14). Given the per-pixel anisotropy degree and texel
distribution similarity captured during texel generation/address
calculation, :meth:`PerceptionAwareTextureUnit.decide` produces every
quantity the timing, energy and quality models need:

* the filter mode each pixel ends up with (AF, or TF at one of two
  LODs depending on LOD-shift elimination, Fig. 15);
* how many trilinear samples are actually filtered (the texel-traffic
  driver);
* how much address-ALU work was spent, including the recalculation
  overhead for pixels approximated *late* at stage 2 (Section V-B: the
  controller sends the approximate tag back to Texel Address
  Calculation to recompute with sample size 1);
* how many hash-table insertions occurred (energy accounting).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..obs import TELEMETRY
from ..resilience.faults import FAULTS
from ..resilience.guards import safe_anisotropy
from .predictor import PredictionResult, TwoStagePredictor
from .scenarios import Scenario


class FilterMode(enum.IntEnum):
    """What filtering a pixel finally receives."""

    AF = 0
    TF_TF_LOD = 1  # trilinear at TF's own LOD (suffers LOD shift)
    TF_AF_LOD = 2  # trilinear at AF's LOD (PATU's LOD reuse)


@dataclass(frozen=True)
class PatuDecision:
    """Per-pixel outcome of one PATU pass (all arrays share shape)."""

    prediction: PredictionResult
    mode: np.ndarray  # uint8 FilterMode values
    trilinear_samples: np.ndarray  # samples actually filtered per pixel
    address_samples: np.ndarray  # samples whose addresses were computed
    hash_insertions: np.ndarray  # keys inserted into the hash table

    @property
    def total_trilinear(self) -> int:
        return int(self.trilinear_samples.sum())

    @property
    def total_address_work(self) -> int:
        return int(self.address_samples.sum())

    @property
    def total_hash_insertions(self) -> int:
        return int(self.hash_insertions.sum())

    @property
    def approximation_rate(self) -> float:
        return self.prediction.approximation_rate

    def to_dict(self) -> "dict[str, object]":
        """JSON-ready summary (for the metrics JSONL sink and tooling)."""
        return {
            "pixels": int(self.mode.size),
            "stage1_approved": int(self.prediction.stage1.sum()),
            "stage2_approved": int(self.prediction.stage2.sum()),
            "approximated": int(self.prediction.approximated.sum()),
            "approximation_rate": self.approximation_rate,
            "degraded_pixels": self.prediction.degraded_count,
            "total_trilinear": self.total_trilinear,
            "total_address_work": self.total_address_work,
            "total_hash_insertions": self.total_hash_insertions,
            "mode_counts": {
                mode.name: int((self.mode == mode).sum()) for mode in FilterMode
            },
        }


class PerceptionAwareTextureUnit:
    """PATU's decision logic for one (scenario, threshold) pair.

    Ablation knobs: ``stage2_threshold`` splits the unified threshold
    (Section IV-C(C)); ``hash_entries`` shrinks the texel-address table
    — pixels whose sample count exceeds the table capacity cannot be
    evaluated at stage 2 and fall through to AF (in hardware the table
    would overflow, so the controller must treat them as unpredicted).
    """

    def __init__(
        self,
        scenario: Scenario,
        threshold: float,
        *,
        stage2_threshold: "float | None" = None,
        hash_entries: int = 16,
    ) -> None:
        if not 1 <= hash_entries <= 16:
            raise ReproError(f"hash_entries must be in [1, 16], got {hash_entries}")
        self.scenario = scenario
        self.threshold = threshold
        self.hash_entries = hash_entries
        self._predictor = TwoStagePredictor(
            scenario, threshold, stage2_threshold=stage2_threshold
        )

    def decide(self, n: np.ndarray, txds: np.ndarray) -> PatuDecision:
        """Run the full PATU flow over a batch of pixels.

        Args:
            n: per-pixel anisotropy degree from texel generation.
            txds: per-pixel texel distribution similarity from the
                hash-table contents.
        """
        n = np.asarray(n, dtype=np.int64)
        if FAULTS.enabled:
            # Bit-flipped count tags: the controller sees corrupted N.
            n = FAULTS.corrupt_n(n, "patu.count_tags")
        with TELEMETRY.span("patu.decide", pixels=int(n.size)):
            pred = self._predictor.predict(n, txds)
            # Degraded pixels (corrupted N or Txds) fall back to exact
            # AF with a sanitized sample count — never garbage output.
            degraded = (
                pred.degraded
                if pred.degraded is not None
                else np.zeros(n.shape, dtype=bool)
            )
            n_safe, _ = safe_anisotropy(n)
            if self.hash_entries < 16 and self.scenario.use_stage2:
                # Pixels overflowing the shrunken table lose their stage-2
                # prediction; keep stage-1 results, drop stage-2 ones.
                fits = n_safe <= self.hash_entries
                pred = PredictionResult(
                    stage1=pred.stage1,
                    stage2=pred.stage2 & fits,
                    approximated=pred.stage1 | (pred.stage2 & fits),
                    predicted_n=pred.predicted_n,
                    predicted_txds=pred.predicted_txds,
                    degraded=pred.degraded,
                )

            mode = np.full(n.shape, FilterMode.AF, dtype=np.uint8)
            tf_mode = FilterMode.TF_AF_LOD if self.scenario.lod_reuse else FilterMode.TF_TF_LOD
            mode[pred.approximated] = tf_mode
            # Pixels that never needed AF run plain trilinear at their own LOD
            # (lod_af == lod_tf when N == 1, so the distinction is moot there).
            mode[(n_safe <= 1) & (mode == FilterMode.AF) & ~degraded] = (
                FilterMode.TF_TF_LOD
            )
            if degraded.any():
                with TELEMETRY.span(
                    "resilience.fallback_af", pixels=int(degraded.sum())
                ):
                    mode[degraded] = FilterMode.AF
                    TELEMETRY.count(
                        "resilience.fallback_af_pixels", int(degraded.sum())
                    )

            trilinear = np.where(mode == FilterMode.AF, n_safe, 1)

            # Address work: stage-1 approximated pixels compute only the one TF
            # sample; pixels that reached stage 2 computed all N AF samples, and
            # if approximated there, one more recalculated TF sample.
            address = np.where(pred.stage1, 1, n_safe)
            address = address + pred.stage2.astype(np.int64)

            # Hash-table insertions: only pixels that entered stage 2's check
            # (stage 2 enabled, survived stage 1, genuinely anisotropic);
            # degraded pixels bypass the (corrupted) table entirely.
            if self.scenario.use_stage2:
                entered = ~pred.stage1 & (n_safe > 1) & ~degraded
                # A shrunken table stops accepting keys once full.
                insertions = np.where(
                    entered, np.minimum(n_safe, self.hash_entries), 0
                )
            else:
                insertions = np.zeros(n.shape, dtype=np.int64)

            decision = PatuDecision(
                prediction=pred,
                mode=mode,
                trilinear_samples=trilinear.astype(np.int64),
                address_samples=address.astype(np.int64),
                hash_insertions=insertions.astype(np.int64),
            )
        if TELEMETRY.enabled:
            TELEMETRY.count("patu.pixels", int(n.size))
            TELEMETRY.count("patu.stage1_approved", int(pred.stage1.sum()))
            TELEMETRY.count("patu.stage2_approved", int(pred.stage2.sum()))
            TELEMETRY.count("patu.hash_insertions", decision.total_hash_insertions)
            # Stage-2 approvals pay a one-sample address recalculation
            # (the late-recalculation overhead of Section V-B).
            TELEMETRY.count("patu.late_recalc_samples", int(pred.stage2.sum()))
            TELEMETRY.count("patu.trilinear_samples", decision.total_trilinear)
            TELEMETRY.count("patu.address_samples", decision.total_address_work)
        return decision
