"""The two-stage runtime AF-SSIM prediction flow (Fig. 13).

Stage 1 fires right after texel generation: if ``AF_SSIM(N)`` exceeds
the threshold the pixel is marked approximated and never produces AF
sample addresses. Stage 2 fires after texel address calculation for
the pixels stage 1 let through: if ``AF_SSIM(Txds)`` exceeds the same
threshold the pixel is approximated late (its AF addresses are
recalculated for a single trilinear sample). The paper uses one
unified threshold for both stages (Section IV-C(C)).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..obs import TELEMETRY
from ..resilience.faults import FAULTS
from ..resilience.guards import safe_anisotropy, safe_txds
from .af_ssim import af_ssim_n, af_ssim_txds
from .scenarios import Scenario


@dataclass(frozen=True)
class PredictionResult:
    """Per-pixel decisions of one prediction pass.

    Attributes:
        stage1: pixels approximated by the sample-area check.
        stage2: pixels approximated by the distribution check (disjoint
            from ``stage1`` — they already left the AF path).
        approximated: union of the two.
        predicted_n: the ``AF_SSIM(N)`` values (all pixels).
        predicted_txds: the ``AF_SSIM(Txds)`` values (all pixels;
            meaningful where stage 1 did not fire).
        degraded: pixels whose predictor state (``N`` or ``Txds``) was
            invalid — these are never approximated (they fall back to
            exact AF, the graceful-degradation policy).
    """

    stage1: np.ndarray
    stage2: np.ndarray
    approximated: np.ndarray
    predicted_n: np.ndarray
    predicted_txds: np.ndarray
    degraded: "np.ndarray | None" = None

    @property
    def approximation_rate(self) -> float:
        if self.approximated.size == 0:
            return 0.0
        return float(self.approximated.mean())

    @property
    def degraded_count(self) -> int:
        if self.degraded is None:
            return 0
        return int(self.degraded.sum())


class TwoStagePredictor:
    """Applies the Fig. 13 flow for one scenario and threshold.

    The paper uses one *unified* threshold for both stages "to simplify
    the design" and "significantly reduce a large complex tuning space"
    (Section IV-C(C)); ``stage2_threshold`` optionally splits the knob
    for the ablation that justifies that simplification.
    """

    def __init__(
        self,
        scenario: Scenario,
        threshold: float,
        *,
        stage2_threshold: "float | None" = None,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ReproError(
                f"threshold must be in [0, 1] (the SSIM range), got {threshold}"
            )
        if stage2_threshold is not None and not 0.0 <= stage2_threshold <= 1.0:
            raise ReproError(
                f"stage2_threshold must be in [0, 1], got {stage2_threshold}"
            )
        self.scenario = scenario
        self.threshold = threshold
        self.stage2_threshold = (
            threshold if stage2_threshold is None else stage2_threshold
        )

    def predict(self, n: np.ndarray, txds: np.ndarray) -> PredictionResult:
        """Decide, per pixel, whether AF can be approximated.

        Args:
            n: int anisotropy degrees (>= 1).
            txds: texel distribution similarity in [0, 1].

        Corrupted predictor state (non-finite or out-of-domain ``N`` /
        ``Txds``, e.g. from a faulted hash table or a bit-flipped count
        tag) never raises and never produces NaN: the affected pixels
        are sanitized, marked ``degraded`` and excluded from both
        approximation stages, so they fall back to exact AF.
        """
        n = np.asarray(n)
        if FAULTS.enabled:
            txds = FAULTS.corrupt_txds(
                np.asarray(txds, dtype=np.float64), "predictor.hash_table"
            )
        txds = np.asarray(txds, dtype=np.float64)
        if n.shape != txds.shape:
            raise ReproError(f"N and Txds shapes differ: {n.shape} vs {txds.shape}")
        n_safe, bad_n = safe_anisotropy(n)
        txds_safe, bad_txds = safe_txds(txds)
        degraded = bad_n | bad_txds
        pred_n = af_ssim_n(n_safe)
        pred_t = af_ssim_txds(txds_safe)

        no_af_needed = (n_safe <= 1) & ~degraded  # TF-only pixels (V-B)
        if self.scenario.use_stage1:
            stage1 = (pred_n > self.threshold) & ~no_af_needed & ~degraded
        else:
            stage1 = np.zeros(n_safe.shape, dtype=bool)
        if self.scenario.use_stage2:
            stage2 = (
                (pred_t > self.stage2_threshold)
                & ~stage1 & ~no_af_needed & ~degraded
            )
        else:
            stage2 = np.zeros(n_safe.shape, dtype=bool)
        if degraded.any():
            TELEMETRY.count("resilience.degraded_pixels", int(degraded.sum()))
        if TELEMETRY.enabled:
            TELEMETRY.count("predictor.pixels", n_safe.size)
            if self.scenario.use_stage1:
                TELEMETRY.count(
                    "predictor.stage1_checked", int((~no_af_needed).sum())
                )
            if self.scenario.use_stage2:
                TELEMETRY.count(
                    "predictor.stage2_checked",
                    int((~stage1 & ~no_af_needed).sum()),
                )
        return PredictionResult(
            stage1=stage1,
            stage2=stage2,
            approximated=stage1 | stage2,
            predicted_n=pred_n,
            predicted_txds=pred_t,
            degraded=degraded,
        )
