"""The design scenarios evaluated in Section VII-B.

Each scenario states which prediction stages are active and what LOD
the approximated (TF-only) pixels sample at:

* ``baseline`` — conventional 16x AF on every pixel.
* ``afssim_n`` — stage-1 (sample-area) prediction only; approximated
  pixels run TF at TF's own LOD, exhibiting the LOD shift of Fig. 15.
* ``afssim_n_txds`` — both prediction stages; approximated pixels
  still at TF's LOD (maximum speedup, worst quality).
* ``patu`` — both stages + LOD-shift elimination: approximated pixels
  reuse AF's finer LOD, recovering quality at a small traffic cost.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ReproError


@dataclass(frozen=True)
class Scenario:
    """One design point of the evaluation."""

    name: str
    label: str
    use_stage1: bool
    use_stage2: bool
    lod_reuse: bool

    def __post_init__(self) -> None:
        if self.use_stage2 and not self.use_stage1:
            raise ReproError(
                "stage 2 requires stage 1 (pixels reach the hash table only "
                "after passing sample-area checking, Fig. 13)"
            )
        if self.lod_reuse and not self.use_stage1:
            raise ReproError("LOD reuse only applies when approximation is on")

    @property
    def approximates(self) -> bool:
        return self.use_stage1


BASELINE = Scenario(
    name="baseline", label="Baseline", use_stage1=False, use_stage2=False,
    lod_reuse=False,
)
AFSSIM_N = Scenario(
    name="afssim_n", label="AF-SSIM(N)", use_stage1=True, use_stage2=False,
    lod_reuse=False,
)
AFSSIM_N_TXDS = Scenario(
    name="afssim_n_txds", label="AF-SSIM(N)+(Txds)", use_stage1=True,
    use_stage2=True, lod_reuse=False,
)
PATU = Scenario(
    name="patu", label="PATU", use_stage1=True, use_stage2=True, lod_reuse=True,
)

#: All evaluated scenarios, in the paper's presentation order.
SCENARIOS: "dict[str, Scenario]" = {
    s.name: s for s in (BASELINE, AFSSIM_N, AFSSIM_N_TXDS, PATU)
}


def get_scenario(name: str) -> Scenario:
    """Look up a scenario by name, raising a helpful error on typos."""
    try:
        return SCENARIOS[name]
    except KeyError:
        raise ReproError(
            f"unknown scenario {name!r}; expected one of {sorted(SCENARIOS)}"
        ) from None
