"""The software-based approximation alternative (paper Section III).

The paper weighs two design choices and rejects the software one for
three reasons: runtime cost, control granularity, and the inability to
see fine-grained runtime texture attributes — "software methods have to
treat all the textures equally, which is obviously against our key idea
of only processing user-perceivable pixels."

This module implements that rejected alternative so the argument can be
measured (``experiments/ext_software``): the only knob a driver or
application realistically has is per-draw-call (here: per bound
texture) AF enablement, decided from an aggregate of the draw call's
pixels rather than per-pixel predictor state. Texel addresses, hash
tables and LOD reuse are hardware-internal, so the software path

* decides per texture group, using the group's mean ``AF_SSIM(N)``
  (the best information a profiling driver could gather);
* runs approximated groups as plain trilinear at TF's LOD (LOD reuse
  is a texture-unit trick, unavailable from the API);
* pays no hash-table or per-pixel check costs (there is no PATU).
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError
from .af_ssim import af_ssim_n
from .patu import FilterMode, PatuDecision
from .predictor import PredictionResult
from .scenarios import Scenario

#: Scenario tag for the software design point (not part of the paper's
#: four evaluated hardware scenarios).
SOFTWARE = Scenario(
    name="software",
    label="Software (per-draw-call)",
    use_stage1=False,
    use_stage2=False,
    lod_reuse=False,
)


def software_decision(
    tex_ids: np.ndarray,
    n: np.ndarray,
    threshold: float,
) -> PatuDecision:
    """Per-draw-call AF enablement, the Section III software strawman.

    A texture group is approximated when the *mean* predicted
    ``AF_SSIM(N)`` over its pixels clears the threshold — all of the
    group's pixels then skip AF, including the ones a per-pixel scheme
    would have kept (that coarseness is exactly the paper's granularity
    argument).
    """
    if not 0.0 <= threshold <= 1.0:
        raise ReproError(f"threshold must be in [0, 1], got {threshold}")
    tex_ids = np.asarray(tex_ids, dtype=np.int64)
    n = np.asarray(n, dtype=np.int64)
    if tex_ids.shape != n.shape:
        raise ReproError("tex_ids and n must align")

    pred_n = af_ssim_n(np.maximum(n, 1))
    approximated = np.zeros(n.shape, dtype=bool)
    for tex in np.unique(tex_ids):
        group = tex_ids == tex
        if float(pred_n[group].mean()) > threshold:
            approximated[group] = True
    # Isotropic pixels never counted as approximated (nothing to skip).
    approximated &= n > 1

    mode = np.full(n.shape, FilterMode.AF, dtype=np.uint8)
    mode[approximated | (n <= 1)] = FilterMode.TF_TF_LOD
    trilinear = np.where(mode == FilterMode.AF, n, 1).astype(np.int64)
    prediction = PredictionResult(
        stage1=approximated,
        stage2=np.zeros(n.shape, dtype=bool),
        approximated=approximated,
        predicted_n=pred_n,
        predicted_txds=np.zeros(n.shape, dtype=np.float64),
        degraded=np.zeros(n.shape, dtype=bool),
    )
    return PatuDecision(
        prediction=prediction,
        mode=mode,
        trilinear_samples=trilinear,
        # The decision is made before any AF addresses are issued.
        address_samples=trilinear.copy(),
        hash_insertions=np.zeros(n.shape, dtype=np.int64),
    )
