"""Threshold tuning utilities — the paper's "controllable knob".

Section VII-A frames the AF-SSIM threshold as a knob that is "either
tuned by users' experience or set to a static optimal value based on
architectural design space exploration". This module provides both
directions as reusable algorithms on top of a render session:

* :func:`find_best_point` — the paper's BP search: argmax of
  ``speedup x MSSIM`` over a threshold grid (Fig. 17).
* :func:`threshold_for_quality` — the user-experience direction: the
  most aggressive (lowest) threshold whose MSSIM still meets a quality
  target, found by bisection over the monotone quality curve.
* :class:`AdaptiveThresholdController` — a frame-to-frame controller
  that nudges the threshold to hold a quality target across a replay,
  a natural runtime extension of the static knob (the paper's
  conclusion notes users and DSE pick different optima per content).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..renderer.session import FrameCapture, RenderSession
from .scenarios import PATU, Scenario


@dataclass(frozen=True)
class TuningPoint:
    """One evaluated operating point of the tuning space."""

    threshold: float
    speedup: float
    mssim: float

    @property
    def metric(self) -> float:
        """The paper's equal-weight tradeoff metric (Section VII-A)."""
        return self.speedup * self.mssim


def sweep(
    session: RenderSession,
    capture: FrameCapture,
    *,
    scenario: Scenario = PATU,
    thresholds=None,
) -> "list[TuningPoint]":
    """Evaluate a threshold grid against one capture (Fig. 17 curve)."""
    if thresholds is None:
        thresholds = np.round(np.arange(0.0, 1.01, 0.1), 6)
    baseline = session.evaluate(capture, scenario, 1.0)
    points = []
    for t in thresholds:
        r = session.evaluate(capture, scenario, float(t))
        points.append(
            TuningPoint(
                threshold=float(t),
                speedup=baseline.frame_cycles / r.frame_cycles,
                mssim=r.mssim,
            )
        )
    return points


def find_best_point(
    session: RenderSession,
    capture: FrameCapture,
    *,
    scenario: Scenario = PATU,
    thresholds=None,
) -> TuningPoint:
    """The paper's BP: the grid point maximizing speedup x MSSIM."""
    points = sweep(session, capture, scenario=scenario, thresholds=thresholds)
    return max(points, key=lambda p: p.metric)


def threshold_for_quality(
    session: RenderSession,
    capture: FrameCapture,
    target_mssim: float,
    *,
    scenario: Scenario = PATU,
    tolerance: float = 0.01,
    max_iterations: int = 12,
) -> float:
    """Lowest threshold whose MSSIM meets ``target_mssim``, by bisection.

    Quality is monotone non-decreasing in the threshold (fewer pixels
    approximated), so bisection applies. Returns 1.0 if even the
    baseline-adjacent thresholds miss the target (it cannot happen for
    targets <= 1) and 0.0 if no AF at all already meets it.
    """
    if not 0.0 < target_mssim <= 1.0:
        raise ReproError(f"target_mssim must be in (0, 1], got {target_mssim}")
    if tolerance <= 0:
        raise ReproError(f"tolerance must be positive, got {tolerance}")

    def quality(threshold: float) -> float:
        return session.evaluate(capture, scenario, threshold).mssim

    if quality(0.0) >= target_mssim:
        return 0.0
    lo, hi = 0.0, 1.0  # quality(lo) < target <= quality(hi) == 1
    for _ in range(max_iterations):
        if hi - lo <= tolerance:
            break
        mid = (lo + hi) / 2.0
        if quality(mid) >= target_mssim:
            hi = mid
        else:
            lo = mid
    return hi


class AdaptiveThresholdController:
    """Per-frame threshold control toward a quality target.

    A simple integral controller: after each frame, the measured MSSIM
    error nudges the threshold (more quality needed -> raise it, slack
    available -> lower it for speed). Step size and bounds keep the
    control stable across scene changes.
    """

    def __init__(
        self,
        target_mssim: float = 0.93,
        *,
        initial_threshold: float = 0.4,
        gain: float = 2.0,
        min_threshold: float = 0.0,
        max_threshold: float = 1.0,
    ) -> None:
        if not 0.0 < target_mssim <= 1.0:
            raise ReproError(f"target_mssim must be in (0, 1], got {target_mssim}")
        if not min_threshold <= initial_threshold <= max_threshold:
            raise ReproError("initial threshold outside bounds")
        if gain <= 0:
            raise ReproError(f"gain must be positive, got {gain}")
        self.target = target_mssim
        self.threshold = initial_threshold
        self.gain = gain
        self.bounds = (min_threshold, max_threshold)
        self.history: "list[tuple[float, float]]" = []

    def observe(self, mssim: float) -> float:
        """Record a frame's measured quality; return the next threshold."""
        if not 0.0 <= mssim <= 1.0:
            raise ReproError(f"mssim must be in [0, 1], got {mssim}")
        self.history.append((self.threshold, mssim))
        error = self.target - mssim  # positive -> need more quality
        self.threshold = float(
            np.clip(self.threshold + self.gain * error, *self.bounds)
        )
        return self.threshold

    def run(
        self,
        session: RenderSession,
        captures: "list[FrameCapture]",
        *,
        scenario: Scenario = PATU,
    ) -> "list[TuningPoint]":
        """Drive a capture sequence under closed-loop control."""
        if not captures:
            raise ReproError("need at least one capture")
        points = []
        for capture in captures:
            threshold = self.threshold
            baseline = session.evaluate(capture, scenario, 1.0)
            r = session.evaluate(capture, scenario, threshold)
            points.append(
                TuningPoint(
                    threshold=threshold,
                    speedup=baseline.frame_cycles / r.frame_cycles,
                    mssim=r.mssim,
                )
            )
            self.observe(r.mssim)
        return points
