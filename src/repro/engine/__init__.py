"""The declarative experiment engine: plan → execute → aggregate.

Experiment modules *plan* typed, hashable work units
(:class:`EvalJob`), the :class:`Engine` *executes* the deduplicated
job graph on a backend (serial in-process, or a process pool selected
by ``--jobs N``), and each module *aggregates* completed results into
its table. A content-addressed :class:`CaptureStore` underneath makes
frame renders a per-machine cost instead of a per-process one.

See ``docs/architecture.md`` (engine section) for the full design.
"""

from __future__ import annotations

from .capture_store import (
    STORE_VERSION,
    CaptureStore,
    ShardedCaptureStore,
    capture_spec,
    detect_shard_prefix,
    make_store,
    spec_digest,
)
from .jobs import (
    DEFAULT_CONFIG,
    KIND_CAPTURE,
    KIND_EVAL,
    CaptureVariant,
    ConfigKey,
    EvalJob,
    capture_job,
    dedupe_jobs,
    eval_job,
)
from .scheduler import Engine, ExecutionReport, discard_pool, shutdown_pools
from .supervision import (
    DEFAULT_JOB_TIMEOUT_S,
    MAX_JOB_ATTEMPTS,
    ChunkSupervisor,
    chunk_deadline_s,
)
from .worker import (
    WorkerSpec,
    build_session,
    evaluate_job,
    extract_frame_metrics,
    resolve_workload,
    vr_request,
)

__all__ = [
    "STORE_VERSION",
    "CaptureStore",
    "ShardedCaptureStore",
    "capture_spec",
    "detect_shard_prefix",
    "make_store",
    "spec_digest",
    "DEFAULT_CONFIG",
    "KIND_CAPTURE",
    "KIND_EVAL",
    "CaptureVariant",
    "ConfigKey",
    "EvalJob",
    "capture_job",
    "dedupe_jobs",
    "eval_job",
    "Engine",
    "ExecutionReport",
    "discard_pool",
    "shutdown_pools",
    "DEFAULT_JOB_TIMEOUT_S",
    "MAX_JOB_ATTEMPTS",
    "ChunkSupervisor",
    "chunk_deadline_s",
    "WorkerSpec",
    "build_session",
    "evaluate_job",
    "extract_frame_metrics",
    "resolve_workload",
    "vr_request",
]
