"""Content-addressed on-disk store of :class:`FrameCapture` payloads.

Rendering a frame is the expensive half of every experiment; the
evaluation half replays design points over the captured per-pixel
state. The store makes the expensive half *per machine* instead of per
process: every capture is written once under a key derived from
everything that can change its contents, and any later process — a
resumed sweep, a pool worker, ``repro profile`` — loads it back
instead of re-rendering.

Layout: one ``.npz`` file per capture directly under the store root,
named ``{workload}-f{frame}-{digest}.npz``. The digest is the first 16
hex chars of the SHA-256 of the capture *spec* — a JSON object listing
the workload request name, frame index, render scale, tile size,
raster backend and its tile size, effective anisotropy cap,
compression flag, and two version tags
(:data:`repro.renderer.serialization.FORMAT_VERSION` for the payload
layout, :data:`STORE_VERSION` for capture-affecting code). Bump
``STORE_VERSION`` whenever rendering output changes; old entries then
simply miss and are re-rendered, no manual invalidation needed.

Writes go through :func:`repro.ioutil.atomic_write_bytes`, so a store
shared by concurrent workers never exposes a torn file: each worker
that misses renders and publishes independently, and the final
``os.replace`` makes one of the identical payloads win.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
from dataclasses import dataclass

from ..errors import PipelineError
from ..ioutil import atomic_write_bytes
from ..obs import TELEMETRY
from ..renderer.serialization import (
    FORMAT_VERSION,
    capture_from_npz_bytes,
    capture_to_npz_bytes,
)
from ..renderer.session import FrameCapture

#: Bump when renderer changes make previously stored captures stale.
#: v2: watertight top-left fill rule + sort-middle binned rasterizer.
STORE_VERSION = 2

#: Sibling directory (under the store root) corrupt entries are moved
#: to instead of being overwritten in place; ``__len__`` and lookups
#: never see it (they only glob the root itself).
CORRUPT_SUBDIR = ".corrupt"

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def capture_spec(
    workload: str,
    frame: int,
    *,
    scale: float,
    tile_size: int,
    max_anisotropy: int,
    compressed: bool,
    raster: str = "binned",
    raster_tile: int = 8,
) -> "dict[str, object]":
    """Everything that determines a capture's contents, as plain JSON.

    ``workload`` is the *request* name (``"R.Bench-4K"``,
    ``"VR@2:doom3-1280x1024"``, …), not a resolved object — the name
    fully determines the generated scene, so hashing it keeps the key
    computable without building the workload.

    ``raster``/``raster_tile`` key the capture too: both backends
    produce bit-identical G-buffers on surviving tiles, but the
    hierarchical-Z pass changes ``fragments_generated`` (and hence the
    capture's workload counts), so the backends must not share entries.
    """
    return {
        "store_version": STORE_VERSION,
        "format_version": FORMAT_VERSION,
        "workload": workload,
        "frame": frame,
        "scale": scale,
        "tile_size": tile_size,
        "max_anisotropy": max_anisotropy,
        "compressed": compressed,
        "raster": raster,
        "raster_tile": raster_tile,
    }


def spec_digest(spec: "dict[str, object]") -> str:
    """Stable 16-hex-char digest of a capture spec."""
    encoded = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


@dataclass
class StoreStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0

    def __str__(self) -> str:
        text = (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.writes} write(s)"
        )
        if self.corrupt:
            text += f", {self.corrupt} corrupt"
        return text


class CaptureStore:
    """A directory of content-addressed captures (see module doc)."""

    def __init__(self, root: "str | pathlib.Path") -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    def path_for(self, spec: "dict[str, object]") -> pathlib.Path:
        name = _SAFE.sub("_", str(spec["workload"]))
        return self.root / f"{name}-f{spec['frame']}-{spec_digest(spec)}.npz"

    def get(self, spec: "dict[str, object]") -> "FrameCapture | None":
        """Load the capture for ``spec``, or None on a miss."""
        path = self.path_for(spec)
        if not path.exists():
            self.stats.misses += 1
            TELEMETRY.count("store.misses")
            return None
        try:
            capture = capture_from_npz_bytes(path.read_bytes())
        except (OSError, ValueError, KeyError, PipelineError) as exc:
            # A corrupt or truncated entry is a miss, not a failure:
            # the caller re-renders and put() publishes a fresh copy.
            # The bad file itself is *quarantined*, not overwritten in
            # place — post-mortems on how it got torn need the bytes.
            dest = self.quarantine(path)
            where = f" -> {CORRUPT_SUBDIR}/" if dest is not None else ""
            TELEMETRY.progress(
                f"capture store: quarantined bad entry "
                f"{path.name}{where}: {exc}"
            )
            self.stats.misses += 1
            TELEMETRY.count("store.misses")
            return None
        self.stats.hits += 1
        TELEMETRY.count("store.hits")
        return capture

    def quarantine(self, path: pathlib.Path) -> "pathlib.Path | None":
        """Move a corrupt entry into the ``.corrupt/`` sibling directory.

        Returns the quarantined path, or None when the file vanished
        first (a concurrent worker already quarantined or replaced it —
        either way the bad bytes are out of the lookup path). Counted
        under ``store.corrupt`` and :attr:`StoreStats.corrupt` in both
        cases: the *detection* happened here.
        """
        dest: "pathlib.Path | None" = self.root / CORRUPT_SUBDIR / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            dest = None
        self.stats.corrupt += 1
        TELEMETRY.count("store.corrupt")
        return dest

    def put(self, spec: "dict[str, object]", capture: FrameCapture) -> pathlib.Path:
        """Atomically publish ``capture`` under its content key.

        Entries are written as uncompressed .npz: the store is a
        same-machine transfer channel (worker -> worker -> parent), and
        on that path the deflate pass is pure CPU overhead — a load
        must be cheap enough to pay once per (worker, capture) pair.
        Compressed entries from older runs still load fine.
        """
        path = self.path_for(spec)
        atomic_write_bytes(path, capture_to_npz_bytes(capture, compress=False))
        self.stats.writes += 1
        TELEMETRY.count("store.writes")
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.npz"))
