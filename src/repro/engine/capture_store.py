"""Content-addressed on-disk store of :class:`FrameCapture` payloads.

Rendering a frame is the expensive half of every experiment; the
evaluation half replays design points over the captured per-pixel
state. The store makes the expensive half *per machine* instead of per
process: every capture is written once under a key derived from
everything that can change its contents, and any later process — a
resumed sweep, a pool worker, ``repro profile`` — loads it back
instead of re-rendering.

Layout: one ``.npz`` file per capture directly under the store root,
named ``{workload}-f{frame}-{digest}.npz``. The digest is the first 16
hex chars of the SHA-256 of the capture *spec* — a JSON object listing
the workload request name, frame index, render scale, tile size,
raster backend and its tile size, effective anisotropy cap,
compression flag, and two version tags
(:data:`repro.renderer.serialization.FORMAT_VERSION` for the payload
layout, :data:`STORE_VERSION` for capture-affecting code). Bump
``STORE_VERSION`` whenever rendering output changes; old entries then
simply miss and are re-rendered, no manual invalidation needed.

Writes go through :func:`repro.ioutil.atomic_write_bytes`, so a store
shared by concurrent workers never exposes a torn file: each worker
that misses renders and publishes independently, and the final
``os.replace`` makes one of the identical payloads win.
"""

from __future__ import annotations

import hashlib
import json
import os
import pathlib
import re
from dataclasses import dataclass

from ..errors import PipelineError
from ..ioutil import atomic_write_bytes
from ..obs import TELEMETRY
from ..renderer.serialization import (
    FORMAT_VERSION,
    capture_from_npz_bytes,
    capture_to_npz_bytes,
)
from ..renderer.session import FrameCapture

#: Bump when renderer changes make previously stored captures stale.
#: v2: watertight top-left fill rule + sort-middle binned rasterizer.
STORE_VERSION = 2

#: Sibling directory (under the store root) corrupt entries are moved
#: to instead of being overwritten in place; ``__len__`` and lookups
#: never see it (they only glob the root itself).
CORRUPT_SUBDIR = ".corrupt"

_SAFE = re.compile(r"[^A-Za-z0-9._-]+")


def capture_spec(
    workload: str,
    frame: int,
    *,
    scale: float,
    tile_size: int,
    max_anisotropy: int,
    compressed: bool,
    raster: str = "binned",
    raster_tile: int = 8,
) -> "dict[str, object]":
    """Everything that determines a capture's contents, as plain JSON.

    ``workload`` is the *request* name (``"R.Bench-4K"``,
    ``"VR@2:doom3-1280x1024"``, …), not a resolved object — the name
    fully determines the generated scene, so hashing it keeps the key
    computable without building the workload.

    ``raster``/``raster_tile`` key the capture too: both backends
    produce bit-identical G-buffers on surviving tiles, but the
    hierarchical-Z pass changes ``fragments_generated`` (and hence the
    capture's workload counts), so the backends must not share entries.
    """
    return {
        "store_version": STORE_VERSION,
        "format_version": FORMAT_VERSION,
        "workload": workload,
        "frame": frame,
        "scale": scale,
        "tile_size": tile_size,
        "max_anisotropy": max_anisotropy,
        "compressed": compressed,
        "raster": raster,
        "raster_tile": raster_tile,
    }


def spec_digest(spec: "dict[str, object]") -> str:
    """Stable 16-hex-char digest of a capture spec."""
    encoded = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


@dataclass
class StoreStats:
    hits: int = 0
    misses: int = 0
    writes: int = 0
    corrupt: int = 0
    evictions: int = 0
    readthrough: int = 0

    def __str__(self) -> str:
        text = (
            f"{self.hits} hit(s), {self.misses} miss(es), "
            f"{self.writes} write(s)"
        )
        if self.corrupt:
            text += f", {self.corrupt} corrupt"
        if self.evictions:
            text += f", {self.evictions} evicted"
        if self.readthrough:
            text += f", {self.readthrough} read-through"
        return text


class CaptureStore:
    """A directory of content-addressed captures (see module doc)."""

    def __init__(self, root: "str | pathlib.Path") -> None:
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.stats = StoreStats()

    def path_for(self, spec: "dict[str, object]") -> pathlib.Path:
        name = _SAFE.sub("_", str(spec["workload"]))
        return self.root / f"{name}-f{spec['frame']}-{spec_digest(spec)}.npz"

    def get(self, spec: "dict[str, object]") -> "FrameCapture | None":
        """Load the capture for ``spec``, or None on a miss."""
        path = self.path_for(spec)
        if not path.exists():
            self.stats.misses += 1
            TELEMETRY.count("store.misses")
            return None
        return self._load(path)

    def _load(self, path: pathlib.Path) -> "FrameCapture | None":
        """Load one existing entry; quarantine + miss on corruption."""
        try:
            capture = capture_from_npz_bytes(path.read_bytes())
        except (OSError, ValueError, KeyError, PipelineError) as exc:
            # A corrupt or truncated entry is a miss, not a failure:
            # the caller re-renders and put() publishes a fresh copy.
            # The bad file itself is *quarantined*, not overwritten in
            # place — post-mortems on how it got torn need the bytes.
            dest = self.quarantine(path)
            where = f" -> {CORRUPT_SUBDIR}/" if dest is not None else ""
            TELEMETRY.progress(
                f"capture store: quarantined bad entry "
                f"{path.name}{where}: {exc}"
            )
            self.stats.misses += 1
            TELEMETRY.count("store.misses")
            return None
        self.stats.hits += 1
        TELEMETRY.count("store.hits")
        return capture

    def quarantine(self, path: pathlib.Path) -> "pathlib.Path | None":
        """Move a corrupt entry into the ``.corrupt/`` sibling directory.

        Returns the quarantined path, or None when the file vanished
        first (a concurrent worker already quarantined or replaced it —
        either way the bad bytes are out of the lookup path). Counted
        under ``store.corrupt`` and :attr:`StoreStats.corrupt` in both
        cases: the *detection* happened here.
        """
        dest: "pathlib.Path | None" = self.root / CORRUPT_SUBDIR / path.name
        try:
            dest.parent.mkdir(parents=True, exist_ok=True)
            os.replace(path, dest)
        except OSError:
            dest = None
        self.stats.corrupt += 1
        TELEMETRY.count("store.corrupt")
        return dest

    def put(self, spec: "dict[str, object]", capture: FrameCapture) -> pathlib.Path:
        """Atomically publish ``capture`` under its content key.

        Entries are written as uncompressed .npz: the store is a
        same-machine transfer channel (worker -> worker -> parent), and
        on that path the deflate pass is pure CPU overhead — a load
        must be cheap enough to pay once per (worker, capture) pair.
        Compressed entries from older runs still load fine.
        """
        path = self.path_for(spec)
        atomic_write_bytes(path, capture_to_npz_bytes(capture, compress=False))
        self.stats.writes += 1
        TELEMETRY.count("store.writes")
        return path

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*.npz"))

    def entries(self) -> "list[tuple[pathlib.Path, int, float]]":
        """Every stored entry as ``(path, size_bytes, mtime)``.

        Sorted oldest-first — the eviction order. Quarantined entries
        under ``.corrupt/`` are excluded; they are not lookup targets.
        """
        out = []
        for path in self.root.glob("*.npz"):
            try:
                stat = path.stat()
            except OSError:
                continue  # concurrently evicted/quarantined
            out.append((path, stat.st_size, stat.st_mtime))
        out.sort(key=lambda entry: (entry[2], entry[0].name))
        return out

    def total_bytes(self) -> int:
        return sum(size for _, size, _ in self.entries())

    def corrupt_bytes(self) -> "tuple[int, int]":
        """``(entries, bytes)`` held in the ``.corrupt/`` quarantine."""
        corrupt = self.root / CORRUPT_SUBDIR
        count = total = 0
        for path in corrupt.glob("*.npz"):
            try:
                total += path.stat().st_size
            except OSError:
                continue
            count += 1
        return count, total


_SHARD_NAME = re.compile(r"^[0-9a-f]{1,4}$")


def detect_shard_prefix(root: "str | pathlib.Path") -> int:
    """Infer the shard-prefix width of an existing store directory.

    Returns 0 for a flat (unsharded) store. Detection looks for
    subdirectories whose names are short lowercase-hex strings — the
    shard layout :class:`ShardedCaptureStore` writes.
    """
    root = pathlib.Path(root)
    if not root.is_dir():
        return 0
    widths = {
        len(child.name)
        for child in root.iterdir()
        if child.is_dir() and _SHARD_NAME.match(child.name)
    }
    return max(widths) if widths else 0


class ShardedCaptureStore(CaptureStore):
    """A capture store sharded by spec-digest prefix, with LRU eviction.

    Entries live under ``root/<digest[:prefix]>/`` — ``prefix`` hex
    chars give ``16**prefix`` shards, spreading directory listings and
    letting operators place shards on separate volumes via symlinks.

    Lookups are *read-through*: a miss in the home shard falls back to
    the flat legacy layout (a pre-sharding store keeps serving without
    migration) and then to every other shard (a store re-opened with a
    different prefix width); foreign hits are promoted into the home
    shard so the next lookup is direct. Hits bump the entry's mtime,
    making file mtime an LRU clock; when ``max_bytes`` is set, ``put``
    evicts oldest-first until the store fits the budget (``prune()``
    applies the same policy offline).
    """

    def __init__(
        self,
        root: "str | pathlib.Path",
        *,
        prefix: int = 1,
        max_bytes: "int | None" = None,
    ) -> None:
        if not 1 <= int(prefix) <= 4:
            raise PipelineError(
                f"shard prefix must be 1..4 hex chars, got {prefix!r}"
            )
        super().__init__(root)
        self.prefix = int(prefix)
        self.max_bytes = int(max_bytes) if max_bytes else None
        #: per-shard ``{"hits": n, "misses": n}`` for observability.
        self.shard_traffic: "dict[str, dict[str, int]]" = {}

    def shard_for(self, digest: str) -> str:
        return digest[: self.prefix]

    def path_for(self, spec: "dict[str, object]") -> pathlib.Path:
        name = _SAFE.sub("_", str(spec["workload"]))
        digest = spec_digest(spec)
        shard = self.root / self.shard_for(digest)
        return shard / f"{name}-f{spec['frame']}-{digest}.npz"

    def _count_shard(self, shard: str, kind: str) -> None:
        traffic = self.shard_traffic.setdefault(
            shard, {"hits": 0, "misses": 0}
        )
        traffic[kind] += 1

    def get(self, spec: "dict[str, object]") -> "FrameCapture | None":
        home = self.path_for(spec)
        shard = home.parent.name
        if home.exists():
            self._count_shard(shard, "hits")
            self._touch(home)
            return self._load(home)
        found = self._read_through(home)
        if found is None:
            self._count_shard(shard, "misses")
            self.stats.misses += 1
            TELEMETRY.count("store.misses")
            return None
        self._count_shard(shard, "hits")
        self.stats.readthrough += 1
        TELEMETRY.count("store.readthrough")
        promoted = self._promote(found, home)
        self._touch(promoted)
        return self._load(promoted)

    def _read_through(self, home: pathlib.Path) -> "pathlib.Path | None":
        """Find ``home``'s entry in the flat root or a foreign shard."""
        name = home.name
        flat = self.root / name
        if flat.exists():
            return flat
        for child in sorted(self.root.iterdir()):
            if not child.is_dir() or not _SHARD_NAME.match(child.name):
                continue
            if child == home.parent:
                continue
            candidate = child / name
            if candidate.exists():
                return candidate
        return None

    def _promote(
        self, found: pathlib.Path, home: pathlib.Path
    ) -> pathlib.Path:
        """Move a foreign hit into its home shard (best-effort)."""
        try:
            home.parent.mkdir(parents=True, exist_ok=True)
            os.replace(found, home)
            return home
        except OSError:
            return found  # raced with another promoter; serve in place

    @staticmethod
    def _touch(path: pathlib.Path) -> None:
        """Bump the LRU clock; losing the race to eviction is fine."""
        try:
            os.utime(path, None)
        except OSError:
            pass

    def put(self, spec: "dict[str, object]", capture: FrameCapture) -> pathlib.Path:
        path = self.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_bytes(path, capture_to_npz_bytes(capture, compress=False))
        self.stats.writes += 1
        TELEMETRY.count("store.writes")
        if self.max_bytes is not None:
            self.prune(self.max_bytes, keep=path)
        return path

    def prune(
        self,
        max_bytes: "int | None" = None,
        *,
        keep: "pathlib.Path | None" = None,
    ) -> "tuple[int, int]":
        """Evict oldest entries until the store fits ``max_bytes``.

        Returns ``(evicted_entries, freed_bytes)``. ``keep`` protects
        one path (the entry ``put`` just published) from eviction.
        """
        budget = self.max_bytes if max_bytes is None else int(max_bytes)
        if budget is None:
            return (0, 0)
        entries = self.entries()
        total = sum(size for _, size, _ in entries)
        evicted = freed = 0
        for path, size, _ in entries:
            if total <= budget:
                break
            if keep is not None and path == keep:
                continue
            try:
                path.unlink()
            except OSError:
                continue
            total -= size
            freed += size
            evicted += 1
            self.stats.evictions += 1
            TELEMETRY.count("store.evictions")
        return evicted, freed

    def merge_traffic(self, traffic: "dict[str, dict[str, int]]") -> None:
        """Fold worker-side per-shard hit/miss deltas into this store.

        The flat hit/miss totals of worker stores already merge through
        the chunk-outcome store delta (:mod:`repro.engine.scheduler`);
        this keeps the per-shard attribution from getting lost with it.
        """
        for shard, t in traffic.items():
            bucket = self.shard_traffic.setdefault(
                shard, {"hits": 0, "misses": 0}
            )
            bucket["hits"] += int(t.get("hits", 0))
            bucket["misses"] += int(t.get("misses", 0))

    def shard_stats(self) -> "dict[str, dict[str, int]]":
        """Per-shard ``{"entries": n, "bytes": n, "hits": n, "misses": n}``.

        Includes a ``""`` pseudo-shard for entries still in the flat
        legacy layout, when any exist.
        """
        out: "dict[str, dict[str, int]]" = {}
        for path, size, _ in self.entries():
            shard = path.parent.name if path.parent != self.root else ""
            bucket = out.setdefault(shard, {"entries": 0, "bytes": 0})
            bucket["entries"] += 1
            bucket["bytes"] += size
        for shard, traffic in self.shard_traffic.items():
            bucket = out.setdefault(shard, {"entries": 0, "bytes": 0})
            bucket.update(traffic)
        return out

    def entries(self) -> "list[tuple[pathlib.Path, int, float]]":
        out = []
        paths = list(self.root.glob("*.npz"))
        for child in self.root.iterdir():
            if child.is_dir() and _SHARD_NAME.match(child.name):
                paths.extend(child.glob("*.npz"))
        for path in paths:
            try:
                stat = path.stat()
            except OSError:
                continue
            out.append((path, stat.st_size, stat.st_mtime))
        out.sort(key=lambda entry: (entry[2], entry[0].name))
        return out

    def __len__(self) -> int:
        return len(self.entries())


def make_store(
    root: "str | pathlib.Path",
    *,
    prefix: int = 0,
    max_bytes: "int | None" = None,
) -> CaptureStore:
    """Open ``root`` as a flat (``prefix=0``) or sharded capture store."""
    if prefix:
        return ShardedCaptureStore(root, prefix=prefix, max_bytes=max_bytes)
    return CaptureStore(root)
