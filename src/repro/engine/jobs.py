"""Typed, hashable experiment work units.

The experiment layer is declarative (see ``docs/architecture.md``):
each experiment module *plans* a list of :class:`EvalJob`\\ s, the
engine *executes* the deduplicated job graph on a backend, and the
module *aggregates* the completed results into its table. A job is a
pure value — two modules that plan the same design point plan the
*same* job, which is what makes cross-module deduplication and
process-pool distribution trivial.

Two job kinds exist:

* ``eval`` — evaluate one (workload, frame, scenario, threshold,
  config) design point and produce the scalar metrics dict of
  :func:`~repro.engine.worker.extract_frame_metrics`. This is the
  checkpointable unit of work.
* ``capture`` — render one frame into the capture store without
  evaluating anything. Planned by figure modules that aggregate
  directly over capture state (sharpness, SSIM maps, sharing
  statistics), so the expensive rendering still parallelizes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ExperimentError

KIND_EVAL = "eval"
KIND_CAPTURE = "capture"


@dataclass(frozen=True)
class CaptureVariant:
    """The configuration axes a :class:`FrameCapture` depends on.

    Cache scaling, thresholds and hash-table sizing only affect
    *evaluation*; a capture differs only when the texture unit samples
    differently (anisotropy cap) or reads different texel layouts
    (block compression). ``None`` max_anisotropy means the base
    config's cap.
    """

    max_anisotropy: "int | None" = None
    compressed: bool = False


DEFAULT_VARIANT = CaptureVariant()


@dataclass(frozen=True)
class ConfigKey:
    """Every evaluation knob beyond (scenario, threshold).

    The defaults describe the paper's baseline design point; any field
    left at its default keeps checkpoint keys stable for the common
    sweeps.
    """

    llc_scale: int = 1
    tc_scale: int = 1
    stage2_threshold: "float | None" = None
    hash_entries: int = 16
    max_anisotropy: "int | None" = None
    compressed: bool = False
    #: Use the Section III per-draw-call software decision instead of
    #: a hardware scenario (``repro.core.software``).
    software: bool = False

    def variant(self) -> CaptureVariant:
        return CaptureVariant(
            max_anisotropy=self.max_anisotropy, compressed=self.compressed
        )


DEFAULT_CONFIG = ConfigKey()


@dataclass(frozen=True)
class EvalJob:
    """One schedulable unit of experiment work (hashable, picklable)."""

    workload: str
    frame: int
    scenario: str
    threshold: float
    config_key: ConfigKey = DEFAULT_CONFIG
    kind: str = KIND_EVAL

    def __post_init__(self) -> None:
        if self.kind not in (KIND_EVAL, KIND_CAPTURE):
            raise ExperimentError(f"unknown job kind {self.kind!r}")
        if self.frame < 0:
            raise ExperimentError(f"frame must be >= 0, got {self.frame}")

    def metrics_key(self) -> tuple:
        """The metrics-cache / checkpoint key of this design point.

        Layout must match
        :data:`repro.resilience.checkpoint.KEY_FIELDS`.
        """
        ck = self.config_key
        return (
            self.workload,
            self.frame,
            self.scenario,
            round(self.threshold, 6),
            ck.llc_scale,
            ck.tc_scale,
            None if ck.stage2_threshold is None
            else round(ck.stage2_threshold, 6),
            ck.hash_entries,
            ck.max_anisotropy,
            ck.compressed,
            ck.software,
        )

    def capture_key(self) -> "tuple[str, int, CaptureVariant]":
        """Identity of the :class:`FrameCapture` this job consumes."""
        return (self.workload, self.frame, self.config_key.variant())


def eval_job(
    workload: str,
    frame: int,
    scenario: str,
    threshold: float,
    config: ConfigKey = DEFAULT_CONFIG,
) -> EvalJob:
    """Convenience constructor for the common evaluation job."""
    return EvalJob(workload, frame, scenario, threshold, config_key=config)


def capture_job(
    workload: str, frame: int, config: ConfigKey = DEFAULT_CONFIG
) -> EvalJob:
    """A render-only job: materialize one frame's capture."""
    return EvalJob(
        workload, frame, scenario="capture", threshold=0.0,
        config_key=config, kind=KIND_CAPTURE,
    )


def dedupe_jobs(jobs: "list[EvalJob]") -> "list[EvalJob]":
    """Drop duplicate jobs, preserving first-occurrence order.

    Planned order is the engine's merge order (parallel results are
    applied in this order, not completion order), so dedup must be
    stable for ``--jobs N`` output to match serial output.
    """
    seen: "set[EvalJob]" = set()
    unique: "list[EvalJob]" = []
    for job in jobs:
        if job not in seen:
            seen.add(job)
            unique.append(job)
    return unique
