"""Remote TCP socket workers: the engine's networked pool backend.

The process backend parallelizes with a forked
``ProcessPoolExecutor``; this module provides the same executor
surface over TCP sockets, so workers can live in *other* processes
started independently of the parent — on this machine or (the store
root permitting) another one. The parent side is
:class:`RemoteWorkerPool`; the worker side is :func:`worker_main`,
reachable as ``repro worker --connect HOST:PORT``.

The wire protocol is deliberately thin — it reuses the engine's
existing contracts instead of inventing new ones:

* on connect the parent sends one pickled
  :class:`~repro.engine.worker.WorkerSpec`; the worker arms itself with
  the same :func:`~repro.engine.worker.init_worker` a forked pool
  worker runs, replies ``("ready", pid)``, and waits for tasks;
* each task is one pickled ``(fn, args)`` pair — the same module-level
  callables the process backend submits
  (:func:`~repro.engine.worker.run_job_chunk`,
  :func:`~repro.engine.tiles.run_tile_part`) pickle by reference;
* each reply is ``("ok", outcome)`` or ``("exc", exception)`` —
  chunk outcomes keep their existing shape
  (:func:`repro.resilience.guards.valid_chunk_outcome`), so results
  merge through the exact code path process-pool results do.

Every frame is length-prefixed pickle. Pickle over a socket is an
*internal, trusted* channel — identical in kind to the pipes under
``ProcessPoolExecutor`` — so the listener binds loopback by default
and the protocol must never be exposed to untrusted peers.

Failure semantics mirror the process pool on purpose: a worker that
dies (chaos kill, crash, unplugged network) surfaces as
``BrokenProcessPool`` on its futures and poisons the whole pool, a
worker that hangs blows the caller's ``future.result(timeout=...)``
deadline — exactly the two signals
:class:`~repro.engine.supervision.ChunkSupervisor` already handles, so
deadlines, bisection and quarantine apply unchanged over the network.
"""

from __future__ import annotations

import atexit
import os
import pathlib
import pickle
import queue
import socket
import struct
import subprocess
import sys
import threading
from concurrent.futures import Future
from concurrent.futures.process import BrokenProcessPool

from ..errors import ResilienceError
from ..obs import TELEMETRY
from .worker import WorkerSpec, init_worker

#: Frame header: unsigned 64-bit big-endian payload length.
_HEADER = struct.Struct(">Q")

#: Refuse absurd frames (a desynced peer, not a real payload).
_MAX_FRAME = 1 << 34

#: How long the parent waits for the worker fleet to dial in.
CONNECT_TIMEOUT_S = 60.0

#: Exit status a worker returns when its parent hangs up cleanly.
WORKER_EXIT_OK = 0


class RemoteWorkerError(ResilienceError):
    """Remote-pool setup failed (bind, spawn, or worker handshake)."""


# ----------------------------------------------------------------------
# Framing
# ----------------------------------------------------------------------


def send_frame(sock: socket.socket, obj) -> None:
    """Pickle ``obj`` and write it as one length-prefixed frame."""
    payload = pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def recv_frame(sock: socket.socket):
    """Read one frame; raises EOFError on a closed or desynced peer."""
    header = _recv_exact(sock, _HEADER.size)
    (length,) = _HEADER.unpack(header)
    if length > _MAX_FRAME:
        raise EOFError(f"oversized frame ({length} bytes): peer desynced")
    return pickle.loads(_recv_exact(sock, length))


def _recv_exact(sock: socket.socket, n: int) -> bytes:
    chunks = []
    remaining = n
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            raise EOFError("connection closed")
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------


def worker_main(host: str, port: int) -> int:
    """Run one socket worker until the parent hangs up.

    Dials ``host:port``, receives its :class:`WorkerSpec`, arms itself
    exactly like a forked pool worker, then serves one task at a time.
    Exceptions never cross as exceptions mid-protocol — they travel as
    ``("exc", error)`` frames; only chaos (``os._exit``) or a dead
    parent ends the loop.
    """
    sock = socket.create_connection((host, port), timeout=CONNECT_TIMEOUT_S)
    sock.settimeout(None)
    try:
        spec = recv_frame(sock)
        if not isinstance(spec, WorkerSpec):
            raise EOFError(f"expected WorkerSpec, got {type(spec).__name__}")
        try:
            init_worker(spec)
        except Exception as exc:  # noqa: BLE001 — shipped to the parent
            send_frame(sock, ("init_error", _portable(exc)))
            return 1
        send_frame(sock, ("ready", os.getpid()))
        while True:
            try:
                task = recv_frame(sock)
            except (EOFError, OSError):
                return WORKER_EXIT_OK  # parent hung up: clean retirement
            fn, args = task
            try:
                result = fn(*args)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 — shipped as a frame
                send_frame(sock, ("exc", _portable(exc)))
                continue
            send_frame(sock, ("ok", result))
    finally:
        try:
            sock.close()
        except OSError:
            pass


def _portable(exc: BaseException) -> BaseException:
    """An exception safe to pickle across the socket."""
    try:
        pickle.dumps(exc, protocol=pickle.HIGHEST_PROTOCOL)
        return exc
    except Exception:  # noqa: BLE001 — fall back to a plain envelope
        return RuntimeError(f"{type(exc).__name__}: {exc}")


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


class _Connection:
    """One accepted worker socket plus its dispatcher thread."""

    def __init__(self, pool: "RemoteWorkerPool", sock: socket.socket,
                 pid: "int | None") -> None:
        self.pool = pool
        self.sock = sock
        self.pid = pid
        self.thread = threading.Thread(
            target=self._dispatch, name="repro-remote-dispatch", daemon=True
        )

    def _dispatch(self) -> None:
        pool = self.pool
        while True:
            item = pool._tasks.get()
            if item is None:
                return
            fn, args, future = item
            if pool._broken or not future.set_running_or_notify_cancel():
                if not future.done():
                    future.set_exception(BrokenProcessPool(
                        "remote worker pool is broken"
                    ))
                continue
            try:
                send_frame(self.sock, (fn, args))
                status, payload = recv_frame(self.sock)
            except (OSError, EOFError) as exc:
                # The socket died mid-task: this worker is gone, and —
                # matching ProcessPoolExecutor semantics — the whole
                # pool is broken; the supervisor rebuilds it.
                future.set_exception(BrokenProcessPool(
                    f"remote worker (pid {self.pid}) died mid-task: {exc}"
                ))
                pool._mark_broken()
                return
            if status == "ok":
                future.set_result(payload)
            else:
                future.set_exception(payload)

    def close(self) -> None:
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass


class RemoteWorkerPool:
    """An executor of TCP socket workers (see module doc).

    Presents the subset of the ``concurrent.futures`` executor surface
    the engine uses (``submit``/``shutdown``), so
    :class:`~repro.engine.supervision.ChunkSupervisor` and the tile
    dispatcher drive it exactly like a process pool.

    By default the pool listens on loopback and spawns its own worker
    subprocesses (``repro worker --connect``); with ``spawn=False`` it
    only listens, and externally started workers — other machines,
    a container fleet — dial in until ``jobs`` are connected.
    """

    def __init__(
        self,
        spec: WorkerSpec,
        jobs: int,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        spawn: bool = True,
        connect_timeout: float = CONNECT_TIMEOUT_S,
    ) -> None:
        self.spec = spec
        self.jobs = jobs
        self._tasks: "queue.SimpleQueue" = queue.SimpleQueue()
        self._broken = False
        self._shutdown = False
        self._lock = threading.Lock()
        self._procs: "list[subprocess.Popen]" = []
        self._connections: "list[_Connection]" = []
        self._listener = socket.create_server(
            (host, port), backlog=max(jobs, 1)
        )
        self.address = self._listener.getsockname()[:2]
        try:
            if spawn:
                self._spawn_workers()
            self._accept_workers(connect_timeout)
        except BaseException:
            self.terminate()
            raise
        TELEMETRY.progress(
            f"remote pool: {jobs} worker(s) connected on "
            f"{self.address[0]}:{self.address[1]}"
        )

    # -- setup ----------------------------------------------------------

    def _spawn_workers(self) -> None:
        host, port = self.address
        src_root = pathlib.Path(__file__).resolve().parents[2]
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            [str(src_root)]
            + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
        )
        command = [
            sys.executable, "-m", "repro",
            "worker", "--connect", f"{host}:{port}",
        ]
        for _ in range(self.jobs):
            self._procs.append(subprocess.Popen(
                command,
                env=env,
                stdout=subprocess.DEVNULL,
                stdin=subprocess.DEVNULL,
            ))

    def _accept_workers(self, connect_timeout: float) -> None:
        self._listener.settimeout(connect_timeout)
        for _ in range(self.jobs):
            try:
                sock, _addr = self._listener.accept()
            except (socket.timeout, OSError) as exc:
                raise RemoteWorkerError(
                    f"remote pool: only {len(self._connections)} of "
                    f"{self.jobs} worker(s) connected within "
                    f"{connect_timeout:g}s: {exc}"
                ) from exc
            sock.settimeout(None)
            try:
                send_frame(sock, self.spec)
                status, payload = recv_frame(sock)
            except (OSError, EOFError) as exc:
                raise RemoteWorkerError(
                    f"remote worker handshake failed: {exc}"
                ) from exc
            if status != "ready":
                raise RemoteWorkerError(
                    f"remote worker failed to initialize: {payload}"
                )
            connection = _Connection(self, sock, payload)
            self._connections.append(connection)
            connection.thread.start()

    # -- executor surface ------------------------------------------------

    def submit(self, fn, *args) -> Future:
        """Schedule ``fn(*args)`` on the next free worker."""
        with self._lock:
            if self._broken:
                raise BrokenProcessPool("remote worker pool is broken")
            if self._shutdown:
                raise RuntimeError("cannot submit to a shut-down pool")
            future: Future = Future()
            self._tasks.put((fn, args, future))
            return future

    def _mark_broken(self) -> None:
        """Fail every queued task; the pool is done (rebuild to go on)."""
        with self._lock:
            if self._broken:
                return
            self._broken = True
        TELEMETRY.count("resilience.remote_pool_broken")
        while True:
            try:
                item = self._tasks.get_nowait()
            except queue.Empty:
                break
            if item is None:
                continue
            _fn, _args, future = item
            if not future.done():
                future.set_exception(
                    BrokenProcessPool("remote worker pool is broken")
                )

    @property
    def broken(self) -> bool:
        return self._broken

    def shutdown(self, wait: bool = True, cancel_futures: bool = False) -> None:
        """Retire the fleet: close sockets, end subprocesses."""
        with self._lock:
            if self._shutdown:
                return
            self._shutdown = True
        for _ in self._connections:
            self._tasks.put(None)
        for connection in self._connections:
            connection.close()
        if wait:
            for connection in self._connections:
                connection.thread.join(timeout=5.0)
        for proc in self._procs:
            try:
                proc.terminate()
            except OSError:
                pass
        if wait:
            for proc in self._procs:
                try:
                    proc.wait(timeout=5.0)
                except (subprocess.TimeoutExpired, OSError):
                    proc.kill()
        try:
            self._listener.close()
        except OSError:
            pass

    def terminate(self) -> None:
        """SIGKILL the fleet — the discard path for hung workers."""
        self._mark_broken()
        for proc in self._procs:
            try:
                proc.kill()
            except OSError:
                pass
        self.shutdown(wait=False)


# ----------------------------------------------------------------------
# Shared registry (mirrors the process-pool registry in scheduler.py)
# ----------------------------------------------------------------------

_MAX_REMOTE_POOLS = 2
_REMOTE_POOLS: "list[tuple[tuple, RemoteWorkerPool]]" = []


def shared_remote_pool(spec: WorkerSpec, jobs: int) -> RemoteWorkerPool:
    """The persistent remote pool for ``(spec, jobs)``, LRU-cached."""
    key = (spec, jobs)
    for i, (pool_key, pool) in enumerate(_REMOTE_POOLS):
        if pool_key != key:
            continue
        if pool.broken:
            _REMOTE_POOLS.pop(i)
            pool.terminate()
            break
        if i != len(_REMOTE_POOLS) - 1:
            _REMOTE_POOLS.append(_REMOTE_POOLS.pop(i))
        return pool
    pool = RemoteWorkerPool(spec, jobs)
    _REMOTE_POOLS.append((key, pool))
    while len(_REMOTE_POOLS) > _MAX_REMOTE_POOLS:
        _, evicted = _REMOTE_POOLS.pop(0)
        evicted.terminate()
    return pool


def discard_remote_pool(spec: WorkerSpec, jobs: int) -> bool:
    """Evict and kill the registered remote pool for ``(spec, jobs)``."""
    key = (spec, jobs)
    for i, (pool_key, pool) in enumerate(_REMOTE_POOLS):
        if pool_key == key:
            _REMOTE_POOLS.pop(i)
            pool.terminate()
            return True
    return False


def shutdown_remote_pools() -> None:
    """Tear down every shared remote pool (idempotent; atexit)."""
    while _REMOTE_POOLS:
        _, pool = _REMOTE_POOLS.pop()
        pool.terminate()


atexit.register(shutdown_remote_pools)
