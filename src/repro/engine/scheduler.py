"""Executing a planned job graph: serial and process backends.

The :class:`Engine` is the execution strategy of an
:class:`~repro.experiments.runner.ExperimentContext`; the context owns
the state (caches, failure records, checkpoint), the engine decides
*how* pending jobs turn into completed design points:

* **serial** (``jobs=1``) — each job runs in-process through exactly
  the code paths the lazy accessors use, so serial engine runs are
  byte-identical to the pre-engine imperative loops;
* **process** (``jobs>1``) — a persistent ``concurrent.futures``
  ProcessPoolExecutor, created once per (spec, jobs) in a shared
  module-level registry and reused across ``execute()`` calls *and
  contexts*, forked where the platform allows so workers
  inherit the parent's warm state (resolved workloads, imported numpy)
  instead of rebuilding it per process. Jobs travel in chunks (one IPC
  round-trip per chunk, not per job) through
  :func:`~repro.engine.worker.run_job_chunk`. Captures are rendered in
  a first wave (one job per distinct frame, so N eval jobs on a frame
  don't race N renders of it), then evaluations stream through the
  pool. **Results are merged in planned-job order, not completion
  order**, which makes ``--jobs N`` output deterministic and equal to
  serial output. Synthetic capture jobs the wave planner adds on
  behalf of eval jobs are bookkeeping-only: they never count toward
  ``executed``, so ``executed <= planned`` holds on every backend.

Failures never abort a run and never raise here: a failed job is
parked in the context's negative cache as a
:class:`~repro.errors.JobError` and replayed when aggregation touches
that design point, inside the module's normal isolation scope — so
failure *reporting* (FailureRecord footers, their ordering) is also
identical between backends and between engine and pre-engine code.

That guarantee extends to *process-level* failures: chunk dispatch
runs through :class:`~repro.engine.supervision.ChunkSupervisor`, so a
crashed or hung worker costs a pool rebuild (see :func:`discard_pool`)
and, at worst, the quarantine of the one poison job — never the run.
"""

from __future__ import annotations

import atexit
import concurrent.futures
import multiprocessing
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass

from ..errors import JobError
from ..obs import TELEMETRY
from ..resilience.faults import FAULTS
from .jobs import KIND_CAPTURE, EvalJob, capture_job, dedupe_jobs
from .supervision import ChunkSupervisor, chunk_deadline_s
from .tiles import capture_frame_tiled
from .worker import WorkerSpec, init_worker, resolve_workload, run_job_chunk

#: Target chunks per worker per wave. One big chunk per worker
#: minimizes IPC round-trips, which measurably beats finer-grained
#: work stealing here: jobs within a wave are homogeneous (same sweep,
#: same frame sizes), so imbalance from coarse chunks is small, while
#: each extra round-trip costs a fixed dispatch + unpickle fee.
_CHUNKS_PER_WORKER = 1

#: Shared worker-pool registry, LRU-ordered (most recent last). Pools
#: are keyed by (WorkerSpec, jobs) and deliberately outlive the Engine
#: that created them: forking and warming workers costs hundreds of
#: milliseconds, and a fresh ExperimentContext over the same store is
#: exactly the case where the old pool's warm caches (sessions, loaded
#: captures) are still valid. The bound keeps at most a couple of
#: worker fleets alive; evicted pools are shut down without waiting.
_MAX_POOLS = 2
_POOLS: "list[tuple[tuple, concurrent.futures.ProcessPoolExecutor]]" = []


def _shared_pool(
    spec: WorkerSpec, jobs: int
) -> concurrent.futures.ProcessPoolExecutor:
    key = (spec, jobs)
    for i, (pool_key, executor) in enumerate(_POOLS):
        if pool_key == key:
            if i != len(_POOLS) - 1:
                _POOLS.append(_POOLS.pop(i))
            return executor
    # Fork where available: workers inherit the parent's resolved
    # workloads and imported modules copy-on-write instead of
    # re-importing and re-building them per process.
    methods = multiprocessing.get_all_start_methods()
    mp_context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    executor = concurrent.futures.ProcessPoolExecutor(
        max_workers=jobs,
        mp_context=mp_context,
        initializer=init_worker,
        initargs=(spec,),
    )
    _POOLS.append((key, executor))
    while len(_POOLS) > _MAX_POOLS:
        _, evicted = _POOLS.pop(0)
        evicted.shutdown(wait=False, cancel_futures=True)
    return executor


def shutdown_pools() -> None:
    """Tear down every shared worker pool (idempotent).

    Registered atexit; call it directly to reclaim worker processes
    early (e.g. between benchmark legs with different worker counts).
    """
    while _POOLS:
        _, executor = _POOLS.pop()
        executor.shutdown(wait=True, cancel_futures=True)


def discard_pool(spec: WorkerSpec, jobs: int) -> bool:
    """Evict and kill the registered pool for ``(spec, jobs)``.

    The supervision path for broken or hung pools: the entry leaves the
    shared registry first (so a concurrent ``_shared_pool`` lookup can
    never hand out the dying executor), then the worker processes are
    killed outright — a hung worker sleeping in a syscall won't honor a
    cooperative shutdown, and SIGKILL is the only wake-up it can't
    ignore. Returns True when a pool was actually evicted.
    """
    key = (spec, jobs)
    for i, (pool_key, executor) in enumerate(_POOLS):
        if pool_key == key:
            _POOLS.pop(i)
            _terminate_pool(executor)
            return True
    return False


def _terminate_pool(executor) -> None:
    """Kill a pool's worker processes and release the executor."""
    try:
        for proc in list((getattr(executor, "_processes", None) or {}).values()):
            try:
                proc.kill()
            except (OSError, AttributeError):
                pass
    except Exception:  # noqa: BLE001 — teardown must not raise
        pass
    executor.shutdown(wait=False, cancel_futures=True)


atexit.register(shutdown_pools)


@dataclass
class ExecutionReport:
    """What one :meth:`Engine.execute` call actually did."""

    planned: int = 0
    executed: int = 0
    skipped: int = 0  # already satisfied by a cache or checkpoint
    failed: int = 0

    def __str__(self) -> str:
        return (
            f"{self.planned} job(s) planned: {self.executed} executed, "
            f"{self.skipped} cached, {self.failed} failed"
        )


class Engine:
    """Runs deduplicated job graphs for one experiment context."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.report = ExecutionReport()

    def close(self) -> None:
        """Release this engine's execution resources (idempotent).

        Worker pools are shared across engines (see :data:`_POOLS`)
        and intentionally survive a context's close so the next
        context over the same store reuses warm workers; call
        :func:`shutdown_pools` to reclaim the processes themselves.
        """

    # -- entry point ----------------------------------------------------

    def execute(self, jobs: "list[EvalJob]") -> ExecutionReport:
        ctx = self.ctx
        jobs = dedupe_jobs(jobs)
        pending = [job for job in jobs if not ctx.job_satisfied(job)]
        report = ExecutionReport(
            planned=len(jobs), skipped=len(jobs) - len(pending)
        )
        if pending:
            with TELEMETRY.span(
                "engine.execute", jobs=len(pending), backend=self.backend_name
            ):
                if ctx.jobs > 1 or self.backend_name == "remote":
                    self._execute_process(pending, report)
                else:
                    self._execute_serial(pending, report)
        self.report.planned += report.planned
        self.report.executed += report.executed
        self.report.skipped += report.skipped
        self.report.failed += report.failed
        TELEMETRY.progress(f"engine: {report}")
        return report

    @property
    def backend_name(self) -> str:
        configured = getattr(self.ctx, "backend", None)
        if configured:
            return configured
        return "process" if self.ctx.jobs > 1 else "serial"

    # -- serial backend -------------------------------------------------

    def _execute_serial(self, pending, report: ExecutionReport) -> None:
        ctx = self.ctx
        for job in pending:
            try:
                if job.kind == KIND_CAPTURE:
                    ctx.capture(
                        job.workload, job.frame,
                        variant=job.config_key.variant(),
                    )
                else:
                    ctx.frame_metrics(
                        job.workload, job.frame, job.scenario, job.threshold,
                        config=job.config_key,
                    )
                report.executed += 1
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 — parked for aggregation
                self._park_failure(job, type(exc).__name__, str(exc), report)

    # -- process backend ------------------------------------------------

    def _pool(self, spec: WorkerSpec):
        """The persistent worker pool for ``spec`` (created on demand).

        Pools live in the module-level shared registry, so they outlive
        not just one ``execute()`` call but the engine itself — worker
        warm state (cached sessions, loaded captures) carries over to
        later contexts with an identical spec and worker count. On the
        ``remote`` backend the pool is a
        :class:`~repro.engine.remote.RemoteWorkerPool` of TCP socket
        workers with the same executor surface.
        """
        if self.backend_name == "remote":
            from .remote import shared_remote_pool

            return shared_remote_pool(spec, self.ctx.jobs)
        return _shared_pool(spec, self.ctx.jobs)

    def _rebuild_pool(self, spec: WorkerSpec) -> None:
        """Kill and evict the current pool; the next use re-forks it.

        Called by the supervisor when the pool broke or a chunk blew
        its deadline. Counted as one ``resilience.pool_rebuilds`` plus
        ``jobs`` ``resilience.worker_restarts`` — the whole fleet goes
        down with the pool.
        """
        if self.backend_name == "remote":
            from .remote import discard_remote_pool

            discarded = discard_remote_pool(spec, self.ctx.jobs)
        else:
            discarded = discard_pool(spec, self.ctx.jobs)
        if discarded:
            TELEMETRY.count("resilience.pool_rebuilds")
            TELEMETRY.count("resilience.worker_restarts", self.ctx.jobs)
            TELEMETRY.progress(
                f"engine: worker pool torn down; {self.ctx.jobs} "
                "worker(s) will restart on next dispatch"
            )

    def _execute_process(self, pending, report: ExecutionReport) -> None:
        ctx = self.ctx
        store = ctx.ensure_store()
        spec = WorkerSpec(
            base_config=ctx.base_config,
            scale=ctx.scale,
            store_root=str(store.root),
            telemetry_enabled=TELEMETRY.enabled,
            fault_plan=FAULTS.plan if FAULTS.enabled else None,
            raster=ctx.raster,
            raster_tile=ctx.raster_tile,
            store_prefix=getattr(store, "prefix", 0),
        )
        # Wave 1: planned capture jobs, plus one *synthetic* render per
        # distinct (workload, frame, variant) the eval jobs need and the
        # store doesn't have yet. Without it, every eval job of a
        # threshold sweep would race to render the same frame in its
        # own worker. Synthetic jobs are bookkeeping-only — they merge
        # telemetry and store stats but never count toward ``executed``
        # (a failed synthetic render resurfaces as the dependent eval
        # job's own failure), preserving ``executed <= planned``.
        planned_captures = [job for job in pending if job.kind == KIND_CAPTURE]
        evals = [job for job in pending if job.kind != KIND_CAPTURE]
        seen_specs: "set[str]" = set()
        captures_stored = True
        missing: "list[EvalJob]" = []
        for job in planned_captures:
            wl, frame, variant = job.capture_key()
            path = store.path_for(ctx.capture_spec(wl, frame, variant))
            if not path.exists():
                captures_stored = False
                if path.name not in seen_specs:
                    missing.append(job)
            seen_specs.add(path.name)
        synthetic: "list[EvalJob]" = []
        for job in evals:
            wl, frame, variant = job.capture_key()
            cspec = ctx.capture_spec(wl, frame, variant)
            name = store.path_for(cspec).name
            if name in seen_specs:
                continue
            seen_specs.add(name)
            if not store.path_for(cspec).exists() and not ctx.has_capture(
                wl, frame, variant
            ):
                synthetic.append(capture_job(wl, frame, job.config_key))

        # Tile-level dispatch: the waves parallelize at frame
        # granularity, so when fewer distinct frames need rendering
        # than there are workers, most of the fleet would idle through
        # wave 1. Render those frames tile-parallel instead (parent
        # renders + assembles, workers texture-filter disjoint runs of
        # whole scheduling tiles — byte-identical to a serial capture,
        # see repro.engine.tiles) and publish them; each success turns
        # its capture job into a pure store hit. Failures fall back to
        # the ordinary supervised wave below.
        if 0 < len(missing) + len(synthetic) < ctx.jobs:
            self._render_tiled(missing + synthetic, spec, store)
            captures_stored = all(
                store.path_for(ctx.capture_spec(*job.capture_key())).exists()
                for job in planned_captures
            )
            synthetic = [
                job for job in synthetic
                if not store.path_for(
                    ctx.capture_spec(*job.capture_key())
                ).exists()
            ]

        # Warm the fork template: resolving each distinct workload in
        # the parent populates the lru caches every forked worker then
        # inherits, so N workers don't build the same scene N times.
        for name in dict.fromkeys(job.workload for job in pending):
            try:
                resolve_workload(name)
            except Exception:  # noqa: BLE001 — the job itself reports it
                pass

        wave1 = [(job, True) for job in planned_captures]
        wave1 += [(job, False) for job in synthetic]
        wave2 = [(job, True) for job in evals]
        # The wave barrier only exists so eval jobs never race renders
        # of their own captures; when every capture is already in the
        # store (a resumed or repeated run) there is nothing to race
        # and the barrier is pure latency — fuse into a single wave.
        if not synthetic and captures_stored:
            wave1, wave2 = wave1 + wave2, []
        supervisor = ChunkSupervisor(
            pool=lambda: self._pool(spec),
            rebuild_pool=lambda: self._rebuild_pool(spec),
            run_chunk=run_job_chunk,
            job_timeout=getattr(ctx, "job_timeout", None),
        )
        for wave in (wave1, wave2):
            if not wave:
                continue
            # Chunks become slot-index lists into the wave; since
            # _affine_chunks partitions the wave in planned order, a
            # running cursor recovers each chunk's slots.
            slot_chunks: "list[list[int]]" = []
            cursor = 0
            for chunk in self._affine_chunks(wave):
                slot_chunks.append(list(range(cursor, cursor + len(chunk))))
                cursor += len(chunk)
            outcomes = supervisor.run(
                [job for job, _ in wave], slot_chunks
            )
            # Merging in slot order *is* planned order — the
            # determinism guarantee, regardless of completion order or
            # how many retries a chunk needed.
            for slot, (job, counted) in enumerate(wave):
                self._merge(job, outcomes[slot], report, counted=counted)
        # Parked captures rendered by the capture wave satisfy the
        # original capture-kind jobs; aggregation loads them lazily
        # from the store.
        worker_lines = TELEMETRY.format_worker_summary()
        if worker_lines:
            for line in worker_lines.splitlines():
                TELEMETRY.progress(f"pool: {line}")

    def _render_tiled(
        self, jobs_list: "list[EvalJob]", spec: WorkerSpec, store
    ) -> None:
        """Render missing captures tile-parallel (see :mod:`.tiles`).

        Best-effort accelerator: each frame that succeeds is published
        to the store, each that fails is left for the supervised wave
        (which re-renders it with full retry/quarantine semantics, so
        failure *reporting* stays identical to frame-level dispatch).
        A dead pool or a blown deadline aborts the whole attempt —
        recovery from that state belongs to the supervisor.
        """
        ctx = self.ctx
        deadline = chunk_deadline_s(1, getattr(ctx, "job_timeout", None))
        for job in jobs_list:
            wl, frame, variant = job.capture_key()
            try:
                with TELEMETRY.span(
                    "engine.tile_dispatch", workload=wl, frame=frame
                ):
                    capture = capture_frame_tiled(
                        ctx._session_for(job.config_key),
                        self._pool(spec),
                        wl, frame, job.config_key, ctx.jobs,
                        timeout=deadline,
                    )
            except (KeyboardInterrupt, SystemExit):
                raise
            except (
                BrokenProcessPool, OSError, EOFError,
                concurrent.futures.TimeoutError,
            ):
                TELEMETRY.count("engine.tile_dispatch_fallbacks")
                self._rebuild_pool(spec)
                return
            except Exception as exc:  # noqa: BLE001 — wave path retries
                TELEMETRY.count("engine.tile_dispatch_fallbacks")
                TELEMETRY.progress(
                    f"engine: tile dispatch fell back for {wl} "
                    f"frame {frame}: {exc}"
                )
                continue
            store.put(ctx.capture_spec(wl, frame, variant), capture)
            TELEMETRY.count("engine.tile_dispatch_frames")

    def _affine_chunks(self, wave: "list[tuple]") -> "list[list[tuple]]":
        """Split a wave into dispatch chunks with capture affinity.

        Every distinct capture a chunk touches costs its worker one
        store load, so chunk boundaries follow runs of jobs sharing a
        capture: small runs coalesce up to the target chunk size, large
        runs become whole chunks (keeping one worker on one capture)
        and are split only when there are fewer runs than workers —
        balance then beats locality. Planned order is preserved within
        and across chunks.
        """
        jobs = self.ctx.jobs
        target = max(1, -(-len(wave) // (jobs * _CHUNKS_PER_WORKER)))
        runs: "list[list[tuple]]" = []
        last_key = object()
        for entry in wave:
            key = entry[0].capture_key()
            if runs and key == last_key:
                runs[-1].append(entry)
            else:
                runs.append([entry])
                last_key = key
        chunks: "list[list[tuple]]" = []
        current: "list[tuple]" = []
        for run in runs:
            if current and len(current) + len(run) > target:
                chunks.append(current)
                current = []
            if len(run) >= target:
                chunks.append(run)
            else:
                current.extend(run)
        if current:
            chunks.append(current)
        if len(chunks) < jobs:
            parts = -(-jobs // len(chunks))
            split: "list[list[tuple]]" = []
            for chunk in chunks:
                size = max(1, -(-len(chunk) // parts))
                split.extend(
                    chunk[i:i + size] for i in range(0, len(chunk), size)
                )
            chunks = split
        return chunks

    def _merge(
        self,
        job: EvalJob,
        outcome: tuple,
        report: ExecutionReport,
        *,
        counted: bool = True,
    ) -> None:
        ctx = self.ctx
        status, payload = outcome[0], outcome[1]
        TELEMETRY.merge_remote(outcome[-3])
        FAULTS.merge_injected(outcome[-2])
        store = ctx.capture_store
        if store is not None:
            delta = outcome[-1]
            hits, misses, writes, corrupt = delta[:4]
            store.stats.hits += hits
            store.stats.misses += misses
            store.stats.writes += writes
            store.stats.corrupt += corrupt
            shards = delta[4] if len(delta) > 4 else None
            merge_traffic = getattr(store, "merge_traffic", None)
            if shards and merge_traffic is not None:
                merge_traffic(shards)
        if status == "ok":
            if counted:
                report.executed += 1
            if job.kind != KIND_CAPTURE and payload is not None:
                TELEMETRY.count("experiment.evaluations")
                ctx.store_metrics(job.metrics_key(), payload)
        elif counted:
            _status, etype, message = outcome[0], outcome[1], outcome[2]
            self._park_failure(job, etype, message, report)

    # -- shared ---------------------------------------------------------

    def _park_failure(
        self, job: EvalJob, etype: str, message: str, report: ExecutionReport
    ) -> None:
        report.failed += 1
        TELEMETRY.count("engine.job_failures")
        self.ctx.park_failure(job, JobError(etype, message))
