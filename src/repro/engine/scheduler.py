"""Executing a planned job graph: serial and process backends.

The :class:`Engine` is the execution strategy of an
:class:`~repro.experiments.runner.ExperimentContext`; the context owns
the state (caches, failure records, checkpoint), the engine decides
*how* pending jobs turn into completed design points:

* **serial** (``jobs=1``) — each job runs in-process through exactly
  the code paths the lazy accessors use, so serial engine runs are
  byte-identical to the pre-engine imperative loops;
* **process** (``jobs>1``) — a ``concurrent.futures``
  ProcessPoolExecutor, initialized once per worker with a
  :class:`~repro.engine.worker.WorkerSpec`. Captures are rendered in a
  first wave (one job per distinct frame, so N eval jobs on a frame
  don't race N renders of it), then evaluations stream through the
  pool. **Results are merged in planned-job order, not completion
  order**, which makes ``--jobs N`` output deterministic and equal to
  serial output.

Failures never abort a run and never raise here: a failed job is
parked in the context's negative cache as a
:class:`~repro.errors.JobError` and replayed when aggregation touches
that design point, inside the module's normal isolation scope — so
failure *reporting* (FailureRecord footers, their ordering) is also
identical between backends and between engine and pre-engine code.
"""

from __future__ import annotations

import concurrent.futures
from dataclasses import dataclass

from ..errors import JobError
from ..obs import TELEMETRY
from ..resilience.faults import FAULTS
from .jobs import KIND_CAPTURE, EvalJob, capture_job, dedupe_jobs
from .worker import WorkerSpec, init_worker, run_job


@dataclass
class ExecutionReport:
    """What one :meth:`Engine.execute` call actually did."""

    planned: int = 0
    executed: int = 0
    skipped: int = 0  # already satisfied by a cache or checkpoint
    failed: int = 0

    def __str__(self) -> str:
        return (
            f"{self.planned} job(s) planned: {self.executed} executed, "
            f"{self.skipped} cached, {self.failed} failed"
        )


class Engine:
    """Runs deduplicated job graphs for one experiment context."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.report = ExecutionReport()

    # -- entry point ----------------------------------------------------

    def execute(self, jobs: "list[EvalJob]") -> ExecutionReport:
        ctx = self.ctx
        jobs = dedupe_jobs(jobs)
        pending = [job for job in jobs if not ctx.job_satisfied(job)]
        report = ExecutionReport(
            planned=len(jobs), skipped=len(jobs) - len(pending)
        )
        if pending:
            with TELEMETRY.span(
                "engine.execute", jobs=len(pending), backend=self.backend_name
            ):
                if ctx.jobs > 1:
                    self._execute_process(pending, report)
                else:
                    self._execute_serial(pending, report)
        self.report.planned += report.planned
        self.report.executed += report.executed
        self.report.skipped += report.skipped
        self.report.failed += report.failed
        TELEMETRY.progress(f"engine: {report}")
        return report

    @property
    def backend_name(self) -> str:
        return "process" if self.ctx.jobs > 1 else "serial"

    # -- serial backend -------------------------------------------------

    def _execute_serial(self, pending, report: ExecutionReport) -> None:
        ctx = self.ctx
        for job in pending:
            try:
                if job.kind == KIND_CAPTURE:
                    ctx.capture(
                        job.workload, job.frame,
                        variant=job.config_key.variant(),
                    )
                else:
                    ctx.frame_metrics(
                        job.workload, job.frame, job.scenario, job.threshold,
                        config=job.config_key,
                    )
                report.executed += 1
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 — parked for aggregation
                self._park_failure(job, type(exc).__name__, str(exc), report)

    # -- process backend ------------------------------------------------

    def _execute_process(self, pending, report: ExecutionReport) -> None:
        ctx = self.ctx
        store = ctx.ensure_store()
        spec = WorkerSpec(
            base_config=ctx.base_config,
            scale=ctx.scale,
            store_root=str(store.root),
            telemetry_enabled=TELEMETRY.enabled,
            fault_plan=FAULTS.plan if FAULTS.enabled else None,
        )
        # Wave 1: one render per distinct (workload, frame, variant) any
        # pending job needs and the store doesn't have yet. Without it,
        # every eval job of a threshold sweep would race to render the
        # same frame in its own worker.
        captures: "list[EvalJob]" = []
        seen_specs: "set[str]" = set()
        for job in pending:
            wl, frame, variant = job.capture_key()
            cspec = ctx.capture_spec(wl, frame, variant)
            name = store.path_for(cspec).name
            if name in seen_specs:
                continue
            seen_specs.add(name)
            if not store.path_for(cspec).exists() and not ctx.has_capture(
                wl, frame, variant
            ):
                captures.append(capture_job(wl, frame, job.config_key))
        evals = [job for job in pending if job.kind != KIND_CAPTURE]

        executor = concurrent.futures.ProcessPoolExecutor(
            max_workers=ctx.jobs, initializer=init_worker, initargs=(spec,)
        )
        try:
            for wave in (captures, evals):
                futures = [(job, executor.submit(run_job, job)) for job in wave]
                # Submission order *is* planned order; consuming the
                # futures in this order is the determinism guarantee.
                for job, future in futures:
                    self._merge(job, future.result(), report)
        finally:
            executor.shutdown(wait=True, cancel_futures=True)
        # Parked captures rendered by the capture wave satisfy the
        # original capture-kind jobs; aggregation loads them lazily
        # from the store.

    def _merge(self, job: EvalJob, outcome: tuple, report: ExecutionReport) -> None:
        ctx = self.ctx
        status, payload = outcome[0], outcome[1]
        TELEMETRY.merge_remote(outcome[-3])
        FAULTS.merge_injected(outcome[-2])
        store = ctx.capture_store
        if store is not None:
            hits, misses, writes = outcome[-1]
            store.stats.hits += hits
            store.stats.misses += misses
            store.stats.writes += writes
        if status == "ok":
            report.executed += 1
            if job.kind != KIND_CAPTURE and payload is not None:
                TELEMETRY.count("experiment.evaluations")
                ctx.store_metrics(job.metrics_key(), payload)
        else:
            _status, etype, message = outcome[0], outcome[1], outcome[2]
            self._park_failure(job, etype, message, report)

    # -- shared ---------------------------------------------------------

    def _park_failure(
        self, job: EvalJob, etype: str, message: str, report: ExecutionReport
    ) -> None:
        report.failed += 1
        TELEMETRY.count("engine.job_failures")
        self.ctx.park_failure(job, JobError(etype, message))
