"""Worker supervision for the process backend: deadlines, retry, quarantine.

The scheduler's happy path assumes workers are immortal: it submits
chunks and blocks on their futures. A single crashed worker then kills
the whole ``--jobs N`` run with ``BrokenProcessPool``, and a hung
worker blocks ``execute()`` forever. The :class:`ChunkSupervisor`
wraps chunk dispatch with the fault-handling the paper's thesis
implies for the systems layer — degrade the *run*, never the surviving
results:

* **deadlines** — every chunk gets a wall-clock budget derived from
  its job count (:func:`chunk_deadline_s`); a chunk that blows it has
  its pool's workers killed and rebuilt;
* **crash detection** — ``BrokenProcessPool`` (a worker died) and
  structurally invalid result payloads (truncated/corrupted IPC, see
  :func:`repro.resilience.guards.valid_chunk_outcomes`) are caught,
  counted, and converted into retries instead of run aborts;
* **bisection** — a failing multi-job chunk is split in half and the
  halves retried *solo* (one chunk in flight), so responsibility for
  the failure converges on the single poison job;
* **quarantine** — a single job that keeps killing its worker is
  retired as a synthesized ``err`` outcome, which the engine parks as
  a :class:`~repro.errors.JobError` in the context's negative cache —
  exactly the path in-band job failures already take, so quarantined
  jobs surface as the same FailureRecord footers, and every *other*
  design point stays byte-identical to a serial run.

Two phases keep attribution honest. The *pipelined* phase submits all
chunks at once for throughput; when the pool breaks there, every
in-flight future fails at once, so innocent chunks are requeued
without charging them an attempt. The *solo recovery* phase runs one
chunk at a time — any failure there is unambiguously that chunk's.

Telemetry: ``resilience.worker_restarts`` / ``resilience.pool_rebuilds``
(counted by the scheduler's rebuild callback), and per-event
``resilience.chunk_retries`` / ``resilience.jobs_quarantined`` /
``resilience.corrupt_chunks`` / ``resilience.deadline_expirations``
counted here — all of which flow into the run ledger.
"""

from __future__ import annotations

import collections
import concurrent.futures
import time
from concurrent.futures.process import BrokenProcessPool

from ..obs import TELEMETRY
from ..resilience.guards import valid_chunk_outcomes

#: Default per-job wall-clock budget (seconds). Generous on purpose:
#: deadlines exist to reap *hung* workers, not to race healthy ones —
#: the slowest legitimate job (a full-resolution stereo render on a
#: loaded CI box) must fit with a wide margin. ``--job-timeout``
#: overrides it; 0 disables deadlines entirely.
DEFAULT_JOB_TIMEOUT_S = 300.0

#: Solo attempts a single-job chunk gets before quarantine. Each
#: attempt against a crashing job costs a pool rebuild, so the bound
#: is deliberately small: one failure to implicate the job, one more
#: to rule out a coincidence.
MAX_JOB_ATTEMPTS = 2

#: Base of the linear retry backoff (seconds); sleeps grow with the
#: chunk's attempt count and cap at 1 s.
RETRY_BACKOFF_S = 0.05

#: Exceptions that mean "the pool (or its IPC channel) died", as
#: opposed to a payload problem.
_POOL_FAILURES = (BrokenProcessPool, OSError, EOFError)


def chunk_deadline_s(
    n_jobs: int, job_timeout: "float | None"
) -> "float | None":
    """Wall-clock budget for one chunk, or None when deadlines are off.

    The budget is ``per-job timeout x (jobs + 1)`` — linear in the
    work, with one extra job's worth of slack for dispatch, store I/O
    and interpreter startup noise.
    """
    per_job = DEFAULT_JOB_TIMEOUT_S if job_timeout is None else job_timeout
    if per_job <= 0:
        return None
    return per_job * (n_jobs + 1)


class ChunkSupervisor:
    """Runs one wave's chunks to completion despite dying workers.

    Parameters are callbacks so the supervisor stays decoupled from
    the pool registry: ``pool()`` returns the current executor
    (creating it on demand), ``rebuild_pool()`` kills and evicts it
    (the next ``pool()`` call forks a fresh one), ``run_chunk`` is the
    picklable function submitted per chunk.
    """

    def __init__(
        self,
        *,
        pool,
        rebuild_pool,
        run_chunk,
        job_timeout: "float | None" = None,
        max_attempts: int = MAX_JOB_ATTEMPTS,
        backoff_s: float = RETRY_BACKOFF_S,
    ) -> None:
        self._pool = pool
        self._rebuild_pool = rebuild_pool
        self._run_chunk = run_chunk
        self.job_timeout = job_timeout
        self.max_attempts = max(1, max_attempts)
        self.backoff_s = backoff_s

    # -- entry point ----------------------------------------------------

    def run(
        self, jobs: "list", chunks: "list[list[int]]"
    ) -> "dict[int, tuple]":
        """Execute every chunk; returns an outcome for *every* slot.

        ``chunks`` holds slot indices into ``jobs`` (planned order).
        Successful slots map to the worker's outcome tuple; quarantined
        slots map to a synthesized ``err`` outcome, so the caller's
        merge loop handles both uniformly and never sees a hole.
        """
        results: "dict[int, tuple]" = {}
        queue: "collections.deque[tuple[tuple[int, ...], int]]" = (
            collections.deque((tuple(chunk), 0) for chunk in chunks)
        )
        self._pipelined_phase(jobs, queue, results)
        while queue:
            self._solo_attempt(jobs, queue.popleft(), queue, results)
        return results

    # -- pipelined phase ------------------------------------------------

    def _pipelined_phase(self, jobs, queue, results) -> None:
        """Submit everything at once; demote failures to the queue.

        Collateral chunks of a pool break are requeued *without* an
        attempt charge — when the pool dies, every in-flight future
        fails, and only the solo phase can tell whose fault it was.
        """
        if not queue:
            return
        executor = self._pool()
        submitted = []
        broken = False
        while queue:
            slots, attempts = queue.popleft()
            try:
                future = executor.submit(
                    self._run_chunk, [jobs[i] for i in slots]
                )
            except Exception:  # noqa: BLE001 — pool already broken
                queue.appendleft((slots, attempts))
                self._rebuild_pool()
                broken = True
                break
            submitted.append((slots, attempts, future))
        # Submission order *is* planned order; consuming the futures in
        # this order is (still) the determinism guarantee.
        for slots, attempts, future in submitted:
            if broken:
                self._harvest(slots, attempts, future, queue, results)
                continue
            try:
                outcomes = future.result(
                    timeout=chunk_deadline_s(len(slots), self.job_timeout)
                )
            except concurrent.futures.TimeoutError:
                TELEMETRY.count("resilience.deadline_expirations")
                TELEMETRY.count("resilience.chunk_retries")
                TELEMETRY.progress(
                    f"supervisor: chunk of {len(slots)} job(s) missed its "
                    "deadline; killing workers and retrying"
                )
                queue.append((slots, attempts + 1))
                self._rebuild_pool()
                broken = True
            except _POOL_FAILURES as exc:
                TELEMETRY.count("resilience.chunk_retries")
                TELEMETRY.progress(
                    f"supervisor: worker pool broke under a chunk of "
                    f"{len(slots)} job(s) ({type(exc).__name__}); "
                    "rebuilding and retrying"
                )
                queue.append((slots, attempts))
                self._rebuild_pool()
                broken = True
            except Exception:  # noqa: BLE001 — result deserialization
                TELEMETRY.count("resilience.corrupt_chunks")
                TELEMETRY.count("resilience.chunk_retries")
                queue.append((slots, attempts + 1))
            else:
                if valid_chunk_outcomes(outcomes, len(slots)):
                    results.update(zip(slots, outcomes))
                else:
                    TELEMETRY.count("resilience.corrupt_chunks")
                    TELEMETRY.count("resilience.chunk_retries")
                    TELEMETRY.progress(
                        "supervisor: corrupted result payload for a chunk "
                        f"of {len(slots)} job(s); retrying"
                    )
                    queue.append((slots, attempts + 1))

    def _harvest(self, slots, attempts, future, queue, results) -> None:
        """Salvage a future after the pool broke mid-wave.

        Chunks that finished before the break keep their results;
        everything else goes back on the queue uncharged.
        """
        outcomes = None
        if future.done():
            try:
                outcomes = future.result(timeout=0)
            except Exception:  # noqa: BLE001 — died with the pool
                outcomes = None
        if outcomes is not None and valid_chunk_outcomes(outcomes, len(slots)):
            results.update(zip(slots, outcomes))
        else:
            queue.append((slots, attempts))

    # -- solo recovery phase --------------------------------------------

    def _solo_attempt(self, jobs, entry, queue, results) -> None:
        """One chunk, alone in the pool — failures are *its* failures."""
        slots, attempts = entry
        if attempts:
            time.sleep(min(1.0, self.backoff_s * attempts))
        try:
            executor = self._pool()
            future = executor.submit(
                self._run_chunk, [jobs[i] for i in slots]
            )
            outcomes = future.result(
                timeout=chunk_deadline_s(len(slots), self.job_timeout)
            )
        except concurrent.futures.TimeoutError:
            TELEMETRY.count("resilience.deadline_expirations")
            self._rebuild_pool()
            deadline = chunk_deadline_s(len(slots), self.job_timeout)
            self._failed(
                slots, attempts + 1, queue, results,
                "WorkerTimeoutError",
                f"worker exceeded the {deadline:.1f}s chunk deadline",
            )
            return
        except _POOL_FAILURES as exc:
            self._rebuild_pool()
            self._failed(
                slots, attempts + 1, queue, results,
                "WorkerCrashError",
                f"worker process died ({type(exc).__name__}: {exc})",
            )
            return
        except Exception as exc:  # noqa: BLE001 — result deserialization
            TELEMETRY.count("resilience.corrupt_chunks")
            self._failed(
                slots, attempts + 1, queue, results,
                "ChunkCorruptionError",
                f"chunk result failed to deserialize "
                f"({type(exc).__name__}: {exc})",
            )
            return
        if valid_chunk_outcomes(outcomes, len(slots)):
            results.update(zip(slots, outcomes))
        else:
            TELEMETRY.count("resilience.corrupt_chunks")
            self._failed(
                slots, attempts + 1, queue, results,
                "ChunkCorruptionError",
                "truncated or corrupted chunk result payload",
            )

    def _failed(
        self, slots, attempts, queue, results, etype: str, message: str
    ) -> None:
        """Bisect a guilty multi-job chunk; retire a guilty single job."""
        TELEMETRY.count("resilience.chunk_retries")
        if len(slots) > 1:
            mid = len(slots) // 2
            queue.append((slots[:mid], attempts))
            queue.append((slots[mid:], attempts))
            return
        if attempts >= self.max_attempts:
            self._quarantine(slots[0], results, etype, message)
        else:
            queue.append((slots, attempts))

    def _quarantine(self, slot, results, etype: str, message: str) -> None:
        TELEMETRY.count("resilience.jobs_quarantined")
        TELEMETRY.progress(
            f"supervisor: quarantined job after {self.max_attempts} "
            f"attempt(s): {etype}: {message}"
        )
        results[slot] = (
            "err", etype,
            f"quarantined after {self.max_attempts} attempt(s): {message}",
            None, None, (0, 0, 0, 0),
        )
