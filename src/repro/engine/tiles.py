"""Tile-level dispatch: parallelizing ONE frame's capture across workers.

The wave planner parallelizes at frame granularity — one capture job
per distinct (workload, frame, variant). When an execute() call needs
fewer distinct frames than there are pool workers (the common case for
a resumed sweep that misses one frame, or a small ``--frames 1`` run),
frame-level dispatch leaves most of the fleet idle during wave 1.

This module splits a single capture *within* the frame instead, along
the renderer's own scheduling-tile order:

* the **parent** renders the G-buffer (cheap since the sort-middle
  raster rewrite), computes the tile-ordered pixel schedule, and cuts
  it into per-worker runs of whole scheduling tiles;
* each **worker** renders the same deterministic G-buffer once (cached
  per process) and texture-filters its pixel run — the expensive phase
  of a capture;
* the parent concatenates the parts in tile order and publishes the
  assembled capture to the store, turning the original capture jobs
  into pure store hits.

Byte-identity with a serial capture is structural, not incidental:
:meth:`~repro.renderer.session.RenderSession.filter_pixels` is
per-pixel/per-quad local and quads never span scheduling tiles, so
filtering any union of whole tiles yields exactly the rows the
full-frame pass produces, and
:meth:`~repro.renderer.session.RenderSession.assemble_capture`
recomputes the one global structure (the CSR ``row_ptr``) from the
concatenated parts. ``tests/engine/test_tile_dispatch.py`` locks this
in by comparing against a serial capture array-for-array.

Failure policy: tile dispatch is a best-effort accelerator. Any error
— a worker exception, a dead pool, a deadline — makes the caller fall
back to the ordinary supervised frame-level wave, which re-renders the
frame with full retry/quarantine semantics. Worker-side telemetry for
tile parts is deliberately *not* merged: the parent's own render
already counted the frame's ``raster.*`` metrics once, exactly as a
serial capture would.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PipelineError
from ..geometry.tiling import tile_pixel_order
from ..renderer.session import FrameCapture
from .jobs import ConfigKey

__all__ = [
    "TilePart",
    "capture_frame_tiled",
    "run_tile_part",
    "split_tile_ranges",
]


@dataclass(frozen=True)
class TilePart:
    """One worker's slice of a frame capture: pixels ``[lo, hi)``.

    ``lo``/``hi`` index the frame's tile-ordered pixel schedule (the
    output of :func:`~repro.geometry.tiling.tile_pixel_order`), which
    every process derives identically from the deterministic render —
    so a pair of integers is enough to name the slice across the
    process boundary.
    """

    workload: str
    frame: int
    config_key: ConfigKey
    lo: int
    hi: int


def split_tile_ranges(
    tile_ids: np.ndarray, parts: int
) -> "list[tuple[int, int]]":
    """Cut ``[0, len(tile_ids))`` into at most ``parts`` ranges.

    Cuts land only on scheduling-tile boundaries (``tile_ids`` is
    ascending in schedule order), so every range is a run of whole
    tiles — the unit :meth:`RenderSession.filter_pixels` is local to.
    Ranges are near-equal in pixel count, ascending, and exactly cover
    the schedule.
    """
    n = int(tile_ids.shape[0])
    if n == 0:
        return []
    if parts <= 1:
        return [(0, n)]
    bounds = np.flatnonzero(np.diff(tile_ids)) + 1
    bounds = np.concatenate([[0], bounds, [n]])
    ideal = (np.arange(1, parts, dtype=np.int64) * n) // parts
    snapped = bounds[np.minimum(np.searchsorted(bounds, ideal), bounds.size - 1)]
    cuts = np.unique(np.concatenate([[0], snapped, [n]]))
    return [
        (int(cuts[i]), int(cuts[i + 1]))
        for i in range(cuts.size - 1)
        if cuts[i + 1] > cuts[i]
    ]


# ----------------------------------------------------------------------
# Worker side
# ----------------------------------------------------------------------

#: Per-process cache of the last rendered frame (single entry: a
#: G-buffer is large, and the parts of one dispatch arrive
#: back-to-back, so deeper history would only hold dead arrays alive).
_RENDER_CACHE: "dict[tuple, tuple]" = {}


def _rendered_schedule(state, part: TilePart) -> tuple:
    """(workload, rendered, rows, cols, tile_ids) for ``part``'s frame."""
    from .worker import resolve_workload, session_cache_key

    session = state.session(part.config_key)
    key = (part.workload, part.frame, session_cache_key(part.config_key))
    hit = _RENDER_CACHE.get(key)
    if hit is not None:
        return hit
    workload = resolve_workload(part.workload)
    rendered = session.render_frame(workload, part.frame)
    rows, cols, tile_ids = tile_pixel_order(
        rendered.gbuffer.coverage_mask, session.config.tile_size
    )
    _RENDER_CACHE.clear()
    value = (workload, rendered, rows, cols, tile_ids)
    _RENDER_CACHE[key] = value
    return value


def run_tile_part(part: TilePart) -> tuple:
    """Filter one tile range in a pool worker.

    Returns ``("ok", part_dict)`` or ``("err", error_type, message)``
    — like :func:`~repro.engine.worker.run_job`, exceptions never
    cross the process boundary as exceptions.
    """
    from .worker import _STATE

    assert _STATE is not None, "run_tile_part before init_worker"
    try:
        session = _STATE.session(part.config_key)
        workload, rendered, rows, cols, tile_ids = _rendered_schedule(
            _STATE, part
        )
        lo, hi = part.lo, part.hi
        return ("ok", session.filter_pixels(
            workload, rendered, rows[lo:hi], cols[lo:hi], tile_ids[lo:hi]
        ))
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # noqa: BLE001 — shipped as data
        return ("err", type(exc).__name__, str(exc))


# ----------------------------------------------------------------------
# Parent side
# ----------------------------------------------------------------------


def capture_frame_tiled(
    session,
    executor,
    workload_name: str,
    frame: int,
    config_key: ConfigKey,
    parts: int,
    *,
    timeout: "float | None" = None,
) -> FrameCapture:
    """Capture one frame with its texture filtering fanned out in tiles.

    ``session`` must be the parent's session for ``config_key`` (the
    same one a serial capture would use); ``executor`` is the shared
    worker pool. Raises on any worker error or deadline — the caller
    falls back to frame-level dispatch.
    """
    from .worker import resolve_workload

    workload = resolve_workload(workload_name)
    rendered = session.render_frame(workload, frame)
    rows, cols, tile_ids = tile_pixel_order(
        rendered.gbuffer.coverage_mask, session.config.tile_size
    )
    if rows.size == 0:
        raise PipelineError(
            f"frame {frame} of {workload.name} produced no fragments"
        )
    ranges = split_tile_ranges(tile_ids, parts)
    futures = [
        executor.submit(
            run_tile_part,
            TilePart(workload_name, frame, config_key, lo, hi),
        )
        for lo, hi in ranges
    ]
    filtered = []
    for future in futures:
        outcome = future.result(timeout=timeout)
        if outcome[0] != "ok":
            raise PipelineError(
                f"tile part failed: {outcome[1]}: {outcome[2]}"
            )
        filtered.append(outcome[1])
    return session.assemble_capture(workload, frame, rendered, filtered)
