"""The shared job-execution core (parent process and pool workers).

Serial and parallel execution must be bit-for-bit identical, so both
go through the exact same functions: :func:`resolve_workload`,
:func:`build_session`, :func:`evaluate_job` and
:func:`extract_frame_metrics`. The parent's
:class:`~repro.experiments.runner.ExperimentContext` calls them
directly; the process backend calls them through the module-level
worker state initialized by :func:`init_worker`.

A pool worker is deliberately thin: one :class:`WorkerSpec` (picklable
configuration snapshot) arms telemetry and fault injection, sessions
are cached per derived configuration, and captures flow through the
shared on-disk :class:`~repro.engine.capture_store.CaptureStore` — a
worker that misses renders and publishes atomically, so concurrent
workers converge on one stored copy per frame.
"""

from __future__ import annotations

import gc
import os
import time
from dataclasses import dataclass
from dataclasses import replace as dataclasses_replace

from ..config import GpuConfig
from ..core.scenarios import get_scenario
from ..errors import WorkloadError
from ..obs import TELEMETRY
from ..renderer.pipeline import DEFAULT_RASTER, DEFAULT_RASTER_TILE
from ..renderer.session import FrameCapture, FrameResult, RenderSession
from ..resilience.faults import FAULTS, FaultPlan
from ..workloads.fuzz import FUZZ_PREFIX, fuzz_workload, parse_fuzz_request
from ..workloads.games import get_workload
from ..workloads.rbench import rbench_workload
from ..workloads.scene import Workload
from ..workloads.vr import vr_workload
from .capture_store import capture_spec, make_store
from .jobs import KIND_EVAL, CaptureVariant, ConfigKey, EvalJob

#: Workload-request prefix for stereo variants: ``"VR@2:doom3-1280x1024"``
#: is the two-time-step stereo render of ``doom3-1280x1024``.
VR_PREFIX = "VR@"


def resolve_workload(name: str) -> Workload:
    """Build the workload a request name describes.

    Request names are the engine's workload identity (they key both
    job hashes and capture-store entries), so everything an experiment
    can render must be expressible as a name: Table II games,
    ``R.Bench-{2K,4K}``, ``VR@{steps}:{base}`` stereo variants, and
    ``fuzz@{seed}[:profile]`` generated scenarios.
    """
    if name.startswith(FUZZ_PREFIX):
        return fuzz_workload(*parse_fuzz_request(name))
    if name.startswith(VR_PREFIX):
        head, _, base = name[len(VR_PREFIX):].partition(":")
        if not base:
            raise WorkloadError(
                f"malformed VR workload request {name!r}; "
                f"expected 'VR@<steps>:<base workload>'"
            )
        try:
            steps = int(head)
        except ValueError:
            raise WorkloadError(
                f"malformed VR time-step count in {name!r}"
            ) from None
        return vr_workload(base, time_steps=steps)
    if name.startswith("R.Bench"):
        return rbench_workload(name.split("-", 1)[1])
    return get_workload(name)


def vr_request(base_name: str, time_steps: int) -> str:
    """The request name of a stereo workload (see :func:`resolve_workload`)."""
    return f"{VR_PREFIX}{time_steps}:{base_name}"


def derive_config(base: GpuConfig, key: ConfigKey) -> GpuConfig:
    """The GPU configuration a job's :class:`ConfigKey` describes."""
    config = base
    if key.llc_scale != 1 or key.tc_scale != 1:
        config = config.scaled(
            texture_l1=key.tc_scale, texture_l2=key.llc_scale
        )
    if key.max_anisotropy is not None:
        config = dataclasses_replace(
            config,
            texture_unit=dataclasses_replace(
                config.texture_unit, max_anisotropy=key.max_anisotropy
            ),
        )
    return config


def build_session(
    base_config: GpuConfig,
    scale: float,
    key: ConfigKey,
    *,
    raster: str = DEFAULT_RASTER,
    raster_tile: int = DEFAULT_RASTER_TILE,
) -> RenderSession:
    """One render session for a job configuration (parent and workers)."""
    return RenderSession(
        derive_config(base_config, key),
        scale=scale,
        compressed_textures=key.compressed,
        raster=raster,
        raster_tile=raster_tile,
    )


def session_cache_key(key: ConfigKey) -> tuple:
    """The ConfigKey axes that actually change a session.

    ``stage2_threshold``, ``hash_entries`` and ``software`` are
    evaluate-time knobs; sessions differing only in those are shared.
    """
    return (key.llc_scale, key.tc_scale, key.max_anisotropy, key.compressed)


def effective_variant(
    base_config: GpuConfig, variant: CaptureVariant
) -> CaptureVariant:
    """Normalize a capture variant against the base configuration.

    An explicit anisotropy cap equal to the base cap renders the same
    capture as no cap at all; folding them together deduplicates both
    the in-memory cache and the store key.
    """
    cap = variant.max_anisotropy
    if cap is None or cap == base_config.texture_unit.max_anisotropy:
        return CaptureVariant(max_anisotropy=None, compressed=variant.compressed)
    return variant


def capture_spec_for(
    workload: str,
    frame: int,
    *,
    base_config: GpuConfig,
    scale: float,
    variant: CaptureVariant,
    raster: str = DEFAULT_RASTER,
    raster_tile: int = DEFAULT_RASTER_TILE,
) -> "dict[str, object]":
    """The capture-store spec of one (workload, frame, variant)."""
    variant = effective_variant(base_config, variant)
    cap = (
        base_config.texture_unit.max_anisotropy
        if variant.max_anisotropy is None
        else variant.max_anisotropy
    )
    return capture_spec(
        workload,
        frame,
        scale=scale,
        tile_size=base_config.tile_size,
        max_anisotropy=cap,
        compressed=variant.compressed,
        raster=raster,
        raster_tile=raster_tile,
    )


def evaluate_job(
    session: RenderSession, capture: FrameCapture, job: EvalJob
) -> FrameResult:
    """Evaluate one planned design point (the shared hot path)."""
    key = job.config_key
    if key.software:
        return session.evaluate_software(capture, job.threshold)
    return session.evaluate(
        capture,
        get_scenario(job.scenario),
        job.threshold,
        stage2_threshold=key.stage2_threshold,
        hash_entries=key.hash_entries,
    )


def extract_frame_metrics(r: FrameResult) -> "dict[str, float]":
    """The scalar metrics dict persisted per (frame, design point)."""
    return {
        "cycles": r.frame_cycles,
        "mssim": r.mssim,
        "energy_nj": r.total_energy_nj,
        "request_latency": r.request_latency,
        "approximation_rate": r.approximation_rate,
        "quad_divergence": r.quad_divergence,
        "dram_bytes": float(r.hierarchy.dram_bytes),
        "texture_bytes": float(r.bandwidth.texture_bytes),
        "color_bytes": float(r.bandwidth.color_bytes),
        "depth_bytes": float(r.bandwidth.depth_bytes),
        "geometry_bytes": float(r.bandwidth.geometry_bytes),
        "total_bytes": float(r.bandwidth.total_bytes),
        "fps": r.fps,
        "trilinear": float(r.events.trilinear_samples),
        "degraded_pixels": float(r.degraded_pixels),
    }


# ----------------------------------------------------------------------
# Pool-worker process state
# ----------------------------------------------------------------------


@dataclass(frozen=True)
class WorkerSpec:
    """Everything a pool worker needs, as one picklable value."""

    base_config: GpuConfig
    scale: float
    store_root: str
    telemetry_enabled: bool = False
    fault_plan: "FaultPlan | None" = None
    raster: str = DEFAULT_RASTER
    raster_tile: int = DEFAULT_RASTER_TILE
    #: Shard-prefix width of the capture store (0 = flat layout); every
    #: worker must open the store with the same layout as the parent.
    store_prefix: int = 0


class _WorkerState:
    """Per-process caches behind :func:`run_job`."""

    def __init__(self, spec: WorkerSpec) -> None:
        self.spec = spec
        self.store = make_store(
            spec.store_root, prefix=spec.store_prefix
        )
        self._sessions: "dict[tuple, RenderSession]" = {}
        self._captures: "dict[tuple, FrameCapture]" = {}

    def session(self, key: ConfigKey) -> RenderSession:
        cache_key = session_cache_key(key)
        session = self._sessions.get(cache_key)
        if session is None:
            session = self._sessions[cache_key] = build_session(
                self.spec.base_config, self.spec.scale, key,
                raster=self.spec.raster, raster_tile=self.spec.raster_tile,
            )
        return session

    def capture(self, workload: str, frame: int, key: ConfigKey) -> FrameCapture:
        variant = effective_variant(self.spec.base_config, key.variant())
        cache_key = (workload, frame, variant)
        capture = self._captures.get(cache_key)
        if capture is not None:
            return capture
        spec = capture_spec_for(
            workload, frame,
            base_config=self.spec.base_config,
            scale=self.spec.scale,
            variant=variant,
            raster=self.spec.raster,
            raster_tile=self.spec.raster_tile,
        )
        capture = self.store.get(spec)
        if capture is None:
            session = self.session(key)
            capture = session.capture_frame(resolve_workload(workload), frame)
            self.store.put(spec, capture)
        self._captures[cache_key] = capture
        return capture


_STATE: "_WorkerState | None" = None


def init_worker(spec: WorkerSpec) -> None:
    """Process-pool initializer: arm telemetry/faults, set up caches."""
    global _STATE
    _STATE = _WorkerState(spec)
    TELEMETRY.reset()
    TELEMETRY.enabled = spec.telemetry_enabled
    if spec.fault_plan is not None:
        FAULTS.configure(spec.fault_plan)
    else:
        FAULTS.reset()
    # Everything alive at this point (imports, inherited workload
    # caches) is effectively immortal for the worker's lifetime:
    # freezing it keeps cyclic-gc passes off it and, under fork,
    # avoids dirtying inherited copy-on-write pages during collection.
    # No gc.collect() first — that walks the whole inherited heap per
    # worker, which is exactly the kind of per-process startup cost the
    # persistent pool exists to avoid.
    if hasattr(gc, "freeze"):
        gc.freeze()


#: Exit status a chaos-killed worker dies with (any nonzero works; the
#: parent only ever sees BrokenProcessPool).
CHAOS_EXIT_CODE = 86

#: How long an injected hang sleeps. Effectively forever — the parent's
#: chunk deadline is what ends it, by killing the worker.
_CHAOS_HANG_S = 3600.0


def chaos_identity(job: EvalJob) -> str:
    """The stable identity string chaos decisions are keyed by.

    Built from the job's own fields (frozen dataclasses with
    deterministic reprs), *not* ``hash()`` — Python string hashing is
    process-salted, and chaos marks must agree across workers, retries,
    machines and the seed-scanning done by tests/CI.
    """
    return (
        f"{job.kind}|{job.workload}|f{job.frame}|{job.scenario}"
        f"|t{job.threshold!r}|{job.config_key!r}"
    )


def _chaos_site(job: EvalJob) -> None:
    """Process-level chaos: maybe kill or hang this worker for ``job``.

    Runs only in pool workers (serial execution never enters this
    module's chunk path), so injected crashes exercise the parent's
    supervision layer without ever taking down the parent itself.
    ``os._exit`` skips cleanup handlers on purpose — a real crash
    wouldn't run them either.
    """
    if not FAULTS.enabled:
        return
    identity = chaos_identity(job)
    if FAULTS.should_kill_worker(identity):
        os._exit(CHAOS_EXIT_CODE)
    if FAULTS.should_hang_worker(identity):
        time.sleep(_CHAOS_HANG_S)


def _store_before() -> tuple:
    """Snapshot the worker store's counters for later delta-taking."""
    stats = _STATE.store.stats
    traffic = getattr(_STATE.store, "shard_traffic", None) or {}
    return (
        stats.hits, stats.misses, stats.writes, stats.corrupt,
        {shard: (t["hits"], t["misses"]) for shard, t in traffic.items()},
    )


def _store_delta(before: tuple) -> tuple:
    """``(hits, misses, writes, corrupt, shard_traffic_or_None)``.

    The per-shard element lets the parent's sharded store attribute
    worker-side lookups to the right shard (flat stores ship None).
    """
    stats = _STATE.store.stats
    traffic = getattr(_STATE.store, "shard_traffic", None) or {}
    shards: "dict[str, dict[str, int]]" = {}
    for shard, t in traffic.items():
        h0, m0 = before[4].get(shard, (0, 0))
        dh, dm = t["hits"] - h0, t["misses"] - m0
        if dh or dm:
            shards[shard] = {"hits": dh, "misses": dm}
    return (
        stats.hits - before[0],
        stats.misses - before[1],
        stats.writes - before[2],
        stats.corrupt - before[3],
        shards or None,
    )


def _execute_one(job: EvalJob) -> "tuple[str, object, object]":
    """Run one job against the worker state; never raises job errors."""
    try:
        capture = _STATE.capture(job.workload, job.frame, job.config_key)
        if job.kind == KIND_EVAL:
            result = evaluate_job(
                _STATE.session(job.config_key), capture, job
            )
            return ("ok", extract_frame_metrics(result), None)
        return ("ok", None, None)
    except (KeyboardInterrupt, SystemExit):
        raise
    except Exception as exc:  # noqa: BLE001 — shipped as data, see run_job
        return ("err", type(exc).__name__, str(exc))


def run_job(job: EvalJob) -> tuple:
    """Execute one job in a pool worker.

    Returns ``("ok", metrics_or_None, telemetry, injected, store)`` or
    ``("err", error_type_name, message, telemetry, injected, store)``
    — exceptions never cross the process boundary as exceptions, so one
    bad design point cannot poison the pool, and each result carries
    the worker's telemetry / fault / capture-store deltas for the
    parent to merge into its own accounting.
    """
    assert _STATE is not None, "run_job before init_worker"
    TELEMETRY.reset()
    FAULTS.injected = {}
    before = _store_before()
    _chaos_site(job)
    status, a, b = _execute_one(job)
    if status == "err":
        return (
            "err", a, b,
            TELEMETRY.snapshot_remote(), dict(FAULTS.injected),
            _store_delta(before),
        )
    return (
        "ok", a, TELEMETRY.snapshot_remote(), dict(FAULTS.injected),
        _store_delta(before),
    )


def run_job_chunk(jobs: "list[EvalJob]") -> "list[tuple]":
    """Execute a chunk of jobs in one pool round-trip.

    Job semantics match :func:`run_job`, but the telemetry / fault /
    store bookkeeping runs once per chunk, not once per job: the final
    outcome carries the whole chunk's deltas and the others carry
    ``None`` (the parent's merge treats ``None`` as empty). Snapshot
    cost was a measurable slice of small-job dispatch.
    """
    assert _STATE is not None, "run_job_chunk before init_worker"
    TELEMETRY.reset()
    FAULTS.injected = {}
    before = _store_before()
    outcomes: "list[tuple]" = []
    for job in jobs:
        _chaos_site(job)
        status, a, b = _execute_one(job)
        if status == "err":
            outcomes.append(("err", a, b, None, None, (0, 0, 0, 0)))
        else:
            outcomes.append(("ok", a, None, None, (0, 0, 0, 0)))
    if outcomes:
        tail = outcomes[-1]
        outcomes[-1] = tail[:-3] + (
            TELEMETRY.snapshot_remote(), dict(FAULTS.injected),
            _store_delta(before),
        )
        outcomes = FAULTS.corrupt_chunk_payload(
            outcomes, chaos_identity(jobs[-1])
        )
    return outcomes
