"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid GPU / experiment configuration was supplied."""


class GeometryError(ReproError):
    """Malformed geometric input (bad mesh, degenerate matrix, ...)."""


class TextureError(ReproError):
    """Malformed texture data or invalid sampling request."""


class PipelineError(ReproError):
    """The rendering pipeline was driven in an unsupported way."""


class WorkloadError(ReproError):
    """An unknown or invalid workload / game configuration was requested."""


class ExperimentError(ReproError):
    """An experiment was configured or executed incorrectly."""


class JobError(ExperimentError):
    """A planned engine job failed; replayed at aggregation time.

    The engine executes jobs eagerly (possibly in another process) but
    experiments *observe* failures during aggregation, inside their
    usual isolation scopes. ``JobError`` carries the original
    exception's type name across that gap (and across process
    boundaries, where the original object may not travel), so the
    :class:`~repro.resilience.FailureRecord` footer reports the real
    error type no matter where or when the job actually ran.
    """

    def __init__(self, error_type: str, message: str) -> None:
        super().__init__(message)
        self.error_type = error_type


class SchemaError(ReproError):
    """A schema-versioned artifact has an unknown or unsupported major.

    Raised by readers of ``metrics.jsonl``, Chrome-trace exports and
    run-ledger records when the embedded ``schema`` field names a major
    version this build does not understand. Readers never guess: a
    record written by a future layout is rejected, not misparsed.
    """


class LedgerError(ReproError):
    """The persistent run ledger is unreadable or was driven wrongly."""


class ResilienceError(ReproError):
    """Base class for fault-handling and degradation failures.

    Raised when the resilience layer itself cannot proceed (as opposed
    to :class:`DegradedResult` outcomes, which report that a component
    *recovered* from corrupted state by falling back to a safe path).
    """


class DegenerateInputError(ResilienceError):
    """A predictor/AF-SSIM input left its mathematical domain.

    NaN, infinity, ``N < 1`` anisotropy degrees and out-of-range Txds
    values raise this instead of silently propagating NaN through the
    quality model.
    """


class CheckpointError(ResilienceError):
    """A checkpoint file is unreadable, corrupt, or incompatible."""


class FaultInjectionError(ResilienceError):
    """The fault-injection harness was configured incorrectly."""


class WorkerCrashError(ResilienceError):
    """A pool worker process died while executing a chunk.

    The supervision layer never lets this escape ``execute()``: the
    broken pool is torn down and rebuilt, the chunk is retried and
    bisected, and a job that reproducibly kills its worker is parked as
    a :class:`JobError` carrying this type's name.
    """


class WorkerTimeoutError(ResilienceError):
    """A pool worker exceeded its chunk's wall-clock deadline.

    Deadlines are derived from the chunk's job count and the
    ``--job-timeout`` budget; a hung worker is killed and its chunk
    handled exactly like a crash (retry, bisect, quarantine).
    """


class ChunkCorruptionError(ResilienceError):
    """A chunk's IPC result payload was truncated or malformed."""


class AdmissionError(ResilienceError):
    """The service declined a request because its queue is full.

    The 429-style rejection of ``repro serve``'s admission control:
    typed, immediate, and carrying a ``retry_after_s`` hint — a full
    queue sheds load at the door instead of letting latency collapse.
    """

    status = 429

    def __init__(self, message: str, *, retry_after_s: float = 0.05) -> None:
        super().__init__(message)
        self.retry_after_s = float(retry_after_s)


class ProtocolError(ReproError):
    """A service request line was malformed or semantically invalid."""
