"""Exception hierarchy for the repro package.

Every error raised intentionally by this library derives from
:class:`ReproError`, so callers can catch library failures without
masking programming errors (``TypeError`` etc.).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError):
    """An invalid GPU / experiment configuration was supplied."""


class GeometryError(ReproError):
    """Malformed geometric input (bad mesh, degenerate matrix, ...)."""


class TextureError(ReproError):
    """Malformed texture data or invalid sampling request."""


class PipelineError(ReproError):
    """The rendering pipeline was driven in an unsupported way."""


class WorkloadError(ReproError):
    """An unknown or invalid workload / game configuration was requested."""


class ExperimentError(ReproError):
    """An experiment was configured or executed incorrectly."""
