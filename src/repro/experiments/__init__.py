"""Experiment reproductions: one module per paper table/figure.

Every module exposes ``run(ctx=None)`` returning an
:class:`~repro.experiments.runner.ExperimentResult` whose rows carry
the same quantities the paper's artifact reports, plus
``format_table(result)`` producing a printable table. The shared
:class:`~repro.experiments.runner.ExperimentContext` caches frame
captures and evaluations so the full suite renders each frame once.

Index (see DESIGN.md §4): table1/table2 configuration dumps; fig03
sharpness; fig04 R.Bench fps; fig05 AF-off speedup/energy; fig06
bandwidth breakdown; fig07 AF-off MSSIM; fig08 SSIM map; fig12 texel
sharing; fig15 LOD shift; fig17 threshold sweep; fig18 filtering
latency; fig19 speedup+quality; fig20 energy; fig21 cache sensitivity;
fig22 user study; sec5c quad divergence; sec5d PATU overhead — plus
the extensions/ablations: ext_vr, ext_software, ext_compression,
ablation_split_threshold, ablation_hash_entries, ablation_max_aniso.
"""

from . import (
    ablation_hash_entries,
    ablation_max_aniso,
    ablation_split_threshold,
    ext_compression,
    ext_software,
    ext_vr,
    fig03_sharpness,
    fig04_rbench,
    fig05_af_off,
    fig06_bandwidth,
    fig07_quality,
    fig08_ssim_map,
    fig12_sharing,
    fig15_lod_shift,
    fig17_threshold,
    fig18_latency,
    fig19_speedup_quality,
    fig20_energy,
    fig21_cache,
    fig22_user_study,
    sec5c_divergence,
    sec5d_overhead,
    table1_config,
    table2_benchmarks,
)
from .runner import (
    ExperimentContext,
    ExperimentResult,
    get_default_context,
    reset_default_context,
)

#: Experiment id -> module with ``run(ctx) -> ExperimentResult``.
REGISTRY = {
    "table1": table1_config,
    "table2": table2_benchmarks,
    "fig3": fig03_sharpness,
    "fig4": fig04_rbench,
    "fig5": fig05_af_off,
    "fig6": fig06_bandwidth,
    "fig7": fig07_quality,
    "fig8": fig08_ssim_map,
    "fig12": fig12_sharing,
    "fig15": fig15_lod_shift,
    "fig17": fig17_threshold,
    "fig18": fig18_latency,
    "fig19": fig19_speedup_quality,
    "fig20": fig20_energy,
    "fig21": fig21_cache,
    "fig22": fig22_user_study,
    "sec5c": sec5c_divergence,
    "sec5d": sec5d_overhead,
    "ext_vr": ext_vr,
    "ext_compression": ext_compression,
    "ext_software": ext_software,
    "ablation_split_threshold": ablation_split_threshold,
    "ablation_hash_entries": ablation_hash_entries,
    "ablation_max_aniso": ablation_max_aniso,
}

__all__ = [
    "ExperimentContext",
    "ExperimentResult",
    "REGISTRY",
    "get_default_context",
    "reset_default_context",
]
