"""Ablation: texel-address hash-table capacity.

The paper sizes the table at 16 entries because "the max AF level is
16 on modern GPUs" (Section V-A) — one entry per possible trilinear
sample. A smaller table would halve PATU's dominant area cost
(Section V-D), at the price of pixels whose sample count overflows the
table losing their stage-2 prediction. This ablation quantifies that
tradeoff: approximation rate, speedup and quality vs table capacity,
next to the SRAM cost per texture unit.
"""

from __future__ import annotations

import numpy as np

from ..config import BASELINE_CONFIG
from ..core.hash_table import BITS_PER_ENTRY
from ..engine.jobs import ConfigKey, EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Hash-table capacity ablation"

ENTRIES = (4, 8, 16)
WORKLOADS = ("doom3-1280x1024", "HL2-1600x1200", "grid-1280x1024")
DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    jobs = []
    for entries in ENTRIES:
        for name in WORKLOADS:
            jobs.append(eval_job(name, 0, "baseline", 1.0))
            jobs.append(
                eval_job(
                    name, 0, "patu", DEFAULT_THRESHOLD,
                    config=ConfigKey(hash_entries=entries),
                )
            )
    return jobs


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    tables_per_unit = BASELINE_CONFIG.texture_unit.quad_size
    rows = []
    for entries in ENTRIES:
        speedups = []
        rates = []
        quality = []
        for name in WORKLOADS:
            base = ctx.frame_metrics(name, 0, "baseline", 1.0)
            r = ctx.frame_metrics(
                name, 0, "patu", DEFAULT_THRESHOLD,
                config=ConfigKey(hash_entries=entries),
            )
            speedups.append(base["cycles"] / r["cycles"])
            rates.append(r["approximation_rate"])
            quality.append(r["mssim"])
        sram_kb = entries * BITS_PER_ENTRY * tables_per_unit / 8 / 1024
        rows.append(
            {
                "entries": entries,
                "sram_kb_per_unit": round(sram_kb, 2),
                "approximation_rate": float(np.mean(rates)),
                "speedup": float(np.mean(speedups)),
                "mssim": float(np.mean(quality)),
            }
        )
    notes = (
        "capacity below the max AF level forfeits stage-2 predictions for "
        "high-anisotropy pixels: approximation rate and speedup drop while "
        "quality rises slightly (those pixels keep full AF)"
    )
    return ExperimentResult(
        experiment="ablation_hash_entries", title=TITLE, rows=rows, notes=notes
    )
