"""Ablation: maximum anisotropy level of the baseline texture unit.

The paper's baseline is 16x AF (Table I) and notes that the max level
caps the texel cost per pixel at 128 texels (Section II-B). Lower AF
levels (8x, 4x) are common quality presets on real GPUs. This ablation
re-renders a workload under each cap and reports (a) how much the cap
itself costs in baseline quality/time, and (b) how much PATU still
saves on top — approximation opportunity shrinks with the cap since
fewer pixels carry large sample counts.
"""

from __future__ import annotations

from ..engine.jobs import CaptureVariant, ConfigKey, EvalJob, eval_job
from ..quality.ssim import mssim as mssim_fn
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Maximum anisotropy ablation"

LEVELS = (4, 8, 16)
WORKLOAD = "doom3-1280x1024"
DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    jobs = []
    for level in LEVELS:
        config = ConfigKey(max_anisotropy=level)
        jobs.append(eval_job(WORKLOAD, 0, "baseline", 1.0, config=config))
        jobs.append(
            eval_job(WORKLOAD, 0, "patu", DEFAULT_THRESHOLD, config=config)
        )
    return jobs


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))

    # The 16x capture from the shared context is the quality reference:
    # lower caps are approximations of the full-quality image.
    reference = ctx.capture(WORKLOAD, 0)

    rows = []
    for level in LEVELS:
        config = ConfigKey(max_anisotropy=level)
        capture = ctx.capture(
            WORKLOAD, 0, variant=CaptureVariant(max_anisotropy=level)
        )
        base = ctx.frame_metrics(WORKLOAD, 0, "baseline", 1.0, config=config)
        approx = ctx.frame_metrics(
            WORKLOAD, 0, "patu", DEFAULT_THRESHOLD, config=config
        )
        cap_quality = mssim_fn(
            reference.baseline_luminance, capture.baseline_luminance
        )
        rows.append(
            {
                "max_aniso": level,
                "mean_n": capture.mean_anisotropy,
                "baseline_quality_vs_16x": cap_quality,
                "patu_speedup": base["cycles"] / approx["cycles"],
                "patu_mssim": approx["mssim"],
                "patu_approx_rate": approx["approximation_rate"],
            }
        )
    notes = (
        "lower AF caps sacrifice baseline quality up front and shrink the "
        "anisotropy distribution, leaving PATU less unnecessary work to "
        "remove — selective approximation at 16x dominates static capping"
    )
    return ExperimentResult(
        experiment="ablation_max_aniso", title=TITLE, rows=rows, notes=notes
    )
