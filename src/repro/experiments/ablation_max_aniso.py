"""Ablation: maximum anisotropy level of the baseline texture unit.

The paper's baseline is 16x AF (Table I) and notes that the max level
caps the texel cost per pixel at 128 texels (Section II-B). Lower AF
levels (8x, 4x) are common quality presets on real GPUs. This ablation
re-renders a workload under each cap and reports (a) how much the cap
itself costs in baseline quality/time, and (b) how much PATU still
saves on top — approximation opportunity shrinks with the cap since
fewer pixels carry large sample counts.
"""

from __future__ import annotations

import dataclasses

from ..config import BASELINE_CONFIG
from ..core.scenarios import get_scenario
from ..renderer.session import RenderSession
from ..workloads.games import get_workload
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Maximum anisotropy ablation"

LEVELS = (4, 8, 16)
WORKLOAD = "doom3-1280x1024"
DEFAULT_THRESHOLD = 0.4


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    workload = get_workload(WORKLOAD)
    patu = get_scenario("patu")
    baseline = get_scenario("baseline")

    # The 16x capture from the shared context is the quality reference:
    # lower caps are approximations of the full-quality image.
    reference = ctx.capture(WORKLOAD, 0)

    rows = []
    for level in LEVELS:
        config = dataclasses.replace(
            BASELINE_CONFIG,
            texture_unit=dataclasses.replace(
                BASELINE_CONFIG.texture_unit, max_anisotropy=level
            ),
        )
        session = RenderSession(config, scale=ctx.scale)
        capture = session.capture_frame(workload, 0)
        base = session.evaluate(capture, baseline, 1.0)
        approx = session.evaluate(capture, patu, DEFAULT_THRESHOLD)
        from ..quality.ssim import mssim as mssim_fn

        cap_quality = mssim_fn(
            reference.baseline_luminance, capture.baseline_luminance
        )
        rows.append(
            {
                "max_aniso": level,
                "mean_n": capture.mean_anisotropy,
                "baseline_quality_vs_16x": cap_quality,
                "patu_speedup": base.frame_cycles / approx.frame_cycles,
                "patu_mssim": approx.mssim,
                "patu_approx_rate": approx.approximation_rate,
            }
        )
    notes = (
        "lower AF caps sacrifice baseline quality up front and shrink the "
        "anisotropy distribution, leaving PATU less unnecessary work to "
        "remove — selective approximation at 16x dominates static capping"
    )
    return ExperimentResult(
        experiment="ablation_max_aniso", title=TITLE, rows=rows, notes=notes
    )
