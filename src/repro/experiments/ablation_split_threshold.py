"""Ablation: unified vs split stage-1/stage-2 thresholds.

Section IV-C(C) uses one unified threshold for both prediction stages
"because both methods share the same objective" and to avoid "a large
complex tuning space". This ablation checks what that simplification
costs: sweep a grid of (stage-1, stage-2) threshold pairs and compare
the best split point's speedup x MSSIM against the best unified
(diagonal) point.
"""

from __future__ import annotations

from ..engine.jobs import ConfigKey, EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Unified vs split thresholds [ablation]"

WORKLOADS = ("doom3-1280x1024", "nfs-1280x1024")
GRID = (0.1, 0.2, 0.4, 0.6, 0.8)


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    jobs = []
    for name in WORKLOADS:
        jobs.append(eval_job(name, 0, "baseline", 1.0))
        for t1 in GRID:
            for t2 in GRID:
                jobs.append(
                    eval_job(
                        name, 0, "patu", t1,
                        config=ConfigKey(stage2_threshold=t2),
                    )
                )
    return jobs


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    summary = []
    for name in WORKLOADS:
        base = ctx.frame_metrics(name, 0, "baseline", 1.0)
        best_split = (0.0, None, None)
        best_unified = (0.0, None)
        for t1 in GRID:
            for t2 in GRID:
                r = ctx.frame_metrics(
                    name, 0, "patu", t1,
                    config=ConfigKey(stage2_threshold=t2),
                )
                speedup = base["cycles"] / r["cycles"]
                metric = speedup * r["mssim"]
                rows.append(
                    {
                        "workload": name,
                        "stage1_threshold": t1,
                        "stage2_threshold": t2,
                        "speedup": speedup,
                        "mssim": r["mssim"],
                        "metric": metric,
                    }
                )
                if metric > best_split[0]:
                    best_split = (metric, t1, t2)
                if t1 == t2 and metric > best_unified[0]:
                    best_unified = (metric, t1)
        gap = best_split[0] - best_unified[0]
        summary.append(
            f"{name}: best split ({best_split[1]:.1f}/{best_split[2]:.1f}) "
            f"beats best unified ({best_unified[1]:.1f}) by only "
            f"{gap / best_unified[0]:.2%}"
        )
    notes = "; ".join(summary) + (
        " — the unified threshold forfeits almost nothing, supporting "
        "the paper's simplification"
    )
    return ExperimentResult(
        experiment="ablation_split_threshold", title=TITLE, rows=rows, notes=notes
    )
