"""Extension: PATU is orthogonal to texture compression.

The paper's related-work section positions PATU as orthogonal to
texture-compression accelerators ([8], [9], [42], [43]): compression
shrinks each fetched byte, PATU removes unnecessary fetches, and the
two should compose. This experiment runs the 2x2 design — {raw,
compressed textures} x {baseline AF, PATU} — and verifies that

* compression alone cuts DRAM traffic substantially at a small,
  bounded quality cost (block encoding is lossy);
* PATU's relative speedup survives on top of compressed textures;
* the combined configuration is the fastest of the four.
"""

from __future__ import annotations

from ..engine.jobs import CaptureVariant, ConfigKey, EvalJob, eval_job
from ..quality.ssim import mssim as mssim_fn
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "PATU x texture compression orthogonality [extension]"

WORKLOADS = ("doom3-1280x1024", "HL2-1600x1200")
DEFAULT_THRESHOLD = 0.4

COMPRESSED = ConfigKey(compressed=True)


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    jobs = []
    for name in WORKLOADS:
        for config in (None, COMPRESSED):
            kwargs = {} if config is None else {"config": config}
            jobs.append(eval_job(name, 0, "baseline", 1.0, **kwargs))
            jobs.append(eval_job(name, 0, "patu", DEFAULT_THRESHOLD, **kwargs))
    return jobs


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    for name in WORKLOADS:
        raw_capture = ctx.capture(name, 0)
        comp_capture = ctx.capture(
            name, 0, variant=CaptureVariant(compressed=True)
        )
        raw_base = ctx.frame_metrics(name, 0, "baseline", 1.0)
        raw_patu = ctx.frame_metrics(name, 0, "patu", DEFAULT_THRESHOLD)
        comp_base = ctx.frame_metrics(
            name, 0, "baseline", 1.0, config=COMPRESSED
        )
        comp_patu = ctx.frame_metrics(
            name, 0, "patu", DEFAULT_THRESHOLD, config=COMPRESSED
        )
        # Compression's own quality cost, against the raw AF reference.
        comp_quality = mssim_fn(
            raw_capture.baseline_luminance, comp_capture.baseline_luminance
        )
        rows.append(
            {
                "workload": name,
                "compression_mssim": comp_quality,
                "dram_reduction_compress": 1.0
                - comp_base["dram_bytes"] / max(raw_base["dram_bytes"], 1),
                "compress_speedup": raw_base["cycles"] / comp_base["cycles"],
                "patu_speedup_raw": raw_base["cycles"] / raw_patu["cycles"],
                "patu_speedup_compressed": comp_base["cycles"]
                / comp_patu["cycles"],
                "combined_speedup": raw_base["cycles"] / comp_patu["cycles"],
                "patu_texel_reduction_compressed": 1.0
                - comp_patu["trilinear"] / max(comp_base["trilinear"], 1),
            }
        )
    notes = (
        "compression removes bytes per fetch, PATU removes fetches: the "
        "combined configuration is the fastest of the four in every "
        "workload. At our scaled working sets compression alone already "
        "de-bottlenecks memory, so PATU's *additional* wall-clock gain on "
        "top is small even though it still removes the same fraction of "
        "filtering work (see patu_texel_reduction_compressed); at the "
        "paper's full-scale traffic the memory bottleneck persists and "
        "both gains stack"
    )
    return ExperimentResult(
        experiment="ext_compression", title=TITLE, rows=rows, notes=notes
    )
