"""Extension: PATU is orthogonal to texture compression.

The paper's related-work section positions PATU as orthogonal to
texture-compression accelerators ([8], [9], [42], [43]): compression
shrinks each fetched byte, PATU removes unnecessary fetches, and the
two should compose. This experiment runs the 2x2 design — {raw,
compressed textures} x {baseline AF, PATU} — and verifies that

* compression alone cuts DRAM traffic substantially at a small,
  bounded quality cost (block encoding is lossy);
* PATU's relative speedup survives on top of compressed textures;
* the combined configuration is the fastest of the four.
"""

from __future__ import annotations

from ..core.scenarios import get_scenario
from ..quality.ssim import mssim as mssim_fn
from ..renderer.session import RenderSession
from ..workloads.games import get_workload
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "PATU x texture compression orthogonality [extension]"

WORKLOADS = ("doom3-1280x1024", "HL2-1600x1200")
DEFAULT_THRESHOLD = 0.4


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    baseline = get_scenario("baseline")
    patu = get_scenario("patu")
    compressed_session = RenderSession(
        ctx.base_config, scale=ctx.scale, compressed_textures=True
    )
    rows = []
    for name in WORKLOADS:
        workload = get_workload(name)
        raw_capture = ctx.capture(name, 0)
        comp_capture = compressed_session.capture_frame(workload, 0)
        raw_base = ctx.session.evaluate(raw_capture, baseline, 1.0)
        raw_patu = ctx.session.evaluate(raw_capture, patu, DEFAULT_THRESHOLD)
        comp_base = compressed_session.evaluate(comp_capture, baseline, 1.0)
        comp_patu = compressed_session.evaluate(
            comp_capture, patu, DEFAULT_THRESHOLD
        )
        # Compression's own quality cost, against the raw AF reference.
        comp_quality = mssim_fn(
            raw_capture.baseline_luminance, comp_capture.baseline_luminance
        )
        rows.append(
            {
                "workload": name,
                "compression_mssim": comp_quality,
                "dram_reduction_compress": 1.0
                - comp_base.hierarchy.dram_bytes
                / max(raw_base.hierarchy.dram_bytes, 1),
                "compress_speedup": raw_base.frame_cycles / comp_base.frame_cycles,
                "patu_speedup_raw": raw_base.frame_cycles / raw_patu.frame_cycles,
                "patu_speedup_compressed": comp_base.frame_cycles
                / comp_patu.frame_cycles,
                "combined_speedup": raw_base.frame_cycles / comp_patu.frame_cycles,
                "patu_texel_reduction_compressed": 1.0
                - comp_patu.events.trilinear_samples
                / max(comp_base.events.trilinear_samples, 1),
            }
        )
    notes = (
        "compression removes bytes per fetch, PATU removes fetches: the "
        "combined configuration is the fastest of the four in every "
        "workload. At our scaled working sets compression alone already "
        "de-bottlenecks memory, so PATU's *additional* wall-clock gain on "
        "top is small even though it still removes the same fraction of "
        "filtering work (see patu_texel_reduction_compressed); at the "
        "paper's full-scale traffic the memory bottleneck persists and "
        "both gains stack"
    )
    return ExperimentResult(
        experiment="ext_compression", title=TITLE, rows=rows, notes=notes
    )
