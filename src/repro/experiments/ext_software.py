"""Extension: hardware vs software approximation (paper Section III).

The paper rejects software-based approximation for runtime cost,
control granularity and blindness to runtime texture attributes. This
experiment measures the granularity argument. Both approaches sweep the
same threshold grid under the *same filtering semantics* (approximated
pixels run TF at TF's LOD) so decision granularity is the only
difference:

* **hardware** — per-pixel two-stage prediction (the
  ``afssim_n_txds`` scenario);
* **software** — per-draw-call AF enablement from each draw call's
  mean predicted AF-SSIM (:mod:`repro.core.software`), which is already
  generous to software (a real driver lacks even that profile data).

Reported per workload:

* ``*_operating_points`` — distinct (speedup, quality) pairs the knob
  can reach: the *resolution* of the tuning space. Software gets at
  most one point per draw call, with large dead zones between them;
  hardware's per-pixel knob is near-continuous.
* ``*_speedup_at_target`` — best speedup subject to MSSIM >= the
  quality target: what the coarse knob costs when quality must be
  guaranteed. Draw calls mixing near and far geometry (a ground plane
  spans anisotropy 2..16) force software to keep AF for the whole
  surface or sacrifice its perceivable half.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Hardware vs software approximation granularity (Sec. III) [extension]"

WORKLOADS = ("HL2-1600x1200", "grid-1280x1024", "doom3-1280x1024")
THRESHOLDS = tuple(np.round(np.arange(0.0, 1.001, 0.05), 3))
QUALITY_TARGET = 0.96


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    jobs = []
    for name in WORKLOADS:
        jobs.append(eval_job(name, 0, "baseline", 1.0))
        for t in THRESHOLDS:
            jobs.append(eval_job(name, 0, "afssim_n_txds", float(t)))
            jobs.append(eval_job(name, 0, "software", float(t)))
    return jobs


def _frontier_stats(points: "list[tuple[float, float]]", target: float):
    """(#distinct operating points, best speedup with mssim >= target)."""
    distinct = {(round(s, 3), round(q, 3)) for s, q in points}
    eligible = [s for s, q in points if q >= target]
    best = max(eligible) if eligible else 1.0
    return len(distinct), best


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    for name in WORKLOADS:
        capture = ctx.capture(name, 0)
        base = ctx.frame_metrics(name, 0, "baseline", 1.0)
        hw_points = []
        sw_points = []
        for t in THRESHOLDS:
            hw = ctx.frame_metrics(name, 0, "afssim_n_txds", float(t))
            sw = ctx.frame_metrics(name, 0, "software", float(t))
            hw_points.append((base["cycles"] / hw["cycles"], hw["mssim"]))
            sw_points.append((base["cycles"] / sw["cycles"], sw["mssim"]))
        hw_count, hw_best = _frontier_stats(hw_points, QUALITY_TARGET)
        sw_count, sw_best = _frontier_stats(sw_points, QUALITY_TARGET)
        rows.append(
            {
                "workload": name,
                "hw_operating_points": hw_count,
                "sw_operating_points": sw_count,
                "hw_speedup_at_target": hw_best,
                "sw_speedup_at_target": sw_best,
                "draw_calls": int(np.unique(capture.tex_ids).size),
            }
        )
    notes = (
        f"quality target MSSIM >= {QUALITY_TARGET}: the per-pixel hardware "
        "knob exposes several times more operating points than the "
        "per-draw-call software knob (bounded by the draw-call count) and "
        "reaches the target with a better or equal speedup on the "
        "heterogeneous-surface workloads — the Section III granularity "
        "argument, measured"
    )
    return ExperimentResult(
        experiment="ext_software", title=TITLE, rows=rows, notes=notes
    )
