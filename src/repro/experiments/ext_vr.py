"""Extension: PATU under multi-view (VR) rendering.

The paper motivates AF with VR and integrates multi-view support into
its simulator (Section VI) but evaluates only mono workloads. This
extension renders stereo variants of the games and checks that PATU's
benefit carries over: per-eye speedups match the mono case, the two
eyes' approximation rates agree (their viewing angles differ by only
an interpupillary distance), and quality stays high in both eyes.
"""

from __future__ import annotations

import numpy as np

from ..core.scenarios import get_scenario
from ..workloads.vr import vr_workload
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "PATU under stereo (VR) rendering [extension]"

WORKLOADS = ("doom3-1280x1024", "HL2-1280x1024")
TIME_STEPS = 2
DEFAULT_THRESHOLD = 0.4


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    baseline = get_scenario("baseline")
    patu = get_scenario("patu")
    rows = []
    for base_name in WORKLOADS:
        stereo = vr_workload(base_name, time_steps=TIME_STEPS)
        per_eye = {0: [], 1: []}
        quality = []
        approx = {0: [], 1: []}
        for frame in range(stereo.num_frames):
            capture = ctx.session.capture_frame(stereo, frame)
            base = ctx.session.evaluate(capture, baseline, 1.0)
            r = ctx.session.evaluate(capture, patu, DEFAULT_THRESHOLD)
            eye = frame % 2
            per_eye[eye].append(base.frame_cycles / r.frame_cycles)
            approx[eye].append(r.approximation_rate)
            quality.append(r.mssim)
        mono = ctx.mean_over_frames(base_name, "patu", DEFAULT_THRESHOLD)
        mono_base = ctx.mean_over_frames(base_name, "baseline", 1.0)
        rows.append(
            {
                "workload": f"VR-{base_name}",
                "left_speedup": float(np.mean(per_eye[0])),
                "right_speedup": float(np.mean(per_eye[1])),
                "mono_speedup": mono_base["cycles"] / mono["cycles"],
                "mssim": float(np.mean(quality)),
                "left_approx": float(np.mean(approx[0])),
                "right_approx": float(np.mean(approx[1])),
            }
        )
    notes = (
        "per-eye speedups track the mono workload and both eyes agree on "
        "their approximation rates — PATU's benefit carries to multi-view "
        "VR rendering"
    )
    return ExperimentResult(experiment="ext_vr", title=TITLE, rows=rows, notes=notes)
