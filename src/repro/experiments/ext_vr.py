"""Extension: PATU under multi-view (VR) rendering.

The paper motivates AF with VR and integrates multi-view support into
its simulator (Section VI) but evaluates only mono workloads. This
extension renders stereo variants of the games and checks that PATU's
benefit carries over: per-eye speedups match the mono case, the two
eyes' approximation rates agree (their viewing angles differ by only
an interpupillary distance), and quality stays high in both eyes.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, eval_job
from ..engine.worker import vr_request
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "PATU under stereo (VR) rendering [extension]"

WORKLOADS = ("doom3-1280x1024", "HL2-1280x1024")
TIME_STEPS = 2
DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    jobs = []
    for base_name in WORKLOADS:
        stereo_name = vr_request(base_name, TIME_STEPS)
        for frame in range(2 * TIME_STEPS):
            jobs.append(eval_job(stereo_name, frame, "baseline", 1.0))
            jobs.append(
                eval_job(stereo_name, frame, "patu", DEFAULT_THRESHOLD)
            )
        for frame in range(ctx.frames):
            jobs.append(eval_job(base_name, frame, "baseline", 1.0))
            jobs.append(eval_job(base_name, frame, "patu", DEFAULT_THRESHOLD))
    return jobs


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    for base_name in WORKLOADS:
        stereo_name = vr_request(base_name, TIME_STEPS)
        per_eye = {0: [], 1: []}
        quality = []
        approx = {0: [], 1: []}
        for frame in range(2 * TIME_STEPS):
            base = ctx.frame_metrics(stereo_name, frame, "baseline", 1.0)
            r = ctx.frame_metrics(
                stereo_name, frame, "patu", DEFAULT_THRESHOLD
            )
            eye = frame % 2
            per_eye[eye].append(base["cycles"] / r["cycles"])
            approx[eye].append(r["approximation_rate"])
            quality.append(r["mssim"])
        mono = ctx.mean_over_frames(base_name, "patu", DEFAULT_THRESHOLD)
        mono_base = ctx.mean_over_frames(base_name, "baseline", 1.0)
        rows.append(
            {
                "workload": f"VR-{base_name}",
                "left_speedup": float(np.mean(per_eye[0])),
                "right_speedup": float(np.mean(per_eye[1])),
                "mono_speedup": mono_base["cycles"] / mono["cycles"],
                "mssim": float(np.mean(quality)),
                "left_approx": float(np.mean(approx[0])),
                "right_approx": float(np.mean(approx[1])),
            }
        )
    notes = (
        "per-eye speedups track the mono workload and both eyes agree on "
        "their approximation rates — PATU's benefit carries to multi-view "
        "VR rendering"
    )
    return ExperimentResult(experiment="ext_vr", title=TITLE, rows=rows, notes=notes)
