"""Fig. 3: anisotropic filtering enhances texture sharpness.

The paper's Fig. 3 is a visual pair (AF on/off) showing AF "effectively
enhance[s] the sharpness of the textures on the surface that are at
oblique viewing angles". We make it quantitative: on each game frame,
the gradient energy of the AF image must exceed the trilinear-only
image's, with the effect concentrated on the oblique pixels (N > 2)
where AF actually takes extra samples.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, capture_job
from ..quality.sharpness import sharpness_ratio
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "AF sharpness gain over trilinear filtering (Fig. 3)"

#: Anisotropy above which a pixel counts as 'oblique' for the mask.
OBLIQUE_N = 2


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    """One render per (workload, frame); aggregation is capture-local."""
    return [
        capture_job(name, frame)
        for name in ctx.workload_list
        for frame in range(ctx.frames)
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    for name in ctx.workload_list:
        with ctx.isolate(name):
            oblique_ratios = []
            frame_ratios = []
            for frame in range(ctx.frames):
                cap = ctx.capture(name, frame)
                af_image = cap.baseline_luminance
                tf_image = cap.luminance_image(cap.tf_color)
                oblique = np.zeros((cap.height, cap.width), dtype=bool)
                oblique[cap.rows, cap.cols] = cap.n > OBLIQUE_N
                if oblique.sum() > 16:
                    oblique_ratios.append(
                        sharpness_ratio(af_image, tf_image, oblique)
                    )
                frame_ratios.append(sharpness_ratio(af_image, tf_image))
            rows.append(
                {
                    "workload": name,
                    "sharpness_gain_oblique": float(np.mean(oblique_ratios)),
                    "sharpness_gain_frame": float(np.mean(frame_ratios)),
                }
            )
    if not rows:
        return ExperimentResult(
            experiment="fig3", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    mean_oblique = float(np.mean([r["sharpness_gain_oblique"] for r in rows]))
    mean_frame = float(np.mean([r["sharpness_gain_frame"] for r in rows]))
    rows.append(
        {
            "workload": "average",
            "sharpness_gain_oblique": mean_oblique,
            "sharpness_gain_frame": mean_frame,
        }
    )
    notes = (
        f"AF sharpens the oblique surfaces by {mean_oblique - 1:.0%} in "
        f"gradient energy ({mean_frame - 1:+.0%} over the whole frame) — "
        "the Fig. 3 effect, quantified"
    )
    return ExperimentResult(experiment="fig3", title=TITLE, rows=rows, notes=notes)
