"""Fig. 4: R.Bench frame rate with AF on/off at 2K and 4K.

The paper runs the Relative Benchmark on an iPhone 7 Plus and shows
per-frame fps with 16x AF enabled vs. disabled: most frames miss 60
fps, disabling AF improves fps by ~21% at 2K and ~43% at 4K, and the
effect grows with resolution. We replay the R.Bench substitute through
the timing model and the vsync-free fps estimate (Fig. 4 reports raw
fps, not vsync-quantized).
"""

from __future__ import annotations

from ..engine.jobs import EvalJob, eval_job
from ..replay.vsync import nominal_frame_cycles
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "R.Bench fps with AF on/off (Fig. 4)"

RESOLUTIONS = ("2K", "4K")
NUM_FRAMES = 4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(f"R.Bench-{resolution}", frame, scenario, threshold)
        for resolution in RESOLUTIONS
        for frame in range(NUM_FRAMES)
        for scenario, threshold in (("baseline", 1.0), ("afssim_n", 0.0))
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    improvements = {}
    for resolution in RESOLUTIONS:
        name = f"R.Bench-{resolution}"
        fps_on = []
        fps_off = []
        for frame in range(NUM_FRAMES):
            on = ctx.frame_metrics(name, frame, "baseline", 1.0)
            off = ctx.frame_metrics(name, frame, "afssim_n", 0.0)
            f_on = 1e9 / nominal_frame_cycles(on["cycles"], ctx.scale)
            f_off = 1e9 / nominal_frame_cycles(off["cycles"], ctx.scale)
            fps_on.append(f_on)
            fps_off.append(f_off)
            rows.append(
                {
                    "resolution": resolution,
                    "frame": frame,
                    "fps_af_on": f_on,
                    "fps_af_off": f_off,
                    "improvement": f_off / f_on - 1.0,
                }
            )
        improvements[resolution] = (
            sum(off / on for on, off in zip(fps_on, fps_off)) / len(fps_on) - 1.0
        )
    notes = "; ".join(
        f"{res}: disabling AF improves fps by {imp:.0%} on average"
        for res, imp in improvements.items()
    )
    notes += " (paper: 21% at 2K, 43% at 4K; higher resolution gains more)"
    return ExperimentResult(experiment="fig4", title=TITLE, rows=rows, notes=notes)
