"""Fig. 5: normalized speedup and energy reduction when AF is disabled.

Paper result: disabling 16x AF speeds up 3D rendering by 41% on
average (up to 60%) and reduces total GPU+DRAM energy by 28% on
average (up to 33%). Disabling AF is the ``afssim_n`` scenario at
threshold 0: every anisotropic pixel is approximated at stage 1, which
is exactly trilinear-only rendering.
"""

from __future__ import annotations

from ..engine.jobs import EvalJob, eval_job
from .runner import (
    ExperimentContext,
    ExperimentResult,
    get_default_context,
)

TITLE = "Speedup and energy reduction with AF disabled (Fig. 5)"


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(name, frame, scenario, threshold)
        for name in ctx.workload_list
        for frame in range(ctx.frames)
        for scenario, threshold in (("baseline", 1.0), ("afssim_n", 0.0))
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    for name in ctx.workload_list:
        with ctx.isolate(name):
            base = ctx.mean_over_frames(name, "baseline", 1.0)
            off = ctx.mean_over_frames(name, "afssim_n", 0.0)
            rows.append(
                {
                    "workload": name,
                    "speedup": base["cycles"] / off["cycles"],
                    "energy_reduction": 1.0 - off["energy_nj"] / base["energy_nj"],
                }
            )
    if not rows:
        return ExperimentResult(
            experiment="fig5", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    mean_speed = sum(r["speedup"] for r in rows) / len(rows)
    mean_energy = sum(r["energy_reduction"] for r in rows) / len(rows)
    rows.append(
        {"workload": "average", "speedup": mean_speed, "energy_reduction": mean_energy}
    )
    notes = (
        f"average speedup {mean_speed:.2f}x, energy reduction {mean_energy:.0%} "
        "(paper: 1.41x average speedup, 28% average energy reduction)"
    )
    return ExperimentResult(experiment="fig5", title=TITLE, rows=rows, notes=notes)
