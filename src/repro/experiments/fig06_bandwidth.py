"""Fig. 6: memory-bandwidth usage breakdown before/after disabling AF.

Paper result: texture fetching accounts for ~71% of total DRAM
bandwidth with AF on; disabling AF cuts total memory traffic by ~28%
on average (up to 51%), almost entirely out of the texture share.
Bars are normalized to each workload's AF-on total.
"""

from __future__ import annotations

from ..engine.jobs import EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Memory bandwidth breakdown, AF on vs off (Fig. 6)"

CATEGORIES = ("texture", "color", "depth", "geometry")


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(name, frame, scenario, threshold)
        for name in ctx.workload_list
        for frame in range(ctx.frames)
        for scenario, threshold in (("baseline", 1.0), ("afssim_n", 0.0))
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    tex_fracs = []
    reductions = []
    for name in ctx.workload_list:
        with ctx.isolate(name):
            base = ctx.mean_over_frames(name, "baseline", 1.0)
            off = ctx.mean_over_frames(name, "afssim_n", 0.0)
            total_on = base["total_bytes"]
            for label, metrics in (("AF-on", base), ("AF-off", off)):
                row = {"workload": name, "mode": label}
                for cat in CATEGORIES:
                    row[cat] = metrics[f"{cat}_bytes"] / total_on
                row["total"] = metrics["total_bytes"] / total_on
                rows.append(row)
            tex_fracs.append(base["texture_bytes"] / total_on)
            reductions.append(1.0 - off["total_bytes"] / total_on)
    if not tex_fracs:
        return ExperimentResult(
            experiment="fig6", title=TITLE, rows=rows,
            notes="(all workloads failed)",
        )
    notes = (
        f"AF-on texture share {sum(tex_fracs) / len(tex_fracs):.0%} of bandwidth "
        f"(paper ~71%); disabling AF cuts total traffic by "
        f"{sum(reductions) / len(reductions):.0%} on average (paper ~28%)"
    )
    return ExperimentResult(experiment="fig6", title=TITLE, rows=rows, notes=notes)
