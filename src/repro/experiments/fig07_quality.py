"""Fig. 7: impact of disabling AF on perceived image quality (MSSIM).

Paper result: naively disabling AF damages perceived quality by 28% on
average (up to 39%) measured by MSSIM against the 16x-AF frame. Our
procedural textures carry less fine detail than commercial game art,
so absolute MSSIM losses are smaller, but the per-game ordering and
the direction (disabling AF visibly hurts everywhere) reproduce.
"""

from __future__ import annotations

from ..engine.jobs import EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Perceived quality loss when AF is disabled (Fig. 7)"


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(name, frame, "afssim_n", 0.0)
        for name in ctx.workload_list
        for frame in range(ctx.frames)
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    for name in ctx.workload_list:
        with ctx.isolate(name):
            off = ctx.mean_over_frames(name, "afssim_n", 0.0)
            rows.append(
                {
                    "workload": name,
                    "mssim_af_off": off["mssim"],
                    "quality_loss": 1.0 - off["mssim"],
                }
            )
    if not rows:
        return ExperimentResult(
            experiment="fig7", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    mean_loss = sum(r["quality_loss"] for r in rows) / len(rows)
    rows.append(
        {
            "workload": "average",
            "mssim_af_off": 1.0 - mean_loss,
            "quality_loss": mean_loss,
        }
    )
    notes = (
        f"average quality loss {mean_loss:.1%} "
        "(paper: 28% average, up to 39%; see EXPERIMENTS.md on magnitude)"
    )
    return ExperimentResult(experiment="fig7", title=TITLE, rows=rows, notes=notes)
