"""Fig. 8: SSIM index map of an HL2 frame, AF-on vs AF-off.

The paper shows a 1600x1200 Half-Life 2 frame with AF enabled (left),
disabled (middle), and the pixel-level SSIM index map (right): lighter
areas are perceptually unchanged without AF, and more than half the
pixels stay light — the observation that motivates selective AF.

``run`` computes the same three artifacts and summarizes the map:
the fraction of pixels above a high-similarity threshold must exceed
one half, reproducing the motivating claim. The raw images are
returned in the result for callers that want to save them (see
``examples/ssim_map_demo.py``).
"""

from __future__ import annotations


from ..engine.jobs import EvalJob, capture_job
from ..quality.ssim import ssim_map
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "SSIM index map for an HL2 frame (Fig. 8)"

WORKLOAD = "HL2-1600x1200"
HIGH_SIMILARITY = 0.90


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    """One render; the SSIM map is computed from the capture's images."""
    return [capture_job(WORKLOAD, 0)]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    capture = ctx.capture(WORKLOAD, 0)
    af_image = capture.baseline_luminance
    tf_image = capture.luminance_image(capture.tf_color)
    index_map = ssim_map(tf_image, af_image)

    high = float((index_map >= HIGH_SIMILARITY).mean())
    rows = [
        {
            "workload": WORKLOAD,
            "mssim": float(index_map.mean()),
            "frac_pixels_ssim>=0.9": high,
            "map_min": float(index_map.min()),
            "map_max": float(index_map.max()),
        }
    ]
    notes = (
        f"{high:.0%} of pixels keep SSIM >= {HIGH_SIMILARITY} without AF "
        "(paper: 'more than half of the pixels... still exhibit high "
        "perceived quality without AF')"
    )
    result = ExperimentResult(experiment="fig8", title=TITLE, rows=rows, notes=notes)
    # Attach the images for demo scripts (not part of the tabular rows).
    result.images = {  # type: ignore[attr-defined]
        "af_on": af_image,
        "af_off": tf_image,
        "ssim_map": index_map,
    }
    return result
