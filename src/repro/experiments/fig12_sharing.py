"""Fig. 12: fraction of AF input samples sharing TF's texel sets.

Paper result: an average of 62% of AF's trilinear input samples share
the same set of texels with TF during 3D rendering — the observation
that motivates the distribution-based prediction. The per-pixel
sharing fraction comes from the capture's footprint keys (the same
quantity PATU's hash table measures), weighted by each pixel's sample
count so the statistic is over *samples*, as in the paper.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, capture_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "AF input samples sharing TF texel sets (Fig. 12)"


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    """One render per (workload, frame); the statistic reads the capture."""
    return [
        capture_job(name, frame)
        for name in ctx.workload_list
        for frame in range(ctx.frames)
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    for name in ctx.workload_list:
        with ctx.isolate(name):
            fracs = []
            for frame in range(ctx.frames):
                cap = ctx.capture(name, frame)
                aniso = cap.n > 1
                if not aniso.any():
                    continue
                weights = cap.n[aniso].astype(np.float64)
                share = cap.share_fraction[aniso]
                fracs.append(float((share * weights).sum() / weights.sum()))
            rows.append(
                {"workload": name, "sharing_fraction": float(np.mean(fracs))}
            )
    if not rows:
        return ExperimentResult(
            experiment="fig12", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    mean = float(np.mean([r["sharing_fraction"] for r in rows]))
    rows.append({"workload": "average", "sharing_fraction": mean})
    notes = f"average sharing {mean:.0%} (paper: 62% average)"
    return ExperimentResult(experiment="fig12", title=TITLE, rows=rows, notes=notes)
