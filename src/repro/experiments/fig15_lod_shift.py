"""Fig. 15: the LOD-shift problem and PATU's LOD-reuse fix.

Section V-C(2): naively substituting TF for AF samples texels from a
*coarser* mip level (TF's LOD follows the footprint's major axis), so
approximated surfaces visibly lose detail next to AF'd ones — the
white-dashed-line artifact of Fig. 15. PATU reuses AF's finer LOD for
approximated pixels instead.

We quantify the figure on the approximated region itself: restricted to
the pixels a PATU pass approximates at the default threshold, compare
against the AF reference

* the naive substitution's quality/sharpness (TF at TF's LOD — the
  ``afssim_n_txds`` filtering), and
* PATU's (TF at AF's LOD).

LOD reuse must recover most of the regional quality loss and close the
sharpness gap.
"""

from __future__ import annotations

import numpy as np

from ..core.patu import PerceptionAwareTextureUnit
from ..core.scenarios import get_scenario
from ..engine.jobs import EvalJob, capture_job
from ..quality.sharpness import sharpness_ratio
from ..quality.ssim import mssim as mssim_fn
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "LOD shift and LOD-reuse recovery (Fig. 15)"

DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    """One render per (workload, frame); decisions replay on the capture."""
    return [
        capture_job(name, frame)
        for name in ctx.workload_list
        for frame in range(ctx.frames)
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    device = PerceptionAwareTextureUnit(get_scenario("patu"), DEFAULT_THRESHOLD)
    rows = []
    for name in ctx.workload_list:
        with ctx.isolate(name):
            quality_shift = []
            quality_reuse = []
            sharp_shift = []
            sharp_reuse = []
            for frame in range(ctx.frames):
                cap = ctx.capture(name, frame)
                decision = device.decide(cap.n, cap.txds)
                approx = decision.prediction.approximated
                if approx.sum() < 64:
                    continue
                mask = np.zeros((cap.height, cap.width), dtype=bool)
                mask[cap.rows[approx], cap.cols[approx]] = True

                af_image = cap.baseline_luminance
                # Naive substitution (LOD shift) vs LOD reuse, only on the
                # approximated pixels; the rest of the frame stays AF.
                shift_colors = cap.af_color.copy()
                shift_colors[approx] = cap.tf_color[approx]
                reuse_colors = cap.af_color.copy()
                reuse_colors[approx] = cap.tfa_color[approx]
                shift_image = cap.luminance_image(shift_colors)
                reuse_image = cap.luminance_image(reuse_colors)

                quality_shift.append(mssim_fn(af_image, shift_image))
                quality_reuse.append(mssim_fn(af_image, reuse_image))
                sharp_shift.append(sharpness_ratio(shift_image, af_image, mask))
                sharp_reuse.append(sharpness_ratio(reuse_image, af_image, mask))
            if quality_shift:
                rows.append(
                    {
                        "workload": name,
                        "mssim_lod_shift": float(np.mean(quality_shift)),
                        "mssim_lod_reuse": float(np.mean(quality_reuse)),
                        "sharpness_vs_af_shift": float(np.mean(sharp_shift)),
                        "sharpness_vs_af_reuse": float(np.mean(sharp_reuse)),
                    }
                )
    if not rows:
        return ExperimentResult(
            experiment="fig15", title=TITLE, rows=[],
            notes="(all workloads failed or had too few approximated pixels)",
        )
    avg = {
        "workload": "average",
        "mssim_lod_shift": float(np.mean([r["mssim_lod_shift"] for r in rows])),
        "mssim_lod_reuse": float(np.mean([r["mssim_lod_reuse"] for r in rows])),
        "sharpness_vs_af_shift": float(
            np.mean([r["sharpness_vs_af_shift"] for r in rows])
        ),
        "sharpness_vs_af_reuse": float(
            np.mean([r["sharpness_vs_af_reuse"] for r in rows])
        ),
    }
    rows.append(avg)
    notes = (
        "the naive substitution loses detail on approximated surfaces "
        f"(sharpness {avg['sharpness_vs_af_shift']:.2f}x of AF's); LOD reuse "
        f"restores it to {avg['sharpness_vs_af_reuse']:.2f}x and lifts the "
        "regional MSSIM — the paper's Fig. 15 fix, quantified "
        "(paper: >10% quality improvement over AF-SSIM(N)+(Txds))"
    )
    return ExperimentResult(experiment="fig15", title=TITLE, rows=rows, notes=notes)
