"""Fig. 17: threshold sweep — the performance-quality tuning space.

For each game, sweep the unified AF-SSIM threshold from 0 (no AF) to
1 (baseline AF everywhere) under the full PATU design and record the
normalized speedup and MSSIM. The paper's observations to reproduce:

* speedup and quality trade off in an "X" shape against the threshold;
* MSSIM rises sharply between threshold 0 and 0.1 (the first
  perceivable pixels regain AF);
* the best point BP = argmax(speedup x MSSIM) sits strictly inside
  (0, 1) for most games, and higher-resolution configurations have
  lower BPs;
* the average BP across games is ~0.4 (the default threshold used in
  the rest of the evaluation).
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Threshold sweep: performance-quality tradeoff (Fig. 17)"

THRESHOLDS = tuple(round(t, 1) for t in np.arange(0.0, 1.01, 0.1))


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    jobs = []
    for name in ctx.workload_list:
        for frame in range(ctx.frames):
            jobs.append(eval_job(name, frame, "baseline", 1.0))
            jobs.extend(
                eval_job(name, frame, "patu", t) for t in THRESHOLDS
            )
    return jobs


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    best_points = {}
    samples = {t: {"speedup": [], "mssim": []} for t in THRESHOLDS}
    for name in ctx.workload_list:
        with ctx.isolate(name):
            base = ctx.mean_over_frames(name, "baseline", 1.0)
            best = (-1.0, None)
            for t in THRESHOLDS:
                point = ctx.mean_over_frames(name, "patu", t)
                speedup = base["cycles"] / point["cycles"]
                metric = speedup * point["mssim"]
                rows.append(
                    {
                        "workload": name,
                        "threshold": t,
                        "speedup": speedup,
                        "mssim": point["mssim"],
                        "speedup_x_mssim": metric,
                    }
                )
                samples[t]["speedup"].append(speedup)
                samples[t]["mssim"].append(point["mssim"])
                if metric > best[0]:
                    best = (metric, t)
            best_points[name] = best[1]
    if not best_points:
        return ExperimentResult(
            experiment="fig17", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    sums = {
        t: {
            "speedup": float(np.mean(samples[t]["speedup"])),
            "mssim": float(np.mean(samples[t]["mssim"])),
        }
        for t in THRESHOLDS
        if samples[t]["speedup"]
    }
    # Subfigure (I): the average across games.
    avg_best = (-1.0, None)
    for t in sorted(sums):
        metric = sums[t]["speedup"] * sums[t]["mssim"]
        rows.append(
            {
                "workload": "average",
                "threshold": t,
                "speedup": sums[t]["speedup"],
                "mssim": sums[t]["mssim"],
                "speedup_x_mssim": metric,
            }
        )
        if metric > avg_best[0]:
            avg_best = (metric, t)
    best_points["average"] = avg_best[1]
    notes = "BP per workload: " + ", ".join(
        f"{k}={v:.1f}" for k, v in best_points.items()
    )
    notes += " (paper: BPs inside (0,1) for most games, average BP = 0.4)"
    result = ExperimentResult(experiment="fig17", title=TITLE, rows=rows, notes=notes)
    result.best_points = best_points  # type: ignore[attr-defined]
    return result
