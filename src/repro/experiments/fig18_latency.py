"""Fig. 18: normalized texture filtering latency under the four designs.

Paper result: AF-SSIM(N)+(Txds) and PATU behave almost identically and
cut texture filtering latency by 29% on average (up to 42%), more than
AF-SSIM(N) alone, because the distribution check removes additional
unnecessary AF work.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Normalized texture filtering latency (Fig. 18)"

SCENARIO_ORDER = ("baseline", "afssim_n", "afssim_n_txds", "patu")
DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(
            name, frame, scenario,
            1.0 if scenario == "baseline" else DEFAULT_THRESHOLD,
        )
        for name in ctx.workload_list
        for frame in range(ctx.frames)
        for scenario in SCENARIO_ORDER
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    reductions = {s: [] for s in SCENARIO_ORDER}
    for name in ctx.workload_list:
        with ctx.isolate(name):
            base = ctx.mean_over_frames(name, "baseline", 1.0)
            row = {"workload": name}
            norms = {}
            for scenario in SCENARIO_ORDER:
                threshold = 1.0 if scenario == "baseline" else DEFAULT_THRESHOLD
                point = ctx.mean_over_frames(name, scenario, threshold)
                norms[scenario] = point["request_latency"] / base["request_latency"]
            row.update(norms)
            rows.append(row)
            for scenario, norm in norms.items():
                reductions[scenario].append(1.0 - norm)
    if not rows:
        return ExperimentResult(
            experiment="fig18", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    avg_row = {"workload": "average"}
    for scenario in SCENARIO_ORDER:
        avg_row[scenario] = 1.0 - float(np.mean(reductions[scenario]))
    rows.append(avg_row)
    notes = (
        f"PATU reduces texture filtering latency by "
        f"{float(np.mean(reductions['patu'])):.0%} on average "
        "(paper: 29% average, up to 42%)"
    )
    return ExperimentResult(experiment="fig18", title=TITLE, rows=rows, notes=notes)
