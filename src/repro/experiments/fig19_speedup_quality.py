"""Fig. 19: overall speedup and perceived quality under the four designs.

Paper results at the default threshold (average BP = 0.4):

* AF-SSIM(N)+(Txds) is fastest (18% average speedup, up to 26%) but
  loses the most quality;
* AF-SSIM(N) alone gains only ~10% with a similar quality loss (it
  cannot capture texel-distribution similarity and suffers LOD shift);
* PATU keeps nearly all of the combined design's speedup (within
  ~1.3%) while recovering quality to >= 93% MSSIM via LOD reuse;
* higher-resolution configurations gain more.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Speedup and perceived quality of the designs (Fig. 19)"

SCENARIO_ORDER = ("baseline", "afssim_n", "afssim_n_txds", "patu")
DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(
            name, frame, scenario,
            1.0 if scenario == "baseline" else DEFAULT_THRESHOLD,
        )
        for name in ctx.workload_list
        for frame in range(ctx.frames)
        for scenario in SCENARIO_ORDER
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    acc = {s: {"speedup": [], "mssim": []} for s in SCENARIO_ORDER}
    for name in ctx.workload_list:
        with ctx.isolate(name):
            base = ctx.mean_over_frames(name, "baseline", 1.0)
            row = {"workload": name}
            points = {}
            for scenario in SCENARIO_ORDER:
                threshold = 1.0 if scenario == "baseline" else DEFAULT_THRESHOLD
                point = ctx.mean_over_frames(name, scenario, threshold)
                points[scenario] = (base["cycles"] / point["cycles"], point["mssim"])
            for scenario, (speedup, mssim) in points.items():
                row[f"{scenario}_speedup"] = speedup
                row[f"{scenario}_mssim"] = mssim
                acc[scenario]["speedup"].append(speedup)
                acc[scenario]["mssim"].append(mssim)
            rows.append(row)
    if not rows:
        return ExperimentResult(
            experiment="fig19", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    avg = {"workload": "average"}
    for scenario in SCENARIO_ORDER:
        avg[f"{scenario}_speedup"] = float(np.mean(acc[scenario]["speedup"]))
        avg[f"{scenario}_mssim"] = float(np.mean(acc[scenario]["mssim"]))
    rows.append(avg)
    notes = (
        f"PATU: {avg['patu_speedup'] - 1:.0%} average speedup at "
        f"{avg['patu_mssim']:.0%} MSSIM "
        "(paper: 17% speedup at 93% MSSIM; N+Txds fastest but lowest quality)"
    )
    return ExperimentResult(experiment="fig19", title=TITLE, rows=rows, notes=notes)
