"""Fig. 20: normalized total GPU energy (DRAM included) per design.

Paper result: PATU reduces whole-GPU energy by 11% on average (up to
16%), slightly more than AF-SSIM(N) and slightly less than
AF-SSIM(N)+(Txds) (~1% more energy than the latter, because LOD reuse
fetches from a more detailed mip level). Savings come mostly from
shorter frame times; average power rises slightly.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Normalized GPU energy under the designs (Fig. 20)"

SCENARIO_ORDER = ("baseline", "afssim_n", "afssim_n_txds", "patu")
DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(
            name, frame, scenario,
            1.0 if scenario == "baseline" else DEFAULT_THRESHOLD,
        )
        for name in ctx.workload_list
        for frame in range(ctx.frames)
        for scenario in SCENARIO_ORDER
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    acc = {s: [] for s in SCENARIO_ORDER}
    for name in ctx.workload_list:
        with ctx.isolate(name):
            base = ctx.mean_over_frames(name, "baseline", 1.0)
            row = {"workload": name}
            norms = {}
            for scenario in SCENARIO_ORDER:
                threshold = 1.0 if scenario == "baseline" else DEFAULT_THRESHOLD
                point = ctx.mean_over_frames(name, scenario, threshold)
                norms[scenario] = point["energy_nj"] / base["energy_nj"]
            row.update(norms)
            rows.append(row)
            for scenario, norm in norms.items():
                acc[scenario].append(norm)
    if not rows:
        return ExperimentResult(
            experiment="fig20", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    avg_row = {"workload": "average"}
    for scenario in SCENARIO_ORDER:
        avg_row[scenario] = float(np.mean(acc[scenario]))
    rows.append(avg_row)
    notes = (
        f"PATU energy reduction {1 - avg_row['patu']:.0%} on average "
        "(paper: 11% average, up to 16%; PATU ~1% above N+Txds)"
    )
    return ExperimentResult(experiment="fig20", title=TITLE, rows=rows, notes=notes)
