"""Fig. 21: cache-sensitivity study.

The paper scales the LLC (2x, 4x) and texture cache (2xTC + 4xLLC)
with and without PATU. Observations to reproduce:

* extra capacity alone barely helps (rendering streams texture data);
* PATU on top of every cache configuration adds a large, roughly
  constant speedup (24-28% over the 1x baseline in the paper);
* PATU's benefit scales (does not shrink) with LLC size — the designs
  are orthogonal.

All speedups are normalized to the 1x-cache baseline without PATU.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import ConfigKey, EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "Cache sensitivity: LLC/TC scaling with and without PATU (Fig. 21)"

#: (label, texture-cache scale, LLC scale)
CACHE_POINTS = (
    ("1x", 1, 1),
    ("2xLLC", 1, 2),
    ("4xLLC", 1, 4),
    ("2xTC+4xLLC", 2, 4),
)
DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    jobs = []
    for name in ctx.workload_list:
        for frame in range(ctx.frames):
            jobs.append(eval_job(name, frame, "baseline", 1.0))
            for _label, tc, llc in CACHE_POINTS:
                config = ConfigKey(llc_scale=llc, tc_scale=tc)
                jobs.append(
                    eval_job(name, frame, "baseline", 1.0, config)
                )
                jobs.append(
                    eval_job(name, frame, "patu", DEFAULT_THRESHOLD, config)
                )
    return jobs


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    acc: "dict[tuple[str, bool], list[float]]" = {}
    for name in ctx.workload_list:
        with ctx.isolate(name):
            base = ctx.mean_over_frames(name, "baseline", 1.0)
            row = {"workload": name}
            speedups = {}
            for label, tc, llc in CACHE_POINTS:
                for patu in (False, True):
                    scenario = "patu" if patu else "baseline"
                    threshold = DEFAULT_THRESHOLD if patu else 1.0
                    point = ctx.mean_over_frames(
                        name, scenario, threshold, llc_scale=llc, tc_scale=tc
                    )
                    col = f"{label}+PATU" if patu else label
                    speedups[(label, patu, col)] = base["cycles"] / point["cycles"]
            for (label, patu, col), speedup in speedups.items():
                row[col] = speedup
                acc.setdefault((label, patu), []).append(speedup)
            rows.append(row)
    if not rows:
        return ExperimentResult(
            experiment="fig21", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    avg_row = {"workload": "average"}
    for label, tc, llc in CACHE_POINTS:
        for patu in (False, True):
            col = f"{label}+PATU" if patu else label
            avg_row[col] = float(np.mean(acc[(label, patu)]))
    rows.append(avg_row)
    notes = (
        "capacity alone: "
        + ", ".join(
            f"{label}={avg_row[label]:.3f}x" for label, _, _ in CACHE_POINTS
        )
        + "; with PATU: "
        + ", ".join(
            f"{label}+PATU={avg_row[label + '+PATU']:.3f}x"
            for label, _, _ in CACHE_POINTS
        )
        + " (paper: capacity alone barely helps; PATU adds 24-28% everywhere)"
    )
    return ExperimentResult(experiment="fig21", title=TITLE, rows=rows, notes=notes)
