"""Fig. 22: user satisfaction score over thresholds.

The paper rebuilds doom3 and HL2 replays at thresholds
{0, 0.2, 0.4, 0.6, 0.8} (plus the AF-on baseline at 1.0), shows them
to 30 participants on a fixed 5.5-inch screen, and reports 1-5
satisfaction scores. Observations to reproduce:

* PATU's intermediate thresholds beat both extremes (no-AF at 0 and
  always-AF at 1);
* high-resolution replays peak at *lower* thresholds (performance
  matters more when frames are slow — doom3-1280x1024 prefers 0.2);
* low-resolution replays peak at *higher* thresholds (everything is
  fast, quality dominates — both 640x480 games prefer ~0.8).

Our replays use the workloads' full frame sequences (the paper used
600-frame traces; the substitution is documented in DESIGN.md).
"""

from __future__ import annotations

from ..engine.jobs import EvalJob, eval_job
from ..replay.vsync import VsyncSimulator, frame_complexity, nominal_frame_cycles
from ..study.users import UserStudy
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "User satisfaction over thresholds (Fig. 22)"

WORKLOADS = (
    "doom3-1280x1024",
    "doom3-640x480",
    "HL2-1600x1200",
    "HL2-640x480",
)
THRESHOLDS = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
REPLAY_FRAMES = 6


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(
            name, frame,
            "patu" if threshold < 1.0 else "baseline", threshold,
        )
        for name in WORKLOADS
        for threshold in THRESHOLDS
        for frame in range(REPLAY_FRAMES)
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    study = UserStudy(num_participants=30, seed=2018)
    vsync = VsyncSimulator()
    rows = []
    preferred = {}
    for name in WORKLOADS:
        best = (-1.0, None)
        for threshold in THRESHOLDS:
            scenario = "patu" if threshold < 1.0 else "baseline"
            cycles = []
            mssim_sum = 0.0
            for frame in range(REPLAY_FRAMES):
                m = ctx.frame_metrics(name, frame, scenario, threshold)
                cycles.append(
                    nominal_frame_cycles(
                        m["cycles"], ctx.scale, frame_complexity(frame)
                    )
                )
                mssim_sum += m["mssim"] / REPLAY_FRAMES
            stats = vsync.replay(cycles)
            scored = study.evaluate(mssim_sum, stats.average_fps, stats.lag_fraction)
            rows.append(
                {
                    "workload": name,
                    "threshold": threshold,
                    "score": scored.mean_score,
                    "score_std": scored.std_score,
                    "fps": stats.average_fps,
                    "lag_fraction": stats.lag_fraction,
                    "mssim": mssim_sum,
                }
            )
            if scored.mean_score > best[0]:
                best = (scored.mean_score, threshold)
        preferred[name] = best[1]
    notes = "preferred thresholds: " + ", ".join(
        f"{k}={v:.1f}" for k, v in preferred.items()
    )
    notes += (
        " (paper: intermediate thresholds beat both extremes; high "
        "resolutions prefer lower thresholds, low resolutions higher)"
    )
    result = ExperimentResult(experiment="fig22", title=TITLE, rows=rows, notes=notes)
    result.preferred = preferred  # type: ignore[attr-defined]
    return result
