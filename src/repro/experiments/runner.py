"""Shared experiment infrastructure: context, caching, aggregation.

An :class:`ExperimentContext` owns one :class:`RenderSession` and
memoizes frame captures and design-point evaluations, so experiments
that share workloads (most of them) render each frame exactly once per
process. Cache-scaling experiments (Fig. 21) evaluate the *same*
captures under derived GPU configurations — captures carry texel
addresses, not cache state, so they are configuration-independent.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..config import BASELINE_CONFIG, GpuConfig
from ..core.scenarios import get_scenario
from ..errors import ExperimentError
from ..obs import TELEMETRY
from ..renderer.session import FrameCapture, FrameResult, RenderSession
from ..workloads.games import get_workload, workload_names
from ..workloads.rbench import rbench_workload
from ..workloads.scene import Workload

#: Workload list used by the per-game experiments, in Table II order.
DEFAULT_WORKLOADS = (
    "HL2-1600x1200",
    "HL2-1280x1024",
    "HL2-640x480",
    "doom3-1600x1200",
    "doom3-1280x1024",
    "doom3-640x480",
    "grid-1280x1024",
    "nfs-1280x1024",
    "stal-1280x1024",
    "Ut3-1280x1024",
    "wolf-640x480",
)


@dataclass
class ExperimentResult:
    """Rows of one reproduced artifact plus free-form notes."""

    experiment: str
    title: str
    rows: "list[dict]"
    notes: str = ""

    def column(self, key: str) -> "list":
        return [row[key] for row in self.rows]


def format_table(result: ExperimentResult) -> str:
    """Render an ExperimentResult as an aligned text table."""
    if not result.rows:
        return f"== {result.experiment}: {result.title} ==\n(no rows)\n"
    keys = list(result.rows[0].keys())
    cells = [[_fmt(row.get(k)) for k in keys] for row in result.rows]
    widths = [
        max(len(k), *(len(row[i]) for row in cells)) for i, k in enumerate(keys)
    ]
    lines = [f"== {result.experiment}: {result.title} =="]
    lines.append("  ".join(k.ljust(w) for k, w in zip(keys, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if result.notes:
        lines.append(result.notes)
    return "\n".join(lines) + "\n"


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def run_experiment(exp_id: str, module, ctx: "ExperimentContext") -> ExperimentResult:
    """Run one experiment module under a telemetry span.

    ``module`` is an entry of :data:`repro.experiments.REGISTRY` (passed
    in by the caller to keep this module import-cycle free).
    """
    TELEMETRY.progress(f"experiment {exp_id}: starting "
                       f"({ctx.frames} frame(s), scale {ctx.scale:g})")
    with TELEMETRY.span(
        f"experiment.{exp_id}", workloads=len(ctx.workload_list)
    ):
        result = module.run(ctx)
    TELEMETRY.progress(f"experiment {exp_id}: {len(result.rows)} rows")
    return result


class ExperimentContext:
    """A render session plus caches shared across experiments."""

    def __init__(
        self,
        *,
        scale: float = 0.25,
        frames: int = 2,
        workloads: "tuple[str, ...]" = DEFAULT_WORKLOADS,
        config: GpuConfig = BASELINE_CONFIG,
    ) -> None:
        if frames < 1:
            raise ExperimentError("need at least one frame per workload")
        self.scale = scale
        self.frames = frames
        self.workload_list = workloads
        self.base_config = config
        self.session = RenderSession(config, scale=scale)
        self._captures: "dict[tuple[str, int], FrameCapture]" = {}
        self._results: "dict" = {}
        self._alt_sessions: "dict[tuple[int, int], RenderSession]" = {}

    # -- capture / evaluate with memoization ---------------------------

    def workload(self, name: str) -> Workload:
        if name.startswith("R.Bench"):
            return rbench_workload(name.split("-", 1)[1])
        return get_workload(name)

    def capture(self, workload_name: str, frame: int) -> FrameCapture:
        key = (workload_name, frame)
        if key not in self._captures:
            TELEMETRY.count("experiment.captures")
            self._captures[key] = self.session.capture_frame(
                self.workload(workload_name), frame
            )
        return self._captures[key]

    def result(
        self,
        workload_name: str,
        frame: int,
        scenario: str,
        threshold: float,
        *,
        llc_scale: int = 1,
        tc_scale: int = 1,
    ) -> FrameResult:
        """Evaluate (and cache) one design point on one frame."""
        key = (workload_name, frame, scenario, round(threshold, 6), llc_scale, tc_scale)
        if key not in self._results:
            TELEMETRY.count("experiment.evaluations")
            session = self._session_for(llc_scale, tc_scale)
            self._results[key] = session.evaluate(
                self.capture(workload_name, frame),
                get_scenario(scenario),
                threshold,
            )
        return self._results[key]

    def _session_for(self, llc_scale: int, tc_scale: int) -> RenderSession:
        if llc_scale == 1 and tc_scale == 1:
            return self.session
        key = (llc_scale, tc_scale)
        if key not in self._alt_sessions:
            config = self.base_config.scaled(
                texture_l1=tc_scale, texture_l2=llc_scale
            )
            self._alt_sessions[key] = RenderSession(config, scale=self.scale)
        return self._alt_sessions[key]

    # -- aggregation ----------------------------------------------------

    def mean_over_frames(
        self,
        workload_name: str,
        scenario: str,
        threshold: float,
        *,
        llc_scale: int = 1,
        tc_scale: int = 1,
    ) -> "dict[str, float]":
        """Frame-averaged metrics for one (workload, design point)."""
        acc: "dict[str, float]" = {}
        for frame in range(self.frames):
            r = self.result(
                workload_name, frame, scenario, threshold,
                llc_scale=llc_scale, tc_scale=tc_scale,
            )
            metrics = {
                "cycles": r.frame_cycles,
                "mssim": r.mssim,
                "energy_nj": r.total_energy_nj,
                "request_latency": r.request_latency,
                "approximation_rate": r.approximation_rate,
                "quad_divergence": r.quad_divergence,
                "dram_bytes": float(r.hierarchy.dram_bytes),
                "texture_bytes": float(r.bandwidth.texture_bytes),
                "color_bytes": float(r.bandwidth.color_bytes),
                "depth_bytes": float(r.bandwidth.depth_bytes),
                "geometry_bytes": float(r.bandwidth.geometry_bytes),
                "total_bytes": float(r.bandwidth.total_bytes),
                "fps": r.fps,
                "trilinear": float(r.events.trilinear_samples),
            }
            for k, v in metrics.items():
                acc[k] = acc.get(k, 0.0) + v / self.frames
        return acc


_DEFAULT_CONTEXT: "ExperimentContext | None" = None


def get_default_context() -> ExperimentContext:
    """The process-wide shared context used by benches and examples."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ExperimentContext()
    return _DEFAULT_CONTEXT
