"""Shared experiment infrastructure: context, caching, aggregation.

An :class:`ExperimentContext` is the experiment-facing façade over the
:mod:`repro.engine`: modules *plan* typed
:class:`~repro.engine.jobs.EvalJob` lists, hand them to
:meth:`ExperimentContext.execute` (which dedupes and runs them on the
serial or process backend selected by ``jobs=``), then *aggregate* via
the same memoized accessors (:meth:`capture`, :meth:`result`,
:meth:`frame_metrics`, :meth:`mean_over_frames`) they always used —
after execution those accessors are pure cache reads. Because the
accessors still compute lazily on a miss, plan lists may under-cover
and everything stays correct, just slower.

Captures are memoized per (workload, frame, variant) in memory and,
when a capture store is attached (``capture_cache=`` or any parallel
run), content-addressed on disk — rendering becomes a per-machine
cost instead of a per-process one.

Sweeps are fault-tolerant (``docs/resilience.md``): per-(workload,
frame) failures inside :meth:`ExperimentContext.isolate` /
:meth:`ExperimentContext.mean_over_frames` are caught, recorded as
structured :class:`~repro.resilience.FailureRecord`\\ s, and the sweep
continues with the remaining work. A job that fails during *engine*
execution is parked as a :class:`~repro.errors.JobError` and replayed
when aggregation touches it, so failure reports are identical across
backends. When a ``checkpoint_path`` is set, completed job metrics
persist to a versioned, atomically written checkpoint so an
interrupted sweep resumes instead of re-rendering.
"""

from __future__ import annotations

import contextlib
import pathlib
import tempfile
from dataclasses import dataclass, field
from dataclasses import replace as dataclasses_replace

from ..config import BASELINE_CONFIG, GpuConfig
from ..engine.capture_store import CaptureStore, StoreStats
from ..engine.jobs import (
    DEFAULT_CONFIG,
    DEFAULT_VARIANT,
    KIND_CAPTURE,
    CaptureVariant,
    ConfigKey,
    EvalJob,
)
from ..engine.scheduler import Engine, ExecutionReport
from ..engine.worker import (
    build_session,
    capture_spec_for,
    effective_variant,
    evaluate_job,
    extract_frame_metrics,
    resolve_workload,
    session_cache_key,
)
from ..errors import ExperimentError, JobError
from ..obs import TELEMETRY
from ..renderer.pipeline import DEFAULT_RASTER, DEFAULT_RASTER_TILE
from ..renderer.session import FrameCapture, FrameResult, RenderSession
from ..resilience import FailureRecord, load_checkpoint, save_checkpoint
from ..workloads.scene import Workload

__all__ = [
    "DEFAULT_WORKLOADS",
    "ExperimentContext",
    "ExperimentResult",
    "extract_frame_metrics",
    "format_table",
    "get_default_context",
    "reset_default_context",
    "run_experiment",
]

#: Workload list used by the per-game experiments, in Table II order.
DEFAULT_WORKLOADS = (
    "HL2-1600x1200",
    "HL2-1280x1024",
    "HL2-640x480",
    "doom3-1600x1200",
    "doom3-1280x1024",
    "doom3-640x480",
    "grid-1280x1024",
    "nfs-1280x1024",
    "stal-1280x1024",
    "Ut3-1280x1024",
    "wolf-640x480",
)


@dataclass
class ExperimentResult:
    """Rows of one reproduced artifact plus free-form notes.

    ``failures`` lists the isolated per-(workload, frame) errors the
    sweep survived — an experiment with failures still has rows for
    everything that succeeded.
    """

    experiment: str
    title: str
    rows: "list[dict]"
    notes: str = ""
    failures: "list[FailureRecord]" = field(default_factory=list)

    def column(self, key: str) -> "list":
        return [row[key] for row in self.rows]


def format_table(result: ExperimentResult) -> str:
    """Render an ExperimentResult as an aligned text table."""
    if not result.rows:
        lines = [f"== {result.experiment}: {result.title} ==", "(no rows)"]
        lines.extend(_failure_lines(result))
        return "\n".join(lines) + "\n"
    keys = list(result.rows[0].keys())
    cells = [[_fmt(row.get(k)) for k in keys] for row in result.rows]
    widths = [
        max(len(k), *(len(row[i]) for row in cells)) for i, k in enumerate(keys)
    ]
    lines = [f"== {result.experiment}: {result.title} =="]
    lines.append("  ".join(k.ljust(w) for k, w in zip(keys, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if result.notes:
        lines.append(result.notes)
    lines.extend(_failure_lines(result))
    return "\n".join(lines) + "\n"


def _failure_lines(result: ExperimentResult) -> "list[str]":
    if not result.failures:
        return []
    lines = [f"!! {len(result.failures)} isolated failure(s):"]
    lines.extend(f"!!   {record}" for record in result.failures)
    return lines


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def run_experiment(exp_id: str, module, ctx: "ExperimentContext") -> ExperimentResult:
    """Run one experiment module under a telemetry span.

    ``module`` is an entry of :data:`repro.experiments.REGISTRY` (passed
    in by the caller to keep this module import-cycle free).
    """
    TELEMETRY.progress(f"experiment {exp_id}: starting "
                       f"({ctx.frames} frame(s), scale {ctx.scale:g})")
    with TELEMETRY.span(
        f"experiment.{exp_id}", workloads=len(ctx.workload_list)
    ):
        result = module.run(ctx)
    result.failures.extend(ctx.drain_failures())
    ctx.save_checkpoint()
    TELEMETRY.progress(
        f"experiment {exp_id}: {len(result.rows)} rows, "
        f"{len(result.failures)} isolated failure(s)"
    )
    _probe_golden(exp_id, ctx, result)
    return result


def _probe_golden(exp_id: str, ctx: "ExperimentContext", result) -> None:
    """Warn (via telemetry) when a run diverges from its pinned golden.

    Best-effort by design: staleness detection must never fail or slow
    an experiment, so any error in the probe is swallowed.
    """
    try:
        from ..verify.goldens import check_experiment_golden

        check_experiment_golden(exp_id, ctx, format_table(result))
    except Exception:  # noqa: BLE001 — advisory path only
        pass


class ExperimentContext:
    """A render session plus engine-backed caches shared across experiments.

    ``jobs`` selects the engine backend (1 = serial in-process, >1 = a
    process pool of that size); ``capture_cache`` attaches a persistent
    on-disk capture store (parallel runs without one get a temporary
    store for the worker handoff); ``job_timeout`` sets the per-job
    wall-clock budget the process backend's worker supervision derives
    chunk deadlines from (None = 300 s default, 0 = no deadlines). With ``checkpoint_path`` set, every
    completed job's metrics dict is persisted (atomically, every
    ``checkpoint_every`` new evaluations and at each experiment end)
    and :meth:`load_checkpoint` seeds the cache so resumed sweeps skip
    checkpointed evaluations entirely.
    """

    def __init__(
        self,
        *,
        scale: float = 0.25,
        frames: int = 2,
        workloads: "tuple[str, ...]" = DEFAULT_WORKLOADS,
        config: GpuConfig = BASELINE_CONFIG,
        checkpoint_path: "str | pathlib.Path | None" = None,
        checkpoint_every: int = 16,
        jobs: int = 1,
        capture_cache: "str | pathlib.Path | CaptureStore | None" = None,
        job_timeout: "float | None" = None,
        raster: str = DEFAULT_RASTER,
        raster_tile: int = DEFAULT_RASTER_TILE,
        backend: "str | None" = None,
    ) -> None:
        if frames < 1:
            raise ExperimentError("need at least one frame per workload")
        if jobs < 1:
            raise ExperimentError(f"jobs must be >= 1, got {jobs}")
        if backend is None:
            backend = "process" if jobs > 1 else "serial"
        if backend not in ("serial", "process", "remote"):
            raise ExperimentError(
                f"unknown backend {backend!r} "
                "(expected serial, process or remote)"
            )
        if backend == "serial" and jobs > 1:
            backend = "process"
        self.scale = scale
        self.frames = frames
        self.workload_list = workloads
        self.base_config = config
        self.jobs = jobs
        #: Execution backend: ``"serial"`` (in-process), ``"process"``
        #: (fork pool), or ``"remote"`` (TCP socket workers — see
        #: :mod:`repro.engine.remote`).
        self.backend = backend
        #: Raster backend + tile size, threaded through every session
        #: this context builds (parent and pool workers alike) and into
        #: the capture-store key.
        self.raster = raster
        self.raster_tile = raster_tile
        #: Per-job wall-clock budget for process-backend chunk
        #: deadlines (None = supervision default, 0 disables).
        self.job_timeout = job_timeout
        self.session = RenderSession(
            config, scale=scale, raster=raster, raster_tile=raster_tile
        )
        self._captures: "dict[tuple[str, int, CaptureVariant], FrameCapture]" = {}
        self._results: "dict[tuple, FrameResult]" = {}
        self._alt_sessions: "dict[tuple, RenderSession]" = {}
        #: Completed job metrics, keyed by EvalJob.metrics_key()
        #: (checkpointable — see docs/resilience.md).
        self._metrics: "dict[tuple, dict[str, float]]" = {}
        #: Jobs that failed during engine execution, replayed as
        #: JobError when aggregation touches the design point.
        self._failed: "dict[tuple, JobError]" = {}
        self.failures: "list[FailureRecord]" = []
        self.checkpoint_path = (
            pathlib.Path(checkpoint_path) if checkpoint_path else None
        )
        self.checkpoint_every = max(1, checkpoint_every)
        self._dirty_metrics = 0
        if isinstance(capture_cache, CaptureStore):
            self._store: "CaptureStore | None" = capture_cache
        else:
            self._store = (
                CaptureStore(capture_cache) if capture_cache else None
            )
        self._tmp_store: "tempfile.TemporaryDirectory | None" = None
        self.engine = Engine(self)

    # -- engine façade --------------------------------------------------

    def execute(self, jobs: "list[EvalJob]") -> ExecutionReport:
        """Run a planned job list on the configured backend.

        Deduplicates, skips already-satisfied jobs (memory caches,
        resumed checkpoints, warm capture store), and parks failures
        for replay at aggregation time.
        """
        return self.engine.execute(jobs)

    def job_satisfied(self, job: EvalJob) -> bool:
        """Would executing ``job`` do any new work?"""
        if job.kind == KIND_CAPTURE:
            workload, frame, variant = job.capture_key()
            if self.has_capture(workload, frame, variant):
                return True
            return (
                self._store is not None
                and self._store.path_for(
                    self.capture_spec(workload, frame, variant)
                ).exists()
            )
        key = job.metrics_key()
        return key in self._metrics or key in self._failed

    def park_failure(self, job: EvalJob, error: JobError) -> None:
        """Negative-cache one failed job for aggregation-time replay."""
        self._failed[job.metrics_key()] = error

    def store_metrics(self, key: tuple, metrics: "dict[str, float]") -> None:
        """Record one completed job's metrics (checkpoint cadence here)."""
        self._metrics[key] = metrics
        self._dirty_metrics += 1
        if (
            self.checkpoint_path is not None
            and self._dirty_metrics >= self.checkpoint_every
        ):
            self.save_checkpoint()

    def close(self) -> None:
        """Release engine workers and any temporary capture store.

        Idempotent; a closed context can still aggregate from its
        in-memory caches, and a subsequent :meth:`execute` simply
        starts a fresh worker pool.
        """
        self.engine.close()
        if self._tmp_store is not None:
            self._store = None
            self._tmp_store.cleanup()
            self._tmp_store = None

    def __enter__(self) -> "ExperimentContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def ensure_store(self) -> CaptureStore:
        """The attached capture store, creating a temporary one if none.

        The process backend always needs a store — it is how rendered
        captures travel from workers to the parent and between workers.
        """
        if self._store is None:
            self._tmp_store = tempfile.TemporaryDirectory(
                prefix="repro-captures-"
            )
            self._store = CaptureStore(self._tmp_store.name)
        return self._store

    @property
    def capture_store(self) -> "CaptureStore | None":
        return self._store

    def capture_store_stats(self) -> "StoreStats | None":
        return self._store.stats if self._store is not None else None

    def capture_spec(
        self, workload_name: str, frame: int, variant: CaptureVariant
    ) -> "dict[str, object]":
        """The capture store spec of one frame under this context."""
        return capture_spec_for(
            workload_name, frame,
            base_config=self.base_config, scale=self.scale, variant=variant,
            raster=self.raster, raster_tile=self.raster_tile,
        )

    def has_capture(
        self, workload_name: str, frame: int,
        variant: CaptureVariant = DEFAULT_VARIANT,
    ) -> bool:
        variant = effective_variant(self.base_config, variant)
        return (workload_name, frame, variant) in self._captures

    # -- failure isolation ---------------------------------------------

    def record_failure(
        self,
        workload: str,
        frame: "int | None",
        stage: str,
        error: BaseException,
    ) -> FailureRecord:
        """Record one isolated failure and keep the sweep going."""
        record = FailureRecord(
            workload=workload,
            frame=frame,
            stage=stage,
            # A JobError is a replayed engine failure; report the
            # original error's type, not the envelope's.
            error_type=(
                error.error_type if isinstance(error, JobError)
                else type(error).__name__
            ),
            message=str(error),
        )
        self.failures.append(record)
        TELEMETRY.count("experiment.failures")
        TELEMETRY.progress(f"isolated failure: {record}")
        return record

    @contextlib.contextmanager
    def isolate(self, workload: str, frame: "int | None" = None,
                stage: str = "experiment"):
        """Run one sweep step; failures are recorded, not propagated.

        ``KeyboardInterrupt``/``SystemExit`` still propagate (so SIGINT
        reaches the checkpoint-flush path), every other exception is
        converted into a :class:`FailureRecord`.
        """
        try:
            yield
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            self.record_failure(workload, frame, stage, exc)

    def drain_failures(self) -> "list[FailureRecord]":
        """Return and clear the accumulated failure records."""
        drained, self.failures = self.failures, []
        return drained

    # -- checkpointing --------------------------------------------------

    def checkpoint_fingerprint(self) -> "dict[str, object]":
        """Identity of this context for checkpoint compatibility."""
        fp = {
            "scale": self.scale,
            "frames": self.frames,
            "config": repr(self.base_config),
        }
        # The default backend keeps the fingerprint stable; only
        # non-default raster settings (whose workload counts differ)
        # are incompatible with default-raster checkpoints.
        if (self.raster, self.raster_tile) != (
            DEFAULT_RASTER, DEFAULT_RASTER_TILE
        ):
            fp["raster"] = f"{self.raster}@{self.raster_tile}"
        return fp

    def load_checkpoint(self) -> int:
        """Seed the metrics cache from ``checkpoint_path``, if present.

        Returns the number of design points loaded. A missing file is
        a clean start (returns 0); a corrupt or incompatible file
        raises :class:`~repro.errors.CheckpointError`.
        """
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return 0
        loaded = load_checkpoint(
            self.checkpoint_path, fingerprint=self.checkpoint_fingerprint()
        )
        for key, values in loaded.items():
            self._metrics.setdefault(key, values)
        TELEMETRY.count("experiment.checkpoint_loaded_points", len(loaded))
        return len(loaded)

    def save_checkpoint(self) -> "pathlib.Path | None":
        """Atomically flush the metrics cache to ``checkpoint_path``."""
        if self.checkpoint_path is None:
            return None
        path = save_checkpoint(
            self.checkpoint_path,
            fingerprint=self.checkpoint_fingerprint(),
            metrics=self._metrics,
        )
        self._dirty_metrics = 0
        TELEMETRY.count("experiment.checkpoint_saves")
        return path

    # -- capture / evaluate with memoization ---------------------------

    def workload(self, name: str) -> Workload:
        return resolve_workload(name)

    def capture(
        self,
        workload_name: str,
        frame: int,
        variant: CaptureVariant = DEFAULT_VARIANT,
    ) -> FrameCapture:
        """Render (or load) one frame's capture, memoized.

        Lookup order: in-memory cache, then the capture store (if one
        is attached), then an actual render — which is published back
        to the store so no other process renders this frame again.
        """
        variant = effective_variant(self.base_config, variant)
        key = (workload_name, frame, variant)
        cached = self._captures.get(key)
        if cached is not None:
            return cached
        capture = None
        if self._store is not None:
            capture = self._store.get(
                self.capture_spec(workload_name, frame, variant)
            )
        if capture is None:
            TELEMETRY.count("experiment.captures")
            session = self._session_for(
                ConfigKey(
                    max_anisotropy=variant.max_anisotropy,
                    compressed=variant.compressed,
                )
            )
            capture = session.capture_frame(self.workload(workload_name), frame)
            if self._store is not None:
                self._store.put(
                    self.capture_spec(workload_name, frame, variant), capture
                )
        self._captures[key] = capture
        return capture

    def result(
        self,
        workload_name: str,
        frame: int,
        scenario: str,
        threshold: float,
        *,
        llc_scale: int = 1,
        tc_scale: int = 1,
        config: "ConfigKey | None" = None,
    ) -> FrameResult:
        """Evaluate (and cache) one design point on one frame.

        ``config`` supersedes the ``llc_scale``/``tc_scale`` shorthand
        and carries every other evaluation knob (split thresholds,
        hash-table size, anisotropy cap, compression, software mode).
        """
        config = self._config_for(scenario, llc_scale, tc_scale, config)
        job = EvalJob(workload_name, frame, scenario, threshold,
                      config_key=config)
        key = job.metrics_key()
        if key not in self._results:
            TELEMETRY.count("experiment.evaluations")
            self._results[key] = evaluate_job(
                self._session_for(config),
                self.capture(workload_name, frame, variant=config.variant()),
                job,
            )
        return self._results[key]

    def _config_for(
        self,
        scenario: str,
        llc_scale: int,
        tc_scale: int,
        config: "ConfigKey | None",
    ) -> ConfigKey:
        if config is None:
            config = ConfigKey(llc_scale=llc_scale, tc_scale=tc_scale)
        if scenario == "software" and not config.software:
            config = dataclasses_replace(config, software=True)
        return config

    def _session_for(self, config: ConfigKey = DEFAULT_CONFIG) -> RenderSession:
        variant = effective_variant(self.base_config, config.variant())
        config = dataclasses_replace(
            config,
            max_anisotropy=variant.max_anisotropy,
            compressed=variant.compressed,
        )
        key = session_cache_key(config)
        if key == session_cache_key(DEFAULT_CONFIG):
            return self.session
        if key not in self._alt_sessions:
            self._alt_sessions[key] = build_session(
                self.base_config, self.scale, config,
                raster=self.raster, raster_tile=self.raster_tile,
            )
        return self._alt_sessions[key]

    # -- aggregation ----------------------------------------------------

    def frame_metrics(
        self,
        workload_name: str,
        frame: int,
        scenario: str,
        threshold: float,
        *,
        llc_scale: int = 1,
        tc_scale: int = 1,
        config: "ConfigKey | None" = None,
    ) -> "dict[str, float]":
        """Scalar metrics of one design point on one frame, cached.

        This is the engine's unit of completed work: on a cache hit
        (executed job, in-memory, or resumed from a checkpoint) no
        rendering, evaluation or ``experiment.evaluations`` counting
        happens at all. A design point whose job failed during engine
        execution replays its :class:`~repro.errors.JobError` here.
        """
        config = self._config_for(scenario, llc_scale, tc_scale, config)
        key = EvalJob(
            workload_name, frame, scenario, threshold, config_key=config
        ).metrics_key()
        cached = self._metrics.get(key)
        if cached is not None:
            return cached
        parked = self._failed.get(key)
        if parked is not None:
            raise parked
        r = self.result(
            workload_name, frame, scenario, threshold, config=config
        )
        metrics = extract_frame_metrics(r)
        self.store_metrics(key, metrics)
        return metrics

    def mean_over_frames(
        self,
        workload_name: str,
        scenario: str,
        threshold: float,
        *,
        llc_scale: int = 1,
        tc_scale: int = 1,
        config: "ConfigKey | None" = None,
    ) -> "dict[str, float]":
        """Frame-averaged metrics for one (workload, design point).

        Individual frame failures are isolated: the failing frame is
        recorded as a :class:`FailureRecord` and the average covers the
        frames that succeeded. Only when *every* frame fails does the
        workload's design point raise (callers running under
        :meth:`isolate` then record one workload-level failure).
        """
        acc: "dict[str, float]" = {}
        succeeded = 0
        for frame in range(self.frames):
            try:
                metrics = self.frame_metrics(
                    workload_name, frame, scenario, threshold,
                    llc_scale=llc_scale, tc_scale=tc_scale, config=config,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 — per-frame isolation
                self.record_failure(workload_name, frame, "evaluate", exc)
                continue
            succeeded += 1
            for k, v in metrics.items():
                acc[k] = acc.get(k, 0.0) + v
        if not succeeded:
            raise ExperimentError(
                f"all {self.frames} frame(s) of {workload_name} "
                f"[{scenario} @ {threshold:g}] failed"
            )
        return {k: v / succeeded for k, v in acc.items()}


_DEFAULT_CONTEXT: "ExperimentContext | None" = None


def get_default_context() -> ExperimentContext:
    """The process-wide shared context used by benches and examples."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ExperimentContext()
    return _DEFAULT_CONTEXT


def reset_default_context() -> None:
    """Drop the process-wide context (test isolation, reconfiguration).

    Suites that touch :func:`get_default_context` call this from their
    fixtures so cached captures/results never leak across tests.
    """
    global _DEFAULT_CONTEXT
    _DEFAULT_CONTEXT = None
