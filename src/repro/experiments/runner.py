"""Shared experiment infrastructure: context, caching, aggregation.

An :class:`ExperimentContext` owns one :class:`RenderSession` and
memoizes frame captures and design-point evaluations, so experiments
that share workloads (most of them) render each frame exactly once per
process. Cache-scaling experiments (Fig. 21) evaluate the *same*
captures under derived GPU configurations — captures carry texel
addresses, not cache state, so they are configuration-independent.

Sweeps are fault-tolerant (``docs/resilience.md``): per-(workload,
frame) failures inside :meth:`ExperimentContext.isolate` /
:meth:`ExperimentContext.mean_over_frames` are caught, recorded as
structured :class:`~repro.resilience.FailureRecord`\\ s, and the sweep
continues with the remaining work. When a ``checkpoint_path`` is set,
evaluated design-point metrics persist to a versioned, atomically
written checkpoint so an interrupted sweep resumes instead of
re-rendering.
"""

from __future__ import annotations

import contextlib
import pathlib
from dataclasses import dataclass, field

from ..config import BASELINE_CONFIG, GpuConfig
from ..core.scenarios import get_scenario
from ..errors import ExperimentError
from ..obs import TELEMETRY
from ..renderer.session import FrameCapture, FrameResult, RenderSession
from ..resilience import FailureRecord, load_checkpoint, save_checkpoint
from ..workloads.games import get_workload, workload_names
from ..workloads.rbench import rbench_workload
from ..workloads.scene import Workload

#: Workload list used by the per-game experiments, in Table II order.
DEFAULT_WORKLOADS = (
    "HL2-1600x1200",
    "HL2-1280x1024",
    "HL2-640x480",
    "doom3-1600x1200",
    "doom3-1280x1024",
    "doom3-640x480",
    "grid-1280x1024",
    "nfs-1280x1024",
    "stal-1280x1024",
    "Ut3-1280x1024",
    "wolf-640x480",
)


@dataclass
class ExperimentResult:
    """Rows of one reproduced artifact plus free-form notes.

    ``failures`` lists the isolated per-(workload, frame) errors the
    sweep survived — an experiment with failures still has rows for
    everything that succeeded.
    """

    experiment: str
    title: str
    rows: "list[dict]"
    notes: str = ""
    failures: "list[FailureRecord]" = field(default_factory=list)

    def column(self, key: str) -> "list":
        return [row[key] for row in self.rows]


def format_table(result: ExperimentResult) -> str:
    """Render an ExperimentResult as an aligned text table."""
    if not result.rows:
        lines = [f"== {result.experiment}: {result.title} ==", "(no rows)"]
        lines.extend(_failure_lines(result))
        return "\n".join(lines) + "\n"
    keys = list(result.rows[0].keys())
    cells = [[_fmt(row.get(k)) for k in keys] for row in result.rows]
    widths = [
        max(len(k), *(len(row[i]) for row in cells)) for i, k in enumerate(keys)
    ]
    lines = [f"== {result.experiment}: {result.title} =="]
    lines.append("  ".join(k.ljust(w) for k, w in zip(keys, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    if result.notes:
        lines.append(result.notes)
    lines.extend(_failure_lines(result))
    return "\n".join(lines) + "\n"


def _failure_lines(result: ExperimentResult) -> "list[str]":
    if not result.failures:
        return []
    lines = [f"!! {len(result.failures)} isolated failure(s):"]
    lines.extend(f"!!   {record}" for record in result.failures)
    return lines


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def run_experiment(exp_id: str, module, ctx: "ExperimentContext") -> ExperimentResult:
    """Run one experiment module under a telemetry span.

    ``module`` is an entry of :data:`repro.experiments.REGISTRY` (passed
    in by the caller to keep this module import-cycle free).
    """
    TELEMETRY.progress(f"experiment {exp_id}: starting "
                       f"({ctx.frames} frame(s), scale {ctx.scale:g})")
    with TELEMETRY.span(
        f"experiment.{exp_id}", workloads=len(ctx.workload_list)
    ):
        result = module.run(ctx)
    result.failures.extend(ctx.drain_failures())
    ctx.save_checkpoint()
    TELEMETRY.progress(
        f"experiment {exp_id}: {len(result.rows)} rows, "
        f"{len(result.failures)} isolated failure(s)"
    )
    return result


class ExperimentContext:
    """A render session plus caches shared across experiments.

    With ``checkpoint_path`` set, every design-point metrics dict is
    persisted (atomically, every ``checkpoint_every`` new evaluations
    and at each experiment end) and :meth:`load_checkpoint` seeds the
    cache so resumed sweeps skip checkpointed evaluations entirely.
    """

    def __init__(
        self,
        *,
        scale: float = 0.25,
        frames: int = 2,
        workloads: "tuple[str, ...]" = DEFAULT_WORKLOADS,
        config: GpuConfig = BASELINE_CONFIG,
        checkpoint_path: "str | pathlib.Path | None" = None,
        checkpoint_every: int = 16,
    ) -> None:
        if frames < 1:
            raise ExperimentError("need at least one frame per workload")
        self.scale = scale
        self.frames = frames
        self.workload_list = workloads
        self.base_config = config
        self.session = RenderSession(config, scale=scale)
        self._captures: "dict[tuple[str, int], FrameCapture]" = {}
        self._results: "dict" = {}
        self._alt_sessions: "dict[tuple[int, int], RenderSession]" = {}
        #: Checkpointable design-point metrics (see docs/resilience.md).
        self._metrics: "dict[tuple, dict[str, float]]" = {}
        self.failures: "list[FailureRecord]" = []
        self.checkpoint_path = (
            pathlib.Path(checkpoint_path) if checkpoint_path else None
        )
        self.checkpoint_every = max(1, checkpoint_every)
        self._dirty_metrics = 0

    # -- failure isolation ---------------------------------------------

    def record_failure(
        self,
        workload: str,
        frame: "int | None",
        stage: str,
        error: BaseException,
    ) -> FailureRecord:
        """Record one isolated failure and keep the sweep going."""
        record = FailureRecord(
            workload=workload,
            frame=frame,
            stage=stage,
            error_type=type(error).__name__,
            message=str(error),
        )
        self.failures.append(record)
        TELEMETRY.count("experiment.failures")
        TELEMETRY.progress(f"isolated failure: {record}")
        return record

    @contextlib.contextmanager
    def isolate(self, workload: str, frame: "int | None" = None,
                stage: str = "experiment"):
        """Run one sweep step; failures are recorded, not propagated.

        ``KeyboardInterrupt``/``SystemExit`` still propagate (so SIGINT
        reaches the checkpoint-flush path), every other exception is
        converted into a :class:`FailureRecord`.
        """
        try:
            yield
        except Exception as exc:  # noqa: BLE001 — isolation is the point
            self.record_failure(workload, frame, stage, exc)

    def drain_failures(self) -> "list[FailureRecord]":
        """Return and clear the accumulated failure records."""
        drained, self.failures = self.failures, []
        return drained

    # -- checkpointing --------------------------------------------------

    def checkpoint_fingerprint(self) -> "dict[str, object]":
        """Identity of this context for checkpoint compatibility."""
        return {
            "scale": self.scale,
            "frames": self.frames,
            "config": repr(self.base_config),
        }

    def load_checkpoint(self) -> int:
        """Seed the metrics cache from ``checkpoint_path``, if present.

        Returns the number of design points loaded. A missing file is
        a clean start (returns 0); a corrupt or incompatible file
        raises :class:`~repro.errors.CheckpointError`.
        """
        if self.checkpoint_path is None or not self.checkpoint_path.exists():
            return 0
        loaded = load_checkpoint(
            self.checkpoint_path, fingerprint=self.checkpoint_fingerprint()
        )
        for key, values in loaded.items():
            self._metrics.setdefault(key, values)
        TELEMETRY.count("experiment.checkpoint_loaded_points", len(loaded))
        return len(loaded)

    def save_checkpoint(self) -> "pathlib.Path | None":
        """Atomically flush the metrics cache to ``checkpoint_path``."""
        if self.checkpoint_path is None:
            return None
        path = save_checkpoint(
            self.checkpoint_path,
            fingerprint=self.checkpoint_fingerprint(),
            metrics=self._metrics,
        )
        self._dirty_metrics = 0
        TELEMETRY.count("experiment.checkpoint_saves")
        return path

    # -- capture / evaluate with memoization ---------------------------

    def workload(self, name: str) -> Workload:
        if name.startswith("R.Bench"):
            return rbench_workload(name.split("-", 1)[1])
        return get_workload(name)

    def capture(self, workload_name: str, frame: int) -> FrameCapture:
        key = (workload_name, frame)
        if key not in self._captures:
            TELEMETRY.count("experiment.captures")
            self._captures[key] = self.session.capture_frame(
                self.workload(workload_name), frame
            )
        return self._captures[key]

    def result(
        self,
        workload_name: str,
        frame: int,
        scenario: str,
        threshold: float,
        *,
        llc_scale: int = 1,
        tc_scale: int = 1,
    ) -> FrameResult:
        """Evaluate (and cache) one design point on one frame."""
        key = (workload_name, frame, scenario, round(threshold, 6), llc_scale, tc_scale)
        if key not in self._results:
            TELEMETRY.count("experiment.evaluations")
            session = self._session_for(llc_scale, tc_scale)
            self._results[key] = session.evaluate(
                self.capture(workload_name, frame),
                get_scenario(scenario),
                threshold,
            )
        return self._results[key]

    def _session_for(self, llc_scale: int, tc_scale: int) -> RenderSession:
        if llc_scale == 1 and tc_scale == 1:
            return self.session
        key = (llc_scale, tc_scale)
        if key not in self._alt_sessions:
            config = self.base_config.scaled(
                texture_l1=tc_scale, texture_l2=llc_scale
            )
            self._alt_sessions[key] = RenderSession(config, scale=self.scale)
        return self._alt_sessions[key]

    # -- aggregation ----------------------------------------------------

    def frame_metrics(
        self,
        workload_name: str,
        frame: int,
        scenario: str,
        threshold: float,
        *,
        llc_scale: int = 1,
        tc_scale: int = 1,
    ) -> "dict[str, float]":
        """Scalar metrics of one design point on one frame, cached.

        This is the checkpointable unit of work: on a cache hit (in
        memory or resumed from a checkpoint) no rendering, evaluation
        or ``experiment.evaluations`` counting happens at all.
        """
        key = (
            workload_name, frame, scenario, round(threshold, 6),
            llc_scale, tc_scale,
        )
        cached = self._metrics.get(key)
        if cached is not None:
            return cached
        r = self.result(
            workload_name, frame, scenario, threshold,
            llc_scale=llc_scale, tc_scale=tc_scale,
        )
        metrics = extract_frame_metrics(r)
        self._metrics[key] = metrics
        self._dirty_metrics += 1
        if (
            self.checkpoint_path is not None
            and self._dirty_metrics >= self.checkpoint_every
        ):
            self.save_checkpoint()
        return metrics

    def mean_over_frames(
        self,
        workload_name: str,
        scenario: str,
        threshold: float,
        *,
        llc_scale: int = 1,
        tc_scale: int = 1,
    ) -> "dict[str, float]":
        """Frame-averaged metrics for one (workload, design point).

        Individual frame failures are isolated: the failing frame is
        recorded as a :class:`FailureRecord` and the average covers the
        frames that succeeded. Only when *every* frame fails does the
        workload's design point raise (callers running under
        :meth:`isolate` then record one workload-level failure).
        """
        acc: "dict[str, float]" = {}
        succeeded = 0
        for frame in range(self.frames):
            try:
                metrics = self.frame_metrics(
                    workload_name, frame, scenario, threshold,
                    llc_scale=llc_scale, tc_scale=tc_scale,
                )
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:  # noqa: BLE001 — per-frame isolation
                self.record_failure(workload_name, frame, "evaluate", exc)
                continue
            succeeded += 1
            for k, v in metrics.items():
                acc[k] = acc.get(k, 0.0) + v
        if not succeeded:
            raise ExperimentError(
                f"all {self.frames} frame(s) of {workload_name} "
                f"[{scenario} @ {threshold:g}] failed"
            )
        return {k: v / succeeded for k, v in acc.items()}


def extract_frame_metrics(r: FrameResult) -> "dict[str, float]":
    """The scalar metrics dict persisted per (frame, design point)."""
    return {
        "cycles": r.frame_cycles,
        "mssim": r.mssim,
        "energy_nj": r.total_energy_nj,
        "request_latency": r.request_latency,
        "approximation_rate": r.approximation_rate,
        "quad_divergence": r.quad_divergence,
        "dram_bytes": float(r.hierarchy.dram_bytes),
        "texture_bytes": float(r.bandwidth.texture_bytes),
        "color_bytes": float(r.bandwidth.color_bytes),
        "depth_bytes": float(r.bandwidth.depth_bytes),
        "geometry_bytes": float(r.bandwidth.geometry_bytes),
        "total_bytes": float(r.bandwidth.total_bytes),
        "fps": r.fps,
        "trilinear": float(r.events.trilinear_samples),
        "degraded_pixels": float(r.degraded_pixels),
    }


_DEFAULT_CONTEXT: "ExperimentContext | None" = None


def get_default_context() -> ExperimentContext:
    """The process-wide shared context used by benches and examples."""
    global _DEFAULT_CONTEXT
    if _DEFAULT_CONTEXT is None:
        _DEFAULT_CONTEXT = ExperimentContext()
    return _DEFAULT_CONTEXT


def reset_default_context() -> None:
    """Drop the process-wide context (test isolation, reconfiguration).

    Suites that touch :func:`get_default_context` call this from their
    fixtures so cached captures/results never leak across tests.
    """
    global _DEFAULT_CONTEXT
    _DEFAULT_CONTEXT = None
