"""Section V-C(1): prediction divergence within pixel quads.

Paper result: across all games only ~1% of quads (up to 1.6%) contain
pixels whose PATU approximation decisions disagree — pixels in a quad
are spatial neighbours and usually share sample size and LOD, so no
special divergence hardware is warranted.
"""

from __future__ import annotations

import numpy as np

from ..engine.jobs import EvalJob, eval_job
from .runner import ExperimentContext, ExperimentResult, get_default_context

TITLE = "PATU prediction divergence within quads (Sec. V-C)"

DEFAULT_THRESHOLD = 0.4


def plan(ctx: ExperimentContext) -> "list[EvalJob]":
    return [
        eval_job(name, frame, "patu", DEFAULT_THRESHOLD)
        for name in ctx.workload_list
        for frame in range(ctx.frames)
    ]


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    ctx = ctx or get_default_context()
    ctx.execute(plan(ctx))
    rows = []
    for name in ctx.workload_list:
        with ctx.isolate(name):
            point = ctx.mean_over_frames(name, "patu", DEFAULT_THRESHOLD)
            rows.append(
                {"workload": name, "quad_divergence": point["quad_divergence"]}
            )
    if not rows:
        return ExperimentResult(
            experiment="sec5c", title=TITLE, rows=[],
            notes="(all workloads failed)",
        )
    mean = float(np.mean([r["quad_divergence"] for r in rows]))
    peak = float(np.max([r["quad_divergence"] for r in rows]))
    rows.append({"workload": "average", "quad_divergence": mean})
    notes = (
        f"average divergence {mean:.1%}, max {peak:.1%} "
        "(paper: ~1% average, up to 1.6%)"
    )
    return ExperimentResult(experiment="sec5c", title=TITLE, rows=rows, notes=notes)
