"""Section V-D: PATU hardware overhead.

Paper numbers: four 16-entry tables per texture unit at 260 bits per
entry (~2 KB SRAM per unit), ~0.15 mm^2 per unified-shader cluster on
a 66 mm^2 GPU at 28 nm, sub-cycle table access. (The paper quotes the
total as "0.2%" of GPU area; 0.15 mm^2/cluster x 4 clusters is 0.9% of
66 mm^2 — the per-cluster figure is the one our model reproduces, and
EXPERIMENTS.md notes the paper's internal inconsistency.)
"""

from __future__ import annotations

from ..config import BASELINE_CONFIG
from ..core.hash_table import BITS_PER_ENTRY, HASH_TABLE_ENTRIES
from ..power.area import PatuAreaModel
from .runner import ExperimentContext, ExperimentResult

TITLE = "PATU area/storage overhead (Sec. V-D)"


def plan(ctx: "ExperimentContext | None" = None) -> list:
    """Static report — nothing to render or evaluate."""
    return []


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    model = PatuAreaModel(BASELINE_CONFIG)
    report = model.report()
    rows = [
        {"quantity": "hash table entries", "value": HASH_TABLE_ENTRIES},
        {"quantity": "bits per entry", "value": BITS_PER_ENTRY},
        {"quantity": "tables per texture unit", "value": report.tables_per_unit},
        {
            "quantity": "SRAM per texture unit (KB)",
            "value": round(report.storage_kb_per_unit, 2),
        },
        {
            "quantity": "area per cluster (mm^2)",
            "value": round(report.mm2_per_cluster, 3),
        },
        {"quantity": "total area (mm^2)", "value": round(report.total_mm2, 3)},
        {
            "quantity": "fraction of 66 mm^2 GPU",
            "value": f"{report.gpu_fraction:.2%}",
        },
    ]
    notes = (
        "paper: 260 bits/entry, ~2 KB per texture unit, ~0.15 mm^2 per "
        "cluster, <1-cycle table access"
    )
    return ExperimentResult(experiment="sec5d", title=TITLE, rows=rows, notes=notes)
