"""Table I: baseline simulator configuration."""

from __future__ import annotations

from ..config import BASELINE_CONFIG
from .runner import ExperimentContext, ExperimentResult

TITLE = "Baseline simulator configuration (Table I)"


def plan(ctx: "ExperimentContext | None" = None) -> list:
    """Static report — nothing to render or evaluate."""
    return []


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    rows = [
        {"parameter": label, "value": value}
        for label, value in BASELINE_CONFIG.table1_rows()
    ]
    return ExperimentResult(experiment="table1", title=TITLE, rows=rows)
