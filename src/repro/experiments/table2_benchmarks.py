"""Table II: the 3D gaming benchmark list."""

from __future__ import annotations

from ..workloads.games import TABLE2_ROWS, get_workload
from .runner import ExperimentContext, ExperimentResult

TITLE = "3D gaming benchmarks (Table II)"


def plan(ctx: "ExperimentContext | None" = None) -> list:
    """Static report — builds workloads but renders nothing."""
    return []


def run(ctx: "ExperimentContext | None" = None) -> ExperimentResult:
    rows = []
    for abbr, title, resolutions, library in TABLE2_ROWS:
        for width, height in resolutions:
            wl = get_workload(f"{abbr}-{width}x{height}")
            rows.append(
                {
                    "abbr": abbr,
                    "name": title,
                    "resolution": f"{width}x{height}",
                    "library": library,
                    "triangles": wl.scene.total_triangles,
                    "textures": len(wl.scene.textures),
                    "frames": wl.num_frames,
                }
            )
    return ExperimentResult(experiment="table2", title=TITLE, rows=rows)
