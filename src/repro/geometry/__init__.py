"""Geometry front-end of the 3D rendering pipeline.

This subpackage implements everything that happens to vertices before
rasterization in Figure 2 of the paper: linear algebra primitives,
triangle meshes, model/view/projection transforms, frustum clipping,
back-face culling and the tiling engine.
"""

from .linalg import (
    identity,
    look_at,
    normalize,
    perspective,
    rotate_x,
    rotate_y,
    rotate_z,
    scale as scale_matrix,
    translate,
)
from .mesh import Mesh, VertexBuffer
from .transform import TransformedTriangles, transform_mesh
from .camera import Camera
from .tessellation import tessellate
from .clipping import clip_triangles_near
from .culling import cull_backfaces
from .tiling import Tile, TilingEngine

__all__ = [
    "Camera",
    "Mesh",
    "Tile",
    "TilingEngine",
    "TransformedTriangles",
    "VertexBuffer",
    "clip_triangles_near",
    "cull_backfaces",
    "identity",
    "look_at",
    "normalize",
    "perspective",
    "rotate_x",
    "rotate_y",
    "rotate_z",
    "scale_matrix",
    "tessellate",
    "transform_mesh",
    "translate",
]
