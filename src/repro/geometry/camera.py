"""Perspective camera producing view-projection matrices."""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from .linalg import look_at, perspective


@dataclass(frozen=True)
class Camera:
    """A pinhole camera.

    Attributes:
        eye: world-space camera position.
        target: world-space point the camera looks at.
        up: approximate up direction.
        fov_y_deg: full vertical field of view in degrees.
        near, far: clip distances.
    """

    eye: "tuple[float, float, float]"
    target: "tuple[float, float, float]"
    up: "tuple[float, float, float]" = (0.0, 1.0, 0.0)
    fov_y_deg: float = 60.0
    near: float = 0.1
    far: float = 2000.0

    def view_matrix(self) -> np.ndarray:
        return look_at(self.eye, self.target, self.up)

    def projection_matrix(self, aspect: float) -> np.ndarray:
        return perspective(math.radians(self.fov_y_deg), aspect, self.near, self.far)

    def view_projection(self, width: int, height: int) -> np.ndarray:
        """Combined projection @ view matrix for a ``width x height`` viewport."""
        aspect = width / height
        return self.projection_matrix(aspect) @ self.view_matrix()
