"""Near-plane clipping of clip-space triangles.

The pipeline only clips against the near plane (``z + w > 0`` in OpenGL
clip-space convention); triangles outside the side planes are handled by
scissoring in the rasterizer, which is what tile-based hardware does in
practice. Clipping one triangle against a plane yields zero, one or two
triangles (Sutherland-Hodgman on three vertices).
"""

from __future__ import annotations

import numpy as np

from .transform import TransformedTriangles

#: Distance-to-plane epsilon to keep interpolation well-conditioned.
_EPS = 1e-9
#: Intersection vertices are pulled this far inside the near plane so
#: rounding can never place them at (or behind) w = 0.
_INSIDE_MARGIN = 1e-7


def _clip_single(
    positions: np.ndarray, uvs: np.ndarray
) -> "list[tuple[np.ndarray, np.ndarray]]":
    """Clip one triangle against the near plane; return surviving triangles."""
    dist = positions[:, 2] + positions[:, 3]  # signed distance to near plane
    inside = dist > _EPS
    n_inside = int(inside.sum())
    if n_inside == 3:
        return [(positions, uvs)]
    if n_inside == 0:
        return []

    # Walk the polygon edges, emitting inside vertices and edge intersections.
    out_pos: "list[np.ndarray]" = []
    out_uv: "list[np.ndarray]" = []
    for i in range(3):
        j = (i + 1) % 3
        if inside[i]:
            out_pos.append(positions[i])
            out_uv.append(uvs[i])
        if inside[i] != inside[j]:
            t = (dist[i] - _INSIDE_MARGIN) / (dist[i] - dist[j])
            t = min(max(t, 0.0), 1.0)
            out_pos.append(positions[i] + t * (positions[j] - positions[i]))
            out_uv.append(uvs[i] + t * (uvs[j] - uvs[i]))

    tris: "list[tuple[np.ndarray, np.ndarray]]" = []
    for k in range(1, len(out_pos) - 1):
        tris.append(
            (
                np.stack([out_pos[0], out_pos[k], out_pos[k + 1]]),
                np.stack([out_uv[0], out_uv[k], out_uv[k + 1]]),
            )
        )
    return tris


def clip_triangles_near(tris: TransformedTriangles) -> TransformedTriangles:
    """Clip all triangles against the near plane.

    Fully-inside triangles pass through untouched (the common fast path);
    straddling triangles are re-tessellated into one or two triangles.
    """
    if tris.num_triangles == 0:
        return tris
    dist = tris.clip_positions[:, :, 2] + tris.clip_positions[:, :, 3]
    inside = dist > _EPS
    n_inside = inside.sum(axis=1)

    all_in = n_inside == 3
    needs_clip = (n_inside > 0) & ~all_in
    if not needs_clip.any():
        return tris.select(all_in)

    kept_pos = [tris.clip_positions[all_in]]
    kept_uv = [tris.uvs[all_in]]
    for idx in np.nonzero(needs_clip)[0]:
        for pos, uv in _clip_single(tris.clip_positions[idx], tris.uvs[idx]):
            kept_pos.append(pos[None, :, :])
            kept_uv.append(uv[None, :, :])
    return TransformedTriangles(
        clip_positions=np.concatenate(kept_pos, axis=0),
        uvs=np.concatenate(kept_uv, axis=0),
        texture=tris.texture,
        two_sided=tris.two_sided,
    )
