"""Back-face culling of clip-space triangles.

Performed after near-plane clipping so every vertex has ``w > 0`` and
the NDC winding is well-defined. Counter-clockwise triangles (positive
signed area in NDC, Y up) face the camera and are kept; two-sided draw
calls skip culling entirely.
"""

from __future__ import annotations

import numpy as np

from .transform import TransformedTriangles


def signed_ndc_areas(tris: TransformedTriangles) -> np.ndarray:
    """Signed NDC-space area of each triangle (positive = front-facing)."""
    pos = tris.clip_positions
    w = pos[:, :, 3:4]
    ndc = pos[:, :, :2] / w
    e1 = ndc[:, 1] - ndc[:, 0]
    e2 = ndc[:, 2] - ndc[:, 0]
    return 0.5 * (e1[:, 0] * e2[:, 1] - e1[:, 1] * e2[:, 0])


def cull_backfaces(tris: TransformedTriangles) -> TransformedTriangles:
    """Remove back-facing and zero-area triangles.

    Degenerate (zero-area) triangles are removed even for two-sided
    draw calls since they can never produce fragments.
    """
    if tris.num_triangles == 0:
        return tris
    area = signed_ndc_areas(tris)
    if tris.two_sided:
        keep = np.abs(area) > 1e-14
    else:
        keep = area > 1e-14
    return tris.select(keep)
