"""Small linear-algebra toolkit used by the rendering pipeline.

All matrices are 4x4 ``float64`` numpy arrays acting on column vectors
(``m @ v``), matching the classic OpenGL convention the paper's games
were written against. Functions return new arrays; nothing mutates its
inputs.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import GeometryError


def identity() -> np.ndarray:
    """Return the 4x4 identity matrix."""
    return np.eye(4, dtype=np.float64)


def translate(tx: float, ty: float, tz: float) -> np.ndarray:
    """Return a translation matrix."""
    m = identity()
    m[:3, 3] = (tx, ty, tz)
    return m


def scale(sx: float, sy: float, sz: float) -> np.ndarray:
    """Return a (possibly anisotropic) scaling matrix."""
    m = identity()
    m[0, 0], m[1, 1], m[2, 2] = sx, sy, sz
    return m


def rotate_x(angle: float) -> np.ndarray:
    """Rotation about the +X axis by ``angle`` radians."""
    m = identity()
    c, s = math.cos(angle), math.sin(angle)
    m[1, 1], m[1, 2] = c, -s
    m[2, 1], m[2, 2] = s, c
    return m


def rotate_y(angle: float) -> np.ndarray:
    """Rotation about the +Y axis by ``angle`` radians."""
    m = identity()
    c, s = math.cos(angle), math.sin(angle)
    m[0, 0], m[0, 2] = c, s
    m[2, 0], m[2, 2] = -s, c
    return m


def rotate_z(angle: float) -> np.ndarray:
    """Rotation about the +Z axis by ``angle`` radians."""
    m = identity()
    c, s = math.cos(angle), math.sin(angle)
    m[0, 0], m[0, 1] = c, -s
    m[1, 0], m[1, 1] = s, c
    return m


def normalize(v: np.ndarray) -> np.ndarray:
    """Return ``v`` scaled to unit length.

    Raises:
        GeometryError: if ``v`` is (numerically) the zero vector.
    """
    v = np.asarray(v, dtype=np.float64)
    n = float(np.linalg.norm(v))
    if n < 1e-12:
        raise GeometryError("cannot normalize a zero-length vector")
    return v / n


def look_at(eye, target, up=(0.0, 1.0, 0.0)) -> np.ndarray:
    """Build a right-handed view matrix looking from ``eye`` to ``target``."""
    eye = np.asarray(eye, dtype=np.float64)
    target = np.asarray(target, dtype=np.float64)
    forward = normalize(target - eye)
    up = np.asarray(up, dtype=np.float64)
    side_raw = np.cross(forward, up)
    if np.linalg.norm(side_raw) < 1e-12:
        raise GeometryError("up vector is parallel to the view direction")
    side = normalize(side_raw)
    true_up = np.cross(side, forward)
    m = identity()
    m[0, :3] = side
    m[1, :3] = true_up
    m[2, :3] = -forward
    m[0, 3] = -float(side @ eye)
    m[1, 3] = -float(true_up @ eye)
    m[2, 3] = float(forward @ eye)
    return m


def perspective(fov_y: float, aspect: float, near: float, far: float) -> np.ndarray:
    """Build an OpenGL-style perspective projection matrix.

    Args:
        fov_y: full vertical field of view in radians.
        aspect: viewport width / height.
        near, far: positive clip distances, ``0 < near < far``.
    """
    if not 0.0 < near < far:
        raise GeometryError(f"require 0 < near < far, got near={near} far={far}")
    if not 0.0 < fov_y < math.pi:
        raise GeometryError(f"fov_y must be in (0, pi), got {fov_y}")
    if aspect <= 0.0:
        raise GeometryError(f"aspect must be positive, got {aspect}")
    f = 1.0 / math.tan(fov_y / 2.0)
    m = np.zeros((4, 4), dtype=np.float64)
    m[0, 0] = f / aspect
    m[1, 1] = f
    m[2, 2] = (far + near) / (near - far)
    m[2, 3] = 2.0 * far * near / (near - far)
    m[3, 2] = -1.0
    return m


def transform_points(matrix: np.ndarray, points: np.ndarray) -> np.ndarray:
    """Apply a 4x4 matrix to an ``(n, 3)`` array of points -> ``(n, 4)`` clip coords."""
    points = np.asarray(points, dtype=np.float64)
    if points.ndim != 2 or points.shape[1] != 3:
        raise GeometryError(f"expected (n, 3) points, got shape {points.shape}")
    homo = np.concatenate(
        [points, np.ones((points.shape[0], 1), dtype=np.float64)], axis=1
    )
    return homo @ np.asarray(matrix, dtype=np.float64).T
