"""Triangle meshes and vertex buffers.

A :class:`Mesh` is the unit fed to a draw call: an indexed triangle list
with per-vertex positions and texture coordinates. The paper's games are
replayed as sequences of draw calls over such meshes (Section VI).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError


@dataclass(frozen=True)
class VertexBuffer:
    """Per-vertex attributes: positions ``(n, 3)`` and UVs ``(n, 2)``."""

    positions: np.ndarray
    uvs: np.ndarray

    def __post_init__(self) -> None:
        pos = np.asarray(self.positions, dtype=np.float64)
        uv = np.asarray(self.uvs, dtype=np.float64)
        if pos.ndim != 2 or pos.shape[1] != 3:
            raise GeometryError(f"positions must be (n, 3), got {pos.shape}")
        if uv.ndim != 2 or uv.shape[1] != 2:
            raise GeometryError(f"uvs must be (n, 2), got {uv.shape}")
        if pos.shape[0] != uv.shape[0]:
            raise GeometryError(
                f"positions ({pos.shape[0]}) and uvs ({uv.shape[0]}) disagree"
            )
        object.__setattr__(self, "positions", pos)
        object.__setattr__(self, "uvs", uv)

    def __len__(self) -> int:
        return self.positions.shape[0]


@dataclass(frozen=True)
class Mesh:
    """An indexed triangle mesh bound to a named texture.

    Attributes:
        vertices: the vertex buffer.
        indices: ``(m, 3)`` int array of triangle vertex indices.
        texture: name of the texture the fragment shader samples.
        two_sided: disable back-face culling for this mesh (used for
            ground/water planes seen from both sides in the game scenes).
        uv_scale: texture-coordinate tiling factor applied at draw time.
    """

    vertices: VertexBuffer
    indices: np.ndarray
    texture: str
    two_sided: bool = False
    uv_scale: float = 1.0

    def __post_init__(self) -> None:
        idx = np.asarray(self.indices, dtype=np.int64)
        if idx.ndim != 2 or idx.shape[1] != 3:
            raise GeometryError(f"indices must be (m, 3), got {idx.shape}")
        if idx.size and (idx.min() < 0 or idx.max() >= len(self.vertices)):
            raise GeometryError("triangle index out of vertex-buffer range")
        if not self.texture:
            raise GeometryError("mesh must name a texture")
        if self.uv_scale <= 0:
            raise GeometryError(f"uv_scale must be positive, got {self.uv_scale}")
        object.__setattr__(self, "indices", idx)

    @property
    def num_triangles(self) -> int:
        return self.indices.shape[0]

    @property
    def num_vertices(self) -> int:
        return len(self.vertices)

    def triangle_positions(self) -> np.ndarray:
        """Gather triangle corner positions as ``(m, 3, 3)``."""
        return self.vertices.positions[self.indices]

    def triangle_uvs(self) -> np.ndarray:
        """Gather triangle corner UVs as ``(m, 3, 2)`` with tiling applied."""
        return self.vertices.uvs[self.indices] * self.uv_scale


def make_quad(
    corners: np.ndarray,
    texture: str,
    *,
    uv_scale: float = 1.0,
    two_sided: bool = False,
    subdivisions: int = 1,
) -> Mesh:
    """Build a (possibly subdivided) quad mesh from four corner points.

    ``corners`` is a ``(4, 3)`` array ordered counter-clockwise
    (bottom-left, bottom-right, top-right, top-left). Subdivision keeps
    perspective interpolation well-conditioned for very large surfaces
    such as ground planes.
    """
    corners = np.asarray(corners, dtype=np.float64)
    if corners.shape != (4, 3):
        raise GeometryError(f"corners must be (4, 3), got {corners.shape}")
    if subdivisions < 1:
        raise GeometryError(f"subdivisions must be >= 1, got {subdivisions}")
    n = subdivisions
    s = np.linspace(0.0, 1.0, n + 1)
    t = np.linspace(0.0, 1.0, n + 1)
    ss, tt = np.meshgrid(s, t, indexing="xy")
    bl, br, tr, tl = corners
    # Bilinear patch over the four corners.
    grid = (
        (1 - ss)[..., None] * (1 - tt)[..., None] * bl
        + ss[..., None] * (1 - tt)[..., None] * br
        + ss[..., None] * tt[..., None] * tr
        + (1 - ss)[..., None] * tt[..., None] * tl
    )
    positions = grid.reshape(-1, 3)
    uvs = np.stack([ss.ravel(), tt.ravel()], axis=1)
    indices = []
    for j in range(n):
        for i in range(n):
            v00 = j * (n + 1) + i
            v10 = v00 + 1
            v01 = v00 + (n + 1)
            v11 = v01 + 1
            indices.append((v00, v10, v11))
            indices.append((v00, v11, v01))
    return Mesh(
        vertices=VertexBuffer(positions=positions, uvs=uvs),
        indices=np.asarray(indices, dtype=np.int64),
        texture=texture,
        two_sided=two_sided,
        uv_scale=uv_scale,
    )


def make_box(
    center,
    size,
    texture: str,
    *,
    uv_scale: float = 1.0,
) -> Mesh:
    """Build an axis-aligned box with outward-facing quads on all six sides."""
    cx, cy, cz = (float(v) for v in center)
    sx, sy, sz = (float(v) / 2.0 for v in size)
    if min(sx, sy, sz) <= 0:
        raise GeometryError(f"box size must be positive, got {size}")
    x0, x1 = cx - sx, cx + sx
    y0, y1 = cy - sy, cy + sy
    z0, z1 = cz - sz, cz + sz
    faces = [
        # +Z (front)
        [(x0, y0, z1), (x1, y0, z1), (x1, y1, z1), (x0, y1, z1)],
        # -Z (back)
        [(x1, y0, z0), (x0, y0, z0), (x0, y1, z0), (x1, y1, z0)],
        # +X (right)
        [(x1, y0, z1), (x1, y0, z0), (x1, y1, z0), (x1, y1, z1)],
        # -X (left)
        [(x0, y0, z0), (x0, y0, z1), (x0, y1, z1), (x0, y1, z0)],
        # +Y (top)
        [(x0, y1, z1), (x1, y1, z1), (x1, y1, z0), (x0, y1, z0)],
        # -Y (bottom)
        [(x0, y0, z0), (x1, y0, z0), (x1, y0, z1), (x0, y0, z1)],
    ]
    positions = []
    uvs = []
    indices = []
    face_uv = [(0.0, 0.0), (1.0, 0.0), (1.0, 1.0), (0.0, 1.0)]
    for face in faces:
        base = len(positions)
        positions.extend(face)
        uvs.extend(face_uv)
        indices.append((base, base + 1, base + 2))
        indices.append((base, base + 2, base + 3))
    return Mesh(
        vertices=VertexBuffer(
            positions=np.asarray(positions, dtype=np.float64),
            uvs=np.asarray(uvs, dtype=np.float64),
        ),
        indices=np.asarray(indices, dtype=np.int64),
        texture=texture,
        uv_scale=uv_scale,
    )
