"""Tessellation: midpoint subdivision of triangle meshes.

The paper's simulator integration includes tessellation among "the
newest advancements in rendering" (Section VI); Figure 2 places it with
the geometry-related kernels that "generate extra triangles". We
implement the standard 1-to-4 midpoint scheme (each edge split at its
midpoint, positions and UVs interpolated linearly), with an optional
displacement function for the curved-surface use tessellation exists
for.

Vertices are deduplicated across shared edges so a closed mesh stays
closed after subdivision.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from ..errors import GeometryError
from .mesh import Mesh, VertexBuffer

#: Displacement: positions (n, 3), uvs (n, 2) -> offsets (n, 3).
DisplacementFn = Callable[[np.ndarray, np.ndarray], np.ndarray]


def _subdivide_once(positions: np.ndarray, uvs: np.ndarray, indices: np.ndarray):
    """One 1:4 midpoint subdivision with shared-edge deduplication."""
    edge_cache: "dict[tuple[int, int], int]" = {}
    new_positions = [positions]
    new_uvs = [uvs]
    next_index = positions.shape[0]
    extra_pos: "list[np.ndarray]" = []
    extra_uv: "list[np.ndarray]" = []

    def midpoint(a: int, b: int) -> int:
        nonlocal next_index
        key = (a, b) if a < b else (b, a)
        cached = edge_cache.get(key)
        if cached is not None:
            return cached
        extra_pos.append((positions[a] + positions[b]) / 2.0)
        extra_uv.append((uvs[a] + uvs[b]) / 2.0)
        edge_cache[key] = next_index
        next_index += 1
        return edge_cache[key]

    out_tris = []
    for i0, i1, i2 in indices:
        m01 = midpoint(i0, i1)
        m12 = midpoint(i1, i2)
        m20 = midpoint(i2, i0)
        out_tris.extend(
            [(i0, m01, m20), (i1, m12, m01), (i2, m20, m12), (m01, m12, m20)]
        )

    if extra_pos:
        new_positions.append(np.stack(extra_pos))
        new_uvs.append(np.stack(extra_uv))
    return (
        np.concatenate(new_positions, axis=0),
        np.concatenate(new_uvs, axis=0),
        np.asarray(out_tris, dtype=np.int64),
    )


def tessellate(
    mesh: Mesh,
    levels: int = 1,
    *,
    displacement: "DisplacementFn | None" = None,
) -> Mesh:
    """Subdivide every triangle ``4**levels`` times, then displace.

    Args:
        mesh: the input mesh (unchanged).
        levels: subdivision rounds; each round turns 1 triangle into 4.
        displacement: optional function producing per-vertex position
            offsets from (positions, uvs) — applied once, after the
            final subdivision, as displacement-mapping hardware does.
    """
    if levels < 0:
        raise GeometryError(f"levels must be >= 0, got {levels}")
    positions = mesh.vertices.positions
    uvs = mesh.vertices.uvs
    indices = mesh.indices
    for _ in range(levels):
        positions, uvs, indices = _subdivide_once(positions, uvs, indices)

    if displacement is not None:
        offsets = np.asarray(displacement(positions, uvs), dtype=np.float64)
        if offsets.shape != positions.shape:
            raise GeometryError(
                f"displacement must return {positions.shape}, got {offsets.shape}"
            )
        positions = positions + offsets

    return Mesh(
        vertices=VertexBuffer(positions=positions, uvs=uvs),
        indices=indices,
        texture=mesh.texture,
        two_sided=mesh.two_sided,
        uv_scale=mesh.uv_scale,
    )
