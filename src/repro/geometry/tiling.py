"""Tiling engine: sorting screen-space triangles into tiles (Figure 2).

Tile-based GPUs (the paper's baseline references PowerVR Rogue) bin
triangles into fixed-size screen tiles so that each tile's pixels fit in
on-chip memory. Our renderer uses the binning both as a statistic source
for the timing model (tiles touched = scheduling work) and to define the
processing order that the texture-cache simulator replays, which is what
gives texture fetches their spatial locality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError


@dataclass(frozen=True)
class Tile:
    """One screen tile: grid coordinates and pixel bounds (half-open)."""

    tx: int
    ty: int
    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0


@dataclass
class TilingStats:
    """Counters produced by one binning pass."""

    triangles_binned: int = 0
    tile_triangle_pairs: int = 0
    tiles_touched: int = 0


def tile_blocks(mask: np.ndarray, tile_size: int) -> np.ndarray:
    """Reshape a coverage mask into ``(tiles_y, tiles_x, ts, ts)`` blocks."""
    mask = np.asarray(mask, dtype=bool)
    h, w = mask.shape
    ts = tile_size
    tiles_x = (w + ts - 1) // ts
    tiles_y = (h + ts - 1) // ts
    if h % ts or w % ts:
        padded = np.zeros((tiles_y * ts, tiles_x * ts), dtype=bool)
        padded[:h, :w] = mask
        mask = padded
    return mask.reshape(tiles_y, ts, tiles_x, ts).transpose(0, 2, 1, 3)


def tile_pixel_order(
    mask: np.ndarray, tile_size: int
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Covered pixels in tile scheduling order, without a full-frame sort.

    Returns ``(rows, cols, tile_ids)`` ordered by ascending tile id
    (row-major tile grid) with row-major pixel order inside each tile —
    exactly the order ``argsort(tile_ids, kind="stable")`` over the
    row-major covered pixels produces, but obtained by iterating the
    surviving tiles directly: a single ``nonzero`` over the tile-blocked
    view, whose lexicographic index order *is* the schedule. Empty tiles
    contribute nothing and cost nothing.
    """
    blocks = tile_blocks(mask, tile_size)
    tiles_x = blocks.shape[1]
    bty, btx, br, bc = np.nonzero(blocks)
    ts = tile_size
    return bty * ts + br, btx * ts + bc, bty * tiles_x + btx


def covered_tile_ids(mask: np.ndarray, tile_size: int) -> np.ndarray:
    """Ascending flat ids of tiles containing at least one covered pixel."""
    blocks = tile_blocks(mask, tile_size)
    return np.nonzero(blocks.any(axis=(2, 3)).ravel())[0]


def expand_grid_ranges(
    cx0: np.ndarray,
    cx1: np.ndarray,
    cy0: np.ndarray,
    cy1: np.ndarray,
    cells_x: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Expand per-item inclusive cell-rectangles into (cell, item) pairs.

    ``item`` ``i`` covers grid cells ``[cx0[i]..cx1[i]] x [cy0[i]..cy1[i]]``
    (already clamped to the grid; pass ``cx1 < cx0`` for items that cover
    nothing). Returns flat cell ids (``cy * cells_x + cx``) and the item
    index for every pair, item-major with cells in row-major order — the
    vectorized "ragged ranges" construction the anisotropic CSR kernels
    use, applied to 2-D rectangles.
    """
    cx0 = np.asarray(cx0, dtype=np.int64)
    cx1 = np.asarray(cx1, dtype=np.int64)
    cy0 = np.asarray(cy0, dtype=np.int64)
    cy1 = np.asarray(cy1, dtype=np.int64)
    nx = np.maximum(cx1 - cx0 + 1, 0)
    ny = np.maximum(cy1 - cy0 + 1, 0)
    counts = nx * ny
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64)
    item = np.repeat(np.arange(counts.size, dtype=np.int64), counts)
    seg_ends = np.cumsum(counts)
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_ends - counts, counts)
    nx_of = nx[item]
    cx = cx0[item] + within % nx_of
    cy = cy0[item] + within // nx_of
    return cy * cells_x + cx, item


class TilingEngine:
    """Bins triangles into ``tile_size`` x ``tile_size`` screen tiles."""

    def __init__(self, width: int, height: int, tile_size: int = 16) -> None:
        if width <= 0 or height <= 0:
            raise GeometryError(f"viewport must be positive, got {width}x{height}")
        if tile_size <= 0 or tile_size % 2:
            raise GeometryError(f"tile_size must be positive and even, got {tile_size}")
        self.width = width
        self.height = height
        self.tile_size = tile_size
        self.tiles_x = (width + tile_size - 1) // tile_size
        self.tiles_y = (height + tile_size - 1) // tile_size
        self.stats = TilingStats()

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile(self, tx: int, ty: int) -> Tile:
        """Return the tile at grid position ``(tx, ty)``, clamped to the screen."""
        if not (0 <= tx < self.tiles_x and 0 <= ty < self.tiles_y):
            raise GeometryError(f"tile ({tx}, {ty}) outside grid")
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        return Tile(
            tx=tx,
            ty=ty,
            x0=x0,
            y0=y0,
            x1=min(x0 + self.tile_size, self.width),
            y1=min(y0 + self.tile_size, self.height),
        )

    def iter_tiles(self):
        """Yield all tiles in raster (row-major) scheduling order."""
        for ty in range(self.tiles_y):
            for tx in range(self.tiles_x):
                yield self.tile(tx, ty)

    def bin_triangles(self, screen_xy: np.ndarray) -> "dict[tuple[int, int], list[int]]":
        """Bin triangles (``(m, 3, 2)`` screen-space corners) into tiles.

        Binning is conservative: a triangle lands in every tile its
        bounding box overlaps, as in real tiling hardware.
        """
        screen_xy = np.asarray(screen_xy, dtype=np.float64)
        if screen_xy.ndim != 3 or screen_xy.shape[1:] != (3, 2):
            raise GeometryError(f"screen_xy must be (m, 3, 2), got {screen_xy.shape}")
        tile_ids, tri_ids = self.bin_triangles_csr(screen_xy)
        bins: "dict[tuple[int, int], list[int]]" = {}
        if tile_ids.size:
            order = np.argsort(tile_ids, kind="stable")
            tile_sorted = tile_ids[order]
            tri_sorted = tri_ids[order]
            boundaries = np.nonzero(np.diff(tile_sorted))[0] + 1
            starts = np.concatenate([[0], boundaries, [tile_sorted.size]])
            for s, e in zip(starts[:-1], starts[1:]):
                tid = int(tile_sorted[s])
                key = (tid % self.tiles_x, tid // self.tiles_x)
                bins[key] = tri_sorted[s:e].tolist()
        return bins

    def bin_triangles_csr(
        self, screen_xy: np.ndarray
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Vectorized binning: (tile_id, triangle) pairs, triangle-major.

        Same conservative bbox-overlap semantics as :meth:`bin_triangles`
        (and the same stats side effects), but returns the flat pair
        arrays directly — the sort-middle rasterizer and the tile-level
        dispatcher consume these without materializing per-tile lists.
        """
        screen_xy = np.asarray(screen_xy, dtype=np.float64)
        mins = screen_xy.min(axis=1)
        maxs = screen_xy.max(axis=1)
        ts = self.tile_size
        tx0 = np.maximum(np.floor_divide(mins[:, 0], ts).astype(np.int64), 0)
        ty0 = np.maximum(np.floor_divide(mins[:, 1], ts).astype(np.int64), 0)
        tx1 = np.minimum(np.floor_divide(maxs[:, 0], ts).astype(np.int64), self.tiles_x - 1)
        ty1 = np.minimum(np.floor_divide(maxs[:, 1], ts).astype(np.int64), self.tiles_y - 1)
        on_screen = (
            (np.floor_divide(maxs[:, 0], ts) >= 0)
            & (np.floor_divide(maxs[:, 1], ts) >= 0)
            & (tx0 < self.tiles_x)
            & (ty0 < self.tiles_y)
        )
        # Items that bin nowhere get an empty rectangle.
        tx1 = np.where(on_screen, tx1, tx0 - 1)
        tile_ids, tri_ids = expand_grid_ranges(tx0, tx1, ty0, ty1, self.tiles_x)
        self.stats.triangles_binned += int(on_screen.sum())
        self.stats.tile_triangle_pairs += int(tile_ids.size)
        self.stats.tiles_touched = int(np.unique(tile_ids).size)
        return tile_ids, tri_ids
