"""Tiling engine: sorting screen-space triangles into tiles (Figure 2).

Tile-based GPUs (the paper's baseline references PowerVR Rogue) bin
triangles into fixed-size screen tiles so that each tile's pixels fit in
on-chip memory. Our renderer uses the binning both as a statistic source
for the timing model (tiles touched = scheduling work) and to define the
processing order that the texture-cache simulator replays, which is what
gives texture fetches their spatial locality.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError


@dataclass(frozen=True)
class Tile:
    """One screen tile: grid coordinates and pixel bounds (half-open)."""

    tx: int
    ty: int
    x0: int
    y0: int
    x1: int
    y1: int

    @property
    def width(self) -> int:
        return self.x1 - self.x0

    @property
    def height(self) -> int:
        return self.y1 - self.y0


@dataclass
class TilingStats:
    """Counters produced by one binning pass."""

    triangles_binned: int = 0
    tile_triangle_pairs: int = 0
    tiles_touched: int = 0


class TilingEngine:
    """Bins triangles into ``tile_size`` x ``tile_size`` screen tiles."""

    def __init__(self, width: int, height: int, tile_size: int = 16) -> None:
        if width <= 0 or height <= 0:
            raise GeometryError(f"viewport must be positive, got {width}x{height}")
        if tile_size <= 0 or tile_size % 2:
            raise GeometryError(f"tile_size must be positive and even, got {tile_size}")
        self.width = width
        self.height = height
        self.tile_size = tile_size
        self.tiles_x = (width + tile_size - 1) // tile_size
        self.tiles_y = (height + tile_size - 1) // tile_size
        self.stats = TilingStats()

    @property
    def num_tiles(self) -> int:
        return self.tiles_x * self.tiles_y

    def tile(self, tx: int, ty: int) -> Tile:
        """Return the tile at grid position ``(tx, ty)``, clamped to the screen."""
        if not (0 <= tx < self.tiles_x and 0 <= ty < self.tiles_y):
            raise GeometryError(f"tile ({tx}, {ty}) outside grid")
        x0 = tx * self.tile_size
        y0 = ty * self.tile_size
        return Tile(
            tx=tx,
            ty=ty,
            x0=x0,
            y0=y0,
            x1=min(x0 + self.tile_size, self.width),
            y1=min(y0 + self.tile_size, self.height),
        )

    def iter_tiles(self):
        """Yield all tiles in raster (row-major) scheduling order."""
        for ty in range(self.tiles_y):
            for tx in range(self.tiles_x):
                yield self.tile(tx, ty)

    def bin_triangles(self, screen_xy: np.ndarray) -> "dict[tuple[int, int], list[int]]":
        """Bin triangles (``(m, 3, 2)`` screen-space corners) into tiles.

        Binning is conservative: a triangle lands in every tile its
        bounding box overlaps, as in real tiling hardware.
        """
        screen_xy = np.asarray(screen_xy, dtype=np.float64)
        if screen_xy.ndim != 3 or screen_xy.shape[1:] != (3, 2):
            raise GeometryError(f"screen_xy must be (m, 3, 2), got {screen_xy.shape}")
        bins: "dict[tuple[int, int], list[int]]" = {}
        mins = screen_xy.min(axis=1)
        maxs = screen_xy.max(axis=1)
        ts = self.tile_size
        for i in range(screen_xy.shape[0]):
            tx0 = max(int(mins[i, 0] // ts), 0)
            ty0 = max(int(mins[i, 1] // ts), 0)
            tx1 = min(int(maxs[i, 0] // ts), self.tiles_x - 1)
            ty1 = min(int(maxs[i, 1] // ts), self.tiles_y - 1)
            if tx1 < 0 or ty1 < 0 or tx0 >= self.tiles_x or ty0 >= self.tiles_y:
                continue
            self.stats.triangles_binned += 1
            for ty in range(ty0, ty1 + 1):
                for tx in range(tx0, tx1 + 1):
                    bins.setdefault((tx, ty), []).append(i)
                    self.stats.tile_triangle_pairs += 1
        self.stats.tiles_touched = len(bins)
        return bins
