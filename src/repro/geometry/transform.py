"""Vertex processing: model/view/projection transformation of meshes.

This is the *Vertex Processing* stage of Figure 2: vertices are fetched,
transformed to clip space and assembled into triangles carrying their
texture coordinates.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import GeometryError
from .linalg import transform_points
from .mesh import Mesh


@dataclass(frozen=True)
class TransformedTriangles:
    """Triangles in clip space, ready for clipping/culling/rasterization.

    Attributes:
        clip_positions: ``(m, 3, 4)`` homogeneous clip-space corner positions.
        uvs: ``(m, 3, 2)`` texture coordinates per corner.
        texture: texture name shared by all triangles of the draw call.
        two_sided: whether back-face culling is disabled.
    """

    clip_positions: np.ndarray
    uvs: np.ndarray
    texture: str
    two_sided: bool = False

    def __post_init__(self) -> None:
        cp = np.asarray(self.clip_positions, dtype=np.float64)
        uv = np.asarray(self.uvs, dtype=np.float64)
        if cp.ndim != 3 or cp.shape[1:] != (3, 4):
            raise GeometryError(f"clip_positions must be (m, 3, 4), got {cp.shape}")
        if uv.shape != (cp.shape[0], 3, 2):
            raise GeometryError(
                f"uvs must be ({cp.shape[0]}, 3, 2), got {uv.shape}"
            )
        object.__setattr__(self, "clip_positions", cp)
        object.__setattr__(self, "uvs", uv)

    @property
    def num_triangles(self) -> int:
        return self.clip_positions.shape[0]

    def select(self, mask: np.ndarray) -> "TransformedTriangles":
        """Return the subset of triangles where ``mask`` is true."""
        return TransformedTriangles(
            clip_positions=self.clip_positions[mask],
            uvs=self.uvs[mask],
            texture=self.texture,
            two_sided=self.two_sided,
        )


def transform_mesh(
    mesh: Mesh,
    mvp: np.ndarray,
    model: "np.ndarray | None" = None,
) -> TransformedTriangles:
    """Transform a mesh's vertices to clip space and assemble triangles.

    Args:
        mesh: the input mesh.
        mvp: the combined view-projection matrix (4x4).
        model: optional model matrix applied before ``mvp``.
    """
    matrix = np.asarray(mvp, dtype=np.float64)
    if matrix.shape != (4, 4):
        raise GeometryError(f"mvp must be 4x4, got {matrix.shape}")
    if model is not None:
        model = np.asarray(model, dtype=np.float64)
        if model.shape != (4, 4):
            raise GeometryError(f"model matrix must be 4x4, got {model.shape}")
        matrix = matrix @ model
    clip = transform_points(matrix, mesh.vertices.positions)
    return TransformedTriangles(
        clip_positions=clip[mesh.indices],
        uvs=mesh.triangle_uvs(),
        texture=mesh.texture,
        two_sided=mesh.two_sided,
    )
