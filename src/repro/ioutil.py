"""Crash-safe artifact writes: temp file + atomic rename, with retry.

Every artifact the toolkit produces (experiment tables, reports,
``trace.json``, ``metrics.jsonl``, ``bench_results/*.txt`` and
checkpoints) goes through :func:`atomic_write_text`: the content is
written to a temporary sibling file, flushed and fsynced, then moved
over the destination with :func:`os.replace`. A crash mid-write
therefore never truncates a previously complete artifact — readers see
either the old file or the new one, never a partial write.

Transient ``OSError``s (e.g. NFS hiccups, antivirus scanners holding
the destination) are retried a bounded number of times with a small
linear backoff before the error propagates.
"""

from __future__ import annotations

import errno
import os
import pathlib
import sys
import time

#: Default bounded-retry policy for transient OSErrors.
DEFAULT_RETRIES = 3
DEFAULT_BACKOFF_S = 0.05


def atomic_write_text(
    path,
    text: str,
    *,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
) -> pathlib.Path:
    """Atomically replace ``path`` with ``text``; returns the path."""
    return atomic_write_bytes(
        path, text.encode("utf-8"), retries=retries, backoff_s=backoff_s
    )


def atomic_append_text(
    path,
    text: str,
    *,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
) -> pathlib.Path:
    """Append ``text`` to ``path`` with the same crash guarantees.

    The existing content (if any) is read, the suffix concatenated and
    the whole file atomically replaced — readers see either the old
    file or old + appended text, never a torn tail. Used by the run
    ledger, whose records are small and infrequent enough that the
    read-modify-replace cost never matters.

    Unlike the artifact writers, a **full disk** (``ENOSPC``) degrades
    to a one-line stderr warning instead of raising: appends carry
    observability (ledger records), and a run that computed its results
    must not fail because its history could not be written. Every other
    ``OSError`` still propagates after the bounded retries.
    """
    path = pathlib.Path(path)
    try:
        existing = path.read_bytes()
    except FileNotFoundError:
        existing = b""
    try:
        return atomic_write_bytes(
            path, existing + text.encode("utf-8"),
            retries=retries, backoff_s=backoff_s,
        )
    except OSError as exc:
        if exc.errno != errno.ENOSPC:
            raise
        print(
            f"warning: append to {path} skipped: no space left on device",
            file=sys.stderr,
        )
        return path


def atomic_write_bytes(
    path,
    data: bytes,
    *,
    retries: int = DEFAULT_RETRIES,
    backoff_s: float = DEFAULT_BACKOFF_S,
) -> pathlib.Path:
    """Atomically replace ``path`` with ``data``; returns the path.

    The temp file lives in the destination directory so the final
    ``os.replace`` stays on one filesystem (rename atomicity).
    """
    path = pathlib.Path(path)
    last_error: "OSError | None" = None
    for attempt in range(max(1, retries)):
        tmp = path.with_name(f".{path.name}.tmp{os.getpid()}.{attempt}")
        try:
            with tmp.open("wb") as handle:
                handle.write(data)
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, path)
            return path
        except OSError as exc:
            last_error = exc
            try:
                tmp.unlink()
            except OSError:
                pass
            if attempt + 1 < max(1, retries):
                time.sleep(backoff_s * (attempt + 1))
    assert last_error is not None
    raise last_error
