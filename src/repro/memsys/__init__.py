"""Texture memory hierarchy: L1 texture caches, the shared LLC and DRAM.

The paper identifies texture fetching as the dominant memory-bandwidth
consumer of 3D rendering (Fig. 6) and evaluates PATU's interaction with
cache capacity (Fig. 21). This subpackage provides set-associative LRU
cache simulators, a channel/bank DRAM bandwidth-latency model, and the
frame-level bandwidth breakdown accounting.
"""

from .cache import CacheSim, CacheStats
from .dram import DramModel, DramStats
from .hierarchy import TextureMemoryHierarchy, HierarchyStats
from .traffic import BandwidthBreakdown

__all__ = [
    "BandwidthBreakdown",
    "CacheSim",
    "CacheStats",
    "DramModel",
    "DramStats",
    "HierarchyStats",
    "TextureMemoryHierarchy",
]
