"""Set-associative LRU cache simulator.

Operates on arrays of 64-byte cache-line addresses. Consecutive
duplicate addresses are collapsed vectorized before the sequential LRU
walk — a duplicate of the immediately preceding access is always a hit
in an LRU cache, so the collapse is exact, and it removes the bulk of
the stream (bilinear footprints of neighbouring pixels overlap
heavily).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CacheConfig
from ..errors import ConfigError

#: Line size shared by the whole hierarchy (matches texture addressing).
CACHE_LINE_BYTES_DEFAULT = 64


@dataclass
class CacheStats:
    """Access counters for one cache instance."""

    accesses: int = 0
    hits: int = 0

    @property
    def misses(self) -> int:
        return self.accesses - self.hits

    @property
    def hit_rate(self) -> float:
        return self.hits / self.accesses if self.accesses else 0.0

    def merge(self, other: "CacheStats") -> None:
        self.accesses += other.accesses
        self.hits += other.hits

    def to_dict(self) -> "dict[str, float]":
        """JSON-ready snapshot (for the metrics JSONL sink and tooling)."""
        return {
            "accesses": self.accesses,
            "hits": self.hits,
            "misses": self.misses,
            "hit_rate": self.hit_rate,
        }


def collapse_consecutive(lines: np.ndarray) -> "tuple[np.ndarray, int]":
    """Drop consecutive duplicate addresses.

    Returns the collapsed stream and the number of dropped accesses
    (each an assured LRU hit).
    """
    lines = np.asarray(lines, dtype=np.int64)
    if lines.size == 0:
        return lines, 0
    keep = np.empty(lines.shape, dtype=bool)
    keep[0] = True
    np.not_equal(lines[1:], lines[:-1], out=keep[1:])
    dropped = int(lines.size - keep.sum())
    return lines[keep], dropped


class CacheSim:
    """One set-associative LRU cache."""

    def __init__(self, config: CacheConfig) -> None:
        num_sets = config.num_sets
        if num_sets & (num_sets - 1):
            raise ConfigError(f"number of sets must be a power of two, got {num_sets}")
        self.config = config
        self._set_mask = num_sets - 1
        self._ways = config.ways
        # One insertion-ordered dict of resident line addresses per
        # set: first key is LRU, last key is MRU. A dict makes every
        # LRU operation O(1) — membership, touch (del + reinsert at
        # the end), and victim pick (first key) — where the previous
        # list representation paid an O(ways) scan *and* an O(ways)
        # shift per access; the hit/miss stream is identical.
        self._sets: "list[dict[int, None]]" = [{} for _ in range(num_sets)]
        self.stats = CacheStats()

    def reset(self) -> None:
        """Invalidate all lines and zero the statistics."""
        for s in self._sets:
            s.clear()
        self.stats = CacheStats()

    def access(self, lines: np.ndarray) -> np.ndarray:
        """Process a line-address stream; return the miss addresses in order.

        The input should be the raw access stream; consecutive
        duplicates are collapsed internally (and counted as hits).
        """
        collapsed, dropped = collapse_consecutive(lines)
        self.stats.accesses += int(np.asarray(lines).size)
        self.stats.hits += dropped
        if collapsed.size == 0:
            return collapsed

        misses: "list[int]" = []
        misses_append = misses.append
        sets = self._sets
        mask = self._set_mask
        ways = self._ways
        hits = 0
        for addr in collapsed.tolist():
            resident = sets[addr & mask]
            if addr in resident:
                del resident[addr]
                hits += 1
            else:
                misses_append(addr)
                if len(resident) >= ways:
                    del resident[next(iter(resident))]
            resident[addr] = None
        self.stats.hits += hits
        return np.asarray(misses, dtype=np.int64)
