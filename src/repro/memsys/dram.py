"""Off-chip DRAM bandwidth/latency model.

The experiments need two things from DRAM: how many *cycles* a frame's
miss traffic occupies the memory interface (the bandwidth-bound term of
the timing model) and the *average access latency* seen by the texture
units (the latency-bound term). Both derive from Table I's
configuration: 16 bytes/cycle peak, 8 channels x 8 banks.

Row-buffer behaviour is approximated statistically: texture tiles give
miss streams high spatial locality, so a run of misses that stays
within one 2 KB row hits the open row; the model estimates the row-hit
fraction from address deltas, which responds correctly when PATU's
LOD-reuse shifts fetches to finer (larger, more spread-out) mip levels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import MemoryConfig
from .cache import CACHE_LINE_BYTES_DEFAULT

#: DRAM row size assumed by the row-hit estimator.
ROW_BYTES = 2048


@dataclass
class DramStats:
    """Aggregate DRAM behaviour for one frame."""

    lines_fetched: int = 0
    row_hits: int = 0

    @property
    def bytes_fetched(self) -> int:
        return self.lines_fetched * CACHE_LINE_BYTES_DEFAULT

    @property
    def row_hit_rate(self) -> float:
        if self.lines_fetched == 0:
            return 0.0
        return self.row_hits / self.lines_fetched

    def to_dict(self) -> "dict[str, float]":
        """JSON-ready snapshot (for the metrics JSONL sink and tooling)."""
        return {
            "lines_fetched": self.lines_fetched,
            "row_hits": self.row_hits,
            "bytes_fetched": self.bytes_fetched,
            "row_hit_rate": self.row_hit_rate,
        }


class DramModel:
    """Bandwidth and latency estimates for a miss stream."""

    def __init__(self, config: MemoryConfig) -> None:
        self.config = config

    def observe(self, miss_lines: np.ndarray) -> DramStats:
        """Classify a line-address miss stream into row hits/misses."""
        miss_lines = np.asarray(miss_lines, dtype=np.int64)
        stats = DramStats(lines_fetched=int(miss_lines.size))
        if miss_lines.size > 1:
            rows = (miss_lines * CACHE_LINE_BYTES_DEFAULT) // ROW_BYTES
            # Interleave across channels: consecutive rows on one channel
            # are ``channels`` apart in the global stream; approximate by
            # same-row runs in stream order.
            stats.row_hits = int(np.count_nonzero(rows[1:] == rows[:-1]))
        return stats

    def transfer_cycles(self, stats: DramStats) -> float:
        """Cycles the memory interface is busy moving the miss traffic."""
        return stats.bytes_fetched / self.config.bytes_per_cycle

    def average_latency(self, stats: DramStats) -> float:
        """Average per-access DRAM latency in cycles."""
        if stats.lines_fetched == 0:
            return float(self.config.base_latency_cycles)
        miss_fraction = 1.0 - stats.row_hit_rate
        return (
            self.config.base_latency_cycles
            + miss_fraction * self.config.row_miss_penalty_cycles
        )
