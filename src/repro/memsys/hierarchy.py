"""The two-level texture memory hierarchy.

Each of the GPU's texture units owns a private L1 texture cache; all
units share the texture L2 (the GPU LLC for texture traffic, Table I).
Tiles are distributed round-robin over the texture units — the same
static schedule the tiling engine uses — so each unit's L1 sees its own
tiles' fetch stream, and the L2 sees the interleaved union of the L1
miss streams in tile order.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import GpuConfig
from ..errors import PipelineError
from ..obs import TELEMETRY
from .cache import CacheSim, CacheStats
from .dram import DramModel, DramStats


@dataclass
class HierarchyStats:
    """Aggregated statistics for one frame's texture traffic."""

    l1: CacheStats = field(default_factory=CacheStats)
    l2: CacheStats = field(default_factory=CacheStats)
    dram: DramStats = field(default_factory=DramStats)

    @property
    def texel_reads(self) -> int:
        return self.l1.accesses

    @property
    def dram_bytes(self) -> int:
        return self.dram.bytes_fetched

    def to_dict(self) -> "dict[str, dict]":
        """JSON-ready snapshot (for the metrics JSONL sink and tooling)."""
        return {
            "l1": self.l1.to_dict(),
            "l2": self.l2.to_dict(),
            "dram": self.dram.to_dict(),
        }


class TextureMemoryHierarchy:
    """Simulates the L1s, the shared L2 and DRAM for one frame."""

    def __init__(self, config: GpuConfig) -> None:
        self.config = config
        self._l1s = [CacheSim(config.texture_l1) for _ in range(config.num_texture_units)]
        self._l2 = CacheSim(config.texture_l2)
        self._dram = DramModel(config.memory)

    def reset(self) -> None:
        for c in self._l1s:
            c.reset()
        self._l2.reset()

    def process_frame(
        self, tile_streams: "list[tuple[int, np.ndarray]]"
    ) -> HierarchyStats:
        """Run one frame of texture fetches through the hierarchy.

        Args:
            tile_streams: list of ``(unit_index, line_addresses)`` in tile
                scheduling order. Each entry is one tile's fetch stream,
                already in intra-tile raster order.
        """
        with TELEMETRY.span("memsys.process_frame", tiles=len(tile_streams)):
            self.reset()
            stats = HierarchyStats()
            l2_miss_segments: "list[np.ndarray]" = []
            for unit, lines in tile_streams:
                if not 0 <= unit < len(self._l1s):
                    raise PipelineError(f"texture unit index {unit} out of range")
                l1_misses = self._l1s[unit].access(lines)
                if l1_misses.size:
                    l2_miss_segments.append(self._l2.access(l1_misses))

            for l1 in self._l1s:
                stats.l1.merge(l1.stats)
            stats.l2.merge(self._l2.stats)
            if l2_miss_segments:
                all_misses = np.concatenate(l2_miss_segments)
            else:
                all_misses = np.empty(0, dtype=np.int64)
            stats.dram = self._dram.observe(all_misses)
        if TELEMETRY.enabled:
            TELEMETRY.count("memsys.l1_hit", stats.l1.hits)
            TELEMETRY.count("memsys.l1_miss", stats.l1.misses)
            TELEMETRY.count("memsys.l2_hit", stats.l2.hits)
            TELEMETRY.count("memsys.l2_miss", stats.l2.misses)
            TELEMETRY.count("memsys.dram_lines", stats.dram.lines_fetched)
            TELEMETRY.count("memsys.dram_bytes", stats.dram.bytes_fetched)
        return stats

    def dram_transfer_cycles(self, stats: HierarchyStats) -> float:
        return self._dram.transfer_cycles(stats.dram)

    def dram_average_latency(self, stats: HierarchyStats) -> float:
        return self._dram.average_latency(stats.dram)
