"""Frame-level memory-bandwidth breakdown (paper Fig. 6).

The paper decomposes 3D-rendering DRAM traffic into texture fetching
(the dominant share, ~71% with AF on), color/framebuffer traffic,
depth traffic and geometry (vertex) traffic. We account each category
from the frame's own statistics:

* texture — DRAM lines actually fetched by the texture hierarchy;
* color — one RGBA write per visible pixel, flushed once per tile
  (Section II-A: pixel values are sent to the fragment buffer once per
  tile), plus display scan-out readback;
* depth — early-Z reads for generated fragments and writes for passing
  fragments, filtered by an on-chip tile depth buffer so only
  tile-boundary traffic reaches DRAM;
* geometry — vertex attribute fetches (position + UV + assembly data).
"""

from __future__ import annotations

from dataclasses import dataclass

#: Bytes per vertex fetched by vertex processing (pos 12 + uv 8 + pad).
VERTEX_BYTES = 32
#: RGBA8 pixel size for color traffic.
PIXEL_BYTES = 4
#: Depth-buffer entry size.
DEPTH_BYTES = 4
#: Fraction of depth tests that escape the on-chip tile buffer to DRAM
#: (tile-based GPUs keep nearly all depth traffic on-chip).
DEPTH_DRAM_FRACTION = 0.05


@dataclass(frozen=True)
class BandwidthBreakdown:
    """Per-frame DRAM traffic by category, in bytes."""

    texture_bytes: int
    color_bytes: int
    depth_bytes: int
    geometry_bytes: int

    @property
    def total_bytes(self) -> int:
        return (
            self.texture_bytes
            + self.color_bytes
            + self.depth_bytes
            + self.geometry_bytes
        )

    @property
    def texture_fraction(self) -> float:
        total = self.total_bytes
        return self.texture_bytes / total if total else 0.0

    def as_dict(self) -> "dict[str, int]":
        return {
            "texture": self.texture_bytes,
            "color": self.color_bytes,
            "depth": self.depth_bytes,
            "geometry": self.geometry_bytes,
        }


def frame_breakdown(
    *,
    texture_dram_bytes: int,
    visible_pixels: int,
    fragments_generated: int,
    fragments_passed: int,
    vertices: int,
) -> BandwidthBreakdown:
    """Assemble the Fig. 6 breakdown from frame statistics."""
    color = visible_pixels * PIXEL_BYTES  # one tile flush per pixel
    depth = int(
        (fragments_generated + fragments_passed)
        * DEPTH_BYTES
        * DEPTH_DRAM_FRACTION
    )
    geometry = vertices * VERTEX_BYTES
    return BandwidthBreakdown(
        texture_bytes=int(texture_dram_bytes),
        color_bytes=int(color),
        depth_bytes=depth,
        geometry_bytes=int(geometry),
    )
