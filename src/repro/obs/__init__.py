"""End-to-end telemetry: stage timers, counters, trace + metrics export.

Usage at an instrumentation site::

    from ..obs import TELEMETRY

    with TELEMETRY.span("texture.filter_batch", fragments=count):
        ...
    if TELEMETRY.enabled:
        TELEMETRY.count("texture.trilinear_samples", samples)

Telemetry is off by default; ``python -m repro profile`` and the
``--trace``/``--metrics`` CLI flags enable it for one run. See
``docs/observability.md`` for the full API, the counter naming
convention and the export formats.
"""

from .jsonl import (
    METRICS_SCHEMA,
    check_schema,
    jsonable,
    read_metrics_jsonl,
    write_metrics_jsonl,
)
from .ledger import (
    LEDGER_SCHEMA,
    append_record,
    build_record,
    config_digest,
    default_ledger_dir,
    ledger_path,
    read_ledger,
    read_ledgers,
    validate_record,
)
from .machine import calibration_token, git_revision, machine_info
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    validate_metric_name,
)
from .telemetry import NOOP_SPAN, SpanRecord, Telemetry, TELEMETRY, get_telemetry
from .trace import (
    TRACE_SCHEMA,
    read_chrome_trace,
    trace_events,
    write_chrome_trace,
)
from .trends import TrendReport, analyze_ledger, analyze_records

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "LEDGER_SCHEMA",
    "METRICS_SCHEMA",
    "MetricRegistry",
    "NOOP_SPAN",
    "SpanRecord",
    "TELEMETRY",
    "TRACE_SCHEMA",
    "Telemetry",
    "TrendReport",
    "analyze_ledger",
    "analyze_records",
    "append_record",
    "build_record",
    "calibration_token",
    "check_schema",
    "config_digest",
    "default_ledger_dir",
    "get_telemetry",
    "git_revision",
    "jsonable",
    "ledger_path",
    "machine_info",
    "read_chrome_trace",
    "read_ledger",
    "read_ledgers",
    "read_metrics_jsonl",
    "trace_events",
    "validate_metric_name",
    "validate_record",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
