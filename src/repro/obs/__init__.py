"""End-to-end telemetry: stage timers, counters, trace + metrics export.

Usage at an instrumentation site::

    from ..obs import TELEMETRY

    with TELEMETRY.span("texture.filter_batch", fragments=count):
        ...
    if TELEMETRY.enabled:
        TELEMETRY.count("texture.trilinear_samples", samples)

Telemetry is off by default; ``python -m repro profile`` and the
``--trace``/``--metrics`` CLI flags enable it for one run. See
``docs/observability.md`` for the full API, the counter naming
convention and the export formats.
"""

from .jsonl import jsonable, read_metrics_jsonl, write_metrics_jsonl
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    validate_metric_name,
)
from .telemetry import NOOP_SPAN, SpanRecord, Telemetry, TELEMETRY, get_telemetry
from .trace import trace_events, write_chrome_trace

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricRegistry",
    "NOOP_SPAN",
    "SpanRecord",
    "TELEMETRY",
    "Telemetry",
    "get_telemetry",
    "jsonable",
    "read_metrics_jsonl",
    "trace_events",
    "validate_metric_name",
    "write_chrome_trace",
    "write_metrics_jsonl",
]
