"""Per-frame metrics JSONL sink.

One JSON object per line, one line per frame record (see
:meth:`repro.obs.telemetry.Telemetry.frame_record` for the schema).
``jsonable`` converts numpy scalars/arrays so that model outputs can be
serialized without callers sanitizing them first.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..ioutil import atomic_write_text


def jsonable(value):
    """Recursively convert a value into plain JSON-serializable types."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def write_metrics_jsonl(records: "list[dict]", path) -> pathlib.Path:
    """Write frame records as one JSON object per line."""
    path = pathlib.Path(path)
    lines = [json.dumps(jsonable(record)) for record in records]
    text = "\n".join(lines) + "\n" if lines else ""
    atomic_write_text(path, text)
    return path


def read_metrics_jsonl(path) -> "list[dict]":
    """Parse a metrics JSONL file back into records."""
    records = []
    with pathlib.Path(path).open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records
