"""Per-frame metrics JSONL sink.

One JSON object per line, one line per frame record (see
:meth:`repro.obs.telemetry.Telemetry.frame_record` for the schema).
``jsonable`` converts numpy scalars/arrays so that model outputs can be
serialized without callers sanitizing them first.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from ..errors import SchemaError
from ..ioutil import atomic_write_text

#: Schema major of ``metrics.jsonl`` records. Stamped on every record
#: at write time; :func:`read_metrics_jsonl` rejects unknown majors
#: with a typed :class:`~repro.errors.SchemaError`. Records without a
#: ``schema`` field (pre-versioning files) are accepted as major 1.
METRICS_SCHEMA = 1


def check_schema(record: "dict", *, expected: int, what: str) -> "dict":
    """Validate one record's ``schema`` field against ``expected``.

    The record is returned unchanged on success; an unknown major
    raises :class:`~repro.errors.SchemaError`. A missing field is
    treated as major 1 (artifacts written before versioning).
    """
    major = record.get("schema", 1)
    if not isinstance(major, int) or isinstance(major, bool) or major < 1:
        raise SchemaError(f"{what}: malformed schema field {major!r}")
    if major != expected:
        raise SchemaError(
            f"{what}: unsupported schema major {major} "
            f"(this build reads major {expected})"
        )
    return record


def jsonable(value):
    """Recursively convert a value into plain JSON-serializable types."""
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.ndarray):
        return value.tolist()
    return value


def write_metrics_jsonl(records: "list[dict]", path) -> pathlib.Path:
    """Write frame records as one JSON object per line.

    Every record is stamped with ``"schema": METRICS_SCHEMA`` (a
    record that already carries one keeps it).
    """
    path = pathlib.Path(path)
    lines = [
        json.dumps(jsonable({"schema": METRICS_SCHEMA, **record}))
        for record in records
    ]
    text = "\n".join(lines) + "\n" if lines else ""
    atomic_write_text(path, text)
    return path


def read_metrics_jsonl(path) -> "list[dict]":
    """Parse a metrics JSONL file back into records.

    Raises :class:`~repro.errors.SchemaError` when any record carries
    an unknown schema major (see :data:`METRICS_SCHEMA`).
    """
    path = pathlib.Path(path)
    records = []
    with path.open() as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(
                    check_schema(
                        json.loads(line),
                        expected=METRICS_SCHEMA,
                        what=str(path),
                    )
                )
    return records
