"""The persistent run ledger: one schema'd record per toolkit run.

Every invocation of ``repro experiment``/``report``/``profile``/
``verify`` and of ``benchmarks/hotpath.py`` appends one JSON record to
an append-only JSONL ledger (default ``.repro/ledger/ledger.jsonl``,
overridable with ``--ledger DIR`` or ``REPRO_LEDGER_DIR``). A record
captures everything needed to compare the run against its own history
on any machine:

* identity — ``kind``, the reconstructed ``command``, a
  ``config_digest`` over the run-shaping parameters, the git revision;
* machine — platform block plus the ``calibration_ms`` speed token
  shared with ``benchmarks/compare.py --calibrate``;
* telemetry rollups — per-stage self-times, counter totals, histogram
  summaries, capture-store traffic, per-worker attribution;
* quality — MSSIM / approximation-rate / LOD-shift distributions, the
  perceptual half of the paper's trade curve;
* ``metrics`` — one *flat* numeric map, the substrate ``repro trends``
  runs its median±MAD regression analysis over.

Appends go through :func:`repro.ioutil.atomic_append_text`, so
concurrent or crashed runs never tear the file. Records are small
(a few KiB) and a ledger is per-checkout state, not a shared database.
"""

from __future__ import annotations

import datetime
import hashlib
import json
import os
import pathlib

from ..errors import LedgerError
from ..ioutil import atomic_append_text
from .jsonl import check_schema, jsonable
from .machine import calibration_token, git_revision, machine_info

#: Ledger record schema major. Bump on breaking layout changes;
#: readers reject unknown majors with a typed SchemaError.
LEDGER_SCHEMA = 1

#: File name inside the ledger directory.
LEDGER_FILE = "ledger.jsonl"

#: Record kinds the toolkit emits (free-form kinds are allowed, these
#: are the built-in emitters).
KINDS = (
    "experiment", "report", "profile", "verify", "hotpath", "fleet", "serve",
)

#: Environment override for the default ledger directory (used by the
#: test suite to keep checkouts clean).
LEDGER_DIR_ENV = "REPRO_LEDGER_DIR"

_DEFAULT_DIR = pathlib.Path(".repro") / "ledger"


def default_ledger_dir() -> pathlib.Path:
    """``$REPRO_LEDGER_DIR`` if set, else ``.repro/ledger`` in the cwd."""
    override = os.environ.get(LEDGER_DIR_ENV)
    return pathlib.Path(override) if override else _DEFAULT_DIR


def ledger_path(ledger_dir: "str | pathlib.Path | None" = None) -> pathlib.Path:
    """The JSONL file inside ``ledger_dir`` (default directory if None)."""
    root = pathlib.Path(ledger_dir) if ledger_dir else default_ledger_dir()
    return root / LEDGER_FILE


def config_digest(config: "dict[str, object]") -> str:
    """Stable 16-hex-char digest over a run's shaping parameters.

    Trend analysis only compares runs with equal digests, so the input
    must cover everything that changes what a run *does* (experiment
    id, workloads, frames, scale, jobs, thresholds) and nothing that
    merely changes where artifacts land (output paths).
    """
    encoded = json.dumps(
        jsonable(config), sort_keys=True, separators=(",", ":")
    )
    return hashlib.sha256(encoded.encode("utf-8")).hexdigest()[:16]


def telemetry_rollup(telemetry) -> "dict[str, object]":
    """Span/counter/histogram rollups of one telemetry registry."""
    return {
        "stages": {
            name: {
                "count": agg["count"],
                "total_us": round(agg["total_us"], 1),
                "self_us": round(agg["self_us"], 1),
            }
            for name, agg in telemetry.stage_summary().items()
        },
        "counters": telemetry.metrics.counter_totals(),
        "histograms": {
            name: hist.summary()
            for name, hist in telemetry.metrics.histograms.items()
        },
    }


def quality_rollup(telemetry) -> "dict[str, object]":
    """The perceptual-quality histograms, keyed without their prefix.

    Collects ``session.mssim`` plus every ``quality.*`` histogram —
    per-frame anisotropy distribution, LOD-shift magnitude,
    approximation rate — so the ledger records perceptual cost beside
    the perf numbers.
    """
    out: "dict[str, object]" = {}
    for name, hist in telemetry.metrics.histograms.items():
        if name == "session.mssim":
            out["mssim"] = hist.summary()
        elif name.startswith("quality."):
            out[name.split(".", 1)[1]] = hist.summary()
    return out


def raster_rollup(telemetry) -> "dict[str, float]":
    """Raster-pipeline counters of one run, zero-suppressed.

    Collects every ``raster.*`` counter — binning pairs, tiles culled
    by hierarchical-Z, fully occluded tiles retired, quads shaded,
    fragments generated/passed — so a ledger reader can see the
    sort-middle pipeline's work profile (and how much of it the coarse
    pass culled) next to the timing numbers. All of these also land in
    the flat ``metrics`` map (as ``counter.raster.*``), where ``repro
    trends`` treats ``tiles_culled_*`` as high-good (see
    :func:`repro.obs.trends.metric_direction`).
    """
    if telemetry is None:
        return {}
    totals = telemetry.metrics.counter_totals()
    return {
        name: float(value)
        for name, value in sorted(totals.items())
        if value and name.startswith("raster.")
    }


def resilience_rollup(telemetry) -> "dict[str, float]":
    """Fault-handling counters of one run, zero-suppressed.

    Collects every ``resilience.*`` counter — worker restarts, pool
    rebuilds, chunk retries, quarantined jobs, corrupt chunks — plus
    ``store.corrupt``, so a ledger reader can see at a glance whether
    a run needed its supervision layer. All of these also land in the
    flat ``metrics`` map (as ``counter.<name>``) for trend analysis.
    """
    if telemetry is None:
        return {}
    totals = telemetry.metrics.counter_totals()
    return {
        name: float(value)
        for name, value in sorted(totals.items())
        if value and (name.startswith("resilience.") or name == "store.corrupt")
    }


def trend_metrics(
    telemetry=None,
    *,
    store: "dict[str, float] | None" = None,
    extra: "dict[str, float] | None" = None,
) -> "dict[str, float]":
    """Build the flat numeric map ``repro trends`` analyzes.

    Counter totals land as ``counter.<name>`` (deterministic workload
    fingerprints — the tightest regression signals), stage self-times
    as ``stage_ms.<name>`` (wall-clock, compared with generous
    calibration-aware thresholds), quality histogram means as
    ``quality.<name>_mean``, store traffic as ``store.<kind>``.
    """
    metrics: "dict[str, float]" = {}
    if telemetry is not None:
        for name, agg in telemetry.stage_summary().items():
            metrics[f"stage_ms.{name}"] = round(agg["self_us"] / 1e3, 3)
        for name, value in telemetry.metrics.counter_totals().items():
            metrics[f"counter.{name}"] = float(value)
        for name, summary in quality_rollup(telemetry).items():
            if summary.get("count"):
                metrics[f"quality.{name}_mean"] = float(summary["mean"])
    if store:
        for key, value in store.items():
            metrics[f"store.{key}"] = float(value)
    if extra:
        for key, value in extra.items():
            metrics[str(key)] = float(value)
    return metrics


def build_record(
    kind: str,
    *,
    command: str = "",
    config: "dict[str, object] | None" = None,
    duration_s: float = 0.0,
    exit_status: int = 0,
    telemetry=None,
    store: "dict[str, float] | None" = None,
    metrics: "dict[str, float] | None" = None,
    calibration_ms: "float | None" = None,
) -> "dict[str, object]":
    """Assemble one schema-versioned ledger record.

    ``config`` is the run-shaping parameter dict the digest is taken
    over; ``metrics`` adds caller-specific numbers (e.g. hotpath span
    times) on top of the rollup :func:`trend_metrics` derives from the
    telemetry registry. ``calibration_ms`` lets callers that already
    measured the token (hotpath.py) avoid paying for it twice.
    """
    config = dict(config or {})
    if calibration_ms is None:
        calibration_ms = calibration_token()
    record = {
        "schema": LEDGER_SCHEMA,
        "kind": str(kind),
        "command": command,
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "duration_s": round(float(duration_s), 3),
        "exit_status": int(exit_status),
        "git_rev": git_revision(),
        "config": jsonable(config),
        "config_digest": config_digest({"kind": kind, **config}),
        "machine": {
            **machine_info(),
            "calibration_ms": round(float(calibration_ms), 3),
        },
        "telemetry": (
            telemetry_rollup(telemetry) if telemetry is not None else None
        ),
        "store": dict(store) if store else None,
        "workers": (
            telemetry.worker_summary() if telemetry is not None else {}
        ),
        "quality": (
            quality_rollup(telemetry) if telemetry is not None else {}
        ),
        "raster": raster_rollup(telemetry),
        "resilience": resilience_rollup(telemetry),
        "metrics": trend_metrics(
            telemetry, store=store,
            extra={"duration_s": duration_s, **(metrics or {})},
        ),
    }
    return validate_record(jsonable(record))


_REQUIRED_KEYS = (
    "schema", "kind", "command", "created", "duration_s", "exit_status",
    "config", "config_digest", "machine", "metrics",
)


def validate_record(record: "dict[str, object]") -> "dict[str, object]":
    """Check one record against the published ledger schema.

    Returns the record unchanged; raises
    :class:`~repro.errors.SchemaError` on an unknown major and
    :class:`~repro.errors.LedgerError` on structural problems.
    """
    if not isinstance(record, dict):
        raise LedgerError(f"ledger record must be an object, got {type(record).__name__}")
    check_schema(record, expected=LEDGER_SCHEMA, what="ledger record")
    missing = [key for key in _REQUIRED_KEYS if key not in record]
    if missing:
        raise LedgerError(f"ledger record missing keys: {', '.join(missing)}")
    if not isinstance(record["metrics"], dict):
        raise LedgerError("ledger record 'metrics' must be a flat object")
    for name, value in record["metrics"].items():
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise LedgerError(
                f"ledger metric {name!r} must be numeric, got {value!r}"
            )
    if not isinstance(record["machine"], dict):
        raise LedgerError("ledger record 'machine' must be an object")
    return record


def append_record(
    record: "dict[str, object]",
    ledger_dir: "str | pathlib.Path | None" = None,
) -> pathlib.Path:
    """Validate and atomically append one record; returns the file path."""
    validate_record(record)
    path = ledger_path(ledger_dir)
    path.parent.mkdir(parents=True, exist_ok=True)
    atomic_append_text(path, json.dumps(jsonable(record)) + "\n")
    return path


def read_ledger(
    ledger_dir: "str | pathlib.Path | None" = None,
) -> "list[dict]":
    """Load all records of a ledger, in append order.

    A missing ledger is an empty history. Unparseable lines raise
    :class:`~repro.errors.LedgerError` (the ledger is append-only and
    atomically written — a bad line means something else touched it);
    unknown schema majors raise :class:`~repro.errors.SchemaError`.
    """
    path = ledger_path(ledger_dir)
    if not path.exists():
        return []
    records: "list[dict]" = []
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise LedgerError(f"{path}:{lineno}: unparseable record: {exc}") from exc
        records.append(validate_record(record))
    return records


def read_ledgers(
    ledger_dirs: "list[str | pathlib.Path] | tuple",
) -> "list[dict]":
    """Merge the records of several ledger directories by creation time.

    CI shards and multiple machines each append to their own ledger;
    trend analysis wants one stream where 'the latest run of a group'
    is the globally newest record. ``created`` is an ISO-8601 UTC
    timestamp, so lexicographic order is chronological; the sort is
    stable, so same-second records keep their per-ledger append order.
    Missing directories read as empty histories, like
    :func:`read_ledger`.
    """
    merged: "list[dict]" = []
    for ledger_dir in ledger_dirs:
        merged.extend(read_ledger(ledger_dir))
    merged.sort(key=lambda record: str(record.get("created") or ""))
    return merged
