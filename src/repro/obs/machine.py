"""Machine identity and speed calibration for cross-run comparability.

Wall-clock numbers recorded on one machine mean nothing next to
numbers from another until both carry a common yardstick. The
``calibration_ms`` token — best-of-three milliseconds for a fixed
seeded numpy workload mixing the primitives the kernels lean on
(fancy gathers, a stable sort, float blends) — is that yardstick:
``benchmarks/compare.py --calibrate`` and ``repro trends`` scale one
run's times by the ratio of two tokens before comparing. The scaling
is crude but monotone; pair it with generous thresholds.

This module is the single home of the token (``benchmarks/hotpath.py``
historically carried its own copy and now imports this one), plus the
``machine_info`` block and best-effort git revision stamped into every
run-ledger record.
"""

from __future__ import annotations

import os
import pathlib
import platform
import subprocess
import time

import numpy as np


def calibration_token(seed: int = 0) -> float:
    """Milliseconds for a fixed seeded numpy workload (machine speed)."""
    rng = np.random.default_rng(seed)
    data = rng.random((512, 512)).astype(np.float32)
    idx = rng.integers(0, data.size, 200_000)
    best = float("inf")
    for _ in range(3):
        t0 = time.perf_counter()
        flat = data.ravel()
        g = flat[idx]
        order = np.argsort(idx, kind="stable")
        acc = g[order] * 0.25 + np.roll(g, 1) * 0.75
        float(acc.sum())
        best = min(best, time.perf_counter() - t0)
    return best * 1e3


def machine_info() -> "dict[str, object]":
    """Platform/toolchain block identifying where a run happened."""
    return {
        "platform": platform.platform(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "cpu_count": os.cpu_count(),
    }


def git_revision(cwd: "str | pathlib.Path | None" = None) -> "str | None":
    """The current git commit hash, or None outside a repo / without git."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=str(cwd) if cwd is not None else None,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    rev = out.stdout.strip()
    return rev if out.returncode == 0 and rev else None
