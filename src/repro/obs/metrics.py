"""Typed metric primitives: counters, gauges, histograms.

Metrics are named ``<subsystem>.<noun>`` (``texture.trilinear_samples``,
``memsys.l1_miss``) and live in a :class:`MetricRegistry`. Counters are
monotonically increasing event totals; gauges hold the last observed
value; histograms keep a bounded summary (count/sum/min/max) so that
arbitrarily long runs never grow memory.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import ReproError


def validate_metric_name(name: str) -> str:
    """Enforce the ``<subsystem>.<noun>`` naming convention."""
    if not isinstance(name, str) or "." not in name.strip("."):
        raise ReproError(
            f"metric name {name!r} must follow '<subsystem>.<noun>' "
            "(e.g. 'texture.trilinear_samples')"
        )
    return name


@dataclass
class Counter:
    """A monotonically increasing event total."""

    name: str
    value: float = 0

    def add(self, amount: float = 1) -> None:
        if amount < 0:
            raise ReproError(f"counter {self.name!r} cannot decrease ({amount})")
        self.value += amount


@dataclass
class Gauge:
    """The most recent observation of an instantaneous quantity."""

    name: str
    value: float = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


@dataclass
class Histogram:
    """A bounded summary of a stream of observations."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = field(default=float("inf"))
    max: float = field(default=float("-inf"))

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def observe_many(self, values) -> None:
        """Fold a whole batch (e.g. a numpy array) in O(1) summary ops.

        An empty batch is a no-op, so per-frame distribution sites
        (``quality.lod_shift`` over approximated pixels, say) don't
        need their own emptiness guards.
        """
        n = len(values)
        if n == 0:
            return
        try:  # numpy-likes: vectorized reductions
            lo, hi, total = (
                float(values.min()), float(values.max()), float(values.sum())
            )
        except AttributeError:  # plain sequences
            lo, hi, total = float(min(values)), float(max(values)), float(sum(values))
        self.count += n
        self.total += total
        if lo < self.min:
            self.min = lo
        if hi > self.max:
            self.max = hi

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def summary(self) -> "dict[str, float]":
        # An empty histogram reports finite zeros, never the +/-inf
        # sentinels the running min/max start from: every consumer
        # (JSON export, ledger rollups, trend math) gets well-defined
        # numbers whether or not anything was observed.
        if self.count <= 0 or not (self.min <= self.max):
            return {"count": 0, "sum": 0.0, "min": 0.0, "max": 0.0, "mean": 0.0}
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
            "mean": self.mean,
        }


class MetricRegistry:
    """Name-keyed store for all three metric kinds."""

    def __init__(self) -> None:
        self.counters: "dict[str, Counter]" = {}
        self.gauges: "dict[str, Gauge]" = {}
        self.histograms: "dict[str, Histogram]" = {}

    def counter(self, name: str) -> Counter:
        metric = self.counters.get(name)
        if metric is None:
            metric = self.counters[name] = Counter(validate_metric_name(name))
        return metric

    def gauge(self, name: str) -> Gauge:
        metric = self.gauges.get(name)
        if metric is None:
            metric = self.gauges[name] = Gauge(validate_metric_name(name))
        return metric

    def histogram(self, name: str) -> Histogram:
        metric = self.histograms.get(name)
        if metric is None:
            metric = self.histograms[name] = Histogram(validate_metric_name(name))
        return metric

    def counter_totals(self) -> "dict[str, float]":
        """Current counter values, for delta snapshots."""
        return {name: c.value for name, c in self.counters.items()}

    def summary(self) -> "dict[str, dict]":
        """Everything, JSON-ready."""
        return {
            "counters": self.counter_totals(),
            "gauges": {name: g.value for name, g in self.gauges.items()},
            "histograms": {
                name: h.summary() for name, h in self.histograms.items()
            },
        }

    def clear(self) -> None:
        self.counters.clear()
        self.gauges.clear()
        self.histograms.clear()
