"""The process-wide telemetry registry.

One :class:`Telemetry` instance (the module-level :data:`TELEMETRY`)
collects three kinds of observations:

* **stage timers** — hierarchical spans opened with
  :meth:`Telemetry.span` (context manager) or :meth:`Telemetry.timed`
  (decorator). Nesting is tracked on an explicit stack, so every
  completed span knows both its cumulative duration and its *self*
  time (duration minus time spent in child spans);
* **metrics** — typed counters/gauges/histograms from
  :mod:`repro.obs.metrics`, updated via :meth:`count`, :meth:`gauge`
  and :meth:`observe`;
* **per-frame records** — :meth:`frame_record` snapshots the counter
  deltas and per-stage wall-times accumulated since the previous
  record and bundles them with caller-supplied fields (typically
  ``FrameResult.to_dict()``). The records become ``metrics.jsonl``.

Telemetry is **off by default**. Every public entry point first checks
``self.enabled`` and returns immediately (``span`` hands back a shared
no-op context manager), so instrumentation sites in hot paths cost one
attribute load and one branch when disabled. Hot loops that would pay
to *build* the arguments should additionally guard with
``if TELEMETRY.enabled:``.

The registry is intentionally single-threaded (like the renderer); the
span stack is one plain list.
"""

from __future__ import annotations

import functools
import os
import time
from dataclasses import dataclass

from .metrics import MetricRegistry


@dataclass(frozen=True)
class SpanRecord:
    """One completed timer span."""

    name: str
    start_us: float  # relative to the telemetry epoch
    dur_us: float  # cumulative (includes children)
    self_us: float  # cumulative minus time spent in child spans
    depth: int  # nesting depth at entry (0 = top level)
    args: "dict | None" = None


class _NoopSpan:
    """Shared do-nothing context manager for the disabled fast path."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *_exc) -> bool:
        return False


NOOP_SPAN = _NoopSpan()


class _Span:
    """A live span; records itself into the registry on exit."""

    __slots__ = ("_telemetry", "name", "args", "depth", "_start", "_child_us")

    def __init__(self, telemetry: "Telemetry", name: str, args: "dict | None"):
        self._telemetry = telemetry
        self.name = name
        self.args = args
        self.depth = 0
        self._start = 0.0
        self._child_us = 0.0

    def __enter__(self) -> "_Span":
        stack = self._telemetry._stack
        self.depth = len(stack)
        stack.append(self)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *_exc) -> bool:
        end = time.perf_counter()
        telemetry = self._telemetry
        dur_us = (end - self._start) * 1e6
        stack = telemetry._stack
        if stack and stack[-1] is self:
            stack.pop()
        elif self in stack:  # exception unwound past nested spans
            del stack[stack.index(self):]
        if stack:
            stack[-1]._child_us += dur_us
        telemetry._spans.append(
            SpanRecord(
                name=self.name,
                start_us=(self._start - telemetry._epoch) * 1e6,
                dur_us=dur_us,
                self_us=dur_us - self._child_us,
                depth=self.depth,
                args=self.args,
            )
        )
        return False


class Telemetry:
    """Process-wide registry of spans, metrics and frame records."""

    def __init__(self) -> None:
        self.enabled = False
        self.progress_sink: "object | None" = None  # callable(str) or None
        self._epoch = time.perf_counter()
        self._spans: "list[SpanRecord]" = []
        self._stack: "list[_Span]" = []
        self.metrics = MetricRegistry()
        self._frames: "list[dict]" = []
        self._frame_mark_spans = 0
        self._frame_mark_counters: "dict[str, float]" = {}
        #: Per-worker attribution accumulated by :meth:`merge_remote`:
        #: ``{worker_id: {"stages": {...}, "counters": {...}}}``.
        self._workers: "dict[object, dict]" = {}

    # -- lifecycle ------------------------------------------------------

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all collected data (keeps ``enabled`` and the sink)."""
        self._epoch = time.perf_counter()
        self._spans.clear()
        self._stack.clear()
        self.metrics.clear()
        self._frames.clear()
        self._frame_mark_spans = 0
        self._frame_mark_counters = {}
        self._workers.clear()

    # -- stage timers ---------------------------------------------------

    def span(self, name: str, **args):
        """Open a (nested) stage timer as a context manager."""
        if not self.enabled:
            return NOOP_SPAN
        return _Span(self, name, args or None)

    def timed(self, name: "str | None" = None):
        """Decorator form of :meth:`span` (one span per call)."""

        def decorate(fn):
            span_name = name or f"{fn.__module__.split('.')[-1]}.{fn.__qualname__}"

            @functools.wraps(fn)
            def wrapper(*a, **kw):
                if not self.enabled:
                    return fn(*a, **kw)
                with _Span(self, span_name, None):
                    return fn(*a, **kw)

            return wrapper

        return decorate

    @property
    def spans(self) -> "list[SpanRecord]":
        return self._spans

    # -- metrics --------------------------------------------------------

    def count(self, name: str, amount: float = 1) -> None:
        if not self.enabled:
            return
        self.metrics.counter(name).add(amount)

    def gauge(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self.metrics.histogram(name).observe(value)

    def observe_many(self, name: str, values) -> None:
        """Fold a batch of observations (e.g. a numpy array) at once."""
        if not self.enabled:
            return
        self.metrics.histogram(name).observe_many(values)

    def counter_value(self, name: str) -> float:
        counter = self.metrics.counters.get(name)
        return counter.value if counter else 0

    # -- progress (driven by --verbose, independent of ``enabled``) -----

    def progress(self, message: str) -> None:
        """Report a human-readable progress line, if anyone listens."""
        sink = self.progress_sink
        if sink is not None:
            sink(message)

    # -- per-frame records ----------------------------------------------

    def frame_record(self, fields: "dict | None" = None, **extra) -> "dict | None":
        """Close one frame: snapshot stage times and counter deltas.

        Stage wall-times aggregate the spans *completed* since the
        previous record; counter values are deltas over the same
        window. A span still open when the record is cut (e.g. the
        enclosing ``session.evaluate``) lands in the next record.
        """
        if not self.enabled:
            return None
        record: "dict" = dict(fields or {})
        record.update(extra)
        stages: "dict[str, dict]" = {}
        for span in self._spans[self._frame_mark_spans:]:
            agg = stages.get(span.name)
            if agg is None:
                agg = stages[span.name] = {
                    "count": 0, "total_us": 0.0, "self_us": 0.0,
                }
            agg["count"] += 1
            agg["total_us"] += span.dur_us
            agg["self_us"] += span.self_us
        totals = self.metrics.counter_totals()
        marks = self._frame_mark_counters
        record["ts_us"] = (time.perf_counter() - self._epoch) * 1e6
        record["stages"] = stages
        record["counters"] = {
            name: value - marks.get(name, 0) for name, value in totals.items()
        }
        self._frame_mark_spans = len(self._spans)
        self._frame_mark_counters = totals
        self._frames.append(record)
        return record

    @property
    def frame_records(self) -> "list[dict]":
        return self._frames

    # -- aggregation / reporting ----------------------------------------

    def stage_summary(self) -> "dict[str, dict]":
        """Aggregate all completed spans by name.

        Returns ``{name: {count, total_us, self_us, min_depth}}``,
        ordered by first occurrence.
        """
        summary: "dict[str, dict]" = {}
        for span in self._spans:
            agg = summary.get(span.name)
            if agg is None:
                agg = summary[span.name] = {
                    "count": 0,
                    "total_us": 0.0,
                    "self_us": 0.0,
                    "min_depth": span.depth,
                }
            agg["count"] += 1
            agg["total_us"] += span.dur_us
            agg["self_us"] += span.self_us
            if span.depth < agg["min_depth"]:
                agg["min_depth"] = span.depth
        return summary

    # -- cross-process merge (engine process backend) -------------------

    def snapshot_remote(self) -> "dict[str, object]":
        """Bundle this process's telemetry for shipping to a parent.

        Pool workers call this after each job; the parent folds the
        snapshot back in with :meth:`merge_remote`, so ``--jobs N``
        runs still end with one coherent summary. The snapshot is
        tagged with this process's id so the parent can keep a
        per-worker dimension on the merged spans and counters.
        """
        return {
            "worker": os.getpid(),
            "stages": self.stage_summary(),
            "counters": self.metrics.counter_totals(),
        }

    def merge_remote(self, snapshot: "dict | None") -> None:
        """Fold a worker's :meth:`snapshot_remote` into this registry.

        Each remote stage becomes one synthetic span carrying the
        aggregated totals (its true call count and origin worker ride
        in ``args``); remote counters add onto local ones. The same
        stage/counter totals also accumulate under the snapshot's
        worker id (see :meth:`worker_summary`), so merged totals and
        the per-worker breakdown always sum to the same numbers.
        """
        if not self.enabled or not snapshot:
            return
        now_us = (time.perf_counter() - self._epoch) * 1e6
        worker = snapshot.get("worker")
        per_worker = None
        if worker is not None:
            per_worker = self._workers.setdefault(
                worker, {"stages": {}, "counters": {}}
            )
        for name, agg in snapshot.get("stages", {}).items():
            args = {"remote_calls": int(agg["count"])}
            if worker is not None:
                args["worker"] = worker
            self._spans.append(
                SpanRecord(
                    name=name,
                    start_us=now_us,
                    dur_us=float(agg["total_us"]),
                    self_us=float(agg["self_us"]),
                    depth=int(agg.get("min_depth", 0)),
                    args=args,
                )
            )
            if per_worker is not None:
                slot = per_worker["stages"].setdefault(
                    name, {"count": 0, "total_us": 0.0, "self_us": 0.0}
                )
                slot["count"] += int(agg["count"])
                slot["total_us"] += float(agg["total_us"])
                slot["self_us"] += float(agg["self_us"])
        for name, value in snapshot.get("counters", {}).items():
            self.metrics.counter(name).add(value)
            if per_worker is not None:
                per_worker["counters"][name] = (
                    per_worker["counters"].get(name, 0.0) + value
                )

    # -- per-worker attribution (filled by merge_remote) ----------------

    @property
    def worker_stats(self) -> "dict[object, dict]":
        """Raw per-worker stage/counter accumulation (id-keyed)."""
        return self._workers

    def worker_summary(self) -> "dict[str, dict]":
        """Utilization rollup per pool worker.

        ``busy_us`` is the sum of stage *self* times attributed to the
        worker (self times partition wall time, so they add without
        double counting); ``jobs`` estimates processed chunks from
        remote call counts of top-level spans. Returns ``{}`` for
        serial runs — only :meth:`merge_remote` populates it.
        """
        summary: "dict[str, dict]" = {}
        for worker, stats in self._workers.items():
            busy_us = sum(
                agg["self_us"] for agg in stats["stages"].values()
            )
            summary[str(worker)] = {
                "busy_us": busy_us,
                "stages": {
                    name: dict(agg) for name, agg in stats["stages"].items()
                },
                "counters": dict(stats["counters"]),
            }
        return summary

    def format_worker_summary(self) -> str:
        """One-line-per-worker utilization/skew table (may be empty)."""
        summary = self.worker_summary()
        if not summary:
            return ""
        busiest = max(s["busy_us"] for s in summary.values())
        mean = sum(s["busy_us"] for s in summary.values()) / len(summary)
        lines = []
        for worker in sorted(summary):
            stats = summary[worker]
            share = stats["busy_us"] / busiest if busiest > 0 else 0.0
            lines.append(
                f"worker {worker}: busy {stats['busy_us'] / 1e3:.1f} ms "
                f"({share:.0%} of busiest)"
            )
        skew = busiest / mean if mean > 0 else 1.0
        lines.append(
            f"{len(summary)} worker(s), skew {skew:.2f}x "
            "(busiest / mean busy time)"
        )
        return "\n".join(lines)

    def format_summary(self) -> str:
        """Human-readable per-stage time and counter tables."""
        lines = ["== stage timers =="]
        summary = self.stage_summary()
        if summary:
            name_w = max(len(n) for n in summary) + 2
            lines.append(
                f"{'stage'.ljust(name_w)}{'calls':>7}{'total ms':>12}{'self ms':>12}"
            )
            for name, agg in sorted(
                summary.items(), key=lambda kv: -kv[1]["total_us"]
            ):
                lines.append(
                    f"{name.ljust(name_w)}{agg['count']:>7}"
                    f"{agg['total_us'] / 1000.0:>12.2f}"
                    f"{agg['self_us'] / 1000.0:>12.2f}"
                )
        else:
            lines.append("(no spans recorded)")
        counters = self.metrics.counter_totals()
        lines.append("")
        lines.append("== counters ==")
        if counters:
            name_w = max(len(n) for n in counters) + 2
            for name in sorted(counters):
                value = counters[name]
                text = f"{value:.0f}" if float(value).is_integer() else f"{value:.3f}"
                lines.append(f"{name.ljust(name_w)}{text:>16}")
        else:
            lines.append("(no counters recorded)")
        return "\n".join(lines)


#: The process-wide registry used by all instrumentation sites.
TELEMETRY = Telemetry()


def get_telemetry() -> Telemetry:
    """The process-wide :class:`Telemetry` instance."""
    return TELEMETRY
