"""Chrome trace-event export (``chrome://tracing`` / Perfetto).

Serializes a :class:`~repro.obs.telemetry.Telemetry` registry's spans
as complete (``ph: "X"``) events and its counters as counter
(``ph: "C"``) events sampled at each frame-record boundary, in the
Trace Event Format that both ``chrome://tracing`` and
https://ui.perfetto.dev load directly.
"""

from __future__ import annotations

import json
import pathlib

from ..ioutil import atomic_write_text
from .jsonl import check_schema, jsonable
from .telemetry import Telemetry

#: Synthetic process/thread ids shown in the trace viewer.
TRACE_PID = 1
TRACE_TID = 1

#: Schema major of the exported trace document's ``otherData``
#: metadata (mirrors ``hotpath.json``'s ``"schema": 1`` convention).
TRACE_SCHEMA = 1


def trace_events(telemetry: Telemetry) -> "list[dict]":
    """Build the ``traceEvents`` list for one telemetry registry."""
    events: "list[dict]" = [
        {
            "ph": "M",
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "name": "process_name",
            "args": {"name": "repro"},
        }
    ]
    for span in telemetry.spans:
        event = {
            "name": span.name,
            "cat": span.name.split(".", 1)[0],
            "ph": "X",
            "ts": round(span.start_us, 3),
            "dur": round(span.dur_us, 3),
            "pid": TRACE_PID,
            "tid": TRACE_TID,
        }
        if span.args:
            event["args"] = jsonable(span.args)
        events.append(event)
    # Counter tracks: cumulative totals sampled at each frame boundary.
    running: "dict[str, float]" = {}
    for record in telemetry.frame_records:
        ts = record.get("ts_us")
        if ts is None:
            continue
        for name, delta in record.get("counters", {}).items():
            running[name] = running.get(name, 0) + delta
            events.append(
                {
                    "name": name,
                    "cat": name.split(".", 1)[0],
                    "ph": "C",
                    "ts": round(float(ts), 3),
                    "pid": TRACE_PID,
                    "args": {"value": jsonable(running[name])},
                }
            )
    return events


def write_chrome_trace(telemetry: Telemetry, path) -> pathlib.Path:
    """Write ``path`` as a Perfetto-loadable trace JSON file."""
    path = pathlib.Path(path)
    document = {
        "traceEvents": trace_events(telemetry),
        "displayTimeUnit": "ms",
        "otherData": {
            "schema": TRACE_SCHEMA,
            "metrics": jsonable(telemetry.metrics.summary()),
        },
    }
    atomic_write_text(path, json.dumps(document))
    return path


def read_chrome_trace(path) -> "dict":
    """Load a trace written by :func:`write_chrome_trace`.

    Raises :class:`~repro.errors.SchemaError` on an unknown
    ``otherData.schema`` major; traces written before versioning (no
    field) load as major 1. Perfetto itself ignores ``otherData``, so
    this reader exists for the toolkit's own consumers.
    """
    path = pathlib.Path(path)
    document = json.loads(path.read_text())
    check_schema(
        document.get("otherData", {}), expected=TRACE_SCHEMA, what=str(path)
    )
    return document
