"""Trend analysis over the run ledger: variance-aware regression gates.

``python -m repro trends`` loads the ledger (:mod:`repro.obs.ledger`),
groups records by ``(kind, config_digest)`` — only runs doing the same
work are comparable — and, for every metric of each group's newest
record, builds a baseline from the preceding runs: the median plus a
MAD-scaled band. A metric is flagged when the latest value leaves the
band *in its harmful direction*:

* time-like metrics (``stage_ms.*``, ``*_ms``/``*_us``, ``duration_s``,
  anything with ``cycles``) regress upward. Before comparison, each
  historical value is rescaled by the ratio of the two runs'
  ``calibration_ms`` machine-speed tokens (the same normalization
  ``benchmarks/compare.py --calibrate`` applies), so a baseline from a
  faster machine doesn't read as a regression on a slower one;
* quality-like metrics (``mssim``, ``fps``, ``*.hits``) regress
  downward;
* everything else (counter totals, store traffic) is two-sided —
  deterministic fingerprints where *any* drift means behavior changed.

The flag band is ``max(k * 1.4826 * MAD, floor * |median|)``: the MAD
term adapts to observed run-to-run noise once history accumulates, the
relative floor keeps two-run ledgers usable (MAD of one sample is 0).
Time metrics get a generous floor, deterministic metrics a tight one.
Wall-clock bands additionally never shrink below an absolute floor
(0.5 ms for millisecond-denominated metrics): sub-millisecond stage
times are dominated by timer jitter, where relative deltas of +50%
mean tens of microseconds, not regressions. And until a group has
three historical runs, wall-clock metrics are reported but never
flagged — with one or two samples the MAD says nothing about the
machine's noise (single millisecond-scale measurements jitter by 2-3x
under load), and a fresh ledger must not flag its own second run.
Deterministic metrics gate from the first comparison.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from .ledger import read_ledger, read_ledgers

#: MAD multiplier (1.4826 * MAD estimates sigma for normal noise, so
#: k=4 is roughly a four-sigma gate).
DEFAULT_K = 4.0

#: Relative floors under small/zero MAD: generous for wall-clock
#: noise, tight for deterministic counts.
DEFAULT_TIME_FLOOR = 0.35
DEFAULT_EXACT_FLOOR = 0.01

#: Wall-clock metrics need this many historical samples before they
#: can flag. With one or two samples the MAD says nothing about the
#: machine's noise, and single measurements of millisecond-scale spans
#: genuinely jitter by 2-3x under CPU contention — a gate that cries
#: wolf on its second run would be deleted, not fixed. Deterministic
#: counters and quality scalars gate from the first comparison.
MIN_TIME_SAMPLES = 3

#: History window: baselines use at most this many preceding runs.
DEFAULT_WINDOW = 20

#: Scale factor turning a MAD into a normal-noise sigma estimate.
MAD_SIGMA = 1.4826

DIRECTION_HIGH_BAD = "high_bad"
DIRECTION_LOW_BAD = "low_bad"
DIRECTION_BOTH = "both"


def is_time_metric(name: str) -> bool:
    """Is this metric wall-clock-like (noisy, calibration-scalable)?"""
    return (
        name.startswith("stage_ms.")
        or name.endswith(("_ms", "_us", "_s"))
        or "duration" in name
    )


def time_abs_floor(name: str) -> float:
    """Absolute band floor for a wall-clock metric, in its own unit.

    0.5 ms of jitter is normal for any span; expressed per unit so
    ``stage_ms.*``, ``*_us`` and ``duration_s`` all get the same
    physical floor.
    """
    if name.startswith("stage_ms.") or name.endswith("_ms"):
        return 0.5
    if name.endswith("_us"):
        return 500.0
    if name.endswith("_s") or "duration" in name:
        return 0.0005
    return 0.0


def is_noisy_metric(name: str) -> bool:
    """Is this metric scheduling-noisy even though it isn't a duration?

    Service throughput and batching outcomes (requests/sec, speedup,
    how many in-flight requests happened to drain into one batch,
    queue depths) depend on machine speed and scheduling races, not
    just on what the code computed — they get the same generous
    treatment as wall clock: the ``--time-floor`` band and no flagging
    until a group has :data:`MIN_TIME_SAMPLES` historical runs.
    """
    return (
        "requests_per_sec" in name
        or "_rps" in name
        or "speedup" in name
        or "coalesce" in name
        or "batch" in name
        or "queue_depth" in name
    )


def metric_direction(name: str) -> str:
    """Which way does this metric get *worse*?"""
    if "requests_per_sec" in name or "coalesce" in name or "hit_rate" in name:
        # Service throughput/batching/store-locality metrics: higher
        # is healthier, a drop is the regression (sits above the time
        # check so `serve.*_rate` names never read as wall-clock).
        return DIRECTION_LOW_BAD
    if "queue_depth" in name or "rejected" in name or "admission" in name:
        # Service back-pressure: growth means the engine stopped
        # keeping up and admission control started shedding load.
        return DIRECTION_HIGH_BAD
    if is_time_metric(name) or "cycles" in name:
        return DIRECTION_HIGH_BAD
    if "tiles_culled" in name:
        # Coarse-pass cull counters measure work *avoided*: a drop
        # means hierarchical-Z stopped rejecting depth-buried tiles,
        # which is the regression worth flagging.
        return DIRECTION_LOW_BAD
    if "mssim" in name or "fps" in name or name.endswith(".hits"):
        return DIRECTION_LOW_BAD
    return DIRECTION_BOTH


def _median(values: "list[float]") -> float:
    ordered = sorted(values)
    n = len(ordered)
    mid = n // 2
    if n % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _mad(values: "list[float]", center: float) -> float:
    return _median([abs(v - center) for v in values])


def _calibration(record: "dict") -> float:
    machine = record.get("machine")
    if not isinstance(machine, dict):
        return 0.0
    try:
        return float(machine.get("calibration_ms") or 0.0)
    except (TypeError, ValueError):
        return 0.0


@dataclass
class MetricTrend:
    """One metric of one group's latest run against its history."""

    name: str
    latest: float
    median: float
    mad: float
    threshold: float
    samples: int
    direction: str
    flagged: bool

    @property
    def delta(self) -> float:
        return self.latest - self.median

    @property
    def delta_rel(self) -> float:
        return self.delta / abs(self.median) if self.median else 0.0

    def format(self) -> str:
        marker = "  << REGRESSION" if self.flagged else ""
        return (
            f"{self.name:<44} {self.median:>12.3f} -> {self.latest:>12.3f} "
            f"({self.delta_rel:+7.1%}, band ±{self.threshold:.3f}, "
            f"n={self.samples}){marker}"
        )


@dataclass
class GroupTrend:
    """All metric trends of one comparable-run group."""

    kind: str
    digest: str
    command: str
    runs: int
    metrics: "list[MetricTrend]" = field(default_factory=list)
    notes: "list[str]" = field(default_factory=list)

    @property
    def regressions(self) -> "list[MetricTrend]":
        return [m for m in self.metrics if m.flagged]


@dataclass
class TrendReport:
    """The full analysis over one ledger."""

    groups: "list[GroupTrend]" = field(default_factory=list)
    skipped_single: int = 0  # groups with no history yet

    @property
    def regressions(self) -> "list[tuple[GroupTrend, MetricTrend]]":
        return [
            (group, metric)
            for group in self.groups
            for metric in group.regressions
        ]

    def format(self, *, only_flagged: bool = False) -> str:
        if not self.groups and not self.skipped_single:
            return "(empty ledger — nothing to analyze)"
        lines: "list[str]" = []
        for group in self.groups:
            lines.append(
                f"== {group.kind} · {group.digest} — {group.runs} run(s)"
                + (f" · {group.command}" if group.command else "")
                + " =="
            )
            shown = (
                group.regressions if only_flagged else group.metrics
            )
            if not shown:
                lines.append(
                    "  (no regressions)" if only_flagged
                    else "  (no shared metrics with history)"
                )
            lines.extend(f"  {metric.format()}" for metric in shown)
            lines.extend(f"  note: {note}" for note in group.notes)
            lines.append("")
        if self.skipped_single:
            lines.append(
                f"{self.skipped_single} group(s) have a single run "
                "(no history yet — re-run to grow a baseline)"
            )
        flagged = self.regressions
        if flagged:
            names = ", ".join(
                f"{g.kind}:{m.name}" for g, m in flagged[:8]
            )
            more = "" if len(flagged) <= 8 else f" (+{len(flagged) - 8} more)"
            lines.append(
                f"FAIL: {len(flagged)} metric(s) regressed: {names}{more}"
            )
        else:
            lines.append("ok: no metric left its trend band")
        return "\n".join(lines).rstrip() + "\n"


def analyze_records(
    records: "list[dict]",
    *,
    k: float = DEFAULT_K,
    window: int = DEFAULT_WINDOW,
    time_floor: float = DEFAULT_TIME_FLOOR,
    exact_floor: float = DEFAULT_EXACT_FLOOR,
    kind: "str | None" = None,
    metric_filter: "str | None" = None,
) -> TrendReport:
    """Run the trend analysis over in-memory ledger records."""
    groups: "dict[tuple[str, str], list[dict]]" = {}
    for record in records:
        if kind and record.get("kind") != kind:
            continue
        key = (str(record.get("kind")), str(record.get("config_digest")))
        groups.setdefault(key, []).append(record)

    report = TrendReport()
    for (group_kind, digest), members in groups.items():
        if len(members) < 2:
            report.skipped_single += 1
            continue
        latest = members[-1]
        history = members[max(0, len(members) - 1 - window):-1]
        group = GroupTrend(
            kind=group_kind,
            digest=digest,
            command=str(latest.get("command") or ""),
            runs=len(members),
        )
        latest_cal = _calibration(latest)
        latest_metrics = latest.get("metrics") or {}
        uncalibrated = 0
        for name in sorted(latest_metrics):
            if metric_filter and metric_filter not in name:
                continue
            value = float(latest_metrics[name])
            time_like = is_time_metric(name)
            samples: "list[float]" = []
            for past in history:
                past_metrics = past.get("metrics") or {}
                if name not in past_metrics:
                    continue
                past_value = float(past_metrics[name])
                if time_like:
                    past_cal = _calibration(past)
                    if latest_cal > 0 and past_cal > 0:
                        past_value *= latest_cal / past_cal
                    elif (latest_cal > 0) != (past_cal > 0):
                        # Exactly one side carries a machine-speed
                        # token: the scaling ratio is unknown, so a raw
                        # comparison would gate wall clock against a
                        # foreign machine. Skip the pair, note it.
                        uncalibrated += 1
                        continue
                samples.append(past_value)
            if not samples:
                continue
            median = _median(samples)
            mad = _mad(samples, median)
            noisy = time_like or is_noisy_metric(name)
            floor = time_floor if noisy else exact_floor
            threshold = max(k * MAD_SIGMA * mad, floor * abs(median))
            if time_like:
                threshold = max(threshold, time_abs_floor(name))
            delta = value - median
            direction = metric_direction(name)
            if direction == DIRECTION_HIGH_BAD:
                flagged = delta > threshold
            elif direction == DIRECTION_LOW_BAD:
                flagged = delta < -threshold
            else:
                flagged = abs(delta) > threshold
            if noisy and len(samples) < MIN_TIME_SAMPLES:
                flagged = False  # noise-prone metrics ungated until n >= 3
            group.metrics.append(
                MetricTrend(
                    name=name,
                    latest=value,
                    median=median,
                    mad=mad,
                    threshold=threshold,
                    samples=len(samples),
                    direction=direction,
                    flagged=flagged,
                )
            )
        if uncalibrated:
            group.notes.append(
                f"skipped {uncalibrated} uncalibrated wall-clock "
                "sample(s) (no machine-speed token on one side — "
                "uncomparable across machines)"
            )
        report.groups.append(group)
    report.groups.sort(key=lambda g: (g.kind, g.digest))
    return report


def analyze_ledger(
    ledger_dir: "str | pathlib.Path | list | tuple | None" = None, **kwargs
) -> TrendReport:
    """Load one ledger directory — or merge several — and analyze it.

    A list/tuple of directories is read with
    :func:`~repro.obs.ledger.read_ledgers` (records interleaved by
    creation time), so shards written by parallel CI jobs or different
    machines aggregate into the same ``(kind, config_digest)`` groups.
    """
    if isinstance(ledger_dir, (list, tuple)):
        if len(ledger_dir) == 1:
            return analyze_records(read_ledger(ledger_dir[0]), **kwargs)
        return analyze_records(read_ledgers(ledger_dir), **kwargs)
    return analyze_records(read_ledger(ledger_dir), **kwargs)
