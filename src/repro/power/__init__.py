"""Power, energy and area models (the paper's analysis layer).

The paper drives McPAT (cores, caches, interconnect), a texture-unit
extension scaled by floating-point ALU count and busy cycles, and the
Micron DDR3 power model. We reproduce the *structure* of that stack
with an event-energy model: every architectural event observed by the
functional simulation (trilinear filtered, address computed, cache
accessed at each level, DRAM line moved, hash-table insertion,
predictor check) carries a fixed energy at 28 nm-class constants, plus
leakage/background power integrated over the frame's cycles. Energy
claims are reported as ratios to the baseline, as in Figs. 5 and 20.
"""

from .components import EnergyParams
from .energy import EnergyModel, EnergyBreakdown, FrameEvents
from .dram_power import DramPowerModel
from .area import PatuAreaModel, AreaReport

__all__ = [
    "AreaReport",
    "DramPowerModel",
    "EnergyBreakdown",
    "EnergyModel",
    "EnergyParams",
    "FrameEvents",
    "PatuAreaModel",
]
