"""PATU area/latency overhead model (Section V-D).

The paper models PATU under 28 nm with McPAT/CACTI and reports:

* four 16-entry lookup tables per texture unit (one per filtering
  pipeline), 260 bits per entry -> ~2 KB of SRAM per texture unit;
* ~0.15 mm^2 per unified-shader cluster, ~0.2% of a 66 mm^2 GPU;
* sub-cycle hash-table access latency; negligible compute-logic area.

We reproduce the arithmetic with a per-bit area constant for a tiny
fully-associative CAM array at 28 nm (match lines and per-entry
comparators dominate, which is why the density is far worse than a
large 6T SRAM macro) plus a fixed logic allowance.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GpuConfig
from ..core.hash_table import BITS_PER_ENTRY, HASH_TABLE_ENTRIES
from ..errors import ReproError

#: mm^2 per bit for a small fully-associative CAM array at 28 nm.
CAM_MM2_PER_BIT = 8.0e-6
#: Compute logic (entropy + compares + control) per cluster, mm^2.
LOGIC_MM2_PER_CLUSTER = 0.012
#: Die area of the reference GPU (Section V-D).
REFERENCE_GPU_MM2 = 66.0


@dataclass(frozen=True)
class AreaReport:
    """PATU area accounting for one GPU configuration."""

    num_clusters: int
    tables_per_unit: int
    bits_per_table: int
    sram_bytes_per_unit: int
    sram_mm2_per_cluster: float
    logic_mm2_per_cluster: float
    gpu_mm2: float

    @property
    def mm2_per_cluster(self) -> float:
        return self.sram_mm2_per_cluster + self.logic_mm2_per_cluster

    @property
    def total_mm2(self) -> float:
        return self.mm2_per_cluster * self.num_clusters

    @property
    def gpu_fraction(self) -> float:
        return self.total_mm2 / self.gpu_mm2

    @property
    def storage_kb_per_unit(self) -> float:
        return self.sram_bytes_per_unit / 1024.0


class PatuAreaModel:
    """Computes the Section V-D overhead numbers for a GPU config."""

    def __init__(self, config: GpuConfig, *, entries: int = HASH_TABLE_ENTRIES):
        if entries < 1:
            raise ReproError(f"hash table entries must be >= 1, got {entries}")
        self.config = config
        self.entries = entries

    def report(self) -> AreaReport:
        cfg = self.config
        tables_per_unit = cfg.texture_unit.quad_size  # one per pipeline
        bits_per_table = self.entries * BITS_PER_ENTRY
        total_bits_per_unit = tables_per_unit * bits_per_table
        return AreaReport(
            num_clusters=cfg.num_clusters,
            tables_per_unit=tables_per_unit,
            bits_per_table=bits_per_table,
            sram_bytes_per_unit=total_bits_per_unit // 8,
            sram_mm2_per_cluster=(
                total_bits_per_unit * cfg.texture_units_per_cluster * CAM_MM2_PER_BIT
            ),
            logic_mm2_per_cluster=LOGIC_MM2_PER_CLUSTER,
            gpu_mm2=REFERENCE_GPU_MM2,
        )
