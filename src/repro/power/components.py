"""Per-event energy constants (28 nm-class, McPAT-flavoured).

Absolute joules are not the point — the paper reports energy normalized
to the baseline — but the *ratios between event classes* are chosen to
match the published modelling literature the paper builds on (McPAT
[33], CACTI [34], the Micron DDR3 note [37]): a DRAM line transfer
costs ~2 orders of magnitude more than an L1 hit; SRAM access energy
scales roughly with capacity; a trilinear filter step is a small fixed
bundle of FP MACs.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EnergyParams:
    """Energy per event, in nanojoules, plus background power."""

    #: One 64-byte DRAM line transfer (activate share + IO + termination).
    dram_line_nj: float = 3.0
    #: One L2 (texture LLC) access.
    l2_access_nj: float = 0.45
    #: One L1 texture-cache access.
    l1_access_nj: float = 0.06
    #: One trilinear sample filtered (8 texel reads' datapath + FP MACs).
    trilinear_filter_nj: float = 0.10
    #: Address calculation for one trilinear sample (8 integer addresses).
    address_sample_nj: float = 0.04
    #: One non-texture shader ALU op.
    shader_op_nj: float = 0.01
    #: Vertex processing energy per vertex.
    vertex_nj: float = 0.15
    #: One PATU hash-table insertion (CAM probe + count update).
    hash_insert_nj: float = 0.012
    #: One PATU threshold check (entropy/compare logic).
    patu_check_nj: float = 0.02
    #: GPU leakage + clocking + fixed-function background power, in
    #: watts — integrates over frame time, which is why performance
    #: gains translate into energy savings (Section VII-B(B)).
    background_power_w: float = 5.2
    #: DRAM background (refresh + standby) power in watts.
    dram_background_w: float = 0.45
