"""Micron-style DRAM power decomposition (paper's analysis layer, [37]).

The Micron technical note decomposes DRAM power into background,
activate/precharge, read/write burst and termination components. We
reproduce that decomposition from the DRAM statistics the hierarchy
simulator produces: row hits skip the activate component, which is how
access *locality* (not just volume) shows up in DRAM energy.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import PipelineError
from ..memsys.dram import DramStats


@dataclass(frozen=True)
class DramEnergyParams:
    """Per-event DRAM energies (nJ) and background power (W)."""

    activate_nj: float = 3.5  # one row activate + precharge
    burst_nj: float = 6.0  # 64-byte read burst (IO + array)
    termination_nj: float = 2.5  # bus termination per line
    background_w: float = 0.25


@dataclass(frozen=True)
class DramEnergyBreakdown:
    """DRAM energy of one frame by Micron component, in nJ."""

    activate_nj: float
    burst_nj: float
    termination_nj: float
    background_nj: float

    @property
    def total_nj(self) -> float:
        return (
            self.activate_nj
            + self.burst_nj
            + self.termination_nj
            + self.background_nj
        )


class DramPowerModel:
    """Prices DRAM statistics into a Micron-style breakdown."""

    def __init__(self, params: "DramEnergyParams | None" = None) -> None:
        self.params = params or DramEnergyParams()

    def frame_energy(
        self, stats: DramStats, frame_seconds: float
    ) -> DramEnergyBreakdown:
        if frame_seconds <= 0:
            raise PipelineError("frame_seconds must be positive")
        p = self.params
        row_misses = stats.lines_fetched - stats.row_hits
        return DramEnergyBreakdown(
            activate_nj=row_misses * p.activate_nj,
            burst_nj=stats.lines_fetched * p.burst_nj,
            termination_nj=stats.lines_fetched * p.termination_nj,
            background_nj=p.background_w * frame_seconds * 1e9,
        )
