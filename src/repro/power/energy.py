"""Frame energy accounting.

Collects one frame's architectural events, prices them with
:class:`EnergyParams`, and integrates background power over the
frame's cycle count. The breakdown separates the categories the paper
discusses: texture datapath, memory hierarchy, DRAM, shader core and
the (tiny) PATU overhead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GpuConfig
from ..errors import PipelineError
from .components import EnergyParams


@dataclass(frozen=True)
class FrameEvents:
    """Event counts of one rendered frame."""

    trilinear_samples: int
    address_samples: int
    l1_accesses: int
    l2_accesses: int
    dram_lines: int
    shader_ops: int
    vertices: int
    hash_insertions: int = 0
    patu_checks: int = 0

    def __post_init__(self) -> None:
        if min(
            self.trilinear_samples,
            self.address_samples,
            self.l1_accesses,
            self.l2_accesses,
            self.dram_lines,
            self.shader_ops,
            self.vertices,
            self.hash_insertions,
            self.patu_checks,
        ) < 0:
            raise PipelineError("event counts must be non-negative")


@dataclass(frozen=True)
class EnergyBreakdown:
    """Energy of one frame, by category, in nanojoules."""

    texture_nj: float
    cache_nj: float
    dram_nj: float
    shader_nj: float
    patu_nj: float
    background_nj: float

    @property
    def total_nj(self) -> float:
        return (
            self.texture_nj
            + self.cache_nj
            + self.dram_nj
            + self.shader_nj
            + self.patu_nj
            + self.background_nj
        )

    @property
    def dynamic_nj(self) -> float:
        return self.total_nj - self.background_nj

    def average_power_w(self, frame_cycles: float, frequency_hz: float) -> float:
        """Mean power over the frame (total energy / frame time)."""
        if frame_cycles <= 0:
            raise PipelineError("frame_cycles must be positive")
        seconds = frame_cycles / frequency_hz
        return self.total_nj * 1e-9 / seconds


class EnergyModel:
    """Prices frame events into an :class:`EnergyBreakdown`."""

    def __init__(self, config: GpuConfig, params: "EnergyParams | None" = None):
        self.config = config
        self.params = params or EnergyParams()

    def frame_energy(self, events: FrameEvents, frame_cycles: float) -> EnergyBreakdown:
        if frame_cycles <= 0:
            raise PipelineError("frame_cycles must be positive")
        p = self.params
        texture = (
            events.trilinear_samples * p.trilinear_filter_nj
            + events.address_samples * p.address_sample_nj
        )
        cache = (
            events.l1_accesses * p.l1_access_nj
            + events.l2_accesses * p.l2_access_nj
        )
        dram = events.dram_lines * p.dram_line_nj
        shader = events.shader_ops * p.shader_op_nj + events.vertices * p.vertex_nj
        patu = (
            events.hash_insertions * p.hash_insert_nj
            + events.patu_checks * p.patu_check_nj
        )
        seconds = frame_cycles / self.config.frequency_hz
        background = (p.background_power_w + p.dram_background_w) * seconds * 1e9
        return EnergyBreakdown(
            texture_nj=texture,
            cache_nj=cache,
            dram_nj=dram,
            shader_nj=shader,
            patu_nj=patu,
            background_nj=background,
        )
