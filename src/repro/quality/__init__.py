"""Image-quality analysis: SSIM, MSSIM, SSIM index maps and classic metrics.

The paper measures user-perceived quality with the Structure Similarity
index (Section II-C, Eq. 1-2) computed between a frame rendered with
16x AF (reference ``Y``) and the same frame under an approximation
(``X``). :func:`ssim_map` reproduces the per-pixel index map of Fig. 8;
:func:`mssim` the scalar quality scores of Figs. 7, 17 and 19.
"""

from .ssim import ssim_map, mssim, ssim_components
from .metrics import mse, psnr

__all__ = ["mse", "mssim", "psnr", "ssim_components", "ssim_map"]
