"""Per-tile perceptual-quality heatmaps (AF-SSIM observability).

The paper's quality argument is spatial — approximation hurts exactly
where the SSIM map says it does — but until now the per-pixel map was
only visible as a one-off PGM from ``repro render``. This module turns
it into a first-class observable: :func:`quality_maps` reduces the
full AF-SSIM map to the capture's tile grid (the renderer's scheduling
unit, and the granularity the ROADMAP's budget-controller work wants),
and :func:`export_quality_maps` materializes both as ``.npz`` (exact
values, for tooling) plus ``.png`` heatmaps (for eyes), feeding the
``quality.tile_mssim`` telemetry histogram along the way.
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..errors import ReproError
from ..obs import TELEMETRY
from .imageio import write_png
from .ssim import ssim_map

__all__ = ["export_quality_maps", "quality_maps", "tile_reduce_mean"]


def tile_reduce_mean(map2d: np.ndarray, tile_size: int) -> np.ndarray:
    """Mean of every ``tile_size`` x ``tile_size`` block (edges partial).

    Output shape is ``(ceil(h / t), ceil(w / t))``; border tiles
    average only the pixels they actually cover.
    """
    map2d = np.asarray(map2d, dtype=np.float64)
    if map2d.ndim != 2:
        raise ReproError(f"tile reduce needs a 2D map, got shape {map2d.shape}")
    if tile_size < 1:
        raise ReproError(f"tile size must be >= 1, got {tile_size}")
    h, w = map2d.shape
    row_starts = np.arange(0, h, tile_size)
    col_starts = np.arange(0, w, tile_size)
    sums = np.add.reduceat(
        np.add.reduceat(map2d, row_starts, axis=0), col_starts, axis=1
    )
    row_sizes = np.minimum(row_starts + tile_size, h) - row_starts
    col_sizes = np.minimum(col_starts + tile_size, w) - col_starts
    return sums / np.outer(row_sizes, col_sizes)


def quality_maps(
    baseline_luminance: np.ndarray,
    luminance: np.ndarray,
    *,
    tile_size: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """The (per-pixel SSIM map, per-tile mean SSIM) pair of one frame."""
    index_map = ssim_map(luminance, baseline_luminance)
    return index_map, tile_reduce_mean(index_map, tile_size)


def export_quality_maps(
    capture,
    luminance: np.ndarray,
    out_dir,
    *,
    scenario: str,
    threshold: float,
) -> "dict[str, pathlib.Path]":
    """Write one frame's quality maps; returns the created paths.

    Artifacts, named ``{workload}-f{frame}``:

    * ``.npz`` — exact ``ssim`` (per-pixel) and ``tile_ssim``
      (per-tile mean) arrays plus the identifying metadata;
    * ``-ssim.png`` — the per-pixel map, ``[-1, 1]`` mapped to
      ``[0, 1]`` gray (lighter = perceptually closer to exact AF);
    * ``-tiles.png`` — the tile map upsampled back to pixel
      resolution, the at-a-glance "where did approximation cost
      quality" view.

    The per-tile values also land in the ``quality.tile_mssim``
    telemetry histogram, so ledger records of a ``--quality-maps`` run
    summarize spatial quality without reading the files back.
    """
    out_dir = pathlib.Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    index_map, tile_map = quality_maps(
        capture.baseline_luminance, luminance, tile_size=capture.tile_size
    )
    TELEMETRY.observe_many("quality.tile_mssim", tile_map.ravel())
    stem = f"{capture.workload_name}-f{capture.frame_index}"
    npz_path = out_dir / f"{stem}.npz"
    with npz_path.open("wb") as handle:
        np.savez_compressed(
            handle,
            ssim=index_map,
            tile_ssim=tile_map,
            tile_size=np.int64(capture.tile_size),
            workload=np.str_(capture.workload_name),
            frame=np.int64(capture.frame_index),
            scenario=np.str_(scenario),
            threshold=np.float64(threshold),
        )
    ssim_png = write_png(out_dir / f"{stem}-ssim.png", (index_map + 1.0) / 2.0)
    upsampled = np.repeat(
        np.repeat(tile_map, capture.tile_size, axis=0),
        capture.tile_size, axis=1,
    )[: capture.height, : capture.width]
    tiles_png = write_png(
        out_dir / f"{stem}-tiles.png", (upsampled + 1.0) / 2.0
    )
    return {"npz": npz_path, "ssim_png": ssim_png, "tiles_png": tiles_png}
