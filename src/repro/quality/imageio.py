"""Minimal PGM/PPM/PNG image I/O (dependency-free).

Used by the examples and the CLI to materialize rendered frames, SSIM
maps and quality heatmaps as files any image viewer opens. PGM/PPM are
binary (P5/P6) variants; PNG is stdlib-only (zlib + struct), 8 bits
per channel, grayscale or RGB.
"""

from __future__ import annotations

import pathlib
import struct
import zlib

import numpy as np

from ..errors import ReproError


def _to_bytes(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if not np.isfinite(image).all():
        raise ReproError("image contains non-finite values")
    return (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def write_pgm(path, image: np.ndarray) -> pathlib.Path:
    """Write a 2D [0, 1] float image as binary 8-bit PGM."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ReproError(f"PGM needs a 2D image, got shape {image.shape}")
    path = pathlib.Path(path)
    data = _to_bytes(image)
    header = f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode()
    path.write_bytes(header + data.tobytes())
    return path


def write_ppm(path, image: np.ndarray) -> pathlib.Path:
    """Write an (h, w, 3|4) [0, 1] float image as binary 8-bit PPM.

    An alpha channel, if present, is dropped.
    """
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] not in (3, 4):
        raise ReproError(f"PPM needs (h, w, 3|4), got shape {image.shape}")
    path = pathlib.Path(path)
    data = _to_bytes(image[..., :3])
    header = f"P6\n{data.shape[1]} {data.shape[0]}\n255\n".encode()
    path.write_bytes(header + data.tobytes())
    return path


def _png_chunk(tag: bytes, payload: bytes) -> bytes:
    body = tag + payload
    return (
        struct.pack(">I", len(payload))
        + body
        + struct.pack(">I", zlib.crc32(body) & 0xFFFFFFFF)
    )


def write_png(path, image: np.ndarray) -> pathlib.Path:
    """Write a [0, 1] float image as an 8-bit PNG (stdlib only).

    2D input becomes grayscale (color type 0), (h, w, 3|4) becomes RGB
    (alpha dropped). Rows use filter type 0; the payload is deflate-
    compressed, so quality heatmaps stay small.
    """
    image = np.asarray(image)
    if image.ndim == 3 and image.shape[2] in (3, 4):
        data = _to_bytes(image[..., :3])
        color_type = 2
    elif image.ndim == 2:
        data = _to_bytes(image)
        color_type = 0
    else:
        raise ReproError(
            f"PNG needs a 2D or (h, w, 3|4) image, got shape {image.shape}"
        )
    height, width = data.shape[0], data.shape[1]
    raw = b"".join(
        b"\x00" + data[row].tobytes() for row in range(height)
    )
    header = struct.pack(">IIBBBBB", width, height, 8, color_type, 0, 0, 0)
    payload = (
        b"\x89PNG\r\n\x1a\n"
        + _png_chunk(b"IHDR", header)
        + _png_chunk(b"IDAT", zlib.compress(raw, 6))
        + _png_chunk(b"IEND", b"")
    )
    path = pathlib.Path(path)
    path.write_bytes(payload)
    return path


def read_png(path) -> np.ndarray:
    """Read an 8-bit PNG written by :func:`write_png` back to [0, 1].

    Supports color types 0 (grayscale) and 2 (RGB) with filter type 0
    rows — exactly what :func:`write_png` emits; everything else
    raises. This is a round-trip check helper, not a general decoder.
    """
    raw = pathlib.Path(path).read_bytes()
    if raw[:8] != b"\x89PNG\r\n\x1a\n":
        raise ReproError("not a PNG file")
    pos, width, height, color_type, idat = 8, 0, 0, 0, b""
    while pos < len(raw):
        (length,) = struct.unpack(">I", raw[pos : pos + 4])
        tag = raw[pos + 4 : pos + 8]
        payload = raw[pos + 8 : pos + 8 + length]
        pos += 12 + length
        if tag == b"IHDR":
            width, height, depth, color_type = struct.unpack(
                ">IIBB", payload[:10]
            )
            if depth != 8 or color_type not in (0, 2):
                raise ReproError(
                    f"unsupported PNG layout (depth {depth}, type {color_type})"
                )
        elif tag == b"IDAT":
            idat += payload
        elif tag == b"IEND":
            break
    channels = 1 if color_type == 0 else 3
    decoded = zlib.decompress(idat)
    stride = 1 + width * channels
    rows = []
    for row in range(height):
        line = decoded[row * stride : (row + 1) * stride]
        if not line or line[0] != 0:
            raise ReproError("unsupported PNG row filter")
        rows.append(np.frombuffer(line[1:], dtype=np.uint8))
    image = np.stack(rows).astype(np.float64) / 255.0
    if channels == 1:
        return image.reshape(height, width)
    return image.reshape(height, width, 3)


def read_pnm(path) -> np.ndarray:
    """Read a binary PGM (P5) or PPM (P6) back into [0, 1] floats."""
    raw = pathlib.Path(path).read_bytes()
    fields: "list[bytes]" = []
    pos = 0
    # Header: magic, width, height, maxval — whitespace separated with
    # optional '#' comment lines.
    while len(fields) < 4:
        while pos < len(raw) and raw[pos : pos + 1].isspace():
            pos += 1
        if pos < len(raw) and raw[pos : pos + 1] == b"#":
            while pos < len(raw) and raw[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(raw) and not raw[pos : pos + 1].isspace():
            pos += 1
        fields.append(raw[start:pos])
    magic, width, height, maxval = fields
    pos += 1  # single whitespace after maxval
    if magic not in (b"P5", b"P6"):
        raise ReproError(f"unsupported PNM magic {magic!r}")
    w, h, mv = int(width), int(height), int(maxval)
    if mv != 255:
        raise ReproError(f"only 8-bit PNM supported, got maxval {mv}")
    channels = 1 if magic == b"P5" else 3
    expected = w * h * channels
    data = np.frombuffer(raw[pos : pos + expected], dtype=np.uint8)
    if data.size != expected:
        raise ReproError("truncated PNM payload")
    image = data.astype(np.float64) / 255.0
    if channels == 1:
        return image.reshape(h, w)
    return image.reshape(h, w, 3)
