"""Minimal PGM/PPM image I/O (dependency-free).

Used by the examples and the CLI to materialize rendered frames and
SSIM maps as files any image viewer opens. Binary (P5/P6) variants,
8 bits per channel.
"""

from __future__ import annotations

import pathlib

import numpy as np

from ..errors import ReproError


def _to_bytes(image: np.ndarray) -> np.ndarray:
    image = np.asarray(image, dtype=np.float64)
    if not np.isfinite(image).all():
        raise ReproError("image contains non-finite values")
    return (np.clip(image, 0.0, 1.0) * 255.0 + 0.5).astype(np.uint8)


def write_pgm(path, image: np.ndarray) -> pathlib.Path:
    """Write a 2D [0, 1] float image as binary 8-bit PGM."""
    image = np.asarray(image)
    if image.ndim != 2:
        raise ReproError(f"PGM needs a 2D image, got shape {image.shape}")
    path = pathlib.Path(path)
    data = _to_bytes(image)
    header = f"P5\n{data.shape[1]} {data.shape[0]}\n255\n".encode()
    path.write_bytes(header + data.tobytes())
    return path


def write_ppm(path, image: np.ndarray) -> pathlib.Path:
    """Write an (h, w, 3|4) [0, 1] float image as binary 8-bit PPM.

    An alpha channel, if present, is dropped.
    """
    image = np.asarray(image)
    if image.ndim != 3 or image.shape[2] not in (3, 4):
        raise ReproError(f"PPM needs (h, w, 3|4), got shape {image.shape}")
    path = pathlib.Path(path)
    data = _to_bytes(image[..., :3])
    header = f"P6\n{data.shape[1]} {data.shape[0]}\n255\n".encode()
    path.write_bytes(header + data.tobytes())
    return path


def read_pnm(path) -> np.ndarray:
    """Read a binary PGM (P5) or PPM (P6) back into [0, 1] floats."""
    raw = pathlib.Path(path).read_bytes()
    fields: "list[bytes]" = []
    pos = 0
    # Header: magic, width, height, maxval — whitespace separated with
    # optional '#' comment lines.
    while len(fields) < 4:
        while pos < len(raw) and raw[pos : pos + 1].isspace():
            pos += 1
        if pos < len(raw) and raw[pos : pos + 1] == b"#":
            while pos < len(raw) and raw[pos : pos + 1] != b"\n":
                pos += 1
            continue
        start = pos
        while pos < len(raw) and not raw[pos : pos + 1].isspace():
            pos += 1
        fields.append(raw[start:pos])
    magic, width, height, maxval = fields
    pos += 1  # single whitespace after maxval
    if magic not in (b"P5", b"P6"):
        raise ReproError(f"unsupported PNM magic {magic!r}")
    w, h, mv = int(width), int(height), int(maxval)
    if mv != 255:
        raise ReproError(f"only 8-bit PNM supported, got maxval {mv}")
    channels = 1 if magic == b"P5" else 3
    expected = w * h * channels
    data = np.frombuffer(raw[pos : pos + expected], dtype=np.uint8)
    if data.size != expected:
        raise ReproError("truncated PNM payload")
    image = data.astype(np.float64) / 255.0
    if channels == 1:
        return image.reshape(h, w)
    return image.reshape(h, w, 3)
