"""Classic full-reference quality metrics (MSE, PSNR).

Included as the comparators Section II-C mentions SSIM outperforming;
useful in tests to sanity-check that SSIM and PSNR move together for
simple distortions.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import ReproError


def mse(x: np.ndarray, y: np.ndarray) -> float:
    """Mean squared error between two images of identical shape."""
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.shape != y.shape:
        raise ReproError(f"image shapes differ: {x.shape} vs {y.shape}")
    return float(np.mean((x - y) ** 2))


def psnr(x: np.ndarray, y: np.ndarray, data_range: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for identical images)."""
    err = mse(x, y)
    if err == 0.0:
        return math.inf
    return 10.0 * math.log10((data_range * data_range) / err)
