"""Image sharpness metrics (gradient energy).

Fig. 3 of the paper demonstrates AF's visual effect as *sharpness*:
texture detail preserved at oblique angles where isotropic filtering
blurs. Gradient energy — the mean magnitude of the luminance gradient —
is the standard scalar for that property: blur is a low-pass and always
reduces it.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def gradient_energy(image: np.ndarray, mask: "np.ndarray | None" = None) -> float:
    """Mean luminance-gradient magnitude, optionally over a pixel mask.

    Central differences inside the frame; the one-pixel border is
    excluded so the metric is translation-stable.
    """
    image = np.asarray(image, dtype=np.float64)
    if image.ndim != 2:
        raise ReproError(f"sharpness needs a 2D luminance image, got {image.shape}")
    if min(image.shape) < 3:
        raise ReproError("image must be at least 3x3")
    gy = (image[2:, 1:-1] - image[:-2, 1:-1]) / 2.0
    gx = (image[1:-1, 2:] - image[1:-1, :-2]) / 2.0
    magnitude = np.hypot(gx, gy)
    if mask is None:
        return float(magnitude.mean())
    mask = np.asarray(mask, dtype=bool)
    if mask.shape != image.shape:
        raise ReproError("mask must match the image shape")
    inner = mask[1:-1, 1:-1]
    if not inner.any():
        raise ReproError("mask selects no interior pixels")
    return float(magnitude[inner].mean())


def sharpness_ratio(
    sharp: np.ndarray, blurred: np.ndarray, mask: "np.ndarray | None" = None
) -> float:
    """Gradient-energy ratio of two images (> 1 means `sharp` is sharper)."""
    denom = gradient_energy(blurred, mask)
    if denom <= 0:
        raise ReproError("blurred image has zero gradient energy")
    return gradient_energy(sharp, mask) / denom
