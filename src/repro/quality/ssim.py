"""Structure Similarity (SSIM) — Wang et al. 2004, paper Eq. (1)-(2).

The implementation follows the reference formulation: local statistics
are computed under an 11x11 Gaussian window (sigma = 1.5) over the
luminance channel, and the per-pixel index combines luminance, contrast
and structure terms with the usual stabilizing constants
``C1 = (0.01 L)^2`` and ``C2 = (0.03 L)^2`` for dynamic range ``L``.
Convolution is separable and numpy-only (reflect padding).
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError

_WINDOW_SIZE = 11
_SIGMA = 1.5


def _gaussian_kernel(size: int = _WINDOW_SIZE, sigma: float = _SIGMA) -> np.ndarray:
    half = (size - 1) / 2.0
    x = np.arange(size, dtype=np.float64) - half
    k = np.exp(-(x * x) / (2.0 * sigma * sigma))
    return k / k.sum()


_KERNEL = _gaussian_kernel()


def _filter2d(img: np.ndarray) -> np.ndarray:
    """Separable Gaussian filter with reflect padding ('same' output)."""
    pad = _WINDOW_SIZE // 2
    padded = np.pad(img, pad, mode="reflect")
    # Horizontal pass.
    tmp = np.apply_along_axis(
        lambda row: np.convolve(row, _KERNEL, mode="valid"), 1, padded
    )
    # Vertical pass.
    out = np.apply_along_axis(
        lambda col: np.convolve(col, _KERNEL, mode="valid"), 0, tmp
    )
    return out


def _validate(x: np.ndarray, y: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    x = np.asarray(x, dtype=np.float64)
    y = np.asarray(y, dtype=np.float64)
    if x.ndim != 2 or y.ndim != 2:
        raise ReproError("SSIM operates on 2D (luminance) images")
    if x.shape != y.shape:
        raise ReproError(f"image shapes differ: {x.shape} vs {y.shape}")
    if min(x.shape) < _WINDOW_SIZE:
        raise ReproError(
            f"images must be at least {_WINDOW_SIZE}x{_WINDOW_SIZE}, got {x.shape}"
        )
    return x, y


def ssim_components(
    x: np.ndarray, y: np.ndarray, data_range: float = 1.0
) -> "tuple[np.ndarray, np.ndarray]":
    """Return the (luminance, contrast-structure) component maps.

    These are the two factors of Eq. (1):
    ``l = (2 mu_x mu_y + C1) / (mu_x^2 + mu_y^2 + C1)`` and
    ``cs = (2 sigma_xy + C2) / (sigma_x^2 + sigma_y^2 + C2)``.
    """
    x, y = _validate(x, y)
    c1 = (0.01 * data_range) ** 2
    c2 = (0.03 * data_range) ** 2

    mu_x = _filter2d(x)
    mu_y = _filter2d(y)
    mu_xx = mu_x * mu_x
    mu_yy = mu_y * mu_y
    mu_xy = mu_x * mu_y
    sigma_xx = _filter2d(x * x) - mu_xx
    sigma_yy = _filter2d(y * y) - mu_yy
    sigma_xy = _filter2d(x * y) - mu_xy

    lum = (2.0 * mu_xy + c1) / (mu_xx + mu_yy + c1)
    cs = (2.0 * sigma_xy + c2) / (sigma_xx + sigma_yy + c2)
    return lum, cs


def ssim_map(x: np.ndarray, y: np.ndarray, data_range: float = 1.0) -> np.ndarray:
    """Per-pixel SSIM index map between images ``x`` and ``y`` (Fig. 8 right).

    Values are in ``[-1, 1]``; lighter (closer to 1) means the two
    images are locally indistinguishable.
    """
    lum, cs = ssim_components(x, y, data_range)
    return lum * cs


def mssim(x: np.ndarray, y: np.ndarray, data_range: float = 1.0) -> float:
    """Mean SSIM over the frame — the paper's image-quality scalar (Eq. 2)."""
    return float(ssim_map(x, y, data_range).mean())
