"""Rasterization stage: triangles -> fragments (Figure 2).

The rasterizer is deferred-texturing style: it resolves visibility
(early depth test) into a G-buffer holding, per visible pixel, the
interpolated texture coordinates, their analytic screen-space
derivatives, and the texture the fragment shader will sample. The
texture units then consume the G-buffer in tile order.
"""

from .binned import BinnedRasterizer
from .framebuffer import Framebuffer
from .gbuffer import GBuffer
from .rasterizer import Rasterizer, RasterStats, edge_inside_mask, edge_tie_accept
from .quads import count_shaded_quads, quad_ids, quad_divergence_fraction

__all__ = [
    "BinnedRasterizer",
    "Framebuffer",
    "GBuffer",
    "RasterStats",
    "Rasterizer",
    "count_shaded_quads",
    "edge_inside_mask",
    "edge_tie_accept",
    "quad_divergence_fraction",
    "quad_ids",
]
