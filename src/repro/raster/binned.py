"""Sort-middle tiled rasterizer: bin → coarse tile (hi-Z) → fine raster.

The legacy :class:`~repro.raster.rasterizer.Rasterizer` walks triangles
in submission order and evaluates each one over its full screen
bounding box — every depth-buried fragment still costs full barycentric
plus perspective-division work. This module restructures the same math
into the classic sort-middle shape (CUDA software rasterizers,
Pathfinder):

1. **Binning** — all draws are accumulated first; their post-cull
   triangles are assigned to coarse screen *bins* and to raster *tiles*
   (default 8x8) by vectorized bbox-vs-cell overlap, producing
   CSR-style cell→triangle pair lists
   (:func:`repro.geometry.tiling.expand_grid_ranges`).
2. **Coarse tile pass** — per tile, a hierarchical-Z bound is built
   from the tile's full-cover *occluders*: triangles whose edge
   functions strictly cover all four tile-corner pixel centers lower
   the tile's conservative zmax to their corner-depth maximum. Because
   the whole frame is sorted middle (every triangle is known before
   any pixel is shaded), the bound is the min over **all** occluders,
   not just earlier-submitted ones. Any candidate whose conservative
   vertex zmin is not in front of the bound is culled: its
   fragments either fail the strict ``<`` depth test (the occluder
   drew first) or are overwritten before frame end (the occluder draws
   later), so the *final* G-buffer is unchanged either way. A tile
   whose candidates all die behind an occluder is retired outright
   (Pathfinder-style occluded-tile cull).
3. **Fine pass** — each surviving triangle is evaluated over the
   tile-aligned union of its surviving tiles using *exactly* the legacy
   per-pixel expressions (same pixel centers, same operation order,
   same float32 stores), with the top-left fill rule and with the
   heavy perspective-correct math compressed to depth-surviving
   fragments only. Because every expression is elementwise in the
   pixel coordinates, the resulting G-buffer is **bit-identical** to
   the legacy rasterizer's.

Exactness of the cull is protected against floating-point disagreement
between the corner-evaluated bounds and the fine pass's per-pixel
values by conservative per-triangle error margins (``_lam_error``):
margins only ever *forgo* a cull, never take one that could have
produced a visible fragment.
"""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError
from ..geometry.tiling import expand_grid_ranges
from ..geometry.transform import TransformedTriangles
from .gbuffer import GBuffer
from .rasterizer import RasterStats, edge_inside_mask

#: Machine epsilon of the float64 arithmetic both passes share.
_EPS64 = float(np.finfo(np.float64).eps)
#: Machine epsilon of the float32 G-buffer depth storage.
_EPS32 = float(np.finfo(np.float32).eps)


def _segment_min(segments: np.ndarray, values: np.ndarray) -> np.ndarray:
    """Per element: min of *all* values in its (contiguous) segment."""
    starts = np.nonzero(np.concatenate([[True], segments[1:] != segments[:-1]]))[0]
    mins = np.minimum.reduceat(values, starts)
    lengths = np.diff(np.concatenate([starts, [segments.size]]))
    return np.repeat(mins, lengths)


def _ragged_indices(
    starts_a: np.ndarray,
    counts_a: np.ndarray,
    starts_b: np.ndarray,
    counts_b: np.ndarray,
) -> np.ndarray:
    """Flatten two families of ``[start, start+count)`` index ranges."""
    starts = np.concatenate([starts_a, starts_b])
    counts = np.concatenate([counts_a, counts_b])
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg = np.cumsum(counts) - counts
    return np.arange(total, dtype=np.int64) + np.repeat(starts - seg, counts)


class BinnedRasterizer:
    """Deferred sort-middle rasterizer producing a legacy-identical G-buffer.

    ``draw`` only accumulates screen-space triangles; :meth:`finalize`
    runs the three passes and fills :attr:`gbuffer`/:attr:`stats`.
    """

    def __init__(
        self, width: int, height: int, *, tile_size: int = 8, bin_size: "int | None" = None
    ) -> None:
        if width <= 0 or height <= 0:
            raise PipelineError(f"viewport must be positive, got {width}x{height}")
        if tile_size < 2 or tile_size % 2:
            raise PipelineError(f"tile_size must be even and >= 2, got {tile_size}")
        if bin_size is None:
            bin_size = tile_size * 8
        if bin_size % tile_size:
            raise PipelineError(
                f"bin_size must be a multiple of tile_size, got {bin_size}/{tile_size}"
            )
        self.width = width
        self.height = height
        self.tile_size = tile_size
        self.bin_size = bin_size
        self.tiles_x = (width + tile_size - 1) // tile_size
        self.tiles_y = (height + tile_size - 1) // tile_size
        self.gbuffer = GBuffer.empty(width, height)
        self.stats = RasterStats()
        self._draws: "list[tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, int]]" = []
        self._finalized = False
        self._lam_err = np.empty(0)
        #: (bin_id, triangle) pair arrays from the binning pass,
        #: triangle-major — the CSR bin→triangle structure.
        self.bin_pairs: "tuple[np.ndarray, np.ndarray]" = (
            np.empty(0, dtype=np.int64),
            np.empty(0, dtype=np.int64),
        )

    # ------------------------------------------------------------------
    # Pass 0: accumulate draws (identical projection to the legacy path)
    # ------------------------------------------------------------------

    def draw(self, tris: TransformedTriangles, texture_id: int) -> None:
        """Queue one draw call's near-clipped triangles for binning."""
        if self._finalized:
            raise PipelineError("draw() after finalize()")
        if texture_id < 0 or texture_id > np.iinfo(np.int16).max:
            raise PipelineError(f"texture_id out of range: {texture_id}")
        pos = tris.clip_positions
        if pos.size == 0:
            return
        w = pos[:, :, 3]
        if np.any(w <= 0):
            raise PipelineError("rasterizer requires near-clipped triangles (w > 0)")
        self.stats.triangles_submitted += tris.num_triangles

        inv_w = 1.0 / w
        ndc = pos[:, :, :3] * inv_w[:, :, None]
        sx = (ndc[:, :, 0] + 1.0) * 0.5 * self.width
        sy = (1.0 - ndc[:, :, 1]) * 0.5 * self.height
        sz = ndc[:, :, 2]
        uv_over_w = tris.uvs * inv_w[:, :, None]
        self._draws.append((sx, sy, sz, inv_w, uv_over_w, texture_id))

    # ------------------------------------------------------------------
    # Passes 1-3
    # ------------------------------------------------------------------

    def finalize(self) -> None:
        """Run binning, coarse hi-Z culling and the fine raster pass."""
        if self._finalized:
            raise PipelineError("finalize() called twice")
        self._finalized = True
        if not self._draws:
            return
        sx = np.concatenate([d[0] for d in self._draws])
        sy = np.concatenate([d[1] for d in self._draws])
        sz = np.concatenate([d[2] for d in self._draws])
        inv_w = np.concatenate([d[3] for d in self._draws])
        uv_over_w = np.concatenate([d[4] for d in self._draws])
        tex = np.concatenate(
            [np.full(d[0].shape[0], d[5], dtype=np.int64) for d in self._draws]
        )
        self._draws.clear()
        m = sx.shape[0]

        area2 = (sy[:, 1] - sy[:, 2]) * (sx[:, 0] - sx[:, 2]) + (
            sx[:, 2] - sx[:, 1]
        ) * (sy[:, 0] - sy[:, 2])
        valid = np.abs(area2) >= 1e-12
        # Same bbox clamp as the legacy path (floor/ceil to the pixel
        # grid, clamped to the screen); clip before the integer cast so
        # far-off-screen coordinates cannot overflow.
        x0 = np.clip(np.floor(sx.min(axis=1)), 0, self.width).astype(np.int64)
        x1 = np.clip(np.ceil(sx.max(axis=1)), -1, self.width - 1).astype(np.int64)
        y0 = np.clip(np.floor(sy.min(axis=1)), 0, self.height).astype(np.int64)
        y1 = np.clip(np.ceil(sy.max(axis=1)), -1, self.height - 1).astype(np.int64)
        valid &= (x1 >= x0) & (y1 >= y0)
        self.stats.triangles_rasterized += int(valid.sum())
        if not valid.any():
            return

        # ---- Pass 1: binning ----------------------------------------
        bs = self.bin_size
        bins_x = (self.width + bs - 1) // bs
        bx1 = np.where(valid, x1 // bs, x0 // bs - 1)
        self.bin_pairs = expand_grid_ranges(
            x0 // bs, bx1, y0 // bs, np.where(valid, y1 // bs, 0), bins_x
        )
        self.stats.bins += int(np.unique(self.bin_pairs[0]).size)

        ts = self.tile_size
        tx1 = np.where(valid, x1 // ts, x0 // ts - 1)
        pair_tile, pair_tri = expand_grid_ranges(
            x0 // ts, tx1, y0 // ts, np.where(valid, y1 // ts, 0), self.tiles_x
        )
        if pair_tile.size == 0:
            return
        order = np.argsort(pair_tile, kind="stable")
        t = pair_tile[order]
        r = pair_tri[order]

        # ---- Pass 2: coarse tiles, hierarchical-Z -------------------
        keep = self._coarse_cull(t, r, sx, sy, sz, area2)

        # ---- Pass 3: fine raster over surviving tiles ---------------
        kr = r[keep]
        kt = t[keep]
        by_tri = np.argsort(kr, kind="stable")
        kt = kt[by_tri]
        counts = np.bincount(kr, minlength=m)
        ptr = np.zeros(m + 1, dtype=np.int64)
        np.cumsum(counts, out=ptr[1:])
        for i in np.nonzero(counts)[0]:
            self._fine_one(
                int(i),
                kt[ptr[i] : ptr[i + 1]],
                sx[i], sy[i], sz[i], inv_w[i], uv_over_w[i],
                float(area2[i]), int(x0[i]), int(x1[i]), int(y0[i]), int(y1[i]),
                int(tex[i]),
            )

    def _coarse_cull(
        self,
        t: np.ndarray,
        r: np.ndarray,
        sx: np.ndarray,
        sy: np.ndarray,
        sz: np.ndarray,
        area2: np.ndarray,
    ) -> np.ndarray:
        """Hi-Z keep mask for (tile, triangle) pairs sorted by tile.

        All bounds carry conservative per-triangle error margins so that
        a cull is taken only when every fragment of the pair provably
        fails the fine pass's strict ``depth < buffer`` test.
        """
        ts = self.tile_size
        inv_area2 = 1.0 / area2
        # Worst-case rounding of the barycentric expressions, per
        # triangle: a generous multiple of eps * (term magnitude).
        coord_scale = np.maximum(np.abs(sx).max(axis=1), np.abs(sy).max(axis=1)) + max(
            self.width, self.height
        )
        delta_scale = np.maximum(
            np.abs(np.diff(sx[:, [0, 1, 2, 0]], axis=1)).max(axis=1),
            np.abs(np.diff(sy[:, [0, 1, 2, 0]], axis=1)).max(axis=1),
        )
        lam_err = 32.0 * _EPS64 * delta_scale * coord_scale * np.abs(inv_area2)
        # The fine pass widens its scanline spans by the same margin.
        self._lam_err = lam_err
        sz_scale = np.maximum(np.abs(sz).max(axis=1), 1.0)
        # The float32 term covers the rounding of depths *stored* in the
        # G-buffer (the depth test compares float64 against float32).
        z_err = (
            1e-9
            + 2.0 * _EPS32 * sz_scale
            + 8.0 * _EPS64 * sz_scale
            + 6.0 * lam_err * sz_scale
        )

        # Per-triangle affine depth form depth(x, y) = C + gdx*x + gdy*y
        # (exact in real arithmetic; ``aff_err`` bounds its evaluation
        # rounding). Used for tight per-tile occluder bounds below.
        dl0x = (sy[:, 1] - sy[:, 2]) * inv_area2
        dl0y = (sx[:, 2] - sx[:, 1]) * inv_area2
        dl1x = (sy[:, 2] - sy[:, 0]) * inv_area2
        dl1y = (sx[:, 0] - sx[:, 2]) * inv_area2
        dl2x = -dl0x - dl1x
        dl2y = -dl0y - dl1y
        gdx = dl0x * sz[:, 0] + dl1x * sz[:, 1] + dl2x * sz[:, 2]
        gdy = dl0y * sz[:, 0] + dl1y * sz[:, 1] + dl2y * sz[:, 2]
        l0o = ((sy[:, 1] - sy[:, 2]) * (0.0 - sx[:, 2]) + (sx[:, 2] - sx[:, 1]) * (0.0 - sy[:, 2])) * inv_area2
        l1o = ((sy[:, 2] - sy[:, 0]) * (0.0 - sx[:, 2]) + (sx[:, 0] - sx[:, 2]) * (0.0 - sy[:, 2])) * inv_area2
        l2o = 1.0 - l0o - l1o
        c0 = l0o * sz[:, 0] + l1o * sz[:, 1] + l2o * sz[:, 2]
        aff_err = (
            _EPS64 * (16.0 * (np.abs(gdx) + np.abs(gdy)) * coord_scale + 16.0 * np.abs(c0))
            + 1e-12
        )

        # Candidate depth lower bound: the triangle's vertex zmin minus
        # its margin. (A per-tile affine bound was tried here; it never
        # fired meaningfully more than the global one on any workload
        # and its per-pair corner evaluation dominated the pass.)
        zmin_pair = sz.min(axis=1)[r] - z_err[r]

        # Only triangles whose bbox spans at least a tile in both axes
        # can fully cover one; evaluate corner barycentrics and corner
        # depth bounds just for those pairs (the filter merely forgoes
        # occluders, never invents one).
        can_cover = (
            (sx.max(axis=1) - sx.min(axis=1) >= ts - 1.0)
            & (sy.max(axis=1) - sy.min(axis=1) >= ts - 1.0)
        )[r]
        rb = r[can_cover]
        tx = t[can_cover] % self.tiles_x
        ty = t[can_cover] // self.tiles_x
        # Extreme pixel centers of each (screen-clamped) tile; a convex
        # triangle strictly containing all four contains every pixel
        # center in the tile, and an affine depth attains its rectangle
        # extrema at them.
        cx0 = tx * ts + 0.5
        cx1 = np.minimum((tx + 1) * ts, self.width) - 0.5
        cy0 = ty * ts + 0.5
        cy1 = np.minimum((ty + 1) * ts, self.height) - 0.5
        bcx = np.stack([cx0, cx1, cx0, cx1], axis=1)
        bcy = np.stack([cy0, cy0, cy1, cy1], axis=1)
        s0x, s1x, s2x = sx[rb, 0, None], sx[rb, 1, None], sx[rb, 2, None]
        s0y, s1y, s2y = sy[rb, 0, None], sy[rb, 1, None], sy[rb, 2, None]
        ia = inv_area2[rb, None]
        l0 = ((s1y - s2y) * (bcx - s2x) + (s2x - s1x) * (bcy - s2y)) * ia
        l1 = ((s2y - s0y) * (bcx - s2x) + (s0x - s2x) * (bcy - s2y)) * ia
        l2 = 1.0 - l0 - l1
        cover_eps = (1e-9 + 4.0 * lam_err)[rb, None]
        fc_sub = ((l0 > cover_eps) & (l1 > cover_eps) & (l2 > cover_eps)).all(axis=1)
        full_cover = np.zeros(t.size, dtype=bool)
        full_cover[can_cover] = fc_sub
        # Occluder bound: max of the affine depth over the tile's corner
        # pixel centers (the rectangle extrema of an affine function),
        # plus both margins.
        corner_aff = c0[rb, None] + gdx[rb, None] * bcx + gdy[rb, None] * bcy
        occ_sub = np.where(
            fc_sub, corner_aff.max(axis=1) + (z_err + aff_err)[rb], np.inf
        )
        occ = np.full(t.size, np.inf)
        occ[can_cover] = occ_sub

        # The whole frame is known before rasterization starts, so the
        # tile's hi-Z bound is the min over *all* of its full-cover
        # occluders — submission order does not matter: a candidate
        # behind any occluder either fails the strict depth test (the
        # occluder drew first) or is overwritten before frame end (the
        # occluder draws later), so it never survives into the final
        # G-buffer. A full-cover occluder can never cull itself: its
        # vertex zmin sits below its own corner-depth max.
        hiz = _segment_min(t, occ)
        keep = zmin_pair < hiz
        self.stats.tiles_culled_hiz += int(np.count_nonzero(~keep))

        # Occluded-tile retirement: tiles where a full-cover occluder
        # exists and *every* later candidate was culled — the tile's
        # content was decided early and its tail skipped entirely.
        if t.size:
            seg_starts = np.nonzero(np.concatenate([[True], t[1:] != t[:-1]]))[0]
            pos = np.arange(t.size, dtype=np.int64)
            first_occ = np.minimum.reduceat(np.where(full_cover, pos, t.size), seg_starts)
            last_kept = np.maximum.reduceat(np.where(keep, pos, -1), seg_starts)
            retired = (first_occ < t.size) & (last_kept <= first_occ)
            self.stats.tiles_culled_occluded += int(np.count_nonzero(retired))
        return keep

    def _fine_one(
        self,
        i: int,
        tiles: np.ndarray,
        sx: np.ndarray,
        sy: np.ndarray,
        sz: np.ndarray,
        inv_w: np.ndarray,
        uv_over_w: np.ndarray,
        area2: float,
        x0: int,
        x1: int,
        y0: int,
        y1: int,
        texture_id: int,
    ) -> None:
        """Rasterize triangle ``i`` over the union of its surviving tiles.

        Unlike the legacy path, which evaluates every expression over
        the full bounding-box rectangle, this pass first intersects each
        pixel row with the triangle's three edge half-planes to get a
        conservative per-row column span (a convex triangle covers one
        contiguous interval per row), then evaluates only the span
        pixels as flat 1-D arrays — work proportional to covered
        fragments, not bbox area, which is what makes grazing
        (large-bbox, low-coverage) triangles cheap.

        The spans carry the same conservative error margins as the
        coarse pass, so every pixel the exact inside test could accept
        is a candidate; on the candidates, every per-pixel expression
        matches the legacy ``_raster_one`` bit for bit (same pixel
        centers, same operation order), so the fragments written here
        are bitwise what the legacy path writes. The perspective-correct
        quotient math runs compressed to depth-surviving fragments only.
        """
        ts = self.tile_size
        tx = tiles % self.tiles_x
        ty = tiles // self.tiles_x
        txmin, txmax = int(tx.min()), int(tx.max())
        tymin, tymax = int(ty.min()), int(ty.max())
        rx0 = max(x0, txmin * ts)
        rx1 = min(x1, (txmax + 1) * ts - 1)
        ry0 = max(y0, tymin * ts)
        ry1 = min(y1, (tymax + 1) * ts - 1)
        if rx1 < rx0 or ry1 < ry0:
            return

        inv_area2 = 1.0 / area2
        ys = np.arange(ry0, ry1 + 1, dtype=np.float64) + 0.5
        nrows = ys.size

        # Conservative per-row x spans. Margin: the exact edge function
        # changes by |A * inv_area2| per pixel of x; widening the span
        # by the evaluation error over that slope (plus slack for the
        # root division itself) guarantees every pixel the exact inside
        # test could accept lies inside the span. Symmetrically, an
        # *inner* span is shrunk by the same margin (plus the rounding
        # of the root itself): pixels inside it have every edge
        # function strictly positive by construction, so the exact
        # watertight test only needs to run on the boundary pixels
        # between the two spans.
        lam_err = float(self._lam_err[i])
        cscale = float(
            max(self.width, self.height) + max(np.abs(sx).max(), np.abs(sy).max())
        )
        xl = np.full(nrows, rx0 + 0.5)
        xr = np.full(nrows, rx1 + 0.5)
        xl_in = np.full(nrows, rx0 - 1.0)
        xr_in = np.full(nrows, rx1 + 2.0)
        row_ok = None
        edges = (
            (sy[1] - sy[2], sx[2] - sx[1], 1, 2),  # edge 0: v1 -> v2
            (sy[2] - sy[0], sx[0] - sx[2], 2, 0),  # edge 1: v2 -> v0
            (sy[0] - sy[1], sx[1] - sx[0], 0, 1),  # edge 2: v0 -> v1
        )
        for coeff_a, coeff_b, a, b in edges:
            anchor = a if (sx[a], sy[a]) <= (sx[b], sy[b]) else b
            if abs(coeff_a) < 1e-30:
                # (Near-)horizontal edge: no x constraint, but a row is
                # only *certainly* inside it when the edge function
                # clears its error band (including the dropped A term).
                t_row = (coeff_b * (ys - sy[anchor])) * inv_area2
                ok = t_row > (
                    2.0 * lam_err
                    + 4.0 * _EPS64 * np.abs(t_row)
                    + 2e-30 * cscale * abs(inv_area2)
                )
                row_ok = ok if row_ok is None else (row_ok & ok)
                continue
            bound = sx[anchor] - (coeff_b * (ys - sy[anchor])) / coeff_a
            slope = abs(coeff_a) * abs(inv_area2)
            margin = 2.0 + 2.0 * lam_err / slope
            # The inner margin also absorbs the rounding of ``bound``
            # itself: |b - root| <= O(eps) * (coords + |B/A| * coords
            # + |b|), which simply voids certainty for near-horizontal
            # edges with far off-screen roots.
            margin_in = margin + 16.0 * _EPS64 * (
                cscale * (1.0 + abs(coeff_b / coeff_a)) + np.abs(bound)
            )
            if coeff_a * inv_area2 > 0:  # interior at larger x
                xl = np.maximum(xl, bound - margin)
                xl_in = np.maximum(xl_in, bound + margin_in)
            else:
                xr = np.minimum(xr, bound + margin)
                xr_in = np.minimum(xr_in, bound - margin_in)
        coll = np.clip(np.ceil(xl - 0.5), rx0, rx1 + 1).astype(np.int64)
        colr = np.clip(np.floor(xr - 0.5), rx0 - 1, rx1).astype(np.int64)
        counts = np.maximum(colr - coll + 1, 0)
        total = int(counts.sum())
        if total == 0:
            return

        # Certain sub-span [c_lo, c_hi] per row (possibly empty).
        coll_in = np.ceil(xl_in - 0.5)
        colr_in = np.floor(xr_in - 0.5)
        if row_ok is not None:
            coll_in = np.where(row_ok, coll_in, (colr + 1).astype(np.float64))
        c_lo = np.clip(coll_in, coll, colr + 1).astype(np.int64)
        c_hi = np.clip(colr_in, c_lo - 1, colr).astype(np.int64)

        # Expand the ragged spans into flat candidate pixel arrays.
        # Only ``px``/``py``/``flat`` are materialized; integer row and
        # column arrays are reconstructed only if the partial-tile-grid
        # mask below needs them. The float sums are exact (integers
        # plus 0.5, far below 2**52), so ``px``/``py`` carry the same
        # bits the legacy meshgrid produces.
        seg_starts = np.cumsum(counts) - counts
        px = np.arange(total, dtype=np.float64) + np.repeat(
            (coll - seg_starts).astype(np.float64) + 0.5, counts
        )
        py = np.repeat(ys, counts)
        rows_i = np.arange(ry0, ry1 + 1, dtype=np.int64)
        flat = np.arange(total, dtype=np.int64) + np.repeat(
            rows_i * self.width + coll - seg_starts, counts
        )

        lam0 = (
            (sy[1] - sy[2]) * (px - sx[2]) + (sx[2] - sx[1]) * (py - sy[2])
        ) * inv_area2
        lam1 = (
            (sy[2] - sy[0]) * (px - sx[2]) + (sx[0] - sx[2]) * (py - sy[2])
        ) * inv_area2
        lam2 = 1.0 - lam0 - lam1

        dlam0 = ((sy[1] - sy[2]) * inv_area2, (sx[2] - sx[1]) * inv_area2)
        dlam1 = ((sy[2] - sy[0]) * inv_area2, (sx[0] - sx[2]) * inv_area2)
        dlam2 = (-dlam0[0] - dlam1[0], -dlam0[1] - dlam1[1])

        # ``inside is None`` encodes "every candidate is covered" — the
        # common case once the spans are fragment-tight — and lets the
        # mask allocation and the boolean ANDs below be skipped.
        n_left = np.clip(c_lo - coll, 0, counts)
        n_right = np.clip(colr - c_hi, 0, counts - n_left)
        n_unc = int(n_left.sum() + n_right.sum())
        inside = None
        if n_unc > 0:
            if n_unc >= total:
                inside = edge_inside_mask(px, py, sx, sy, inv_area2, lam0, lam1)
            else:
                inside = np.ones(total, dtype=bool)
                unc = _ragged_indices(
                    seg_starts, n_left, seg_starts + counts - n_right, n_right
                )
                inside[unc] = edge_inside_mask(
                    px[unc], py[unc], sx, sy, inv_area2, lam0[unc], lam1[unc]
                )
        full_grid = tiles.size == (txmax - txmin + 1) * (tymax - tymin + 1)
        if not full_grid:
            grid = np.zeros((tymax - tymin + 1, txmax - txmin + 1), dtype=bool)
            grid[ty - tymin, tx - txmin] = True
            rr = np.repeat(rows_i, counts)
            cc = flat - rr * self.width
            gmask = grid[rr // ts - tymin, cc // ts - txmin]
            inside = gmask if inside is None else (inside & gmask)
        if inside is None:
            n_in = total
        else:
            n_in = int(np.count_nonzero(inside))
            if n_in == 0:
                return
        self.stats.fragments_generated += n_in

        depth = lam0 * sz[0] + lam1 * sz[1] + lam2 * sz[2]
        gb = self.gbuffer
        # Flat G-buffer indices: one index computation shared by the
        # depth-test gather and all eight scatter stores.
        depth_ok = depth < gb.depth.ravel()[flat]
        passed = depth_ok if inside is None else (inside & depth_ok)
        npass = int(np.count_nonzero(passed))
        if npass == 0:
            return
        self.stats.fragments_passed_depth += npass

        # Compressed perspective-correct math: elementwise expressions
        # evaluated on the surviving subset give the same IEEE results
        # the legacy full-region evaluation produces at those pixels.
        # When every candidate survived (common once the spans are
        # fragment-tight), skip the boolean gathers entirely.
        if npass == passed.size:
            sel: "slice | np.ndarray" = slice(None)
            fp = flat
        else:
            sel = passed
            fp = flat[passed]
        l0 = lam0[sel]
        l1 = lam1[sel]
        l2 = lam2[sel]
        q = l0 * inv_w[0] + l1 * inv_w[1] + l2 * inv_w[2]
        uu = l0 * uv_over_w[0, 0] + l1 * uv_over_w[1, 0] + l2 * uv_over_w[2, 0]
        vv = l0 * uv_over_w[0, 1] + l1 * uv_over_w[1, 1] + l2 * uv_over_w[2, 1]

        def grad(values):
            gx = dlam0[0] * values[0] + dlam1[0] * values[1] + dlam2[0] * values[2]
            gy = dlam0[1] * values[0] + dlam1[1] * values[1] + dlam2[1] * values[2]
            return gx, gy

        qx, qy = grad(inv_w)
        ux, uy = grad(uv_over_w[:, 0])
        vx, vy = grad(uv_over_w[:, 1])

        inv_q = 1.0 / q
        u = uu * inv_q
        v = vv * inv_q
        inv_q2 = inv_q * inv_q
        dudx = (ux * q - uu * qx) * inv_q2
        dudy = (uy * q - uu * qy) * inv_q2
        dvdx = (vx * q - vv * qx) * inv_q2
        dvdy = (vy * q - vv * qy) * inv_q2

        gb.depth.ravel()[fp] = depth[sel].astype(np.float32)
        gb.tex_id.ravel()[fp] = texture_id
        gb.u.ravel()[fp] = u.astype(np.float32)
        gb.v.ravel()[fp] = v.astype(np.float32)
        gb.dudx.ravel()[fp] = dudx.astype(np.float32)
        gb.dvdx.ravel()[fp] = dvdx.astype(np.float32)
        gb.dudy.ravel()[fp] = dudy.astype(np.float32)
        gb.dvdy.ravel()[fp] = dvdy.astype(np.float32)
