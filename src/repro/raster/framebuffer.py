"""Frame buffer: the RGBA output image of one rendered frame."""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError


class Framebuffer:
    """An RGBA float32 color buffer with a scatter-write interface.

    Pixel values live in ``[0, 1]``. The texture stage writes filtered
    colors for the visible pixels; unwritten pixels keep the clear color
    (the "sky" in our scenes).
    """

    def __init__(self, width: int, height: int, clear_color=(0.35, 0.55, 0.85, 1.0)):
        if width <= 0 or height <= 0:
            raise PipelineError(f"framebuffer size must be positive: {width}x{height}")
        self.width = width
        self.height = height
        self.clear_color = np.asarray(clear_color, dtype=np.float32)
        if self.clear_color.shape != (4,):
            raise PipelineError("clear_color must have 4 components")
        self.color = np.empty((height, width, 4), dtype=np.float32)
        self.clear()

    def clear(self) -> None:
        """Reset every pixel to the clear color."""
        self.color[:, :] = self.clear_color

    def write(self, rows: np.ndarray, cols: np.ndarray, rgba: np.ndarray) -> None:
        """Scatter-write colors to pixels addressed by (rows, cols)."""
        rgba = np.asarray(rgba, dtype=np.float32)
        if rgba.ndim != 2 or rgba.shape[1] != 4:
            raise PipelineError(f"rgba must be (n, 4), got {rgba.shape}")
        if len(rows) != len(cols) or len(rows) != rgba.shape[0]:
            raise PipelineError("rows/cols/rgba length mismatch")
        self.color[rows, cols] = np.clip(rgba, 0.0, 1.0)

    def luminance(self) -> np.ndarray:
        """Rec. 601 luma of the frame, the channel SSIM operates on."""
        r, g, b = self.color[..., 0], self.color[..., 1], self.color[..., 2]
        return 0.299 * r + 0.587 * g + 0.114 * b

    def as_array(self) -> np.ndarray:
        """Return a copy of the RGBA image."""
        return self.color.copy()
