"""The G-buffer produced by rasterization.

Each visible pixel carries everything the texture unit needs:
texture coordinates ``(u, v)`` (already scaled by the draw call's
tiling factor, still in normalized texture space) and the four
screen-space derivatives that drive footprint/LOD/anisotropy
computation (Section IV-A).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PipelineError


@dataclass
class GBuffer:
    """Structure-of-arrays over the full screen (``height x width``)."""

    width: int
    height: int
    tex_id: np.ndarray  # int16, -1 where no fragment
    depth: np.ndarray  # float32 NDC depth
    u: np.ndarray
    v: np.ndarray
    dudx: np.ndarray
    dvdx: np.ndarray
    dudy: np.ndarray
    dvdy: np.ndarray

    @classmethod
    def empty(cls, width: int, height: int) -> "GBuffer":
        if width <= 0 or height <= 0:
            raise PipelineError(f"G-buffer size must be positive, got {width}x{height}")
        shape = (height, width)
        return cls(
            width=width,
            height=height,
            tex_id=np.full(shape, -1, dtype=np.int16),
            depth=np.full(shape, np.inf, dtype=np.float32),
            u=np.zeros(shape, dtype=np.float32),
            v=np.zeros(shape, dtype=np.float32),
            dudx=np.zeros(shape, dtype=np.float32),
            dvdx=np.zeros(shape, dtype=np.float32),
            dudy=np.zeros(shape, dtype=np.float32),
            dvdy=np.zeros(shape, dtype=np.float32),
        )

    @property
    def coverage_mask(self) -> np.ndarray:
        """Boolean mask of pixels covered by at least one fragment."""
        return self.tex_id >= 0

    @property
    def num_visible(self) -> int:
        return int(self.coverage_mask.sum())

    def visible_indices(self) -> "tuple[np.ndarray, np.ndarray]":
        """Row/column indices of visible pixels, in tile-friendly raster order."""
        return np.nonzero(self.coverage_mask)
