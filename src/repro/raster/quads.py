"""Quad (2x2 pixel) bookkeeping.

Modern GPUs process pixels in 2x2 quads under a SIMD model (paper V-B).
PATU makes an approximation decision per pixel, so pixels within one
quad may diverge; Section V-C reports that this happens for only ~1% of
quads. These helpers compute quad membership and the divergence
fraction from per-pixel decision masks.
"""

from __future__ import annotations

import numpy as np

from ..errors import PipelineError


def quad_ids(rows: np.ndarray, cols: np.ndarray, width: int) -> np.ndarray:
    """Map pixel coordinates to a unique integer id per 2x2 quad."""
    rows = np.asarray(rows)
    cols = np.asarray(cols)
    if rows.shape != cols.shape:
        raise PipelineError("rows and cols must have the same shape")
    quads_per_row = (width + 1) // 2
    return (rows // 2) * quads_per_row + (cols // 2)


def count_shaded_quads(mask: np.ndarray) -> int:
    """Number of 2x2 screen quads containing at least one covered pixel.

    This is the quad-granular shading workload a SIMD GPU would launch
    for the frame (``raster.quads_shaded``); odd frame dimensions are
    padded as real hardware pads partial quads.
    """
    mask = np.asarray(mask, dtype=bool)
    if mask.ndim != 2:
        raise PipelineError(f"coverage mask must be 2-D, got shape {mask.shape}")
    h, w = mask.shape
    if h % 2 or w % 2:
        padded = np.zeros((h + h % 2, w + w % 2), dtype=bool)
        padded[:h, :w] = mask
        mask = padded
    # Strided ORs beat a non-contiguous any() reduction on the hot path.
    quad_any = (
        mask[0::2, 0::2] | mask[0::2, 1::2] | mask[1::2, 0::2] | mask[1::2, 1::2]
    )
    return int(quad_any.sum())


def quad_divergence_fraction(
    rows: np.ndarray, cols: np.ndarray, width: int, decision: np.ndarray
) -> float:
    """Fraction of quads whose pixels disagree on a boolean decision.

    Only quads containing at least two visible pixels can diverge;
    single-pixel quads count as convergent, matching the hardware
    definition (a lone pixel trivially agrees with itself).
    """
    decision = np.asarray(decision, dtype=bool)
    if decision.shape != np.asarray(rows).shape:
        raise PipelineError("decision mask must align with pixel coordinates")
    if decision.size == 0:
        return 0.0
    qids = quad_ids(rows, cols, width)
    order = np.argsort(qids, kind="stable")
    sorted_q = qids[order]
    sorted_d = decision[order]
    # Segment boundaries between distinct quads.
    boundaries = np.nonzero(np.diff(sorted_q))[0] + 1
    starts = np.concatenate([[0], boundaries])
    ends = np.concatenate([boundaries, [len(sorted_q)]])
    sums = np.add.reduceat(sorted_d.astype(np.int64), starts)
    counts = ends - starts
    diverged = (sums > 0) & (sums < counts)
    return float(diverged.sum() / len(starts))
