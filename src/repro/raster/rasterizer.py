"""Triangle rasterization with perspective-correct attribute interpolation.

For each triangle the rasterizer evaluates edge functions over the
triangle's screen bounding box, performs the early depth test against a
shared depth buffer (Figure 2's *Early Depth Test*), and writes the
winning fragment's texture coordinates plus their *analytic*
screen-space derivatives into the G-buffer.

Derivatives are exact: with screen-affine barycentrics
``lam_i(x, y)``, perspective-correct interpolation gives
``u(x, y) = U(x, y) / Q(x, y)`` where ``U = sum lam_i * u_i / w_i`` and
``Q = sum lam_i / w_i`` are affine in ``(x, y)``; the quotient rule then
yields ``du/dx`` and friends in closed form. Hardware approximates the
same quantities with intra-quad finite differences; the analytic values
are the limit of that scheme and keep the model vectorizable.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PipelineError
from ..geometry.transform import TransformedTriangles
from .gbuffer import GBuffer


@dataclass
class RasterStats:
    """Counters describing one frame's rasterization workload."""

    triangles_submitted: int = 0
    triangles_rasterized: int = 0
    fragments_generated: int = 0
    fragments_passed_depth: int = 0
    #: Sort-middle counters (stay 0 on the legacy per-triangle path,
    #: except ``quads_shaded`` which the pipeline fills for both modes).
    bins: int = 0
    tiles_culled_hiz: int = 0
    tiles_culled_occluded: int = 0
    quads_shaded: int = 0

    @property
    def overdraw(self) -> float:
        """Generated fragments per depth-surviving fragment.

        Convention: the denominator is clamped to ``max(passed, 1)`` so
        a frame whose generated fragments *all* failed the depth test
        reports its generated count (the work actually done) instead of
        a misleading ``0.0`` or a division by zero. A frame that
        generated nothing reports ``0.0``.
        """
        return self.fragments_generated / max(self.fragments_passed_depth, 1)

    def to_dict(self) -> "dict[str, float]":
        """JSON-ready snapshot (for the metrics JSONL sink and tooling)."""
        return {
            "triangles_submitted": self.triangles_submitted,
            "triangles_rasterized": self.triangles_rasterized,
            "fragments_generated": self.fragments_generated,
            "fragments_passed_depth": self.fragments_passed_depth,
            "overdraw": self.overdraw,
            "bins": self.bins,
            "tiles_culled_hiz": self.tiles_culled_hiz,
            "tiles_culled_occluded": self.tiles_culled_occluded,
            "quads_shaded": self.quads_shaded,
        }


def edge_tie_accept(
    gx0: float, gy0: float, gx1: float, gy1: float, gx2: float, gy2: float
) -> "tuple[bool, bool, bool]":
    """Top-left fill rule tie decisions for the three edges.

    A pixel center exactly on an edge (``lam_k == 0``) belongs to the
    triangle only when that edge is a *top* or *left* edge, so a pixel
    shared by two adjacent triangles is shaded exactly once. With
    y-down screen coordinates and ``(gx_k, gy_k)`` the inward gradient
    of ``lam_k`` (it points from edge ``k`` toward vertex ``k``):

    * a **left** edge has the interior to its right: ``gx > 0``;
    * a **top** edge is horizontal with the interior below: ``gx == 0``
      and ``gy > 0``.

    The classification is winding-independent because the gradients are
    scaled by the signed ``1 / area2``.
    """
    return (
        gx0 > 0 or (gx0 == 0 and gy0 > 0),
        gx1 > 0 or (gx1 == 0 and gy1 > 0),
        gx2 > 0 or (gx2 == 0 and gy2 > 0),
    )


def edge_inside_mask(
    px: np.ndarray,
    py: np.ndarray,
    sx: np.ndarray,
    sy: np.ndarray,
    inv_area2: float,
    lam0: np.ndarray,
    lam1: np.ndarray,
) -> np.ndarray:
    """Watertight top-left inside test over a pixel-center grid.

    Edge ``k`` (opposite vertex ``k``) is evaluated as
    ``t_k = (A_k * (px - cx) + B_k * (py - cy)) / area2`` where
    ``(A_k, B_k)`` are the triangle's own edge coefficients (``lam_k``'s
    gradient times ``area2``) and the anchor ``c`` is the
    *lexicographically smaller* endpoint of the edge. Two triangles
    sharing an edge pick the same anchor and exactly-negated
    coefficients, so their computed ``t_k`` arrays are exact negations
    of each other; together with the top-left tie rule
    (:func:`edge_tie_accept`) every pixel center on a shared edge is
    therefore owned by exactly one of them — no double-shading and no
    dropped pixels, even where rounding makes the mathematical zero
    wobble. The derived barycentric ``1 - lam0 - lam1`` must never be
    used for coverage: its accumulated rounding is not antisymmetric
    across neighbors.

    ``lam0``/``lam1`` are the interpolation barycentrics anchored at
    vertex 2; when the canonical anchor of their edge *is* vertex 2 the
    freshly computed ``t_k`` would be bit-identical, so they are reused.
    """

    def smaller(a: int, b: int) -> bool:
        return (sx[a], sy[a]) <= (sx[b], sy[b])

    # Edge k: traversal a -> b in the winding cycle; (A, B) is the
    # interior-positive coefficient pair shared (negated) with the
    # neighboring triangle.
    edges = (
        (sy[1] - sy[2], sx[2] - sx[1], 1, 2, lam0),  # edge 0: v1 -> v2
        (sy[2] - sy[0], sx[0] - sx[2], 2, 0, lam1),  # edge 1: v2 -> v0
        (sy[0] - sy[1], sx[1] - sx[0], 0, 1, None),  # edge 2: v0 -> v1
    )
    inside = None
    for coeff_a, coeff_b, a, b, legacy_lam in edges:
        anchor = a if smaller(a, b) else b
        if legacy_lam is not None and anchor == 2:
            t = legacy_lam
        else:
            t = (coeff_a * (px - sx[anchor]) + coeff_b * (py - sy[anchor])) * inv_area2
        gx = coeff_a * inv_area2
        gy = coeff_b * inv_area2
        tie = gx > 0 or (gx == 0 and gy > 0)
        term = (t > 0) | ((t == 0) & tie)
        inside = term if inside is None else inside & term
    return inside


class Rasterizer:
    """Rasterizes clip-space triangles into a :class:`GBuffer`."""

    def __init__(self, width: int, height: int) -> None:
        if width <= 0 or height <= 0:
            raise PipelineError(f"viewport must be positive, got {width}x{height}")
        self.width = width
        self.height = height
        self.gbuffer = GBuffer.empty(width, height)
        self.stats = RasterStats()

    def draw(self, tris: TransformedTriangles, texture_id: int) -> None:
        """Rasterize all triangles of one draw call.

        Triangles must already be near-clipped (every ``w > 0``).

        Args:
            tris: clip-space triangles with UVs.
            texture_id: small integer identifying the bound texture in
                the frame's texture table (stored in the G-buffer).
        """
        if texture_id < 0 or texture_id > np.iinfo(np.int16).max:
            raise PipelineError(f"texture_id out of range: {texture_id}")
        pos = tris.clip_positions
        if pos.size == 0:
            return
        w = pos[:, :, 3]
        if np.any(w <= 0):
            raise PipelineError("rasterizer requires near-clipped triangles (w > 0)")
        self.stats.triangles_submitted += tris.num_triangles

        inv_w = 1.0 / w
        ndc = pos[:, :, :3] * inv_w[:, :, None]
        # Viewport transform; pixel centers at integer+0.5, y down.
        sx = (ndc[:, :, 0] + 1.0) * 0.5 * self.width
        sy = (1.0 - ndc[:, :, 1]) * 0.5 * self.height
        sz = ndc[:, :, 2]
        uv_over_w = tris.uvs * inv_w[:, :, None]

        for i in range(tris.num_triangles):
            self._raster_one(
                sx[i], sy[i], sz[i], inv_w[i], uv_over_w[i], texture_id
            )

    def _raster_one(
        self,
        sx: np.ndarray,
        sy: np.ndarray,
        sz: np.ndarray,
        inv_w: np.ndarray,
        uv_over_w: np.ndarray,
        texture_id: int,
    ) -> None:
        # Barycentric denominator (twice the signed area); sign encodes
        # winding, either is rasterizable (culling already removed what
        # should not draw).
        area2 = (sy[1] - sy[2]) * (sx[0] - sx[2]) + (sx[2] - sx[1]) * (sy[0] - sy[2])
        if abs(area2) < 1e-12:
            return

        x0 = max(int(np.floor(sx.min())), 0)
        x1 = min(int(np.ceil(sx.max())), self.width - 1)
        y0 = max(int(np.floor(sy.min())), 0)
        y1 = min(int(np.ceil(sy.max())), self.height - 1)
        if x1 < x0 or y1 < y0:
            return
        self.stats.triangles_rasterized += 1

        xs = np.arange(x0, x1 + 1, dtype=np.float64) + 0.5
        ys = np.arange(y0, y1 + 1, dtype=np.float64) + 0.5
        px, py = np.meshgrid(xs, ys, indexing="xy")

        inv_area2 = 1.0 / area2
        # Screen-affine barycentrics: lam_k is 1 at vertex k, 0 on the
        # opposite edge; their gradients are constant per triangle.
        lam0 = (
            (sy[1] - sy[2]) * (px - sx[2]) + (sx[2] - sx[1]) * (py - sy[2])
        ) * inv_area2
        lam1 = (
            (sy[2] - sy[0]) * (px - sx[2]) + (sx[0] - sx[2]) * (py - sy[2])
        ) * inv_area2
        lam2 = 1.0 - lam0 - lam1

        # Constant-per-triangle gradients of the affine forms.
        dlam0 = ((sy[1] - sy[2]) * inv_area2, (sx[2] - sx[1]) * inv_area2)
        dlam1 = ((sy[2] - sy[0]) * inv_area2, (sx[0] - sx[2]) * inv_area2)
        dlam2 = (-dlam0[0] - dlam1[0], -dlam0[1] - dlam1[1])

        inside = edge_inside_mask(px, py, sx, sy, inv_area2, lam0, lam1)
        if not inside.any():
            return
        self.stats.fragments_generated += int(inside.sum())

        depth = lam0 * sz[0] + lam1 * sz[1] + lam2 * sz[2]
        gb = self.gbuffer
        region_depth = gb.depth[y0 : y1 + 1, x0 : x1 + 1]
        passed = inside & (depth < region_depth)
        if not passed.any():
            return
        self.stats.fragments_passed_depth += int(passed.sum())

        # Perspective-correct interpolation: Q = 1/w, U = u/w, V = v/w.
        q = lam0 * inv_w[0] + lam1 * inv_w[1] + lam2 * inv_w[2]
        uu = lam0 * uv_over_w[0, 0] + lam1 * uv_over_w[1, 0] + lam2 * uv_over_w[2, 0]
        vv = lam0 * uv_over_w[0, 1] + lam1 * uv_over_w[1, 1] + lam2 * uv_over_w[2, 1]

        def grad(values):
            gx = dlam0[0] * values[0] + dlam1[0] * values[1] + dlam2[0] * values[2]
            gy = dlam0[1] * values[0] + dlam1[1] * values[1] + dlam2[1] * values[2]
            return gx, gy

        qx, qy = grad(inv_w)
        ux, uy = grad(uv_over_w[:, 0])
        vx, vy = grad(uv_over_w[:, 1])

        inv_q = 1.0 / q
        u = uu * inv_q
        v = vv * inv_q
        inv_q2 = inv_q * inv_q
        dudx = (ux * q - uu * qx) * inv_q2
        dudy = (uy * q - uu * qy) * inv_q2
        dvdx = (vx * q - vv * qx) * inv_q2
        dvdy = (vy * q - vv * qy) * inv_q2

        sel = passed
        region = (slice(y0, y1 + 1), slice(x0, x1 + 1))
        gb.depth[region][sel] = depth[sel].astype(np.float32)
        gb.tex_id[region][sel] = texture_id
        gb.u[region][sel] = u[sel].astype(np.float32)
        gb.v[region][sel] = v[sel].astype(np.float32)
        gb.dudx[region][sel] = dudx[sel].astype(np.float32)
        gb.dvdx[region][sel] = dvdx[sel].astype(np.float32)
        gb.dudy[region][sel] = dudy[sel].astype(np.float32)
        gb.dvdy[region][sel] = dvdy[sel].astype(np.float32)
