"""End-to-end renderer: scenes -> G-buffer -> filtered frames -> models.

:class:`RenderSession` is the library's main entry point. It renders a
workload frame once, capturing per-pixel filtering state
(:class:`FrameCapture`), then evaluates any (scenario, threshold)
design point against that capture (:class:`FrameResult`) — images,
MSSIM, cache/DRAM behaviour, cycles, energy and bandwidth breakdown.
"""

from .pipeline import RenderedFrame, render_gbuffer
from .session import FrameCapture, FrameResult, RenderSession

__all__ = [
    "FrameCapture",
    "FrameResult",
    "RenderSession",
    "RenderedFrame",
    "render_gbuffer",
]
