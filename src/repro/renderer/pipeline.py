"""Geometry front-end + rasterization for one frame.

Drives the Figure 2 pipeline up to the G-buffer: vertex processing,
near clipping, back-face culling, tiling statistics, rasterization with
early depth test. Texturing happens afterwards in the session, in tile
order.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import PipelineError
from ..geometry.camera import Camera
from ..obs import TELEMETRY
from ..geometry.clipping import clip_triangles_near
from ..geometry.culling import cull_backfaces
from ..geometry.tiling import TilingEngine
from ..geometry.transform import transform_mesh
from ..raster.gbuffer import GBuffer
from ..raster.rasterizer import Rasterizer, RasterStats
from ..workloads.scene import Scene


@dataclass
class RenderedFrame:
    """G-buffer plus the frame's geometry workload counts."""

    gbuffer: GBuffer
    raster_stats: RasterStats
    texture_names: "list[str]"
    vertices: int
    triangles_submitted: int
    triangles_after_cull: int
    tile_triangle_pairs: int
    tiles_touched: int


def render_gbuffer(
    scene: Scene,
    camera: Camera,
    width: int,
    height: int,
    *,
    tile_size: int = 16,
) -> RenderedFrame:
    """Render one frame's visibility into a G-buffer.

    Texture ids stored in the G-buffer index into the returned
    ``texture_names`` list (the frame's texture binding table).
    """
    scene.validate()
    if width <= 0 or height <= 0:
        raise PipelineError(f"bad viewport {width}x{height}")

    mvp = camera.view_projection(width, height)
    rasterizer = Rasterizer(width, height)
    tiling = TilingEngine(width, height, tile_size)

    texture_names: "list[str]" = []
    tex_index: "dict[str, int]" = {}
    vertices = 0
    triangles_after_cull = 0
    screen_tris: "list[np.ndarray]" = []

    for mesh in scene.meshes:
        vertices += mesh.num_vertices
        tid = tex_index.get(mesh.texture)
        if tid is None:
            tid = len(texture_names)
            tex_index[mesh.texture] = tid
            texture_names.append(mesh.texture)
        with TELEMETRY.span("geometry.transform"):
            tris = transform_mesh(mesh, mvp)
        with TELEMETRY.span("geometry.clip"):
            tris = clip_triangles_near(tris)
        with TELEMETRY.span("geometry.cull"):
            tris = cull_backfaces(tris)
        if tris.num_triangles == 0:
            continue
        triangles_after_cull += tris.num_triangles
        # Screen-space corners for the tiling engine's binning stats.
        pos = tris.clip_positions
        w = pos[:, :, 3:4]
        ndc = pos[:, :, :2] / w
        sx = (ndc[:, :, 0] + 1.0) * 0.5 * width
        sy = (1.0 - ndc[:, :, 1]) * 0.5 * height
        screen_tris.append(np.stack([sx, sy], axis=-1))
        with TELEMETRY.span("raster.draw", triangles=tris.num_triangles):
            rasterizer.draw(tris, tid)

    if screen_tris:
        with TELEMETRY.span("geometry.tile"):
            tiling.bin_triangles(np.concatenate(screen_tris, axis=0))

    if TELEMETRY.enabled:
        stats = rasterizer.stats
        TELEMETRY.count("geometry.vertices", vertices)
        TELEMETRY.count("geometry.triangles_submitted", stats.triangles_submitted)
        TELEMETRY.count("geometry.triangles_after_cull", triangles_after_cull)
        TELEMETRY.count("raster.triangles_rasterized", stats.triangles_rasterized)
        TELEMETRY.count("raster.fragments_generated", stats.fragments_generated)
        TELEMETRY.count("raster.fragments_passed_depth", stats.fragments_passed_depth)
        TELEMETRY.count("raster.tile_triangle_pairs", tiling.stats.tile_triangle_pairs)
        TELEMETRY.count("raster.tiles_touched", tiling.stats.tiles_touched)

    return RenderedFrame(
        gbuffer=rasterizer.gbuffer,
        raster_stats=rasterizer.stats,
        texture_names=texture_names,
        vertices=vertices,
        triangles_submitted=rasterizer.stats.triangles_submitted,
        triangles_after_cull=triangles_after_cull,
        tile_triangle_pairs=tiling.stats.tile_triangle_pairs,
        tiles_touched=tiling.stats.tiles_touched,
    )
