"""Geometry front-end + rasterization for one frame.

Drives the Figure 2 pipeline up to the G-buffer: vertex processing,
near clipping, back-face culling, tiling statistics, rasterization with
early depth test. Texturing happens afterwards in the session, in tile
order.

Two interchangeable raster backends produce bit-identical G-buffers:

* ``"binned"`` (default) — the sort-middle tiled rasterizer
  (:mod:`repro.raster.binned`): bin → coarse tile (hierarchical-Z +
  occluded-tile cull) → fine raster. Depth-buried work is culled at
  tile granularity before any per-pixel math runs.
* ``"legacy"`` — the original per-triangle bounding-box rasterizer,
  kept as the differential oracle (``--raster legacy``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import PipelineError
from ..geometry.camera import Camera
from ..obs import TELEMETRY
from ..geometry.clipping import clip_triangles_near
from ..geometry.culling import cull_backfaces
from ..geometry.tiling import TilingEngine, covered_tile_ids
from ..geometry.transform import transform_mesh
from ..raster.binned import BinnedRasterizer
from ..raster.gbuffer import GBuffer
from ..raster.quads import count_shaded_quads
from ..raster.rasterizer import Rasterizer, RasterStats
from ..workloads.scene import Scene

#: Raster backends selectable via ``--raster``.
RASTER_MODES = ("binned", "legacy")
DEFAULT_RASTER = "binned"
DEFAULT_RASTER_TILE = 8


@dataclass
class RenderedFrame:
    """G-buffer plus the frame's geometry workload counts."""

    gbuffer: GBuffer
    raster_stats: RasterStats
    texture_names: "list[str]"
    vertices: int
    triangles_submitted: int
    triangles_after_cull: int
    tile_triangle_pairs: int
    tiles_touched: int
    #: Ascending flat ids of scheduling tiles (``tile_size`` grid) with
    #: at least one visible pixel — the texture stage and the engine's
    #: tile-level dispatch iterate these instead of rescanning the
    #: G-buffer.
    tile_list: np.ndarray = field(default_factory=lambda: np.empty(0, dtype=np.int64))


def render_gbuffer(
    scene: Scene,
    camera: Camera,
    width: int,
    height: int,
    *,
    tile_size: int = 16,
    raster: str = DEFAULT_RASTER,
    raster_tile: int = DEFAULT_RASTER_TILE,
) -> RenderedFrame:
    """Render one frame's visibility into a G-buffer.

    Texture ids stored in the G-buffer index into the returned
    ``texture_names`` list (the frame's texture binding table).
    ``raster`` picks the backend (see module doc); ``raster_tile`` is
    the binned backend's fine-tile size (the scheduling ``tile_size``
    is a separate, coarser grid).
    """
    scene.validate()
    if width <= 0 or height <= 0:
        raise PipelineError(f"bad viewport {width}x{height}")
    if raster not in RASTER_MODES:
        raise PipelineError(f"unknown raster mode {raster!r} (expected {RASTER_MODES})")

    mvp = camera.view_projection(width, height)
    if raster == "binned":
        rasterizer = BinnedRasterizer(width, height, tile_size=raster_tile)
    else:
        rasterizer = Rasterizer(width, height)
    tiling = TilingEngine(width, height, tile_size)

    texture_names: "list[str]" = []
    tex_index: "dict[str, int]" = {}
    vertices = 0
    triangles_after_cull = 0
    screen_tris: "list[np.ndarray]" = []

    for mesh in scene.meshes:
        vertices += mesh.num_vertices
        tid = tex_index.get(mesh.texture)
        if tid is None:
            tid = len(texture_names)
            tex_index[mesh.texture] = tid
            texture_names.append(mesh.texture)
        with TELEMETRY.span("geometry.transform"):
            tris = transform_mesh(mesh, mvp)
        with TELEMETRY.span("geometry.clip"):
            tris = clip_triangles_near(tris)
        with TELEMETRY.span("geometry.cull"):
            tris = cull_backfaces(tris)
        if tris.num_triangles == 0:
            continue
        triangles_after_cull += tris.num_triangles
        # Screen-space corners for the tiling engine's binning stats.
        pos = tris.clip_positions
        w = pos[:, :, 3:4]
        ndc = pos[:, :, :2] / w
        sx = (ndc[:, :, 0] + 1.0) * 0.5 * width
        sy = (1.0 - ndc[:, :, 1]) * 0.5 * height
        screen_tris.append(np.stack([sx, sy], axis=-1))
        with TELEMETRY.span("raster.draw", triangles=tris.num_triangles):
            rasterizer.draw(tris, tid)

    if raster == "binned":
        with TELEMETRY.span("raster.finalize"):
            rasterizer.finalize()

    if screen_tris:
        with TELEMETRY.span("geometry.tile"):
            tiling.bin_triangles_csr(np.concatenate(screen_tris, axis=0))

    stats = rasterizer.stats
    coverage = rasterizer.gbuffer.coverage_mask
    stats.quads_shaded = count_shaded_quads(coverage)
    tile_list = covered_tile_ids(coverage, tile_size)

    if TELEMETRY.enabled:
        TELEMETRY.count("geometry.vertices", vertices)
        TELEMETRY.count("geometry.triangles_submitted", stats.triangles_submitted)
        TELEMETRY.count("geometry.triangles_after_cull", triangles_after_cull)
        TELEMETRY.count("raster.triangles_rasterized", stats.triangles_rasterized)
        TELEMETRY.count("raster.fragments_generated", stats.fragments_generated)
        TELEMETRY.count("raster.fragments_passed_depth", stats.fragments_passed_depth)
        TELEMETRY.count("raster.tile_triangle_pairs", tiling.stats.tile_triangle_pairs)
        TELEMETRY.count("raster.tiles_touched", tiling.stats.tiles_touched)
        TELEMETRY.count("raster.bins", stats.bins)
        TELEMETRY.count("raster.tiles_culled_hiz", stats.tiles_culled_hiz)
        TELEMETRY.count("raster.tiles_culled_occluded", stats.tiles_culled_occluded)
        TELEMETRY.count("raster.quads_shaded", stats.quads_shaded)

    return RenderedFrame(
        gbuffer=rasterizer.gbuffer,
        raster_stats=stats,
        texture_names=texture_names,
        vertices=vertices,
        triangles_submitted=stats.triangles_submitted,
        triangles_after_cull=triangles_after_cull,
        tile_triangle_pairs=tiling.stats.tile_triangle_pairs,
        tiles_touched=tiling.stats.tiles_touched,
        tile_list=tile_list,
    )
