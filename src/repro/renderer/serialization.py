"""FrameCapture persistence (.npz).

Rendering is the expensive half of every experiment; evaluations are
cheap. Saving captures lets a user render a workload once (or on a
bigger machine) and sweep design points later — the same split the
paper's trace-based methodology uses.
"""

from __future__ import annotations

import io
import pathlib

import numpy as np

from ..errors import PipelineError
from ..timing.gpu_timing import FrameWorkload
from .session import FrameCapture

#: Format version embedded in every file; bump on layout changes.
FORMAT_VERSION = 2

_ARRAY_FIELDS = (
    "rows",
    "cols",
    "tile_ids",
    "tex_ids",
    "n",
    "lod_tf",
    "lod_af",
    "txds",
    "share_fraction",
    "af_color",
    "tf_color",
    "tfa_color",
    "sample_row_ptr",
    "sample_keys",
    "af_lines",
    "tf_lines",
    "tfa_lines",
    "baseline_luminance",
)

_WORKLOAD_FIELDS = (
    "vertices",
    "triangles",
    "tile_triangle_pairs",
    "fragments_generated",
    "fragments_shaded",
)


def _payload(capture: FrameCapture) -> "dict[str, np.ndarray]":
    payload = {name: getattr(capture, name) for name in _ARRAY_FIELDS}
    payload["meta_version"] = np.asarray([FORMAT_VERSION])
    payload["meta_dims"] = np.asarray(
        [capture.frame_index, capture.width, capture.height, capture.tile_size]
    )
    payload["meta_clear"] = np.asarray([capture.clear_luminance])
    payload["meta_workload_counts"] = np.asarray(
        [getattr(capture.workload, f) for f in _WORKLOAD_FIELDS]
    )
    payload["meta_name"] = np.asarray([capture.workload_name])
    return payload


def _from_archive(data) -> FrameCapture:
    version = int(data["meta_version"][0])
    if version != FORMAT_VERSION:
        raise PipelineError(
            f"capture format version {version} unsupported "
            f"(expected {FORMAT_VERSION})"
        )
    frame_index, width, height, tile_size = (
        int(v) for v in data["meta_dims"]
    )
    counts = [int(v) for v in data["meta_workload_counts"]]
    arrays = {name: data[name] for name in _ARRAY_FIELDS}
    workload_name = str(data["meta_name"][0])
    clear = float(data["meta_clear"][0])
    return FrameCapture(
        workload_name=workload_name,
        frame_index=frame_index,
        width=width,
        height=height,
        tile_size=tile_size,
        workload=FrameWorkload(**dict(zip(_WORKLOAD_FIELDS, counts))),
        clear_luminance=clear,
        **arrays,
    )


def save_capture(path, capture: FrameCapture) -> pathlib.Path:
    """Serialize a capture to a compressed .npz file."""
    path = pathlib.Path(path)
    np.savez_compressed(path, **_payload(capture))
    # np.savez appends .npz when missing; report the real location.
    return path if path.suffix == ".npz" else path.with_suffix(path.suffix + ".npz")


def load_capture(path) -> FrameCapture:
    """Load a capture previously written by :func:`save_capture`."""
    path = pathlib.Path(path)
    if not path.exists():
        raise PipelineError(f"no such capture file: {path}")
    with np.load(path, allow_pickle=False) as data:
        return _from_archive(data)


def capture_to_npz_bytes(capture: FrameCapture, *, compress: bool = True) -> bytes:
    """The .npz archive of a capture as an in-memory byte string.

    Used by the capture store, which needs the whole payload up front
    so it can go through :func:`repro.ioutil.atomic_write_bytes`.
    ``compress=False`` writes a stored (deflate-free) zip — the right
    trade for same-machine transfer between pool workers, where the
    deflate pass costs more CPU than the saved disk bytes are worth.
    ``np.load`` reads both forms, so readers never need to know.
    """
    buffer = io.BytesIO()
    saver = np.savez_compressed if compress else np.savez
    saver(buffer, **_payload(capture))
    return buffer.getvalue()


def capture_from_npz_bytes(raw: bytes) -> FrameCapture:
    """Inverse of :func:`capture_to_npz_bytes`."""
    with np.load(io.BytesIO(raw), allow_pickle=False) as data:
        return _from_archive(data)
