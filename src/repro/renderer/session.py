"""Render sessions: capture once, evaluate any design point.

The paper's key structural fact — PATU's decisions are pure functions
of per-pixel predictor state (N from texel generation, Txds from texel
address calculation) — lets the reproduction split work in two:

* :meth:`RenderSession.capture_frame` renders a workload frame once and
  captures all per-pixel filtering state and all three color variants;
* :meth:`RenderSession.evaluate` replays a (scenario, threshold) pair
  against a capture: applies the PATU decision logic, reconstructs the
  output image, scores MSSIM against the 16x-AF baseline, simulates
  the texture cache hierarchy on the design point's actual fetch
  stream, and runs the timing/energy models on the event counts.

Threshold sweeps (Fig. 17) therefore cost one render plus cheap
re-evaluations, exactly mirroring the hardware's structure.
"""

from __future__ import annotations

from dataclasses import asdict as dataclasses_asdict
from dataclasses import dataclass
from dataclasses import replace as dataclasses_replace

import numpy as np

from ..config import BASELINE_CONFIG, GpuConfig
from ..core.af_ssim import sharing_fraction_from_csr, txds_from_csr
from ..core.patu import FilterMode, PatuDecision, PerceptionAwareTextureUnit
from ..core.scenarios import Scenario
from ..errors import PipelineError
from ..memsys.hierarchy import HierarchyStats, TextureMemoryHierarchy
from ..memsys.traffic import BandwidthBreakdown, frame_breakdown
from ..obs import TELEMETRY
from ..power.components import EnergyParams
from ..power.energy import EnergyBreakdown, EnergyModel, FrameEvents
from ..quality.ssim import mssim as mssim_fn
from ..raster.quads import quad_divergence_fraction, quad_ids
from ..resilience.guards import sanitize_colors
from ..texture.addressing import TextureLayout
from ..texture.mipmap import MipChain
from ..texture.unit import TEXELS_PER_TRILINEAR, TextureUnit
from ..timing.gpu_timing import FrameTiming, FrameWorkload, GpuTimingModel
from ..timing.params import TimingParams
from ..timing.texpipe import TexturePipelineModel, TextureTiming
from ..geometry.tiling import tile_pixel_order
from ..workloads.scene import Workload
from .pipeline import DEFAULT_RASTER, DEFAULT_RASTER_TILE, RenderedFrame, render_gbuffer

_LUMA = np.asarray([0.299, 0.587, 0.114], dtype=np.float64)


@dataclass
class FrameCapture:
    """Everything captured from rendering one frame once (see module doc)."""

    workload_name: str
    frame_index: int
    width: int
    height: int
    tile_size: int
    # Visible pixels, in tile scheduling order.
    rows: np.ndarray
    cols: np.ndarray
    tile_ids: np.ndarray
    # Per-pixel filtering state.
    tex_ids: np.ndarray  # frame-local texture binding index per pixel
    n: np.ndarray
    lod_tf: np.ndarray
    lod_af: np.ndarray
    txds: np.ndarray
    share_fraction: np.ndarray
    af_color: np.ndarray
    tf_color: np.ndarray
    tfa_color: np.ndarray
    # CSR AF-sample data (row_ptr over pixels).
    sample_row_ptr: np.ndarray
    sample_keys: np.ndarray
    af_lines: np.ndarray  # 8 lines per sample, CSR rows x8
    tf_lines: np.ndarray  # (pixels, 8)
    tfa_lines: np.ndarray  # (pixels, 8)
    # Frame-level workload counts and the reference image.
    workload: FrameWorkload
    baseline_luminance: np.ndarray
    clear_luminance: float

    @property
    def num_pixels(self) -> int:
        return self.rows.shape[0]

    @property
    def mean_anisotropy(self) -> float:
        return float(self.n.mean()) if self.n.size else 0.0

    def luminance_image(self, colors: np.ndarray) -> np.ndarray:
        """Compose a full-frame luminance image from per-pixel colors."""
        img = np.full((self.height, self.width), self.clear_luminance,
                      dtype=np.float64)
        img[self.rows, self.cols] = colors[:, :3].astype(np.float64) @ _LUMA
        return img


@dataclass
class FrameResult:
    """One (capture, scenario, threshold) evaluation."""

    workload_name: str
    frame_index: int
    scenario: Scenario
    threshold: float
    mssim: float
    approximation_rate: float
    quad_divergence: float
    frame_timing: FrameTiming
    texture_timing: TextureTiming
    request_latency: float
    hierarchy: HierarchyStats
    bandwidth: BandwidthBreakdown
    energy: EnergyBreakdown
    events: FrameEvents
    fps: float
    #: Pixels whose predictor state was corrupted and fell back to
    #: exact AF, plus a capture is never allowed to carry NaN colors —
    #: see docs/resilience.md for the degradation policy.
    degraded_pixels: int = 0
    luminance: "np.ndarray | None" = None

    @property
    def frame_cycles(self) -> float:
        return self.frame_timing.total_cycles

    @property
    def total_energy_nj(self) -> float:
        return self.energy.total_nj

    def to_dict(self) -> "dict[str, object]":
        """JSON-ready summary of this evaluation (no image payload).

        This is the per-frame record the metrics JSONL sink consumes;
        external tooling should prefer it over reaching into the
        nested dataclasses.
        """
        return {
            "workload": self.workload_name,
            "frame": self.frame_index,
            "scenario": self.scenario.name,
            "threshold": self.threshold,
            "mssim": self.mssim,
            "approximation_rate": self.approximation_rate,
            "quad_divergence": self.quad_divergence,
            "degraded_pixels": self.degraded_pixels,
            "frame_cycles": self.frame_cycles,
            "fps": self.fps,
            "request_latency": self.request_latency,
            "total_energy_nj": self.total_energy_nj,
            "frame_timing": dataclasses_asdict(self.frame_timing),
            "texture_timing": dataclasses_asdict(self.texture_timing),
            "hierarchy": self.hierarchy.to_dict(),
            "bandwidth": {
                **self.bandwidth.as_dict(),
                "total": self.bandwidth.total_bytes,
            },
            "energy": {
                **dataclasses_asdict(self.energy),
                "total_nj": self.energy.total_nj,
            },
            "events": dataclasses_asdict(self.events),
        }


class RenderSession:
    """Renders workloads and evaluates PATU design points against them."""

    def __init__(
        self,
        config: GpuConfig = BASELINE_CONFIG,
        *,
        scale: float = 0.25,
        scale_caches: bool = True,
        compressed_textures: bool = False,
        timing_params: "TimingParams | None" = None,
        energy_params: "EnergyParams | None" = None,
        raster: str = DEFAULT_RASTER,
        raster_tile: int = DEFAULT_RASTER_TILE,
    ) -> None:
        if scale_caches and scale < 1.0:
            # Shrink the L2 in proportion to the rendered pixel count so
            # the capacity-to-frame-working-set ratio matches the nominal
            # resolution (the divisor is rounded to a power of two to
            # keep the set count a power of two). The L1 is left at full
            # size: it captures intra-tile footprint locality, whose
            # structure is resolution-independent.
            divisor = 1 << max(round(np.log2(1.0 / (scale * scale))), 0)
            config = dataclasses_replace(
                config,
                texture_l2=config.texture_l2.scaled_down(divisor),
            )
        self.config = config
        self.scale = scale
        #: Raster backend ("binned" sort-middle or "legacy" per-triangle)
        #: and the binned backend's fine-tile size; both produce
        #: bit-identical G-buffers (see repro.raster.binned).
        self.raster = raster
        self.raster_tile = raster_tile
        #: Sample lossily-compressed textures through block-compressed
        #: addressing (see repro.texture.compression).
        self.compressed_textures = compressed_textures
        self.timing_params = timing_params or TimingParams()
        self.energy_params = energy_params or EnergyParams()
        self._texpipe = TexturePipelineModel(config, self.timing_params)
        self._gpu_timing = GpuTimingModel(config, self.timing_params)
        self._energy_model = EnergyModel(config, self.energy_params)
        self._layouts: "dict[int, tuple[TextureLayout, dict[str, int]]]" = {}

    # ------------------------------------------------------------------
    # Capture
    # ------------------------------------------------------------------

    def _scene_layout(self, scene) -> "tuple[TextureLayout, dict[str, int]]":
        key = id(scene)
        cached = self._layouts.get(key)
        if cached is None:
            names = sorted(scene.textures)
            chains = [MipChain(scene.textures[name]) for name in names]
            if self.compressed_textures:
                from ..texture.compression import (
                    CompressedTextureLayout,
                    compress_chain,
                )

                chains = [compress_chain(c) for c in chains]
                layout = CompressedTextureLayout(chains)
            else:
                layout = TextureLayout(chains)
            cached = (layout, {name: i for i, name in enumerate(names)})
            self._layouts[key] = cached
        return cached

    def capture_frame(self, workload: Workload, frame_index: int) -> FrameCapture:
        """Render one frame and capture all per-pixel filtering state."""
        TELEMETRY.count("session.capture_frames")
        with TELEMETRY.span(
            "session.capture_frame", workload=workload.name, frame=frame_index
        ):
            capture = self._capture_frame_impl(workload, frame_index)
        TELEMETRY.progress(
            f"captured {workload.name} frame {frame_index}: "
            f"{capture.num_pixels} px, mean N {capture.mean_anisotropy:.2f}"
        )
        return capture

    def _capture_frame_impl(
        self, workload: Workload, frame_index: int
    ) -> FrameCapture:
        rendered = self.render_frame(workload, frame_index)
        # Tile scheduling order: iterate the surviving tiles from the
        # render's tile list (row-major tiles, raster order inside)
        # instead of sorting a full-frame pixel scan.
        rows, cols, tile_ids = tile_pixel_order(
            rendered.gbuffer.coverage_mask, self.config.tile_size
        )
        if rows.size == 0:
            raise PipelineError(
                f"frame {frame_index} of {workload.name} produced no fragments"
            )
        part = self.filter_pixels(workload, rendered, rows, cols, tile_ids)
        return self.assemble_capture(workload, frame_index, rendered, [part])

    def render_frame(self, workload: Workload, frame_index: int) -> RenderedFrame:
        """Render one frame's G-buffer (phase 1 of a capture)."""
        width, height = workload.scaled_size(self.scale)
        camera = workload.camera(frame_index)
        with TELEMETRY.span("capture.gbuffer"):
            return render_gbuffer(
                workload.scene, camera, width, height,
                tile_size=self.config.tile_size,
                raster=self.raster, raster_tile=self.raster_tile,
            )

    def filter_pixels(
        self,
        workload: Workload,
        rendered: RenderedFrame,
        rows: np.ndarray,
        cols: np.ndarray,
        tile_ids: np.ndarray,
    ) -> "dict[str, np.ndarray]":
        """Texture-filter a tile-ordered pixel subset (phase 2 of a capture).

        Every output is per-pixel or per-quad local, and quads never
        span scheduling tiles, so filtering any union of whole tiles
        yields exactly the rows the full-frame pass would produce —
        this is what makes the engine's tile-level dispatch
        byte-identical to a serial capture.
        """
        gb = rendered.gbuffer
        width = gb.width
        layout, name_to_chain = self._scene_layout(workload.scene)
        unit = TextureUnit(layout, max_aniso=self.config.texture_unit.max_anisotropy)

        npx = rows.shape[0]
        tex_of_pixel = gb.tex_id[rows, cols]

        # Hardware computes texture-coordinate derivatives per 2x2 quad
        # (intra-quad finite differences), so all pixels of a quad share
        # one footprint. Average the analytic per-pixel derivatives over
        # each (quad, texture) group to model that; this is what makes
        # PATU's predictor state quad-coherent (Section V-C reports only
        # ~1% of quads diverge).
        quad_group = _group_index(
            quad_ids(rows, cols, width).astype(np.int64), tex_of_pixel.astype(np.int64)
        )
        if TELEMETRY.enabled:
            TELEMETRY.count("capture.visible_pixels", npx)
            TELEMETRY.count(
                "raster.quads_emitted",
                int(quad_group.max()) + 1 if quad_group.size else 0,
            )
        deriv = {}
        for field_name in ("dudx", "dvdx", "dudy", "dvdy"):
            values = getattr(gb, field_name)[rows, cols].astype(np.float64)
            deriv[field_name] = _group_mean(values, quad_group)
        n = np.empty(npx, dtype=np.int64)
        lod_tf = np.empty(npx, dtype=np.float64)
        lod_af = np.empty(npx, dtype=np.float64)
        af_color = np.empty((npx, 4), dtype=np.float32)
        tf_color = np.empty((npx, 4), dtype=np.float32)
        tfa_color = np.empty((npx, 4), dtype=np.float32)
        tf_lines = np.empty((npx, TEXELS_PER_TRILINEAR), dtype=np.int64)
        tfa_lines = np.empty((npx, TEXELS_PER_TRILINEAR), dtype=np.int64)

        batches = []
        with TELEMETRY.span("capture.texture_filtering"):
            for frame_tid in np.unique(tex_of_pixel):
                mask = tex_of_pixel == frame_tid
                chain_index = name_to_chain[rendered.texture_names[int(frame_tid)]]
                batch = unit.filter_batch(
                    chain_index,
                    gb.u[rows, cols][mask].astype(np.float64),
                    gb.v[rows, cols][mask].astype(np.float64),
                    deriv["dudx"][mask],
                    deriv["dvdx"][mask],
                    deriv["dudy"][mask],
                    deriv["dvdy"][mask],
                )
                batches.append((np.nonzero(mask)[0], batch))
                n[mask] = batch.n
                lod_tf[mask] = batch.lod_tf
                lod_af[mask] = batch.lod_af
                af_color[mask] = batch.af_color
                tf_color[mask] = batch.tf_color
                tfa_color[mask] = batch.tf_af_lod_color
                tf_lines[mask] = batch.tf_lines
                tfa_lines[mask] = batch.tf_af_lod_lines

        # Degradation guard: corrupted texels (injected or genuine) are
        # clamped to a safe value here, so no NaN/inf ever reaches the
        # reference image, the quality model, or a FrameResult.
        af_color = sanitize_colors(af_color).value
        tf_color = sanitize_colors(tf_color).value
        tfa_color = sanitize_colors(tfa_color).value

        with TELEMETRY.span("capture.csr_merge"):
            # Frame-level CSR over AF samples, merged from per-texture batches.
            row_ptr = np.zeros(npx + 1, dtype=np.int64)
            np.cumsum(n, out=row_ptr[1:])
            total_samples = int(row_ptr[-1])
            sample_keys = np.empty(total_samples, dtype=np.int64)
            af_lines = np.empty(total_samples * TEXELS_PER_TRILINEAR, dtype=np.int64)
            for pixel_idx, batch in batches:
                lens = n[pixel_idx]
                starts = row_ptr[pixel_idx]
                dst = _expand_ranges(starts, lens)
                sample_keys[dst] = batch.sample_keys
                dst8 = _expand_ranges(
                    starts * TEXELS_PER_TRILINEAR, lens * TEXELS_PER_TRILINEAR
                )
                af_lines[dst8] = batch.af_lines

            # The per-pixel Txds still carries sub-texel alignment noise from
            # each pixel's own (u, v); the quad's pipelines process the quad
            # as one SIMD unit, so smooth the statistic over the quad too.
            txds = _group_mean(txds_from_csr(sample_keys, row_ptr), quad_group)
            share = sharing_fraction_from_csr(sample_keys, row_ptr)

        return {
            "rows": rows,
            "cols": cols,
            "tile_ids": tile_ids,
            "tex_ids": tex_of_pixel.astype(np.int16),
            "n": n,
            "lod_tf": lod_tf,
            "lod_af": lod_af,
            "txds": txds,
            "share_fraction": share,
            "af_color": af_color,
            "tf_color": tf_color,
            "tfa_color": tfa_color,
            "sample_keys": sample_keys,
            "af_lines": af_lines,
            "tf_lines": tf_lines,
            "tfa_lines": tfa_lines,
        }

    def assemble_capture(
        self,
        workload: Workload,
        frame_index: int,
        rendered: RenderedFrame,
        parts: "list[dict[str, np.ndarray]]",
    ) -> FrameCapture:
        """Merge tile-ordered filtered parts into a FrameCapture (phase 3).

        ``parts`` must cover disjoint, ascending tile ranges; a single
        full-range part reproduces the serial capture exactly, and the
        concatenation of per-range parts is byte-identical to it (the
        global CSR ``row_ptr`` is recomputed from the concatenated
        per-pixel sample counts).
        """
        width, height = workload.scaled_size(self.scale)

        def cat(key: str) -> np.ndarray:
            if len(parts) == 1:
                return parts[0][key]
            return np.concatenate([p[key] for p in parts])

        n = cat("n")
        npx = n.shape[0]
        row_ptr = np.zeros(npx + 1, dtype=np.int64)
        np.cumsum(n, out=row_ptr[1:])
        af_color = cat("af_color")
        workload_counts = FrameWorkload(
            vertices=rendered.vertices,
            triangles=rendered.triangles_after_cull,
            tile_triangle_pairs=rendered.tile_triangle_pairs,
            fragments_generated=rendered.raster_stats.fragments_generated,
            fragments_shaded=npx,
        )
        clear_lum = float(np.asarray(workload.scene.clear_color[:3]) @ _LUMA)
        capture = FrameCapture(
            workload_name=workload.name,
            frame_index=frame_index,
            width=width,
            height=height,
            tile_size=self.config.tile_size,
            rows=cat("rows"),
            cols=cat("cols"),
            tile_ids=cat("tile_ids"),
            tex_ids=cat("tex_ids"),
            n=n,
            lod_tf=cat("lod_tf"),
            lod_af=cat("lod_af"),
            txds=cat("txds"),
            share_fraction=cat("share_fraction"),
            af_color=af_color,
            tf_color=cat("tf_color"),
            tfa_color=cat("tfa_color"),
            sample_row_ptr=row_ptr,
            sample_keys=cat("sample_keys"),
            af_lines=cat("af_lines"),
            tf_lines=cat("tf_lines"),
            tfa_lines=cat("tfa_lines"),
            workload=workload_counts,
            baseline_luminance=np.empty(0),
            clear_luminance=clear_lum,
        )
        capture.baseline_luminance = capture.luminance_image(af_color)
        return capture

    # ------------------------------------------------------------------
    # Evaluation
    # ------------------------------------------------------------------

    def evaluate(
        self,
        capture: FrameCapture,
        scenario: Scenario,
        threshold: float,
        *,
        stage2_threshold: "float | None" = None,
        hash_entries: int = 16,
        store_image: bool = False,
    ) -> FrameResult:
        """Score one design point against a captured frame.

        ``stage2_threshold`` and ``hash_entries`` expose the ablation
        knobs of :class:`PerceptionAwareTextureUnit` (split thresholds,
        shrunken texel-address table).
        """
        patu = PerceptionAwareTextureUnit(
            scenario, threshold,
            stage2_threshold=stage2_threshold, hash_entries=hash_entries,
        )
        decision = patu.decide(capture.n, capture.txds)
        return self._evaluate_decision(
            capture, decision, scenario, threshold, store_image
        )

    def evaluate_software(
        self,
        capture: FrameCapture,
        threshold: float,
        *,
        store_image: bool = False,
    ) -> FrameResult:
        """Score the Section III software alternative (per-draw-call AF).

        See :mod:`repro.core.software` for the decision semantics.
        """
        from ..core.software import SOFTWARE, software_decision

        decision = software_decision(capture.tex_ids, capture.n, threshold)
        return self._evaluate_decision(
            capture, decision, SOFTWARE, threshold, store_image
        )

    def _evaluate_decision(
        self,
        capture: FrameCapture,
        decision: PatuDecision,
        scenario: Scenario,
        threshold: float,
        store_image: bool,
    ) -> FrameResult:
        with TELEMETRY.span(
            "session.evaluate",
            workload=capture.workload_name,
            frame=capture.frame_index,
            scenario=scenario.name,
            threshold=threshold,
        ):
            with TELEMETRY.span("evaluate.reconstruct"):
                colors = capture.af_color.copy()
                tf_mask = decision.mode == FilterMode.TF_TF_LOD
                tfa_mask = decision.mode == FilterMode.TF_AF_LOD
                colors[tf_mask] = capture.tf_color[tf_mask]
                colors[tfa_mask] = capture.tfa_color[tfa_mask]
                # Belt-and-braces: captures are sanitized at creation,
                # but a deserialized or hand-built capture must not be
                # able to push NaN into the quality model either.
                colors = sanitize_colors(colors).value

            with TELEMETRY.span("evaluate.mssim"):
                if scenario.name == "baseline":
                    quality = 1.0
                    lum = capture.baseline_luminance
                else:
                    lum = capture.luminance_image(colors)
                    quality = mssim_fn(capture.baseline_luminance, lum)
                if not np.isfinite(quality):
                    # Score a fully-degraded frame as zero quality
                    # rather than propagating NaN into results.
                    TELEMETRY.count("resilience.mssim_fallbacks")
                    quality = 0.0

            with TELEMETRY.span("evaluate.fetch_stream"):
                lines, lengths = self._fetch_stream(capture, decision)
            hier = self._simulate_hierarchy(capture, lines, lengths)

            events = self._frame_events(capture, decision, scenario, hier)
            tex_timing, frame_timing, req_latency = self._frame_timing(
                capture, decision, scenario, hier
            )

            bandwidth = frame_breakdown(
                texture_dram_bytes=hier.dram_bytes,
                visible_pixels=capture.num_pixels,
                fragments_generated=capture.workload.fragments_generated,
                fragments_passed=capture.num_pixels,
                vertices=capture.workload.vertices,
            )
            with TELEMETRY.span("evaluate.energy"):
                energy = self._energy_model.frame_energy(
                    events, frame_timing.total_cycles
                )

            divergence = quad_divergence_fraction(
                capture.rows, capture.cols, capture.width,
                decision.prediction.approximated,
            )
            result = FrameResult(
                workload_name=capture.workload_name,
                frame_index=capture.frame_index,
                scenario=scenario,
                threshold=threshold,
                mssim=quality,
                approximation_rate=decision.approximation_rate,
                quad_divergence=divergence,
                frame_timing=frame_timing,
                texture_timing=tex_timing,
                request_latency=req_latency,
                hierarchy=hier,
                bandwidth=bandwidth,
                energy=energy,
                events=events,
                fps=self._gpu_timing.fps(frame_timing),
                degraded_pixels=decision.prediction.degraded_count,
                luminance=lum if store_image else None,
            )
        if TELEMETRY.enabled:
            TELEMETRY.observe("session.mssim", result.mssim)
            TELEMETRY.observe("session.frame_cycles", result.frame_cycles)
            # Perceptual observability: the distributions behind the
            # scalar result — per-pixel anisotropy (the paper's N), the
            # LOD shift approximated pixels suffer, and the fraction
            # approximated — feed the ledger's quality rollup.
            TELEMETRY.observe_many("quality.aniso_n", capture.n)
            approximated = decision.prediction.approximated
            TELEMETRY.observe_many(
                "quality.lod_shift",
                np.abs(capture.lod_af - capture.lod_tf)[approximated],
            )
            TELEMETRY.observe(
                "quality.approximation_rate", result.approximation_rate
            )
            TELEMETRY.frame_record(result.to_dict(), patu=decision.to_dict())
        TELEMETRY.progress(
            f"evaluated {capture.workload_name} frame {capture.frame_index} "
            f"[{scenario.name} @ {threshold:g}]: MSSIM {result.mssim:.3f}, "
            f"approx {result.approximation_rate:.1%}"
        )
        return result

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _fetch_stream(
        self, capture: FrameCapture, decision: PatuDecision
    ) -> "tuple[np.ndarray, np.ndarray]":
        """Assemble the design point's texel fetch stream in pixel order.

        Returns the concatenated line addresses and the per-pixel
        segment lengths.
        """
        af_mask = decision.mode == FilterMode.AF
        lengths = np.where(
            af_mask, capture.n * TEXELS_PER_TRILINEAR, TEXELS_PER_TRILINEAR
        ).astype(np.int64)
        offsets = np.concatenate([[0], np.cumsum(lengths)])
        out = np.empty(int(offsets[-1]), dtype=np.int64)

        af_rows = np.nonzero(af_mask)[0]
        if af_rows.size:
            lens = lengths[af_rows]
            dst = _expand_ranges(offsets[af_rows], lens)
            src = _expand_ranges(
                capture.sample_row_ptr[af_rows] * TEXELS_PER_TRILINEAR, lens
            )
            out[dst] = capture.af_lines[src]

        for mask, table in (
            (decision.mode == FilterMode.TF_TF_LOD, capture.tf_lines),
            (decision.mode == FilterMode.TF_AF_LOD, capture.tfa_lines),
        ):
            rows_sel = np.nonzero(mask)[0]
            if rows_sel.size:
                dst = (
                    offsets[rows_sel][:, None]
                    + np.arange(TEXELS_PER_TRILINEAR)[None, :]
                )
                out[dst.ravel()] = table[rows_sel].ravel()
        return out, lengths

    def _simulate_hierarchy(
        self, capture: FrameCapture, lines: np.ndarray, lengths: np.ndarray
    ) -> HierarchyStats:
        """Split the stream into per-tile segments and run the caches."""
        with TELEMETRY.span("session.simulate_hierarchy", lines=int(lines.size)):
            boundaries = np.nonzero(np.diff(capture.tile_ids))[0] + 1
            starts = np.concatenate([[0], boundaries])
            tile_of_segment = capture.tile_ids[starts]
            line_counts = np.add.reduceat(lengths, starts)
            line_offsets = np.concatenate([[0], np.cumsum(line_counts)])
            num_units = self.config.num_texture_units
            tile_streams = [
                (
                    int(tile_of_segment[i]) % num_units,
                    lines[line_offsets[i] : line_offsets[i + 1]],
                )
                for i in range(starts.size)
            ]
            hierarchy = TextureMemoryHierarchy(self.config)
            return hierarchy.process_frame(tile_streams)

    def _frame_events(
        self,
        capture: FrameCapture,
        decision: PatuDecision,
        scenario: Scenario,
        hier: HierarchyStats,
    ) -> FrameEvents:
        checks = capture.num_pixels if scenario.use_stage1 else 0
        return FrameEvents(
            trilinear_samples=decision.total_trilinear,
            address_samples=decision.total_address_work,
            l1_accesses=hier.l1.accesses,
            l2_accesses=hier.l2.accesses,
            dram_lines=hier.dram.lines_fetched,
            shader_ops=int(
                capture.workload.fragments_shaded * self.timing_params.frag_alu_ops
            ),
            vertices=capture.workload.vertices,
            hash_insertions=decision.total_hash_insertions,
            patu_checks=checks,
        )

    def _frame_timing(
        self,
        capture: FrameCapture,
        decision: PatuDecision,
        scenario: Scenario,
        hier: HierarchyStats,
    ) -> "tuple[TextureTiming, FrameTiming, float]":
        with TELEMETRY.span("session.frame_timing"):
            hierarchy = TextureMemoryHierarchy(self.config)
            dram_latency = hierarchy.dram_average_latency(hier)
            dram_cycles = hierarchy.dram_transfer_cycles(hier)
            checks = capture.num_pixels if scenario.use_stage1 else 0
            tex_timing = self._texpipe.frame_timing(
                trilinear_samples=decision.total_trilinear,
                address_samples=decision.total_address_work,
                checked_pixels=checks,
                hier=hier,
                dram_transfer_cycles=dram_cycles,
                dram_latency=dram_latency,
            )
            frame_timing = self._gpu_timing.frame_timing(
                capture.workload, tex_timing
            )
            req_latency = self._texpipe.request_latency(
                tex_timing,
                num_requests=capture.num_pixels,
                trilinear_samples=decision.total_trilinear,
                hier=hier,
                dram_latency=dram_latency,
            )
            return tex_timing, frame_timing, req_latency


def _group_index(primary: np.ndarray, secondary: np.ndarray) -> np.ndarray:
    """Dense group index for (primary, secondary) key pairs."""
    combined = primary * (int(secondary.max()) + 1 if secondary.size else 1) + secondary
    _, inverse = np.unique(combined, return_inverse=True)
    return inverse


def _group_mean(values: np.ndarray, group: np.ndarray) -> np.ndarray:
    """Replace each value by the mean of its group."""
    sums = np.bincount(group, weights=values)
    counts = np.bincount(group)
    return (sums / counts)[group]


def _expand_ranges(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    """Indices covering ``[starts[i], starts[i]+lengths[i])`` concatenated.

    The standard vectorized "ragged ranges" construction: a global
    arange, shifted per segment so each segment restarts at its start.
    """
    starts = np.asarray(starts, dtype=np.int64)
    lengths = np.asarray(lengths, dtype=np.int64)
    total = int(lengths.sum())
    if total == 0:
        return np.empty(0, dtype=np.int64)
    seg_ends = np.cumsum(lengths)
    seg_starts = seg_ends - lengths
    within = np.arange(total, dtype=np.int64) - np.repeat(seg_starts, lengths)
    return np.repeat(starts, lengths) + within
