"""Game-replay construction: vsync, frame pacing and motion lag.

Reproduces the Section VI replay methodology: frames are drawn at the
start of a 60 Hz refresh or stalled to the next one, a fixed CPU
latency of half the refresh interval precedes each frame's GPU work,
and users perceive motion lag when frames miss their refresh.
"""

from .vsync import (
    ReplayStats,
    VsyncSimulator,
    frame_complexity,
    nominal_frame_cycles,
)

__all__ = [
    "ReplayStats",
    "VsyncSimulator",
    "frame_complexity",
    "nominal_frame_cycles",
]
