"""60 Hz vsync model and scaled-to-nominal frame-time conversion.

Two concerns live here:

* **Nominal scaling.** Experiments render at ``resolution * scale`` to
  keep pure-Python runtimes tractable; pixel-proportional cycle counts
  therefore shrink by ``scale^2``. :func:`nominal_frame_cycles`
  converts a scaled frame-cycle count back to the nominal resolution
  and applies a fixed *scene complexity* multiplier that stands in for
  the multi-pass shading and draw-call volume commercial games have and
  our procedural scenes lack. The multiplier is a single global
  constant, calibrated once so the baseline games land in the paper's
  replay fps range (33-58 fps, Section VII-D), and identical across
  design points — it cancels in every ratio.

* **Vsync.** The Section VI replay rules: each frame waits a fixed CPU
  latency of half a refresh interval, then renders; the frame is
  displayed at the next refresh boundary after it completes. A frame
  that misses more than one refresh is a motion-lag event.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..config import CPU_LATENCY_CYCLES, REFRESH_INTERVAL_CYCLES
from ..errors import ReproError

#: Stand-in for the shading complexity gap between our procedural
#: scenes and commercial game content (see module docstring).
SCENE_COMPLEXITY = 5.0
#: Frame-to-frame cost spread of real game traces (effects, spawns,
#: scene changes); our steady camera paths underestimate it.
COMPLEXITY_SPREAD = 0.3
_GOLDEN = 0.6180339887498949


def nominal_frame_cycles(
    frame_cycles: float, scale: float, complexity: float = SCENE_COMPLEXITY
) -> float:
    """Convert scaled-render cycles to nominal-resolution cycles."""
    if not 0.0 < scale <= 1.0:
        raise ReproError(f"scale must be in (0, 1], got {scale}")
    if complexity <= 0:
        raise ReproError(f"complexity must be positive, got {complexity}")
    return frame_cycles / (scale * scale) * complexity


def frame_complexity(
    frame_index: int,
    base: float = SCENE_COMPLEXITY,
    spread: float = COMPLEXITY_SPREAD,
) -> float:
    """Per-frame complexity with deterministic trace-like burstiness.

    Real game traces vary frame cost substantially from frame to frame;
    the replay experiments need that spread so vsync quantization does
    not collapse every design point onto the same refresh multiple. A
    golden-ratio low-discrepancy sequence gives a uniform, seed-free
    modulation in ``[base*(1-spread), base*(1+spread)]`` — identical
    across design points, so per-frame ratios are untouched.
    """
    if not 0.0 <= spread < 1.0:
        raise ReproError(f"spread must be in [0, 1), got {spread}")
    phase = (frame_index * _GOLDEN) % 1.0
    return base * (1.0 - spread + 2.0 * spread * phase)


@dataclass(frozen=True)
class ReplayStats:
    """Summary of one replayed frame sequence."""

    num_frames: int
    total_cycles: float
    average_fps: float
    lag_fraction: float  # frames that missed >= 2 refresh intervals
    min_fps: float
    max_fps: float


class VsyncSimulator:
    """Replays a sequence of frame GPU times under 60 Hz vsync."""

    def __init__(
        self,
        frequency_hz: float = 1e9,
        refresh_cycles: int = REFRESH_INTERVAL_CYCLES,
        cpu_cycles: int = CPU_LATENCY_CYCLES,
    ) -> None:
        if refresh_cycles <= 0 or cpu_cycles < 0 or frequency_hz <= 0:
            raise ReproError("invalid vsync configuration")
        self.frequency_hz = frequency_hz
        self.refresh_cycles = refresh_cycles
        self.cpu_cycles = cpu_cycles

    def replay(self, frame_cycles) -> ReplayStats:
        """Run a frame sequence through the vsync model.

        Args:
            frame_cycles: iterable of per-frame GPU cycle counts at
                nominal resolution.
        """
        frames = np.asarray(list(frame_cycles), dtype=np.float64)
        if frames.size == 0:
            raise ReproError("replay needs at least one frame")
        if np.any(frames <= 0):
            raise ReproError("frame cycle counts must be positive")

        work = self.cpu_cycles + frames
        # Each frame is displayed at the first refresh boundary at or
        # after its completion; a frame always occupies >= 1 interval.
        intervals = np.maximum(np.ceil(work / self.refresh_cycles), 1.0)
        total = float(intervals.sum() * self.refresh_cycles)
        per_frame_fps = self.frequency_hz / (intervals * self.refresh_cycles)
        return ReplayStats(
            num_frames=int(frames.size),
            total_cycles=total,
            average_fps=float(frames.size * self.frequency_hz / total),
            lag_fraction=float((intervals >= 2).mean()),
            min_fps=float(per_frame_fps.min()),
            max_fps=float(per_frame_fps.max()),
        )
