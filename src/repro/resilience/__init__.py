"""Resilient experiment execution: faults, degradation, checkpoints.

Three pillars (see ``docs/resilience.md``):

* :mod:`repro.resilience.faults` — deterministic, seedable fault
  injection into the simulated PATU pipeline (texel corruption,
  hash-table garbage, count-tag bit flips, dropped fetches), armed via
  the process-wide :data:`FAULTS` injector;
* :mod:`repro.resilience.guards` — graceful degradation: sanitize
  corrupted state, fall back to exact filtering, report through
  :class:`DegradedResult` and telemetry counters;
* :mod:`repro.resilience.checkpoint` — versioned, atomically-written
  experiment checkpoints powering ``--resume``.

:class:`FailureRecord` is the structured record of one isolated
per-(workload, frame) failure inside an experiment sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from .admission import DEFAULT_MAX_PENDING, AdmissionController
from .checkpoint import SCHEMA_VERSION, load_checkpoint, save_checkpoint
from .faults import FAULTS, FaultInjector, FaultPlan
from .guards import (
    DegradedResult,
    safe_anisotropy,
    safe_txds,
    sanitize_colors,
    valid_chunk_outcome,
    valid_chunk_outcomes,
)


@dataclass(frozen=True)
class FailureRecord:
    """One isolated failure inside an experiment sweep."""

    workload: str
    frame: "int | None"
    stage: str
    error_type: str
    message: str

    def to_dict(self) -> "dict[str, object]":
        return {
            "workload": self.workload,
            "frame": self.frame,
            "stage": self.stage,
            "error_type": self.error_type,
            "message": self.message,
        }

    def __str__(self) -> str:
        where = self.workload if self.frame is None \
            else f"{self.workload} frame {self.frame}"
        return f"[{self.stage}] {where}: {self.error_type}: {self.message}"


__all__ = [
    "AdmissionController",
    "DEFAULT_MAX_PENDING",
    "DegradedResult",
    "FAULTS",
    "FailureRecord",
    "FaultInjector",
    "FaultPlan",
    "SCHEMA_VERSION",
    "load_checkpoint",
    "safe_anisotropy",
    "safe_txds",
    "sanitize_colors",
    "save_checkpoint",
    "valid_chunk_outcome",
    "valid_chunk_outcomes",
]
