"""Admission control: bounded queue depth for the render service.

``repro serve`` accepts requests faster than the engine can evaluate
them; without a bound, a burst turns into an ever-growing queue and
every client's latency collapses together. The
:class:`AdmissionController` is the door: each request acquires a slot
before it may enqueue and releases it when its response is written.
When ``max_pending`` slots are taken, further requests fail
*immediately* with a typed
:class:`~repro.errors.AdmissionError` (HTTP-429 style, with a
``retry_after_s`` hint) — shedding load at the edge keeps the p99 of
admitted requests bounded, which is the service-level analogue of the
paper's quality-for-throughput trade.

Rejections are counted under ``resilience.admission_rejections``, so
they surface in ledger records through the standard resilience rollup.
"""

from __future__ import annotations

import threading

from ..errors import AdmissionError
from ..obs import TELEMETRY

#: Default bound on concurrently admitted (queued + executing) requests.
DEFAULT_MAX_PENDING = 256


class AdmissionController:
    """A thread-safe counting gate over in-flight requests.

    ``acquire()`` either takes a slot or raises
    :class:`~repro.errors.AdmissionError`; it never blocks — back
    pressure is the client's job, the service only refuses. Use
    :meth:`admit` as a context manager around the whole request
    lifetime.
    """

    def __init__(
        self,
        max_pending: int = DEFAULT_MAX_PENDING,
        *,
        retry_after_s: float = 0.05,
    ) -> None:
        if max_pending < 1:
            raise AdmissionError(
                f"max_pending must be >= 1, got {max_pending}",
            )
        self.max_pending = int(max_pending)
        self.retry_after_s = float(retry_after_s)
        self._lock = threading.Lock()
        self._depth = 0
        #: High-water mark of concurrently admitted requests.
        self.peak_depth = 0
        #: Requests refused at the door since construction.
        self.rejected = 0

    @property
    def depth(self) -> int:
        return self._depth

    def acquire(self) -> None:
        """Take one slot or raise :class:`AdmissionError` (never blocks)."""
        with self._lock:
            if self._depth >= self.max_pending:
                self.rejected += 1
                TELEMETRY.count("resilience.admission_rejections")
                raise AdmissionError(
                    f"queue full ({self._depth}/{self.max_pending} "
                    "requests pending); retry later",
                    retry_after_s=self.retry_after_s,
                )
            self._depth += 1
            if self._depth > self.peak_depth:
                self.peak_depth = self._depth

    def release(self) -> None:
        with self._lock:
            if self._depth > 0:
                self._depth -= 1

    def admit(self) -> "_Admission":
        """``with controller.admit(): ...`` — acquire now, release on exit."""
        return _Admission(self)


class _Admission:
    def __init__(self, controller: AdmissionController) -> None:
        self._controller = controller

    def __enter__(self) -> AdmissionController:
        self._controller.acquire()
        return self._controller

    def __exit__(self, *exc_info) -> None:
        self._controller.release()
