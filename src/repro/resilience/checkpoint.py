"""Versioned experiment checkpoints (crash-safe, resumable sweeps).

A checkpoint is a JSON document holding the design-point metrics an
:class:`~repro.experiments.runner.ExperimentContext` has already
evaluated — i.e. the engine's job-completion records, keyed by
:meth:`repro.engine.jobs.EvalJob.metrics_key` (the same tuple the
in-memory cache uses). Interrupted sweeps reload it with ``--resume``
and skip every checkpointed evaluation instead of re-rendering.

Format (schema version 2)::

    {
      "schema": 2,
      "fingerprint": {"scale": ..., "frames": ..., "config": "..."},
      "entries": [{"key": [wl, frame, scenario, thr, llc, tc,
                           stage2, hash_entries, max_aniso,
                           compressed, software],
                   "metrics": {"cycles": ..., "mssim": ..., ...}}, ...]
    }

Schema 1 (six-field keys, pre-engine) is not migrated: loading it
raises the schema mismatch below and the sweep re-runs cleanly.

Writes are atomic (:mod:`repro.ioutil`); loads validate the schema
version and the context fingerprint and raise
:class:`~repro.errors.CheckpointError` on any mismatch or corruption —
a stale or truncated checkpoint can never silently poison a sweep.
"""

from __future__ import annotations

import json
import pathlib

from ..errors import CheckpointError
from ..ioutil import atomic_write_text

#: Bump when the entry layout changes incompatibly.
SCHEMA_VERSION = 2

#: The cache-key tuple layout (documentation + validation); must match
#: :meth:`repro.engine.jobs.EvalJob.metrics_key`.
KEY_FIELDS = ("workload", "frame", "scenario", "threshold",
              "llc_scale", "tc_scale", "stage2_threshold",
              "hash_entries", "max_anisotropy", "compressed", "software")


def save_checkpoint(
    path,
    *,
    fingerprint: "dict[str, object]",
    metrics: "dict[tuple, dict[str, float]]",
) -> pathlib.Path:
    """Atomically write ``metrics`` (the evaluated design points)."""
    document = {
        "schema": SCHEMA_VERSION,
        "fingerprint": fingerprint,
        "entries": [
            {"key": list(key), "metrics": values}
            for key, values in sorted(metrics.items(), key=lambda kv: str(kv[0]))
        ],
    }
    return atomic_write_text(path, json.dumps(document))


def load_checkpoint(
    path,
    *,
    fingerprint: "dict[str, object]",
) -> "dict[tuple, dict[str, float]]":
    """Load and validate a checkpoint written by :func:`save_checkpoint`.

    Raises :class:`CheckpointError` if the file is corrupt, uses a
    different schema version, or was produced by a context whose
    fingerprint (scale, frame count, GPU config) does not match.
    """
    path = pathlib.Path(path)
    try:
        document = json.loads(path.read_text())
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise CheckpointError(
            f"checkpoint {path} is corrupt (invalid JSON): {exc}"
        ) from exc
    if not isinstance(document, dict):
        raise CheckpointError(f"checkpoint {path} is not a JSON object")
    schema = document.get("schema")
    if schema != SCHEMA_VERSION:
        raise CheckpointError(
            f"checkpoint {path} has schema {schema!r}, "
            f"this build reads schema {SCHEMA_VERSION}"
        )
    theirs = document.get("fingerprint")
    if theirs != fingerprint:
        raise CheckpointError(
            f"checkpoint {path} was written by an incompatible context: "
            f"{theirs!r} != {fingerprint!r} — rerun without --resume or "
            "match the original scale/frames/config"
        )
    metrics: "dict[tuple, dict[str, float]]" = {}
    for entry in document.get("entries", []):
        key = entry.get("key")
        values = entry.get("metrics")
        if not isinstance(key, list) or len(key) != len(KEY_FIELDS) \
                or not isinstance(values, dict):
            raise CheckpointError(f"checkpoint {path} has a malformed entry")
        metrics[tuple(key)] = values
    return metrics
