"""Deterministic fault injection for the simulated PATU pipeline.

The harness models the hardware faults the degradation policy must
survive (see ``docs/resilience.md`` for the full fault model):

* **texel corruption** — filtered colors come back NaN/inf, as if a
  texel fetch returned garbage (``texture/unit.py``);
* **hash-table corruption** — the texel-address hash table feeds the
  predictor out-of-range or non-finite Txds values
  (``core/predictor.py``);
* **count-tag bit flips** — the per-pixel anisotropy degree ``N`` has a
  low bit flipped, producing ``N = 0`` or ``N > 16``
  (``core/patu.py``);
* **dropped fetches** — a texture line request is lost and the line
  buffer re-serves the previous line (``texture/unit.py``).

All injectors are driven by the process-wide :data:`FAULTS` instance,
which mirrors the telemetry no-op pattern: **off by default**, and
every injector's first statement is an ``enabled`` check that returns
the input array *unchanged and unsanitized* (object identity), so
instrumented hot paths cost one attribute load and one branch when
injection is disabled.

Injection is deterministic: each site keeps its own call counter and
derives an independent :class:`numpy.random.Generator` from
``(seed, crc32(site), call_index)``, so the same plan over the same
call sequence corrupts the same elements — failures found in CI
reproduce locally.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields
from dataclasses import replace as dataclass_replace

import numpy as np

from ..errors import FaultInjectionError
from ..obs import TELEMETRY

#: Values a corrupted hash-table entry can turn a Txds into.
_TXDS_GARBAGE = np.asarray([np.nan, np.inf, -np.inf, -1.0, 2.0])
#: Values a corrupted texel can take (non-finite, as DRAM garbage
#: reinterpreted as float typically is).
_TEXEL_GARBAGE = np.asarray([np.nan, np.inf, -np.inf])
#: Bits eligible for a count-tag flip (N fits in 5 bits: 1..16).
_COUNT_TAG_BITS = 5


@dataclass(frozen=True)
class FaultPlan:
    """Per-category injection rates (fraction of elements corrupted).

    The ``worker_*`` / ``chunk_*`` rates drive *process-level* chaos in
    pool workers (self-kill, hang, corrupted IPC payloads) and are
    decided per job identity, not per call — see
    :meth:`FaultInjector.chaos_decision`.
    """

    seed: int = 0
    texel_rate: float = 0.0
    hash_rate: float = 0.0
    count_tag_rate: float = 0.0
    drop_rate: float = 0.0
    worker_kill_rate: float = 0.0
    worker_hang_rate: float = 0.0
    chunk_corrupt_rate: float = 0.0

    def __post_init__(self) -> None:
        for f in fields(self):
            if f.name == "seed":
                continue
            rate = getattr(self, f.name)
            if not 0.0 <= rate <= 1.0:
                raise FaultInjectionError(
                    f"{f.name} must be in [0, 1], got {rate}"
                )

    @classmethod
    def uniform(cls, rate: float, *, seed: int = 0) -> "FaultPlan":
        """The same rate for every *data* fault category.

        Process-level chaos rates stay zero: killing workers is a very
        different blast radius from corrupting texels, so chaos is
        always opted into per category (see :meth:`with_chaos`).
        """
        return cls(
            seed=seed, texel_rate=rate, hash_rate=rate,
            count_tag_rate=rate, drop_rate=rate,
        )

    def with_chaos(
        self,
        *,
        kill: float = 0.0,
        hang: float = 0.0,
        corrupt: float = 0.0,
    ) -> "FaultPlan":
        """This plan with process-level chaos rates set."""
        return dataclass_replace(
            self,
            worker_kill_rate=kill,
            worker_hang_rate=hang,
            chunk_corrupt_rate=corrupt,
        )

    @property
    def any_faults(self) -> bool:
        return any(
            getattr(self, f.name) > 0.0 for f in fields(self)
            if f.name != "seed"
        )


class FaultInjector:
    """Process-wide seedable injector, armed via :meth:`configure`."""

    def __init__(self) -> None:
        self.enabled = False
        self.plan = FaultPlan()
        self._site_calls: "dict[str, int]" = {}
        self.injected: "dict[str, int]" = {}

    # -- lifecycle ------------------------------------------------------

    def configure(self, plan: FaultPlan) -> None:
        """Arm the injector with ``plan`` (rates of zero stay no-ops)."""
        self.plan = plan
        self.enabled = plan.any_faults
        self._site_calls = {}
        self.injected = {}

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Disarm and forget the plan, call counters and tallies."""
        self.enabled = False
        self.plan = FaultPlan()
        self._site_calls = {}
        self.injected = {}

    @property
    def total_injected(self) -> int:
        return sum(self.injected.values())

    def merge_injected(self, injected: "dict[str, int] | None") -> None:
        """Fold a pool worker's per-site tallies into this process.

        The engine's process backend configures each worker with the
        parent's :class:`FaultPlan`; workers ship their ``injected``
        dicts back with every job result so the parent's end-of-run
        summary covers faults injected anywhere.
        """
        if not injected:
            return
        for site, count in injected.items():
            self.injected[site] = self.injected.get(site, 0) + count

    # -- deterministic site-local randomness ----------------------------

    def _rng(self, site: str) -> np.random.Generator:
        call = self._site_calls.get(site, 0)
        self._site_calls[site] = call + 1
        return np.random.default_rng(
            (self.plan.seed, zlib.crc32(site.encode("utf-8")), call)
        )

    def _mask(self, rng: np.random.Generator, size: int, rate: float) -> np.ndarray:
        return rng.random(size) < rate

    def _record(self, site: str, counter: str, count: int) -> None:
        if count:
            self.injected[site] = self.injected.get(site, 0) + count
            TELEMETRY.count(counter, count)

    # -- injectors ------------------------------------------------------

    def corrupt_colors(self, colors: np.ndarray, site: str) -> np.ndarray:
        """Replace a fraction of color components with NaN/inf."""
        if not self.enabled or self.plan.texel_rate <= 0.0:
            return colors
        rng = self._rng(site)
        mask = self._mask(rng, colors.size, self.plan.texel_rate)
        count = int(mask.sum())
        if not count:
            return colors
        out = colors.copy()
        flat = out.reshape(-1)
        flat[mask] = rng.choice(_TEXEL_GARBAGE, size=count)
        self._record(site, "faults.texel_corruptions", count)
        return out

    def corrupt_txds(self, txds: np.ndarray, site: str) -> np.ndarray:
        """Feed the predictor garbage from corrupted hash entries."""
        if not self.enabled or self.plan.hash_rate <= 0.0:
            return txds
        rng = self._rng(site)
        mask = self._mask(rng, txds.size, self.plan.hash_rate)
        count = int(mask.sum())
        if not count:
            return txds
        out = np.asarray(txds, dtype=np.float64).copy()
        flat = out.reshape(-1)
        flat[mask] = rng.choice(_TXDS_GARBAGE, size=count)
        self._record(site, "faults.hash_corruptions", count)
        return out

    def corrupt_n(self, n: np.ndarray, site: str) -> np.ndarray:
        """Flip one low bit of a fraction of anisotropy count tags."""
        if not self.enabled or self.plan.count_tag_rate <= 0.0:
            return n
        rng = self._rng(site)
        mask = self._mask(rng, n.size, self.plan.count_tag_rate)
        count = int(mask.sum())
        if not count:
            return n
        out = np.asarray(n, dtype=np.int64).copy()
        flat = out.reshape(-1)
        bits = rng.integers(0, _COUNT_TAG_BITS, size=count)
        flat[mask] = flat[mask] ^ (np.int64(1) << bits)
        self._record(site, "faults.count_tag_flips", count)
        return out

    def drop_lines(self, lines: np.ndarray, site: str) -> np.ndarray:
        """Drop a fraction of fetches; the previous line is re-served.

        Models a lost line request serviced from the unit's line buffer
        (the last line it fetched) — the stream length is preserved so
        the cache simulation stays aligned with the pixel stream.
        """
        if not self.enabled or self.plan.drop_rate <= 0.0:
            return lines
        rng = self._rng(site)
        mask = self._mask(rng, lines.size, self.plan.drop_rate)
        count = int(mask.sum())
        if not count:
            return lines
        out = np.asarray(lines).copy()
        flat = out.reshape(-1)
        prev = np.roll(flat, 1)
        prev[0] = flat[0]
        flat[mask] = prev[mask]
        self._record(site, "faults.dropped_fetches", count)
        return out

    # -- process-level chaos (pool workers) -----------------------------
    #
    # Data faults above are decided per *call* (site call counters),
    # because the same site runs many times per frame. Process chaos is
    # decided per *job identity*: a marked job crashes or hangs its
    # worker every time it is attempted, on any machine — which is what
    # lets the supervisor's bisection deterministically isolate it, and
    # lets tests and CI precompute which jobs a seed marks.

    def _chaos_rng(self, site: str, identity: str) -> np.random.Generator:
        return np.random.default_rng((
            self.plan.seed,
            zlib.crc32(site.encode("utf-8")),
            zlib.crc32(identity.encode("utf-8")),
        ))

    def chaos_decision(self, site: str, identity: str, rate: float) -> bool:
        """Deterministic per-identity coin flip for a chaos site."""
        if not self.enabled or rate <= 0.0:
            return False
        return bool(self._chaos_rng(site, identity).random() < rate)

    def should_kill_worker(self, identity: str) -> bool:
        """Should the worker executing ``identity`` self-kill now?"""
        return self.chaos_decision(
            "chaos.worker_kill", identity, self.plan.worker_kill_rate
        )

    def should_hang_worker(self, identity: str) -> bool:
        """Should the worker executing ``identity`` hang now?"""
        return self.chaos_decision(
            "chaos.worker_hang", identity, self.plan.worker_hang_rate
        )

    def corrupt_chunk_payload(
        self, outcomes: "list[tuple]", identity: str
    ) -> "list[tuple]":
        """Maybe mangle a chunk's IPC result payload (worker side).

        Models a truncated or garbled inter-process transfer: the list
        loses its tail outcome, or an outcome's status tag is replaced
        with garbage. The parent's structural validation
        (:func:`repro.resilience.guards.valid_chunk_outcomes`) must
        catch either shape and retry the chunk.
        """
        if not self.enabled or self.plan.chunk_corrupt_rate <= 0.0:
            return outcomes
        if not self.chaos_decision(
            "chaos.chunk_corrupt", identity, self.plan.chunk_corrupt_rate
        ):
            return outcomes
        rng = self._chaos_rng("chaos.chunk_corrupt_mode", identity)
        if len(outcomes) > 1 and rng.random() < 0.5:
            return outcomes[:-1]  # truncated payload
        return [("garbage", None)] + outcomes[1:]  # garbled first outcome


#: The process-wide injector used by all instrumented sites.
FAULTS = FaultInjector()
