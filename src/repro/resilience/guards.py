"""Graceful-degradation guards: sanitize, fall back, count.

The policy (``docs/resilience.md``): when corrupted state reaches a
model boundary, the component **never silently emits garbage** — it
falls back to a safe exact path (PATU → exact AF), replaces
non-representable values with deterministic safe ones, and reports the
degradation through telemetry counters plus :class:`DegradedResult`
outcomes so callers can observe it programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..obs import TELEMETRY


@dataclass(frozen=True)
class DegradedResult:
    """A value produced through a degraded (but safe) path.

    Attributes:
        value: the sanitized payload.
        degraded: how many elements required sanitization (0 = clean).
        reason: short machine-readable tag of what was degraded.
    """

    value: object
    degraded: int
    reason: str = ""

    @property
    def is_degraded(self) -> bool:
        return self.degraded > 0


def sanitize_colors(
    colors: np.ndarray,
    *,
    counter: str = "resilience.sanitized_texels",
) -> DegradedResult:
    """Clamp non-finite color components to 0 (black texel fallback).

    Returns the input array itself (no copy) when it is already
    finite, so clean captures pay only one vectorized check.
    """
    finite = np.isfinite(colors)
    if finite.all():
        return DegradedResult(value=colors, degraded=0)
    bad = int(colors.size - int(finite.sum()))
    out = np.where(finite, colors, 0.0).astype(colors.dtype, copy=False)
    TELEMETRY.count(counter, bad)
    return DegradedResult(value=out, degraded=bad, reason="nonfinite_color")


def safe_anisotropy(
    n: np.ndarray, *, max_aniso: int = 16
) -> "tuple[np.ndarray, np.ndarray]":
    """Sanitized anisotropy degrees plus the invalid-entry mask.

    Valid degrees are finite integers in ``[1, max_aniso]``; invalid
    entries (bit-flipped tags, NaN from a float source) are clamped
    into range — ``< 1`` and non-finite become 1, ``> max_aniso``
    becomes ``max_aniso`` — so downstream sample counts stay bounded.
    """
    n_arr = np.asarray(n)
    n_f = n_arr.astype(np.float64)
    invalid = ~np.isfinite(n_f) | (n_f < 1) | (n_f > max_aniso)
    if not invalid.any():
        return n_arr, invalid
    fallback = np.clip(
        np.nan_to_num(n_f, nan=1.0, posinf=max_aniso, neginf=1.0),
        1, max_aniso,
    )
    safe = np.where(invalid, fallback, n_f)
    return safe.astype(n_arr.dtype, copy=False), invalid


def valid_chunk_outcome(outcome: object) -> bool:
    """Structural check of one worker job-outcome tuple.

    The process backend's wire format (see
    :func:`repro.engine.worker.run_job_chunk`) is
    ``("ok", payload, telemetry, injected, store_delta)`` or
    ``("err", type_name, message, telemetry, injected, store_delta)``
    with a store delta of 4 ints, optionally followed by a per-shard
    traffic dict (or None). Anything else — a truncated pickle, a
    chaos-corrupted payload, a foreign object — fails the check and the
    supervisor retries the chunk instead of merging garbage.
    """
    if not isinstance(outcome, tuple) or len(outcome) not in (5, 6):
        return False
    status = outcome[0]
    if status == "ok":
        if len(outcome) != 5:
            return False
        if not (outcome[1] is None or isinstance(outcome[1], dict)):
            return False
    elif status == "err":
        if len(outcome) != 6:
            return False
        if not (isinstance(outcome[1], str) and isinstance(outcome[2], str)):
            return False
    else:
        return False
    store = outcome[-1]
    if not isinstance(store, tuple) or len(store) not in (4, 5):
        return False
    if not all(isinstance(v, int) for v in store[:4]):
        return False
    return len(store) == 4 or store[4] is None or isinstance(store[4], dict)


def valid_chunk_outcomes(outcomes: object, expected: int) -> bool:
    """Is ``outcomes`` a complete, well-formed chunk result list?"""
    return (
        isinstance(outcomes, list)
        and len(outcomes) == expected
        and all(valid_chunk_outcome(o) for o in outcomes)
    )


def safe_txds(txds: np.ndarray) -> "tuple[np.ndarray, np.ndarray]":
    """Sanitized Txds values plus the invalid-entry mask.

    Valid Txds lie in ``[0, 1]``; invalid entries become 0 — the most
    conservative value (predicts *least* similarity, so a corrupted
    entry can never cause an approximation).
    """
    t = np.asarray(txds, dtype=np.float64)
    invalid = ~np.isfinite(t) | (t < 0.0) | (t > 1.0)
    if not invalid.any():
        return t, invalid
    safe = np.where(invalid, 0.0, t)
    return safe, invalid
