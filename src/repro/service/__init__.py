"""Render-as-a-service: asyncio front-end over the experiment engine.

``repro serve`` turns the toolkit into a long-running service measured
in requests/sec and p99 latency (ROADMAP item 4): concurrent clients
speak a JSON-lines protocol, compatible in-flight requests coalesce
into capture-affine engine batches (cross-request dedup), and
execution lands on a pluggable backend — the in-process fork pool or
remote TCP socket workers — under the same supervision layer batch
runs use. See :mod:`repro.service.server` for the architecture.
"""

from __future__ import annotations

from .client import ServiceClient
from .protocol import (
    MAX_LINE_BYTES,
    OPS,
    PROTOCOL_VERSION,
    Request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)
from .server import (
    DEFAULT_MAX_BATCH,
    RenderService,
    ServeConfig,
    run_server,
)

__all__ = [
    "DEFAULT_MAX_BATCH",
    "MAX_LINE_BYTES",
    "OPS",
    "PROTOCOL_VERSION",
    "RenderService",
    "Request",
    "ServeConfig",
    "ServiceClient",
    "encode_response",
    "error_response",
    "ok_response",
    "parse_request",
    "run_server",
]
