"""A minimal blocking JSON-lines client for the render service.

Used by ``benchmarks/service_bench.py`` and the test suite; the wire
format is plain enough that real clients can speak it from any
language (or ``nc``), so this class is a convenience, not an SDK.
"""

from __future__ import annotations

import json
import socket

from ..errors import ProtocolError

#: Default per-request timeout — generous, first requests render.
REQUEST_TIMEOUT_S = 600.0


class ServiceClient:
    """One connection to a ``repro serve`` endpoint."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float = REQUEST_TIMEOUT_S,
    ) -> None:
        self._sock = socket.create_connection((host, port), timeout=timeout)
        self._file = self._sock.makefile("rwb")
        self._next_id = 0

    def request(self, payload: "dict[str, object]") -> "dict[str, object]":
        """Send one request object; return the parsed response object.

        Fills in ``id`` when the caller didn't provide one. The raw
        response line is kept in the returned object under no key —
        callers needing byte-identity should use :meth:`request_raw`.
        """
        response, _raw = self.request_raw(payload)
        return response

    def request_raw(
        self, payload: "dict[str, object]"
    ) -> "tuple[dict[str, object], bytes]":
        """Like :meth:`request`, but also return the raw response line."""
        if "id" not in payload:
            self._next_id += 1
            payload = {**payload, "id": f"r{self._next_id}"}
        line = json.dumps(payload, sort_keys=True) + "\n"
        self._file.write(line.encode("utf-8"))
        self._file.flush()
        raw = self._file.readline()
        if not raw:
            raise ProtocolError("server closed the connection")
        try:
            return json.loads(raw), raw
        except ValueError as exc:
            raise ProtocolError(f"bad response line: {exc}") from exc

    def ping(self) -> "dict[str, object]":
        return self.request({"op": "ping"})

    def stats(self) -> "dict[str, object]":
        response = self.request({"op": "stats"})
        return response.get("stats", {})

    def shutdown(self) -> "dict[str, object]":
        return self.request({"op": "shutdown"})

    def close(self) -> None:
        try:
            self._file.close()
        except OSError:
            pass
        try:
            self._sock.close()
        except OSError:
            pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
