"""JSON-lines wire protocol of the render service.

One request per line, one response line per request, UTF-8, newline
terminated — a protocol a shell script can speak::

    {"id": "c1-0", "op": "eval", "workload": "wolf-640x480",
     "frame": 0, "scenario": "patu", "threshold": 0.4,
     "config": {"tc_scale": 2}}

Ops:

* ``eval`` — evaluate one design point; responds with the scalar
  metrics dict of
  :func:`~repro.engine.worker.extract_frame_metrics`.
* ``render`` — render one frame into the capture store; responds with
  the store entry name and digest.
* ``ping`` — liveness probe; responds immediately, bypassing the
  batcher.
* ``stats`` — service counters, store shard stats, queue depth.
* ``shutdown`` — ask the server to drain and exit (trusted clients;
  the service is an internal tool, not a public endpoint).

Responses are JSON objects with ``sort_keys`` and compact separators,
so a given result always serializes to the *same bytes* — the
byte-identity contract ``benchmarks/service_bench.py`` checks between
concurrent batched execution and the sequential baseline. Success:
``{"id": ..., "ok": true, ...}``; failure:
``{"error": {"message": ..., "type": ...}, "id": ..., "ok": false,
"status": <int>}`` where ``status`` follows HTTP conventions (400
malformed, 404 unknown workload/scenario, 429 admission-rejected,
500 evaluation failure).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, fields

from ..engine.jobs import (
    KIND_CAPTURE,
    KIND_EVAL,
    ConfigKey,
    EvalJob,
)
from ..errors import AdmissionError, JobError, ProtocolError, ReproError

PROTOCOL_VERSION = 1

#: Ops the server understands.
OPS = ("eval", "render", "ping", "stats", "shutdown")

#: Request fields accepted in the ``config`` object.
_CONFIG_FIELDS = {f.name for f in fields(ConfigKey)}

#: Upper bound on one request line; a longer line is a desynced or
#: abusive peer, not a real request.
MAX_LINE_BYTES = 64 * 1024


@dataclass(frozen=True)
class Request:
    """One parsed, validated request."""

    id: str
    op: str
    job: "EvalJob | None" = None


def parse_request(line: "str | bytes") -> Request:
    """Parse and validate one request line.

    Raises :class:`~repro.errors.ProtocolError` on anything malformed;
    the server maps that to a 400-style response instead of dropping
    the connection, so one bad request never kills a client's batch.
    """
    if isinstance(line, bytes):
        try:
            line = line.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(f"request is not UTF-8: {exc}") from exc
    try:
        payload = json.loads(line)
    except ValueError as exc:
        raise ProtocolError(f"request is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"request must be a JSON object, got {type(payload).__name__}"
        )
    request_id = payload.get("id")
    if not isinstance(request_id, str) or not request_id:
        raise ProtocolError("request needs a non-empty string 'id'")
    op = payload.get("op")
    if op not in OPS:
        raise ProtocolError(
            f"unknown op {op!r} (expected one of {', '.join(OPS)})"
        )
    if op in ("ping", "stats", "shutdown"):
        return Request(id=request_id, op=op)
    return Request(id=request_id, op=op, job=_parse_job(payload, op))


def _parse_job(payload: dict, op: str) -> EvalJob:
    workload = payload.get("workload")
    if not isinstance(workload, str) or not workload:
        raise ProtocolError(f"op {op!r} needs a string 'workload'")
    frame = payload.get("frame", 0)
    if not isinstance(frame, int) or isinstance(frame, bool) or frame < 0:
        raise ProtocolError(f"'frame' must be a non-negative int, got {frame!r}")
    config = _parse_config(payload.get("config"))
    if op == "render":
        return EvalJob(
            workload, frame, scenario="baseline", threshold=1.0,
            config_key=config, kind=KIND_CAPTURE,
        )
    scenario = payload.get("scenario", "patu")
    if not isinstance(scenario, str) or not scenario:
        raise ProtocolError(f"'scenario' must be a string, got {scenario!r}")
    threshold = payload.get("threshold", 0.4)
    if isinstance(threshold, bool) or not isinstance(threshold, (int, float)):
        raise ProtocolError(
            f"'threshold' must be a number, got {threshold!r}"
        )
    return EvalJob(
        workload, frame, scenario=scenario, threshold=float(threshold),
        config_key=config, kind=KIND_EVAL,
    )


def _parse_config(raw) -> ConfigKey:
    if raw is None:
        return ConfigKey()
    if not isinstance(raw, dict):
        raise ProtocolError(
            f"'config' must be an object, got {type(raw).__name__}"
        )
    unknown = sorted(set(raw) - _CONFIG_FIELDS)
    if unknown:
        raise ProtocolError(
            f"unknown config field(s): {', '.join(unknown)} "
            f"(accepted: {', '.join(sorted(_CONFIG_FIELDS))})"
        )
    try:
        return ConfigKey(**raw)
    except (TypeError, ValueError) as exc:
        raise ProtocolError(f"bad config: {exc}") from exc


# ----------------------------------------------------------------------
# Responses
# ----------------------------------------------------------------------

#: Original error types of replayed :class:`JobError` failures that
#: mean the *request* named something that doesn't exist.
_CLIENT_FAULT_TYPES = ("WorkloadError",)


def encode_response(payload: "dict[str, object]") -> bytes:
    """One response as canonical bytes (sorted keys, compact, newline)."""
    return (
        json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n"
    ).encode("utf-8")


def ok_response(request_id: str, **fields) -> "dict[str, object]":
    return {"id": request_id, "ok": True, **fields}


def error_response(
    request_id: "str | None", error: BaseException
) -> "dict[str, object]":
    """Map an exception onto the typed failure envelope."""
    status = 500
    payload: "dict[str, object]" = {
        "id": request_id or "",
        "ok": False,
        "error": {
            "type": type(error).__name__,
            "message": str(error),
        },
    }
    if isinstance(error, AdmissionError):
        status = error.status
        payload["retry_after_s"] = error.retry_after_s
    elif isinstance(error, ProtocolError):
        status = 400
    elif isinstance(error, JobError):
        # A replayed engine failure reports the original error's type
        # (WorkerCrashError for a quarantined poison job, etc.), same
        # as a FailureRecord footer would. Failures whose original type
        # marks a bad *request* keep their client-error status even
        # through the park-and-replay path.
        payload["error"]["type"] = error.error_type  # type: ignore[index]
        if error.error_type in _CLIENT_FAULT_TYPES:
            status = 404
    elif isinstance(error, ReproError):
        # A typed library error is the request's fault more often than
        # the server's (unknown workload, bad scenario) — client error.
        status = 404
    payload["status"] = status
    return payload
