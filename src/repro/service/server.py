"""``repro serve``: the asyncio render-as-a-service front-end.

Architecture (see ``docs/architecture.md``)::

    clients ──JSON lines──▶ asyncio front-end ──▶ admission gate
                                                     │
                                         batcher (drain the queue)
                                                     │
                                    engine thread: ctx.execute(batch)
                                       │                    │
                              process / remote pool   sharded capture
                              (ChunkSupervisor)           store

The front-end accepts any number of concurrent connections and speaks
the JSON-lines protocol of :mod:`repro.service.protocol`. Each
admitted eval/render request lands in one queue; the **batcher** pulls
whatever is queued the moment the engine goes idle and executes the
whole batch as *one* planned job list. That is where coalescing
happens — the engine's :func:`~repro.engine.jobs.dedupe_jobs` plans
each distinct :class:`~repro.engine.jobs.EvalJob` once no matter how
many clients asked for it, capture-affine chunking groups jobs that
share frames, and previously evaluated design points are served from
the context's caches without planning at all. Responses are built
per-request from the context's metric cache, so two requests for the
same design point get byte-identical payloads and a batched run stays
byte-identical to sequential execution.

The engine runs on a dedicated single thread: the asyncio loop stays
responsive (pings, stats, new connections) while a batch renders, and
engine state needs no locking because exactly one thread touches it.

Admission control bounds the number of requests queued + executing;
beyond ``max_pending`` the service rejects with a typed 429-style
response immediately (:mod:`repro.resilience.admission`). Backends are
pluggable per ``--backend``: the in-process fork pool or remote TCP
socket workers (:mod:`repro.engine.remote`) — supervision semantics
are identical on both.
"""

from __future__ import annotations

import asyncio
import sys
import time
from dataclasses import dataclass, field

from ..engine.capture_store import make_store, spec_digest
from ..engine.jobs import KIND_CAPTURE, dedupe_jobs
from ..errors import AdmissionError, ProtocolError, ReproError
from ..experiments.runner import ExperimentContext
from ..obs import TELEMETRY
from ..renderer.pipeline import DEFAULT_RASTER, DEFAULT_RASTER_TILE
from ..resilience.admission import DEFAULT_MAX_PENDING, AdmissionController
from .protocol import (
    MAX_LINE_BYTES,
    PROTOCOL_VERSION,
    Request,
    encode_response,
    error_response,
    ok_response,
    parse_request,
)

#: Largest number of requests one batch may coalesce.
DEFAULT_MAX_BATCH = 64


@dataclass
class ServeConfig:
    """Everything ``repro serve`` needs, as one value."""

    host: str = "127.0.0.1"
    port: int = 0
    scale: float = 0.25
    jobs: int = 1
    backend: "str | None" = None
    store_root: "str | None" = None
    store_prefix: int = 1
    store_max_bytes: "int | None" = None
    max_pending: int = DEFAULT_MAX_PENDING
    max_batch: int = DEFAULT_MAX_BATCH
    #: Extra seconds the batcher waits for stragglers after the first
    #: queued request. 0 (default) = drain-only batching: requests
    #: that arrive while the engine is busy form the next batch, and a
    #: lone sequential client is never delayed.
    batch_window_s: float = 0.0
    job_timeout: "float | None" = None
    raster: str = DEFAULT_RASTER
    raster_tile: int = DEFAULT_RASTER_TILE


@dataclass
class ServiceCounters:
    requests: int = 0
    responses: int = 0
    errors: int = 0
    rejected: int = 0
    batches: int = 0
    coalesced_batches: int = 0
    coalesced_jobs: int = 0
    batched_requests: int = 0
    cache_hit_jobs: int = 0

    def snapshot(self) -> "dict[str, int]":
        return dict(vars(self))


class RenderService:
    """One live render service: front-end + batcher + engine backend."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        store = None
        if config.store_root:
            store = make_store(
                config.store_root,
                prefix=config.store_prefix,
                max_bytes=config.store_max_bytes,
            )
        self.store = store
        self.ctx = ExperimentContext(
            scale=config.scale,
            frames=1,
            jobs=config.jobs,
            backend=config.backend,
            capture_cache=store,
            job_timeout=config.job_timeout,
            raster=config.raster,
            raster_tile=config.raster_tile,
        )
        self.admission = AdmissionController(config.max_pending)
        self.counters = ServiceCounters()
        self.started = time.monotonic()
        self._queue: "asyncio.Queue" = asyncio.Queue()
        self._stopping = asyncio.Event()
        self._server: "asyncio.base_events.Server | None" = None
        self._batcher: "asyncio.Task | None" = None

    # -- lifecycle -------------------------------------------------------

    @property
    def address(self) -> "tuple[str, int]":
        assert self._server is not None, "service not started"
        return self._server.sockets[0].getsockname()[:2]

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_connection,
            self.config.host,
            self.config.port,
            limit=MAX_LINE_BYTES,
        )
        self._batcher = asyncio.create_task(self._batch_loop())

    async def serve_until_shutdown(self) -> None:
        """Serve until a ``shutdown`` request (or cancellation)."""
        assert self._server is not None
        async with self._server:
            await self._server.start_serving()
            host, port = self.address
            print(f"serve: listening on {host}:{port}", file=sys.stderr,
                  flush=True)
            await self._stopping.wait()
        await self.aclose()

    async def aclose(self) -> None:
        self._stopping.set()
        if self._batcher is not None:
            self._batcher.cancel()
            try:
                await self._batcher
            except asyncio.CancelledError:
                pass
            self._batcher = None
        # Run blocking teardown off-loop; it joins worker processes.
        await asyncio.get_running_loop().run_in_executor(
            None, self._close_backend
        )

    def _close_backend(self) -> None:
        from ..engine.remote import shutdown_remote_pools
        from ..engine.scheduler import shutdown_pools

        self.ctx.close()
        shutdown_pools()
        shutdown_remote_pools()

    # -- front-end -------------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while not self._stopping.is_set():
                try:
                    line = await reader.readline()
                except (asyncio.LimitOverrunError, ValueError):
                    await self._write(writer, error_response(
                        None, ProtocolError(
                            f"request line over {MAX_LINE_BYTES} bytes"
                        )
                    ))
                    break
                if not line:
                    break
                if not line.strip():
                    continue
                self.counters.requests += 1
                await self._handle_line(line, writer)
        except (ConnectionResetError, BrokenPipeError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionResetError, BrokenPipeError, OSError):
                pass

    async def _handle_line(self, line: bytes, writer) -> None:
        try:
            request = parse_request(line)
        except ProtocolError as exc:
            self.counters.errors += 1
            await self._write(writer, error_response(None, exc))
            return
        if request.op == "ping":
            await self._write(writer, ok_response(
                request.id, pong=PROTOCOL_VERSION
            ))
            return
        if request.op == "stats":
            await self._write(writer, ok_response(
                request.id, stats=self.stats()
            ))
            return
        if request.op == "shutdown":
            await self._write(writer, ok_response(request.id, stopping=True))
            self._stopping.set()
            return
        # eval / render: pass the admission gate, then ride a batch.
        try:
            self.admission.acquire()
        except AdmissionError as exc:
            self.counters.rejected += 1
            await self._write(writer, error_response(request.id, exc))
            return
        future = asyncio.get_running_loop().create_future()
        try:
            await self._queue.put((request, future))
            payload = await future
        finally:
            self.admission.release()
        if payload.get("ok"):
            self.counters.responses += 1
        else:
            self.counters.errors += 1
        await self._write(writer, payload)

    @staticmethod
    async def _write(writer, payload: "dict[str, object]") -> None:
        writer.write(encode_response(payload))
        await writer.drain()

    # -- batcher ---------------------------------------------------------

    async def _batch_loop(self) -> None:
        loop = asyncio.get_running_loop()
        while True:
            batch = [await self._queue.get()]
            if self.config.batch_window_s > 0:
                await asyncio.sleep(self.config.batch_window_s)
            while len(batch) < self.config.max_batch:
                try:
                    batch.append(self._queue.get_nowait())
                except asyncio.QueueEmpty:
                    break
            requests = [request for request, _ in batch]
            try:
                payloads = await loop.run_in_executor(
                    None, self._execute_batch, requests
                )
            except Exception as exc:  # noqa: BLE001 — server must stay up
                payloads = [error_response(r.id, exc) for r in requests]
            for (_request, future), payload in zip(batch, payloads):
                if not future.done():
                    future.set_result(payload)

    def _execute_batch(
        self, requests: "list[Request]"
    ) -> "list[dict[str, object]]":
        """Plan + execute one coalesced batch on the engine thread."""
        jobs = [request.job for request in requests]
        unique = dedupe_jobs(jobs)
        self.counters.batches += 1
        self.counters.batched_requests += len(requests)
        duplicates = len(jobs) - len(unique)
        if len(requests) > 1:
            self.counters.coalesced_batches += 1
        if duplicates:
            self.counters.coalesced_jobs += duplicates
            TELEMETRY.count("serve.coalesced_jobs", duplicates)
        report = self.ctx.execute(jobs)
        self.counters.cache_hit_jobs += report.skipped
        return [self._response_for(request) for request in requests]

    def _response_for(self, request: Request) -> "dict[str, object]":
        job = request.job
        try:
            if job.kind == KIND_CAPTURE:
                workload, frame, variant = job.capture_key()
                spec = self.ctx.capture_spec(workload, frame, variant)
                if self.store is None and not self.ctx.has_capture(
                    workload, frame, variant
                ):
                    # Serial backend renders lazily on touch; the
                    # process backends always publish to the store.
                    self.ctx.capture(workload, frame, variant=variant)
                return ok_response(request.id, capture={
                    "digest": spec_digest(spec),
                    "workload": workload,
                    "frame": frame,
                })
            metrics = self.ctx.frame_metrics(
                job.workload, job.frame, job.scenario, job.threshold,
                config=job.config_key,
            )
            return ok_response(request.id, metrics=metrics)
        except (KeyboardInterrupt, SystemExit):
            raise
        except Exception as exc:  # noqa: BLE001 — per-request isolation
            return error_response(request.id, exc)

    # -- observability ---------------------------------------------------

    def stats(self) -> "dict[str, object]":
        payload: "dict[str, object]" = {
            "protocol": PROTOCOL_VERSION,
            "backend": self.ctx.engine.backend_name,
            "jobs": self.config.jobs,
            "uptime_s": round(time.monotonic() - self.started, 3),
            "queue_depth": self.admission.depth,
            "peak_depth": self.admission.peak_depth,
            "max_pending": self.admission.max_pending,
            **self.counters.snapshot(),
        }
        if self.store is not None:
            stats = self.store.stats
            payload["store"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "writes": stats.writes,
                "corrupt": stats.corrupt,
                "evictions": stats.evictions,
                "readthrough": stats.readthrough,
            }
            shard_stats = getattr(self.store, "shard_stats", None)
            if shard_stats is not None:
                payload["shards"] = shard_stats()
        return payload


async def _run_service(config: ServeConfig) -> int:
    service = RenderService(config)
    await service.start()
    await service.serve_until_shutdown()
    print("serve: shut down cleanly", file=sys.stderr)
    return 0


def run_server(config: ServeConfig) -> int:
    """Run the service until shutdown; the ``repro serve`` entry point."""
    try:
        return asyncio.run(_run_service(config))
    except KeyboardInterrupt:
        print("serve: interrupted", file=sys.stderr)
        return 130
    except ReproError as exc:
        print(f"serve: error: {exc}", file=sys.stderr)
        return 1
