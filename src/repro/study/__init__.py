"""Simulated user-experience study (paper Section VII-D, Fig. 22).

The paper recruits 30 campus participants to score trace-based game
replays on a 1-5 satisfaction scale. We substitute a seeded population
of simulated viewers with heterogeneous quality/smoothness preferences
(DESIGN.md §2 documents why this preserves the figure's shape).
"""

from .users import Participant, UserStudy, StudyResult

__all__ = ["Participant", "StudyResult", "UserStudy"]
