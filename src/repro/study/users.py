"""Simulated participants scoring game replays.

Each participant watches a replay characterized by its mean perceived
quality (MSSIM vs. the 16x-AF reference), its average frame rate and
its motion-lag fraction, then reports a 1-5 satisfaction score:

``score = 5 - w_q * quality_penalty - w_p * smoothness_penalty``

* ``quality_penalty`` is the MSSIM loss *above a per-person
  just-noticeable-difference* — the paper observes that images above
  ~90-93% MSSIM are "difficult to be distinguished by human eyes"
  (Section VII-A), so small losses cost nothing;
* ``smoothness_penalty`` combines the shortfall from 60 fps and the
  motion-lag fraction (Section VI: users feel lags when frames miss
  the refresh);
* the weights ``w_q``/``w_p`` vary across the population (some people
  are quality-sensitive, some fluency-sensitive), drawn from a seeded
  generator so the study is deterministic.

The emergent behaviour matches Fig. 22: at high resolutions frames are
slow, so the smoothness term pushes preferences toward *lower*
thresholds; at low resolutions everything is fast and the quality term
dominates, pushing preferences toward *higher* thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError


@dataclass(frozen=True)
class Participant:
    """One simulated viewer."""

    ident: int
    quality_weight: float
    performance_weight: float
    quality_jnd: float  # MSSIM loss below which nothing is perceived

    def score(self, mssim: float, fps: float, lag_fraction: float) -> float:
        """Satisfaction score in [1, 5] for one replay."""
        if not 0.0 <= mssim <= 1.0:
            raise ReproError(f"mssim must be in [0, 1], got {mssim}")
        if fps <= 0:
            raise ReproError(f"fps must be positive, got {fps}")
        quality_pen = max(0.0, (1.0 - mssim) - self.quality_jnd)
        fps_pen = max(0.0, (60.0 - fps) / 60.0)
        smooth_pen = 0.6 * fps_pen + 0.4 * lag_fraction
        raw = (
            5.0
            - self.quality_weight * quality_pen
            - self.performance_weight * smooth_pen
        )
        return float(np.clip(raw, 1.0, 5.0))


@dataclass(frozen=True)
class StudyResult:
    """Aggregated scores for one replay condition."""

    mean_score: float
    std_score: float
    scores: "tuple[float, ...]"


class UserStudy:
    """A deterministic population of simulated participants."""

    def __init__(self, num_participants: int = 30, seed: int = 2018) -> None:
        if num_participants < 1:
            raise ReproError("study needs at least one participant")
        rng = np.random.default_rng(seed)
        # Quality weights: how many score points a 10% MSSIM loss costs.
        quality = rng.lognormal(mean=np.log(22.0), sigma=0.35, size=num_participants)
        perf = rng.lognormal(mean=np.log(4.5), sigma=0.4, size=num_participants)
        jnd = rng.uniform(0.01, 0.05, size=num_participants)
        self.participants = tuple(
            Participant(
                ident=i,
                quality_weight=float(quality[i]),
                performance_weight=float(perf[i]),
                quality_jnd=float(jnd[i]),
            )
            for i in range(num_participants)
        )

    def evaluate(self, mssim: float, fps: float, lag_fraction: float) -> StudyResult:
        """Score one replay condition across the whole population."""
        scores = tuple(
            p.score(mssim, fps, lag_fraction) for p in self.participants
        )
        arr = np.asarray(scores)
        return StudyResult(
            mean_score=float(arr.mean()),
            std_score=float(arr.std()),
            scores=scores,
        )
