"""Texture subsystem: texture maps, mipmapping, footprints and filtering.

Implements the conventional texture unit of Figure 2 — texel
generation, texture quality (LOD) selection, texel address
calculation, texel fetching and the three-step bilinear / trilinear /
anisotropic filtering chain (Section II-B) — as vectorized numpy
kernels operating on batches of fragments.
"""

from .image import Texture2D
from .mipmap import MipChain
from .addressing import TextureLayout, TEXEL_BYTES, CACHE_LINE_BYTES
from .footprint import FootprintInfo, compute_footprints
from .sampler import bilinear_sample, trilinear_sample, trilinear_footprint_keys
from .anisotropic import (
    AnisoBatchResult,
    AnisoResult,
    anisotropic_filter,
    anisotropic_filter_batch,
    aniso_sample_positions,
)
from .unit import TextureUnit, FilteredBatch
from .compression import (
    CompressedTextureLayout,
    compress_chain,
    compress_texture,
    compression_error,
)

__all__ = [
    "AnisoBatchResult",
    "AnisoResult",
    "CACHE_LINE_BYTES",
    "CompressedTextureLayout",
    "FilteredBatch",
    "FootprintInfo",
    "MipChain",
    "TEXEL_BYTES",
    "Texture2D",
    "TextureLayout",
    "TextureUnit",
    "aniso_sample_positions",
    "anisotropic_filter",
    "anisotropic_filter_batch",
    "bilinear_sample",
    "compress_chain",
    "compress_texture",
    "compression_error",
    "compute_footprints",
    "trilinear_footprint_keys",
    "trilinear_sample",
]
