"""Texel address calculation (the *Texel Address Calculator* of Figure 2).

Real GPUs store textures in a tiled (block-linear) layout so that a
cache line holds a small 2D neighbourhood of texels instead of a raster
scanline. We reproduce that: texels are RGBA8 (4 bytes), grouped into
8x8-texel tiles laid out row-major, with tiles themselves row-major
within each mip level, and mip levels packed contiguously per texture
in a global texture address space.

Byte addresses feed the texture cache simulators; 64-byte cache-line
addresses are ``byte_address >> 6``.
"""

from __future__ import annotations

import numpy as np

from ..errors import TextureError
from .mipmap import MipChain

#: RGBA8 texel size in bytes.
TEXEL_BYTES = 4
#: Cache line size used throughout the memory hierarchy.
CACHE_LINE_BYTES = 64
_LINE_SHIFT = 6
#: Texel tile edge (8x8 texels = 256 B = 4 cache lines per tile).
TILE_EDGE = 8


class TextureLayout:
    """Assigns global byte addresses to every texel of a set of mip chains.

    Textures are placed sequentially in a dedicated texture address
    space, each aligned to a cache line. The per-level base offsets are
    precomputed so address generation is pure numpy arithmetic.
    """

    def __init__(self, chains: "list[MipChain]") -> None:
        if not chains:
            raise TextureError("TextureLayout needs at least one mip chain")
        self.chains = list(chains)
        self._level_bases: "list[np.ndarray]" = []
        self._level_widths: "list[np.ndarray]" = []
        self._level_heights: "list[np.ndarray]" = []
        self._level_tiles_x: "list[np.ndarray]" = []
        self._tex_base: "list[int]" = []
        cursor = 0
        for chain in self.chains:
            self._tex_base.append(cursor)
            bases = []
            widths = []
            heights = []
            tiles = []
            for arr in chain.levels:
                h, w = arr.shape[:2]
                bases.append(cursor)
                widths.append(w)
                heights.append(h)
                tiles_x = (w + TILE_EDGE - 1) // TILE_EDGE
                tiles_y = (h + TILE_EDGE - 1) // TILE_EDGE
                tiles.append(tiles_x)
                nbytes = tiles_x * tiles_y * TILE_EDGE * TILE_EDGE * TEXEL_BYTES
                # Align each level to a cache line.
                cursor += (nbytes + CACHE_LINE_BYTES - 1) & ~(CACHE_LINE_BYTES - 1)
            self._level_bases.append(np.asarray(bases, dtype=np.int64))
            self._level_widths.append(np.asarray(widths, dtype=np.int64))
            self._level_heights.append(np.asarray(heights, dtype=np.int64))
            self._level_tiles_x.append(np.asarray(tiles, dtype=np.int64))
        self.total_bytes = cursor

    def num_textures(self) -> int:
        return len(self.chains)

    def texel_addresses(
        self,
        tex_index: int,
        level: np.ndarray,
        iy: np.ndarray,
        ix: np.ndarray,
    ) -> np.ndarray:
        """Global byte addresses for texels addressed by (level, y, x).

        Coordinates use wrap (GL_REPEAT) addressing, matching the
        sampler. Arrays broadcast together; the result is int64 bytes.
        """
        if not 0 <= tex_index < len(self.chains):
            raise TextureError(f"texture index {tex_index} out of range")
        level = np.asarray(level, dtype=np.int64)
        bases = self._level_bases[tex_index][level]
        w = self._level_widths[tex_index][level]
        h = self._level_heights[tex_index][level]
        x = np.mod(np.asarray(ix, dtype=np.int64), w)
        y = np.mod(np.asarray(iy, dtype=np.int64), h)
        tiles_x = (w + TILE_EDGE - 1) // TILE_EDGE
        tile_index = (y // TILE_EDGE) * tiles_x + (x // TILE_EDGE)
        intra = (y % TILE_EDGE) * TILE_EDGE + (x % TILE_EDGE)
        return bases + (tile_index * (TILE_EDGE * TILE_EDGE) + intra) * TEXEL_BYTES

    def footprint_addresses(
        self,
        tex_index: int,
        level: np.ndarray,
        iu: np.ndarray,
        iv: np.ndarray,
    ) -> np.ndarray:
        """Byte addresses of a 2x2 bilinear footprint's four texels.

        ``(iu, iv)`` is the top-left texel per sample; the result has
        shape ``(*sample_shape, 4)`` in the corner order of
        :func:`~repro.texture.sampler.texel_coords_from_info`. Produces
        bit-identical addresses to :meth:`texel_addresses` on the
        expanded corners, but the tiled address decomposes into
        independent x and y byte offsets — so the wrap mods and tile
        splits run once per axis (not once per corner) and the
        power-of-two tile math reduces to shifts over precomputed
        per-level tile rows.
        """
        if not 0 <= tex_index < len(self.chains):
            raise TextureError(f"texture index {tex_index} out of range")
        level = np.asarray(level, dtype=np.int64)
        bases = self._level_bases[tex_index][level]
        w = self._level_widths[tex_index][level]
        h = self._level_heights[tex_index][level]
        tile_row_bytes = self._level_tiles_x[tex_index][level] << 8
        iu = np.asarray(iu, dtype=np.int64)
        iv = np.asarray(iv, dtype=np.int64)
        x0 = np.mod(iu, w)
        x1 = np.mod(iu + 1, w)
        y0 = np.mod(iv, h)
        y1 = np.mod(iv + 1, h)
        # addr = base + tile_index*256 + intra*4 splits into
        # ypart = (y>>3)*tiles_x*256 + (y&7)*32 and
        # xpart = (x>>3)*256 + (x&7)*4.
        row0 = bases + (y0 >> 3) * tile_row_bytes + ((y0 & 7) << 5)
        row1 = bases + (y1 >> 3) * tile_row_bytes + ((y1 & 7) << 5)
        col0 = ((x0 >> 3) << 8) + ((x0 & 7) << 2)
        col1 = ((x1 >> 3) << 8) + ((x1 & 7) << 2)
        return np.stack(
            [row0 + col0, row0 + col1, row1 + col0, row1 + col1], axis=-1
        )

    @staticmethod
    def line_addresses(byte_addresses: np.ndarray) -> np.ndarray:
        """Convert byte addresses to 64-byte cache-line addresses."""
        return np.asarray(byte_addresses, dtype=np.int64) >> _LINE_SHIFT
