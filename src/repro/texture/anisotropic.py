"""Anisotropic filtering (AF).

AF replaces one trilinear sample with ``N`` trilinear samples placed
along the footprint ellipse's major axis and averaged — Eq. (3) of the
paper. Each constituent sample is taken at the anisotropic LOD
(``lod_af``, the minor-axis level), which is finer than the trilinear
LOD whenever ``N > 1``; that is where AF's sharpness comes from and
also where its texel traffic goes.

Fragments are processed in groups of equal ``N`` so every kernel stays
a dense ``(group_size, N)`` numpy operation.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TextureError
from .footprint import FootprintInfo
from .mipmap import MipChain
from .sampler import (
    TrilinearInfo,
    footprint_keys_from_info,
    texel_coords_from_info,
    trilinear_footprint_keys,
    trilinear_info,
    trilinear_sample,
)


def aniso_sample_positions(
    u: np.ndarray,
    v: np.ndarray,
    major_du: np.ndarray,
    major_dv: np.ndarray,
    n: int,
) -> "tuple[np.ndarray, np.ndarray]":
    """Positions of the ``n`` trilinear samples along the major axis.

    Samples are uniformly spaced at ``t_i = (i + 0.5) / n - 0.5`` so
    they tile the one-pixel footprint extent symmetrically around the
    fragment's own (u, v); for ``n == 1`` the single sample sits exactly
    at the center, making AF degenerate to trilinear filtering.
    """
    if n < 1:
        raise TextureError(f"sample count must be >= 1, got {n}")
    t = (np.arange(n, dtype=np.float64) + 0.5) / n - 0.5
    su = np.asarray(u, dtype=np.float64)[:, None] + t[None, :] * np.asarray(
        major_du, dtype=np.float64
    )[:, None]
    sv = np.asarray(v, dtype=np.float64)[:, None] + t[None, :] * np.asarray(
        major_dv, dtype=np.float64
    )[:, None]
    return su, sv


@dataclass(frozen=True)
class AnisoResult:
    """Output of anisotropic filtering for one equal-``N`` fragment group.

    Attributes:
        color: ``(g, 4)`` filtered colors (mean of the N samples).
        sample_keys: ``(g, n)`` int64 footprint keys, one per sample.
        sample_info: gather data for all ``g*n`` samples (for addresses).
        n: the group's anisotropy degree.
    """

    color: np.ndarray
    sample_keys: np.ndarray
    sample_info: TrilinearInfo
    n: int

    def texel_coords(self):
        """The (levels, iy, ix) of all 8 texels of every sample."""
        return texel_coords_from_info(self.sample_info)


@dataclass(frozen=True)
class AnisoBatchResult:
    """Output of anisotropic filtering for a whole mixed-``N`` batch.

    Sample-granular arrays are flat in CSR order: fragment ``i``'s
    samples occupy ``[row_ptr[i], row_ptr[i+1])``.

    Attributes:
        color: ``(count, 4)`` filtered colors (mean of each row's N).
        sample_keys: ``(total,)`` int64 footprint keys at TF's LOD.
        sample_info: gather data for all ``total`` samples at AF's LOD.
        row_ptr: ``(count + 1,)`` CSR row pointer over fragments.
    """

    color: np.ndarray
    sample_keys: np.ndarray
    sample_info: TrilinearInfo
    row_ptr: np.ndarray

    def texel_coords(self):
        """The (levels, iy, ix) of all 8 texels of every sample."""
        return texel_coords_from_info(self.sample_info)


def anisotropic_filter_batch(
    chain: MipChain,
    u: np.ndarray,
    v: np.ndarray,
    footprints: FootprintInfo,
    row_ptr: np.ndarray,
    *,
    dedup: bool = False,
) -> AnisoBatchResult:
    """Anisotropically filter one whole fragment batch in fused kernels.

    Equivalent to calling :func:`anisotropic_filter` once per equal-N
    group and scattering into CSR slots, but every per-sample stage —
    position generation, LOD resolution, texel gathers, footprint keys
    — runs as one dense kernel over the flat CSR sample axis, and the
    TF-LOD pass computes only the integer key state instead of a second
    full ``trilinear_info``. Outputs are bit-identical to the grouped
    path; only the per-row mean still iterates, once per distinct N, to
    preserve ``mean(axis=1)``'s float32 reduction order exactly.

    ``dedup=True`` gathers each distinct texel once per batch
    (sample-reuse in the spirit of Wronski et al. / Akenine-Möller et
    al.) — profitable when overlapping footprints dominate.
    """
    n = footprints.n
    count = n.shape[0]
    total = int(row_ptr[-1])
    rows = np.repeat(np.arange(count, dtype=np.int64), n)
    within = np.arange(total, dtype=np.int64) - row_ptr[rows]
    t = (within + 0.5) / n[rows].astype(np.float64) - 0.5
    u = np.asarray(u, dtype=np.float64)[rows]
    v = np.asarray(v, dtype=np.float64)[rows]
    su = u + t * footprints.major_du[rows]
    sv = v + t * footprints.major_dv[rows]

    info = trilinear_info(chain, su, sv, footprints.lod_af[rows])
    colors = trilinear_sample(chain, su, sv, None, info=info, dedup=dedup)
    sample_keys = trilinear_footprint_keys(
        chain, su, sv, footprints.lod_tf[rows]
    )

    color = np.empty((count, 4), dtype=np.float32)
    ones = np.nonzero(n == 1)[0]
    if ones.size:
        # N == 1 degenerates to the sample itself (mean of one).
        color[ones] = colors[row_ptr[ones]]
    for n_value in np.unique(n):
        n_value = int(n_value)
        if n_value == 1:
            continue
        group = np.nonzero(n == n_value)[0]
        slots = row_ptr[group][:, None] + np.arange(n_value)[None, :]
        color[group] = colors[slots].mean(axis=1)
    return AnisoBatchResult(
        color=color, sample_keys=sample_keys, sample_info=info, row_ptr=row_ptr
    )


def anisotropic_filter(
    chain: MipChain,
    u: np.ndarray,
    v: np.ndarray,
    footprints: FootprintInfo,
    group_mask: np.ndarray,
    n: int,
) -> AnisoResult:
    """Anisotropically filter the fragments selected by ``group_mask``.

    All selected fragments must have anisotropy degree ``n`` (the
    caller groups fragments by ``footprints.n``).

    The returned ``sample_keys`` identify each sample's position in
    *TF's* sampling grid — its bilinear footprint at ``lod_tf`` — which
    is the paper's sharing notion (Fig. 11: the probability vector is
    over "the number of TF's sample areas that AF's samples overlap
    with"). Filtering itself and the texel addresses use AF's LOD.
    """
    sel_n = footprints.n[group_mask]
    if sel_n.size and not np.all(sel_n == n):
        raise TextureError("group_mask selects fragments with mixed N")
    gu = np.asarray(u, dtype=np.float64)[group_mask]
    gv = np.asarray(v, dtype=np.float64)[group_mask]
    su, sv = aniso_sample_positions(
        gu, gv, footprints.major_du[group_mask], footprints.major_dv[group_mask], n
    )
    lod = np.broadcast_to(footprints.lod_af[group_mask][:, None], su.shape)
    info = trilinear_info(chain, su, sv, lod)
    colors = trilinear_sample(chain, su, sv, lod, info=info)
    key_lod = np.broadcast_to(footprints.lod_tf[group_mask][:, None], su.shape)
    key_info = trilinear_info(chain, su, sv, key_lod)
    return AnisoResult(
        color=colors.mean(axis=1).astype(np.float32),
        sample_keys=footprint_keys_from_info(key_info),
        sample_info=info,
        n=n,
    )
