"""Block-based texture compression (DXT1/ETC-class model).

The paper lists texture compression among the orthogonal acceleration
techniques ([8], [9], [42], [43] in its related work). To demonstrate
that orthogonality (see ``experiments/ext_compression``) we model a
fixed-rate 4x4-block scheme at 4 bits per texel:

* **Encoding** — per 4x4 block, two RGB endpoint colors (the block's
  extremes along its principal luminance ordering) plus a 2-bit palette
  index per texel, i.e. 64 bits of endpoints + 32 bits of indices per
  16 texels -> 8:1 over RGBA float32 storage, 4:1 over RGBA8 (the DXT1
  rate).
* **Decoding** — the palette is the two endpoints and their 1/3, 2/3
  blends, exactly DXT1's 4-color mode.
* **Addressing** — a compressed block is 8 bytes, so a 64-byte cache
  line covers 8 blocks = 128 texels instead of 16: the traffic
  reduction comes through the same cache simulation every other
  experiment uses (:class:`CompressedTextureLayout`).
"""

from __future__ import annotations

import numpy as np

from ..errors import TextureError
from .image import Texture2D
from .mipmap import MipChain

#: Compressed block geometry: 4x4 texels in 8 bytes.
BLOCK_EDGE = 4
BLOCK_BYTES = 8
_LINE_SHIFT = 6
CACHE_LINE_BYTES = 64


def compress_level(level: np.ndarray) -> np.ndarray:
    """Encode-decode one mip level; returns the lossy reconstruction.

    Levels smaller than a block are returned unchanged (hardware stores
    the mip tail uncompressed).
    """
    h, w = level.shape[:2]
    if h < BLOCK_EDGE or w < BLOCK_EDGE:
        return level.copy()
    if h % BLOCK_EDGE or w % BLOCK_EDGE:
        raise TextureError(
            f"level dimensions must be multiples of {BLOCK_EDGE}, got {w}x{h}"
        )
    rgb = level[..., :3]
    blocks = rgb.reshape(
        h // BLOCK_EDGE, BLOCK_EDGE, w // BLOCK_EDGE, BLOCK_EDGE, 3
    ).transpose(0, 2, 1, 3, 4)
    flat = blocks.reshape(-1, BLOCK_EDGE * BLOCK_EDGE, 3)

    # Endpoints: the texels with extreme luminance in each block.
    luma = flat @ np.asarray([0.299, 0.587, 0.114], dtype=flat.dtype)
    lo = flat[np.arange(flat.shape[0]), luma.argmin(axis=1)]
    hi = flat[np.arange(flat.shape[0]), luma.argmax(axis=1)]
    # 4-color palette: lo, hi and their thirds (DXT1 4-color mode).
    weights = np.asarray([0.0, 1.0 / 3.0, 2.0 / 3.0, 1.0], dtype=flat.dtype)
    palette = (
        lo[:, None, :] * (1.0 - weights)[None, :, None]
        + hi[:, None, :] * weights[None, :, None]
    )
    # Nearest palette entry per texel.
    dist = ((flat[:, :, None, :] - palette[:, None, :, :]) ** 2).sum(axis=3)
    idx = dist.argmin(axis=2)
    decoded = np.take_along_axis(palette, idx[:, :, None], axis=1)

    out = level.copy()
    out_rgb = decoded.reshape(
        h // BLOCK_EDGE, w // BLOCK_EDGE, BLOCK_EDGE, BLOCK_EDGE, 3
    ).transpose(0, 2, 1, 3, 4).reshape(h, w, 3)
    out[..., :3] = out_rgb
    return out


def compress_texture(texture: Texture2D) -> Texture2D:
    """Lossily round-trip a texture through the block encoder."""
    return Texture2D(texture.name, compress_level(texture.data))


def compress_chain(chain: MipChain) -> MipChain:
    """Compress every level of a mip chain (re-derived from the base).

    Hardware compresses each level independently; re-encoding each
    generated level (rather than re-mipping the compressed base)
    matches that.
    """
    compressed = MipChain(compress_texture(chain.texture))
    compressed.levels = [compress_level(lv) for lv in chain.levels]
    return compressed


def compression_error(chain: MipChain) -> float:
    """Mean absolute base-level error introduced by the encoder."""
    decoded = compress_level(chain.levels[0])
    return float(np.abs(decoded[..., :3] - chain.levels[0][..., :3]).mean())


class CompressedTextureLayout:
    """Texel address calculation over compressed storage.

    Mirrors :class:`repro.texture.addressing.TextureLayout` but places
    4x4-texel blocks of 8 bytes row-major per level: all 16 texels of a
    block share one 8-byte span, and one 64-byte line holds 8 blocks.
    """

    def __init__(self, chains: "list[MipChain]") -> None:
        if not chains:
            raise TextureError("CompressedTextureLayout needs at least one chain")
        self.chains = list(chains)
        self._level_bases: "list[np.ndarray]" = []
        self._level_widths: "list[np.ndarray]" = []
        self._level_heights: "list[np.ndarray]" = []
        self._level_blocks_x: "list[np.ndarray]" = []
        cursor = 0
        for chain in self.chains:
            bases, widths, heights, blocks = [], [], [], []
            for arr in chain.levels:
                h, w = arr.shape[:2]
                bases.append(cursor)
                widths.append(w)
                heights.append(h)
                blocks_x = (w + BLOCK_EDGE - 1) // BLOCK_EDGE
                blocks_y = (h + BLOCK_EDGE - 1) // BLOCK_EDGE
                blocks.append(blocks_x)
                nbytes = blocks_x * blocks_y * BLOCK_BYTES
                cursor += (nbytes + CACHE_LINE_BYTES - 1) & ~(CACHE_LINE_BYTES - 1)
            self._level_bases.append(np.asarray(bases, dtype=np.int64))
            self._level_widths.append(np.asarray(widths, dtype=np.int64))
            self._level_heights.append(np.asarray(heights, dtype=np.int64))
            self._level_blocks_x.append(np.asarray(blocks, dtype=np.int64))
        self.total_bytes = cursor

    def texel_addresses(self, tex_index, level, iy, ix) -> np.ndarray:
        """Byte address of each texel's containing compressed block."""
        if not 0 <= tex_index < len(self.chains):
            raise TextureError(f"texture index {tex_index} out of range")
        level = np.asarray(level, dtype=np.int64)
        bases = self._level_bases[tex_index][level]
        w = self._level_widths[tex_index][level]
        h = self._level_heights[tex_index][level]
        x = np.mod(np.asarray(ix, dtype=np.int64), w)
        y = np.mod(np.asarray(iy, dtype=np.int64), h)
        blocks_x = (w + BLOCK_EDGE - 1) // BLOCK_EDGE
        block = (y // BLOCK_EDGE) * blocks_x + (x // BLOCK_EDGE)
        return bases + block * BLOCK_BYTES

    def footprint_addresses(self, tex_index, level, iu, iv) -> np.ndarray:
        """Byte addresses of a 2x2 footprint's containing blocks.

        Compressed counterpart of
        :meth:`TextureLayout.footprint_addresses` — same corner order,
        bit-identical to :meth:`texel_addresses` on the expanded
        corners, with the block address split into per-axis byte
        offsets computed once per sample.
        """
        if not 0 <= tex_index < len(self.chains):
            raise TextureError(f"texture index {tex_index} out of range")
        level = np.asarray(level, dtype=np.int64)
        bases = self._level_bases[tex_index][level]
        w = self._level_widths[tex_index][level]
        h = self._level_heights[tex_index][level]
        block_row_bytes = self._level_blocks_x[tex_index][level] << 3
        iu = np.asarray(iu, dtype=np.int64)
        iv = np.asarray(iv, dtype=np.int64)
        x0 = np.mod(iu, w)
        x1 = np.mod(iu + 1, w)
        y0 = np.mod(iv, h)
        y1 = np.mod(iv + 1, h)
        # addr = base + ((y>>2)*blocks_x + (x>>2)) * 8 splits into
        # ypart = (y>>2)*blocks_x*8 and xpart = (x>>2)*8.
        row0 = bases + (y0 >> 2) * block_row_bytes
        row1 = bases + (y1 >> 2) * block_row_bytes
        col0 = (x0 >> 2) << 3
        col1 = (x1 >> 2) << 3
        return np.stack(
            [row0 + col0, row0 + col1, row1 + col0, row1 + col1], axis=-1
        )

    @staticmethod
    def line_addresses(byte_addresses: np.ndarray) -> np.ndarray:
        return np.asarray(byte_addresses, dtype=np.int64) >> _LINE_SHIFT
