"""Texel generation: footprint, LOD and anisotropy computation.

This is the *Texel Generator* + *Texture Quality Selector* of Figure 2.
From the screen-space derivatives of the texture coordinates it derives,
per fragment:

* ``px`` / ``py`` — the lengths of the pixel footprint's images along
  the screen X and Y directions, in base-level texel units;
* the anisotropy degree ``n = clamp(ceil(pmax / pmin), 1, max_aniso)``
  — the paper's sample size ``N`` (ratio of the footprint ellipse's
  major to minor axis, Section IV-A);
* ``lod_tf = log2(pmax)`` — the trilinear LOD (isotropic filtering must
  average over the footprint's *long* axis to avoid aliasing, which is
  exactly the blurriness AF removes);
* ``lod_af = log2(pmax / n)`` — the anisotropic LOD (the minor axis),
  a *finer* mip level than ``lod_tf`` whenever ``n > 1``. The gap
  between the two is the paper's §V-C(2) "LOD shift".
* the major-axis step in normalized UV space along which AF places its
  ``n`` trilinear samples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TextureError

_EPS = 1e-12


@dataclass(frozen=True)
class FootprintInfo:
    """Per-fragment footprint data (all arrays share one shape ``(n,)``)."""

    px: np.ndarray
    py: np.ndarray
    n: np.ndarray  # int32 anisotropy degree in [1, max_aniso]
    lod_tf: np.ndarray
    lod_af: np.ndarray
    major_du: np.ndarray  # full-footprint major-axis extent, normalized u
    major_dv: np.ndarray

    @property
    def num_fragments(self) -> int:
        return self.n.shape[0]


def compute_footprints(
    dudx: np.ndarray,
    dvdx: np.ndarray,
    dudy: np.ndarray,
    dvdy: np.ndarray,
    tex_width: int,
    tex_height: int,
    *,
    max_aniso: int = 16,
    max_level: "int | None" = None,
) -> FootprintInfo:
    """Compute footprint/LOD/anisotropy for a batch of fragments.

    Args:
        dudx..dvdy: screen-space derivatives of *normalized* texture
            coordinates, one value per fragment.
        tex_width, tex_height: base-level texture dimensions.
        max_aniso: the texture unit's maximum anisotropy (Table I: 16).
        max_level: optional clamp for the LODs (defaults to unbounded;
            the sampler clamps again against the actual chain depth).
    """
    if tex_width <= 0 or tex_height <= 0:
        raise TextureError(f"texture size must be positive: {tex_width}x{tex_height}")
    if not 1 <= max_aniso <= 16:
        raise TextureError(f"max_aniso must be in [1, 16], got {max_aniso}")

    dudx = np.asarray(dudx, dtype=np.float64)
    dvdx = np.asarray(dvdx, dtype=np.float64)
    dudy = np.asarray(dudy, dtype=np.float64)
    dvdy = np.asarray(dvdy, dtype=np.float64)

    # Footprint extents in texel units of the base level.
    px = np.hypot(dudx * tex_width, dvdx * tex_height)
    py = np.hypot(dudy * tex_width, dvdy * tex_height)
    pmax = np.maximum(px, py)
    pmin = np.minimum(px, py)

    # Clamp the ratio before the integer cast: a degenerate minor axis
    # (pmin ~ 0) must saturate at max_aniso, not overflow the cast.
    ratio = np.minimum(pmax / np.maximum(pmin, _EPS), float(max_aniso))
    n = np.ceil(ratio - 1e-9).astype(np.int32)
    n = np.clip(n, 1, max_aniso)
    # Magnified fragments (footprint smaller than a texel) never need AF.
    n[pmax <= 1.0] = 1

    lod_tf = np.log2(np.maximum(pmax, 1.0))
    lod_af = np.log2(np.maximum(pmax / n, 1.0))
    if max_level is not None:
        lod_tf = np.minimum(lod_tf, float(max_level))
        lod_af = np.minimum(lod_af, float(max_level))

    # Major axis = the screen direction with the larger footprint image.
    x_major = px >= py
    major_du = np.where(x_major, dudx, dudy)
    major_dv = np.where(x_major, dvdx, dvdy)

    return FootprintInfo(
        px=px,
        py=py,
        n=n,
        lod_tf=lod_tf,
        lod_af=lod_af,
        major_du=major_du,
        major_dv=major_dv,
    )
