"""Texture images (the base level of a mip chain)."""

from __future__ import annotations

import numpy as np

from ..errors import TextureError


def _is_power_of_two(n: int) -> bool:
    return n > 0 and (n & (n - 1)) == 0


class Texture2D:
    """A square power-of-two RGBA texture.

    Data is stored as ``(h, w, 4)`` float32 in ``[0, 1]``. Power-of-two
    dimensions keep mip-chain generation exact, matching the game
    textures the paper's workloads use.
    """

    def __init__(self, name: str, data: np.ndarray) -> None:
        if not name:
            raise TextureError("texture must have a name")
        data = np.asarray(data, dtype=np.float32)
        if data.ndim == 2:
            data = np.stack([data, data, data, np.ones_like(data)], axis=-1)
        if data.ndim != 3 or data.shape[2] != 4:
            raise TextureError(f"texture data must be (h, w, 4), got {data.shape}")
        h, w = data.shape[:2]
        if not (_is_power_of_two(h) and _is_power_of_two(w)):
            raise TextureError(f"texture dimensions must be powers of two, got {w}x{h}")
        if np.isnan(data).any():
            raise TextureError("texture data contains NaNs")
        self.name = name
        self.data = np.clip(data, 0.0, 1.0)

    @property
    def width(self) -> int:
        return self.data.shape[1]

    @property
    def height(self) -> int:
        return self.data.shape[0]

    @property
    def num_texels(self) -> int:
        return self.width * self.height

    def __repr__(self) -> str:
        return f"Texture2D({self.name!r}, {self.width}x{self.height})"
