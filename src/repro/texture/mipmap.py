"""Mipmap chain generation.

A :class:`MipChain` holds the full pyramid for one texture, from the
base level down to 1x1, produced with a 2x2 box filter (the standard
``glGenerateMipmap`` kernel). Trilinear and anisotropic filtering
sample two adjacent levels of this pyramid.
"""

from __future__ import annotations

import numpy as np

from ..errors import TextureError
from .image import Texture2D


def _box_downsample(level: np.ndarray) -> np.ndarray:
    """Average 2x2 texel blocks; a dimension of 1 is kept (non-square mips)."""
    h, w = level.shape[:2]
    nh, nw = max(h // 2, 1), max(w // 2, 1)
    if h == 1 and w == 1:
        raise TextureError("cannot downsample a 1x1 level")
    if h == 1:
        return level.reshape(1, nw, 2, 4).mean(axis=2)
    if w == 1:
        return level.reshape(nh, 2, 1, 4).mean(axis=1)
    return level.reshape(nh, 2, nw, 2, 4).mean(axis=(1, 3))


class MipChain:
    """Full mip pyramid of a texture."""

    def __init__(self, texture: Texture2D) -> None:
        self.texture = texture
        levels = [texture.data]
        while levels[-1].shape[0] > 1 or levels[-1].shape[1] > 1:
            levels.append(_box_downsample(levels[-1]))
        #: ``levels[0]`` is the base (finest) level.
        self.levels: "list[np.ndarray]" = levels

    @property
    def name(self) -> str:
        return self.texture.name

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def max_level(self) -> int:
        return len(self.levels) - 1

    def level_size(self, level: int) -> "tuple[int, int]":
        """(width, height) of a mip level."""
        if not 0 <= level < self.num_levels:
            raise TextureError(f"level {level} out of range [0, {self.max_level}]")
        arr = self.levels[level]
        return arr.shape[1], arr.shape[0]

    def total_texels(self) -> int:
        """Total texel count across all levels (~4/3 of base level)."""
        return sum(lv.shape[0] * lv.shape[1] for lv in self.levels)

    def gather(self, level: np.ndarray, iy: np.ndarray, ix: np.ndarray) -> np.ndarray:
        """Gather texel colors for arrays of (level, y, x) with wrap addressing.

        All three index arrays must share a shape; levels must be valid.
        Returns colors of shape ``(*index_shape, 4)``.
        """
        level = np.asarray(level)
        out = np.empty(level.shape + (4,), dtype=np.float32)
        for lv in np.unique(level):
            arr = self.levels[int(lv)]
            h, w = arr.shape[:2]
            m = level == lv
            out[m] = arr[np.mod(iy[m], h), np.mod(ix[m], w)]
        return out
