"""Mipmap chain generation.

A :class:`MipChain` holds the full pyramid for one texture, from the
base level down to 1x1, produced with a 2x2 box filter (the standard
``glGenerateMipmap`` kernel). Trilinear and anisotropic filtering
sample two adjacent levels of this pyramid.
"""

from __future__ import annotations

import numpy as np

from ..errors import TextureError
from .image import Texture2D


def _box_downsample(level: np.ndarray) -> np.ndarray:
    """Average 2x2 texel blocks; a dimension of 1 is kept (non-square mips)."""
    h, w = level.shape[:2]
    nh, nw = max(h // 2, 1), max(w // 2, 1)
    if h == 1 and w == 1:
        raise TextureError("cannot downsample a 1x1 level")
    if h == 1:
        return level.reshape(1, nw, 2, 4).mean(axis=2)
    if w == 1:
        return level.reshape(nh, 2, 1, 4).mean(axis=1)
    return level.reshape(nh, 2, nw, 2, 4).mean(axis=(1, 3))


class MipChain:
    """Full mip pyramid of a texture."""

    def __init__(self, texture: Texture2D) -> None:
        self.texture = texture
        levels = [texture.data]
        while levels[-1].shape[0] > 1 or levels[-1].shape[1] > 1:
            levels.append(_box_downsample(levels[-1]))
        #: ``levels[0]`` is the base (finest) level.
        self.levels: "list[np.ndarray]" = levels
        # Flat-store cache for vectorized gathers (built lazily; the
        # token invalidates it when ``levels`` is swapped, e.g. by
        # ``compress_chain`` or a test patching one level in place).
        self._flat_cache: "tuple | None" = None
        self._flat_token: "tuple | None" = None

    def flat_store(self) -> "tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]":
        """``(flat_texels, bases, widths, heights)`` for indexed gathers.

        ``flat_texels`` is every level's texels concatenated row-major
        as one ``(total_texels, 4)`` float32 array; texel ``(lv, y, x)``
        lives at ``bases[lv] + y * widths[lv] + x``. Turning the
        per-level Python loop of the old gather into one fancy index is
        the texture unit's main batching win.
        """
        token = tuple(id(lv) for lv in self.levels)
        if self._flat_cache is None or self._flat_token != token:
            widths = np.asarray([lv.shape[1] for lv in self.levels], dtype=np.int64)
            heights = np.asarray([lv.shape[0] for lv in self.levels], dtype=np.int64)
            sizes = widths * heights
            bases = np.zeros(len(self.levels), dtype=np.int64)
            np.cumsum(sizes[:-1], out=bases[1:])
            flat = np.concatenate(
                [np.asarray(lv, dtype=np.float32).reshape(-1, 4) for lv in self.levels]
            )
            self._flat_cache = (flat, bases, widths, heights)
            self._flat_token = token
        return self._flat_cache

    def level_dims(self) -> "tuple[np.ndarray, np.ndarray]":
        """Per-level ``(widths, heights)`` int64 arrays (index by level)."""
        _, _, widths, heights = self.flat_store()
        return widths, heights

    @property
    def name(self) -> str:
        return self.texture.name

    @property
    def num_levels(self) -> int:
        return len(self.levels)

    @property
    def max_level(self) -> int:
        return len(self.levels) - 1

    def level_size(self, level: int) -> "tuple[int, int]":
        """(width, height) of a mip level."""
        if not 0 <= level < self.num_levels:
            raise TextureError(f"level {level} out of range [0, {self.max_level}]")
        arr = self.levels[level]
        return arr.shape[1], arr.shape[0]

    def total_texels(self) -> int:
        """Total texel count across all levels (~4/3 of base level)."""
        return sum(lv.shape[0] * lv.shape[1] for lv in self.levels)

    def gather(self, level: np.ndarray, iy: np.ndarray, ix: np.ndarray) -> np.ndarray:
        """Gather texel colors for arrays of (level, y, x) with wrap addressing.

        All three index arrays must share a shape; levels must be valid.
        Returns colors of shape ``(*index_shape, 4)``.
        """
        return self.gather_flat(self.flat_indices(level, iy, ix))

    def flat_indices(
        self, level: np.ndarray, iy: np.ndarray, ix: np.ndarray
    ) -> np.ndarray:
        """Flat-store indices of (level, y, x) texels (wrap addressing).

        Two texel references alias the same flat index exactly when
        they name the same physical texel, so these indices double as
        the dedup identity for batch sample reuse.
        """
        _, bases, widths, heights = self.flat_store()
        level = np.asarray(level, dtype=np.int64)
        w = widths[level]
        return (
            bases[level]
            + np.mod(np.asarray(iy, dtype=np.int64), heights[level]) * w
            + np.mod(np.asarray(ix, dtype=np.int64), w)
        )

    def gather_flat(self, idx: np.ndarray, *, dedup: bool = False) -> np.ndarray:
        """Texel colors for flat-store indices from :meth:`flat_indices`.

        With ``dedup=True`` duplicate texels are fetched once and
        broadcast back (sample reuse across overlapping footprints) —
        worth it only when the batch's duplication ratio is high enough
        to amortize the sort ``np.unique`` performs.
        """
        flat, _, _, _ = self.flat_store()
        if dedup:
            unique, inverse = np.unique(idx.reshape(-1), return_inverse=True)
            return flat[unique][inverse].reshape(idx.shape + (4,))
        return flat[idx]
