"""Bilinear and trilinear texture sampling kernels.

A *trilinear sample* touches a fixed set of 8 texels: the 2x2 bilinear
footprint at each of the two mip levels enclosing the requested LOD.
These texel sets are the currency of the paper's distribution-based
prediction: two trilinear samples "share the same set of texels"
(Section IV-C(B)) exactly when their footprint keys — the packed
(level, floor(u*W - 0.5), floor(v*H - 0.5)) integers for both levels —
coincide.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TextureError
from .mipmap import MipChain

# Footprint-key packing widths. Textures up to 8192 texels/side (13 bits
# of integer footprint coordinate after wrap) and 16 mip levels fit in a
# single int64 key with room to also pack a texture index upstream.
_COORD_BITS = 13
_COORD_MASK = (1 << _COORD_BITS) - 1
_LEVEL_BITS = 4


@dataclass(frozen=True)
class TrilinearInfo:
    """Integer gather data for a batch of trilinear samples.

    ``l0``/``l1`` are the enclosing mip levels; ``iu*``/``iv*`` the
    top-left integer texel of the 2x2 bilinear footprint at each level;
    ``fu*``/``fv*`` the bilinear fractions and ``lfrac`` the level
    blend. The fractions are float32 — that is the precision the
    filtering kernels blend in, so storing float64 here only paid
    conversion and memory-traffic cost.
    """

    l0: np.ndarray
    l1: np.ndarray
    iu0: np.ndarray
    iv0: np.ndarray
    fu0: np.ndarray
    fv0: np.ndarray
    iu1: np.ndarray
    iv1: np.ndarray
    fu1: np.ndarray
    fv1: np.ndarray
    lfrac: np.ndarray


def _bilinear_setup(u, v, width: int, height: int):
    """Texel-space footprint of a bilinear sample at one level."""
    tx = np.asarray(u, dtype=np.float64) * width - 0.5
    ty = np.asarray(v, dtype=np.float64) * height - 0.5
    iu = np.floor(tx).astype(np.int64)
    iv = np.floor(ty).astype(np.int64)
    return iu, iv, tx - iu, ty - iv


def bilinear_sample(chain: MipChain, level: int, u, v) -> np.ndarray:
    """Bilinearly sample one mip level at normalized coordinates (wrap)."""
    if not 0 <= level < chain.num_levels:
        raise TextureError(f"level {level} out of range")
    arr = chain.levels[level]
    h, w = arr.shape[:2]
    iu, iv, fu, fv = _bilinear_setup(u, v, w, h)
    c00 = arr[np.mod(iv, h), np.mod(iu, w)]
    c10 = arr[np.mod(iv, h), np.mod(iu + 1, w)]
    c01 = arr[np.mod(iv + 1, h), np.mod(iu, w)]
    c11 = arr[np.mod(iv + 1, h), np.mod(iu + 1, w)]
    fu = fu[..., None]
    fv = fv[..., None]
    top = c00 * (1 - fu) + c10 * fu
    bot = c01 * (1 - fu) + c11 * fu
    return (top * (1 - fv) + bot * fv).astype(np.float32)


def _level_setup(u, v, widths, heights, level):
    """Bilinear footprints at per-sample mip levels (vectorized).

    Identical arithmetic to :func:`_bilinear_setup`, but the level
    dimensions come from per-sample lookups into the chain's level-size
    arrays instead of a Python loop over unique levels with boolean
    masking — the masked version dominated ``trilinear_info`` time.
    """
    tx = u * widths[level] - 0.5
    ty = v * heights[level] - 0.5
    iu = np.floor(tx).astype(np.int64)
    iv = np.floor(ty).astype(np.int64)
    fu = (tx - iu).astype(np.float32)
    fv = (ty - iv).astype(np.float32)
    return iu, iv, fu, fv


def trilinear_info(chain: MipChain, u, v, lod) -> TrilinearInfo:
    """Resolve LODs and bilinear footprints for a batch of trilinear samples."""
    lod = np.clip(np.asarray(lod, dtype=np.float64), 0.0, chain.max_level)
    l0 = np.floor(lod).astype(np.int64)
    l1 = np.minimum(l0 + 1, chain.max_level)
    lfrac = (lod - l0).astype(np.float32)

    shape = np.broadcast(np.asarray(u), lod).shape
    u = np.broadcast_to(np.asarray(u, dtype=np.float64), shape)
    v = np.broadcast_to(np.asarray(v, dtype=np.float64), shape)
    widths, heights = chain.level_dims()
    iu0, iv0, fu0, fv0 = _level_setup(u, v, widths, heights, l0)
    iu1, iv1, fu1, fv1 = _level_setup(u, v, widths, heights, l1)
    return TrilinearInfo(
        l0=l0, l1=l1, iu0=iu0, iv0=iv0, fu0=fu0, fv0=fv0,
        iu1=iu1, iv1=iv1, fu1=fu1, fv1=fv1, lfrac=lfrac,
    )


def _level_flat_indices(chain: MipChain, level, iu, iv) -> np.ndarray:
    """Flat-store indices of one level's 2x2 footprint, corner-major.

    Corner order matches :func:`texel_coords_from_info`:
    ``(iv, iu), (iv, iu+1), (iv+1, iu), (iv+1, iu+1)``. The wrap mods
    are computed once per axis and combined, instead of once per corner.
    """
    _, bases, widths, heights = chain.flat_store()
    w = widths[level]
    h = heights[level]
    x0 = np.mod(iu, w)
    x1 = np.mod(iu + 1, w)
    row0 = bases[level] + np.mod(iv, h) * w
    row1 = bases[level] + np.mod(iv + 1, h) * w
    return np.stack(
        [row0 + x0, row0 + x1, row1 + x0, row1 + x1], axis=-1
    )


def sample_flat_indices(chain: MipChain, info: TrilinearInfo) -> np.ndarray:
    """Flat-store indices of all 8 texels of each trilinear sample.

    Shape ``(*sample_shape, 8)``: the ``l0`` 2x2 footprint followed by
    the ``l1`` footprint, in :func:`texel_coords_from_info` order.
    """
    return np.concatenate(
        [
            _level_flat_indices(chain, info.l0, info.iu0, info.iv0),
            _level_flat_indices(chain, info.l1, info.iu1, info.iv1),
        ],
        axis=-1,
    )


def _blend_gathered(info: TrilinearInfo, g: np.ndarray) -> np.ndarray:
    """Trilinear blend of pre-gathered ``(*shape, 8, 4)`` texel colors."""
    fu0 = np.asarray(info.fu0, dtype=np.float32)[..., None]
    fv0 = np.asarray(info.fv0, dtype=np.float32)[..., None]
    top = g[..., 0, :] * (1 - fu0) + g[..., 1, :] * fu0
    bot = g[..., 2, :] * (1 - fu0) + g[..., 3, :] * fu0
    c0 = top * (1 - fv0) + bot * fv0
    fu1 = np.asarray(info.fu1, dtype=np.float32)[..., None]
    fv1 = np.asarray(info.fv1, dtype=np.float32)[..., None]
    top = g[..., 4, :] * (1 - fu1) + g[..., 5, :] * fu1
    bot = g[..., 6, :] * (1 - fu1) + g[..., 7, :] * fu1
    c1 = top * (1 - fv1) + bot * fv1
    lf = np.asarray(info.lfrac, dtype=np.float32)[..., None]
    return (c0 * (1 - lf) + c1 * lf).astype(np.float32)


def trilinear_sample(
    chain: MipChain,
    u,
    v,
    lod,
    info: "TrilinearInfo | None" = None,
    *,
    dedup: bool = False,
) -> np.ndarray:
    """Trilinearly sample the chain; optionally reuse precomputed info.

    ``dedup=True`` fetches each distinct texel of the batch once
    (sample reuse across overlapping footprints) before blending.
    """
    if info is None:
        info = trilinear_info(chain, u, v, lod)
    g = chain.gather_flat(sample_flat_indices(chain, info), dedup=dedup)
    return _blend_gathered(info, g)


def footprint_keys_from_info(info: TrilinearInfo) -> np.ndarray:
    """Pack each sample's 8-texel set identity into one int64 key.

    Footprint coordinates are wrapped into ``_COORD_BITS`` before
    packing; the coarse-level footprint is included so two samples get
    equal keys only when *both* bilinear footprints coincide.
    """
    key = info.l0.astype(np.int64)
    for part in (
        info.iu0 & _COORD_MASK,
        info.iv0 & _COORD_MASK,
        info.iu1 & _COORD_MASK,
        info.iv1 & _COORD_MASK,
    ):
        key = (key << _COORD_BITS) | part
    return key


def trilinear_footprint_keys(chain: MipChain, u, v, lod) -> np.ndarray:
    """Footprint keys for trilinear samples at (u, v, lod).

    Computes only the integer footprint state the key packs — no
    bilinear fractions, no texel gathers — so a key-only pass (the AF
    sharing statistics take one per constituent sample) costs a
    fraction of a full :func:`trilinear_info`. Produces bit-identical
    keys to ``footprint_keys_from_info(trilinear_info(...))``.
    """
    lod = np.clip(np.asarray(lod, dtype=np.float64), 0.0, chain.max_level)
    l0 = np.floor(lod).astype(np.int64)
    l1 = np.minimum(l0 + 1, chain.max_level)
    u = np.asarray(u, dtype=np.float64)
    v = np.asarray(v, dtype=np.float64)
    widths, heights = chain.level_dims()
    iu0 = np.floor(u * widths[l0] - 0.5).astype(np.int64)
    iv0 = np.floor(v * heights[l0] - 0.5).astype(np.int64)
    iu1 = np.floor(u * widths[l1] - 0.5).astype(np.int64)
    iv1 = np.floor(v * heights[l1] - 0.5).astype(np.int64)
    key = l0
    for part in (
        iu0 & _COORD_MASK,
        iv0 & _COORD_MASK,
        iu1 & _COORD_MASK,
        iv1 & _COORD_MASK,
    ):
        key = (key << _COORD_BITS) | part
    return key


def unpack_footprint_key(key):
    """Invert :func:`footprint_keys_from_info` field by field.

    Returns ``(l0, iu0, iv0, iu1, iv1)`` with the coordinates still in
    their wrapped ``_COORD_BITS``-bit form (the pack is lossy beyond
    that — wrap-around aliasing is exactly what the key-collision
    property tests probe). Accepts scalars or arrays.
    """
    key = np.asarray(key, dtype=np.int64)
    fields = []
    for _ in range(4):
        fields.append(key & _COORD_MASK)
        key = key >> _COORD_BITS
    iv1, iu1, iv0, iu0 = fields
    return key, iu0, iv0, iu1, iv1


def texel_coords_from_info(info: TrilinearInfo):
    """Expand gather info to the 8 texel coordinates per sample.

    Returns ``(levels, iy, ix)`` each of shape ``(*sample_shape, 8)``
    — the 2x2 footprint at ``l0`` followed by the 2x2 footprint at
    ``l1`` — ready for :meth:`TextureLayout.texel_addresses`.
    """
    def corners(iu, iv):
        return (
            np.stack([iv, iv, iv + 1, iv + 1], axis=-1),
            np.stack([iu, iu + 1, iu, iu + 1], axis=-1),
        )

    iy0, ix0 = corners(info.iu0, info.iv0)
    iy1, ix1 = corners(info.iu1, info.iv1)
    levels = np.concatenate(
        [
            np.repeat(info.l0[..., None], 4, axis=-1),
            np.repeat(info.l1[..., None], 4, axis=-1),
        ],
        axis=-1,
    )
    iy = np.concatenate([iy0, iy1], axis=-1)
    ix = np.concatenate([ix0, ix1], axis=-1)
    return levels, iy, ix
