"""The conventional texture unit (Figure 2, blue block).

:class:`TextureUnit` runs the full three-step filtering chain for a
batch of fragments bound to one texture and captures, per fragment:

* the anisotropically filtered color (the baseline output),
* the trilinear-only color at TF's LOD (what naive approximation gives),
* the trilinear-only color at AF's LOD (what PATU's LOD-reuse gives),
* the anisotropy degree ``N`` and both LODs,
* the footprint key of every AF constituent sample (CSR layout), and
* the cache-line addresses every variant would fetch.

Capturing all three color variants plus the keys in a single pass is
what lets the experiment layer evaluate *any* (scenario, threshold)
point without re-rendering — PATU's decisions are pure functions of
this per-fragment state (Section IV-C).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import TextureError
from ..obs import TELEMETRY
from ..resilience.faults import FAULTS
from .addressing import TextureLayout
from .anisotropic import anisotropic_filter_batch
from .footprint import compute_footprints
from .mipmap import MipChain
from .sampler import trilinear_info, trilinear_sample

#: Texels touched by one trilinear sample (2x2 at each of two levels).
TEXELS_PER_TRILINEAR = 8


@dataclass
class FilteredBatch:
    """Filtering results for one (texture, fragment-batch) pair.

    ``sample_row_ptr`` is the CSR row pointer over fragments: fragment
    ``i``'s AF samples occupy ``values[row_ptr[i]:row_ptr[i+1]]`` in
    ``sample_keys`` and, times :data:`TEXELS_PER_TRILINEAR`, in
    ``af_lines``.
    """

    tex_index: int
    count: int
    n: np.ndarray
    lod_tf: np.ndarray
    lod_af: np.ndarray
    af_color: np.ndarray
    tf_color: np.ndarray
    tf_af_lod_color: np.ndarray
    sample_keys: np.ndarray
    sample_row_ptr: np.ndarray
    af_lines: np.ndarray
    tf_lines: np.ndarray
    tf_af_lod_lines: np.ndarray

    @property
    def total_af_samples(self) -> int:
        return int(self.sample_row_ptr[-1])


class TextureUnit:
    """Filters fragment batches against one texture's mip chain."""

    def __init__(
        self,
        layout: TextureLayout,
        *,
        max_aniso: int = 16,
        dedup_gathers: bool = False,
    ) -> None:
        self.layout = layout
        self.max_aniso = max_aniso
        #: Fetch each distinct texel once per AF batch (sample reuse).
        #: Off by default: the np.unique sort only pays for itself on
        #: batches with very high footprint overlap.
        self.dedup_gathers = dedup_gathers

    def filter_batch(
        self,
        tex_index: int,
        u: np.ndarray,
        v: np.ndarray,
        dudx: np.ndarray,
        dvdx: np.ndarray,
        dudy: np.ndarray,
        dvdy: np.ndarray,
    ) -> FilteredBatch:
        """Run texel generation, address calculation and all filter variants."""
        chain: MipChain = self.layout.chains[tex_index]
        u = np.asarray(u, dtype=np.float64)
        v = np.asarray(v, dtype=np.float64)
        count = u.shape[0]
        if count == 0:
            raise TextureError("cannot filter an empty fragment batch")

        with TELEMETRY.span("texture.footprints", fragments=count):
            fp = compute_footprints(
                dudx, dvdx, dudy, dvdy,
                chain.texture.width, chain.texture.height,
                max_aniso=self.max_aniso, max_level=chain.max_level,
            )

        # Trilinear-only variants (one sample per fragment).
        with TELEMETRY.span("texture.trilinear_variants"):
            tf_info = trilinear_info(chain, u, v, fp.lod_tf)
            tf_color = trilinear_sample(chain, u, v, fp.lod_tf, info=tf_info)
            tfa_info = trilinear_info(chain, u, v, fp.lod_af)
            tf_af_lod_color = trilinear_sample(chain, u, v, fp.lod_af, info=tfa_info)
            tf_lines = self._lines_from_info(tex_index, tf_info)
            tf_af_lod_lines = self._lines_from_info(tex_index, tfa_info)

        # Anisotropic variant: all N groups fused into one flat CSR
        # kernel pass (the flat sample order *is* the CSR value order,
        # so no per-group slot scatter remains).
        row_ptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(fp.n, out=row_ptr[1:])
        total = int(row_ptr[-1])

        with TELEMETRY.span("texture.anisotropic", samples=total):
            result = anisotropic_filter_batch(
                chain, u, v, fp, row_ptr, dedup=self.dedup_gathers
            )
            af_color = result.color
            sample_keys = result.sample_keys
            af_lines = self._lines_from_info(
                tex_index, result.sample_info
            ).reshape(-1)

        if FAULTS.enabled:
            # Injected hardware faults: garbage texels in the filtered
            # outputs, and lost line fetches re-served from the line
            # buffer. The capture layer sanitizes the colors (counting
            # each scrubbed texel) before they reach the quality model.
            af_color = FAULTS.corrupt_colors(af_color, "texture.af_color")
            tf_color = FAULTS.corrupt_colors(tf_color, "texture.tf_color")
            tf_af_lod_color = FAULTS.corrupt_colors(
                tf_af_lod_color, "texture.tfa_color"
            )
            af_lines = FAULTS.drop_lines(af_lines, "texture.af_fetches")
            tf_lines = FAULTS.drop_lines(tf_lines, "texture.tf_fetches")
            tf_af_lod_lines = FAULTS.drop_lines(
                tf_af_lod_lines, "texture.tfa_fetches"
            )

        if TELEMETRY.enabled:
            TELEMETRY.count("texture.fragments", count)
            TELEMETRY.count("texture.af_samples", total)
            # AF's N samples plus the two captured TF variants, each one
            # trilinear sample per fragment.
            TELEMETRY.count("texture.trilinear_samples", total + 2 * count)
            TELEMETRY.count(
                "texture.address_lines",
                af_lines.size + tf_lines.size + tf_af_lod_lines.size,
            )
            TELEMETRY.observe("texture.batch_mean_aniso", float(fp.n.mean()))

        return FilteredBatch(
            tex_index=tex_index,
            count=count,
            n=fp.n,
            lod_tf=fp.lod_tf,
            lod_af=fp.lod_af,
            af_color=af_color,
            tf_color=tf_color,
            tf_af_lod_color=tf_af_lod_color,
            sample_keys=sample_keys,
            sample_row_ptr=row_ptr,
            af_lines=af_lines,
            tf_lines=tf_lines,
            tf_af_lod_lines=tf_af_lod_lines,
        )

    def _lines_from_info(self, tex_index: int, info) -> np.ndarray:
        """Cache-line addresses of the 8 texels of each trilinear sample.

        Uses the layout's per-footprint address kernel (wrap mods and
        tile math once per 2x2 footprint, not per texel); the 8-texel
        order matches :func:`~repro.texture.sampler.texel_coords_from_info`.
        """
        addrs = np.concatenate(
            [
                self.layout.footprint_addresses(
                    tex_index, info.l0, info.iu0, info.iv0
                ),
                self.layout.footprint_addresses(
                    tex_index, info.l1, info.iu1, info.iv1
                ),
            ],
            axis=-1,
        )
        return TextureLayout.line_addresses(addrs)
