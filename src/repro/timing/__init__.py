"""Performance (cycle) models for the texture pipeline and the whole GPU.

The reproduction cannot be cycle-accurate like the paper's ATTILA-sim;
instead it uses throughput-latency models driven by the exact event
counts the functional simulation produces (trilinear samples filtered,
addresses computed, cache hits/misses at every level, DRAM traffic).
All reported performance numbers are *ratios between design points*
under the same model, matching how the paper reports them (normalized
to the 16x-AF baseline).
"""

from .params import TimingParams
from .texpipe import TexturePipelineModel, TextureTiming
from .gpu_timing import GpuTimingModel, FrameTiming, FrameWorkload

__all__ = [
    "FrameTiming",
    "FrameWorkload",
    "GpuTimingModel",
    "TexturePipelineModel",
    "TextureTiming",
    "TimingParams",
]
