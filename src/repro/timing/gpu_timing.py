"""Whole-GPU frame timing model.

Frame time decomposes along Figure 2's pipeline: geometry processing
(vertex shading, clipping, culling, tiling) runs ahead of per-tile
fragment work; within the fragment phase the shader ALU work and the
texture pipeline overlap, so the phase is bounded by the slower of the
two. The sum of both phases plus fixed per-frame overhead is the
frame's GPU time, from which fps and vsync behaviour follow
(Section VI's replay methodology).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GpuConfig
from ..errors import PipelineError
from .params import TimingParams
from .texpipe import TextureTiming


@dataclass(frozen=True)
class FrameWorkload:
    """Geometry/fragment workload counts of one frame."""

    vertices: int
    triangles: int
    tile_triangle_pairs: int
    fragments_generated: int
    fragments_shaded: int

    def __post_init__(self) -> None:
        if min(
            self.vertices,
            self.triangles,
            self.tile_triangle_pairs,
            self.fragments_generated,
            self.fragments_shaded,
        ) < 0:
            raise PipelineError("workload counts must be non-negative")


@dataclass(frozen=True)
class FrameTiming:
    """Cycle breakdown of one rendered frame."""

    geometry_cycles: float
    raster_cycles: float
    shader_cycles: float
    texture_busy_cycles: float
    fixed_cycles: float
    texture_overlap: float = 0.35

    @property
    def fragment_phase_cycles(self) -> float:
        """Shading and texturing partially overlap within the phase.

        The longer of the two bounds the phase; a ``texture_overlap``
        fraction of the shorter hides underneath it and the rest is
        exposed (shader threads stall waiting on texture results).
        """
        longer = max(self.shader_cycles, self.texture_busy_cycles)
        shorter = min(self.shader_cycles, self.texture_busy_cycles)
        return longer + (1.0 - self.texture_overlap) * shorter

    @property
    def total_cycles(self) -> float:
        return (
            self.geometry_cycles
            + self.raster_cycles
            + self.fragment_phase_cycles
            + self.fixed_cycles
        )


class GpuTimingModel:
    """Combines workload counts and texture timing into frame cycles."""

    def __init__(self, config: GpuConfig, params: "TimingParams | None" = None):
        self.config = config
        self.params = params or TimingParams()

    def frame_timing(
        self, workload: FrameWorkload, texture: TextureTiming
    ) -> FrameTiming:
        cfg = self.config
        p = self.params
        geometry = workload.vertices * p.cycles_per_vertex / cfg.total_shaders
        raster = (
            workload.triangles * p.cycles_per_triangle
            + workload.tile_triangle_pairs * p.cycles_per_tile_triangle
        ) / cfg.num_clusters
        shader = (
            workload.fragments_shaded
            * p.frag_alu_ops
            / (cfg.total_shaders * cfg.simd_width)
        )
        return FrameTiming(
            geometry_cycles=geometry,
            raster_cycles=raster,
            shader_cycles=shader,
            texture_busy_cycles=texture.busy_cycles,
            fixed_cycles=p.frame_fixed_cycles,
            texture_overlap=p.texture_overlap,
        )

    def fps(self, timing: FrameTiming) -> float:
        """Uncapped frame rate implied by the frame's GPU time."""
        return self.config.frequency_hz / timing.total_cycles
