"""Calibration constants of the timing model.

These are the free parameters of the throughput-latency model. They
were tuned once, against the paper's *baseline* observations (Section
II-B: disabling AF speeds up rendering by ~41% on average and cuts
texture-filtering latency by ~47%; Fig. 6: texture fetching is ~71% of
memory bandwidth), then frozen for every experiment. No experiment
tunes them per-design-point — differences between design points come
exclusively from the measured event counts.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class TimingParams:
    """Free constants of the GPU timing model."""

    #: Shader cycles to process one vertex (transform + assembly setup).
    cycles_per_vertex: float = 12.0
    #: Non-texture shader ALU ops per fragment (lighting, color math,
    #: blending — commercial-game fragment shaders run hundreds of ops).
    frag_alu_ops: float = 288.0
    #: Rasterizer setup cycles per triangle.
    cycles_per_triangle: float = 16.0
    #: Tiling-engine cycles per (tile, triangle) pair.
    cycles_per_tile_triangle: float = 2.0
    #: Fixed per-frame overhead cycles (state changes, buffer flushes).
    frame_fixed_cycles: float = 20_000.0

    #: L1 texture-cache hit latency (cycles).
    l1_hit_latency: float = 4.0
    #: L2 hit latency seen by an L1 miss (cycles).
    l2_hit_latency: float = 24.0
    #: Memory-level parallelism: outstanding texture misses per unit.
    mlp_per_unit: float = 20.0
    #: Intra-pixel overlap divisor for the per-request latency metric.
    request_overlap: float = 4.0
    #: Fixed per-request cycles (texel generation, LOD selection, queue
    #: traversal) paid regardless of how many samples the request needs.
    request_fixed_cycles: float = 14.0
    #: Effective DRAM bandwidth derate vs. the Table I peak (scheduling,
    #: refresh, bank conflicts).
    dram_efficiency: float = 0.95

    #: Address ALU throughput: cycles per trilinear sample per texture
    #: unit (4 address ALUs compute one sample's 8 addresses in 2
    #: cycles, across 4 pipelines -> 0.5 cycles/sample amortized).
    addr_cycles_per_sample: float = 0.5
    #: PATU hash-table lookups are overlapped with address calculation
    #: (Section V-B) but the final entropy computation and compare add
    #: a small fixed cost per checked pixel.
    patu_check_cycles: float = 0.25

    #: Fraction of the shorter of (shader work, texture busy time) hidden
    #: under the longer within the fragment phase. 0 = fully serial,
    #: 1 = perfect overlap. Shader threads stall on texture results, so
    #: real machines sit well below 1.
    texture_overlap: float = 0.35
