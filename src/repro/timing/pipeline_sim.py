"""Discrete-event model of the (PATU-augmented) texture pipeline.

The analytic model in :mod:`repro.timing.texpipe` prices a frame from
aggregate event counts. This module provides the cross-check: an
explicit in-order pipeline simulation of one texture unit processing a
stream of quads through the Fig. 14 stages —

    texel generation -> stage-1 check -> quality (LOD) selection ->
    texel address calculation (+ hash-table insertion, overlapped) ->
    stage-2 check -> texel fetching -> filtering

Each stage is a resource with a service time; a quad occupies a stage
for its service time and stages work on different quads concurrently
(standard pipeline semantics: the unit's throughput is set by the
slowest stage, plus exposed memory stalls). Fetch latency is hidden up
to a bounded number of outstanding misses, as in the analytic model.

Used by the validation tests to show the closed-form throughput model
and the event-driven model agree on relative design-point costs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..config import GpuConfig
from ..errors import PipelineError
from ..timing.params import TimingParams


@dataclass(frozen=True)
class QuadWork:
    """Texture work of one quad (4 pixels) at one design point.

    ``samples_per_pixel`` are the trilinear samples each pixel filters
    (already reflecting any PATU approximation); ``address_samples``
    the samples whose addresses are computed (stage-2 recalculation
    included); ``misses`` the quad's L1 misses with their service
    latencies precomputed by the caller.
    """

    samples_per_pixel: "tuple[int, int, int, int]"
    address_samples: int
    checked: bool
    miss_latencies: "tuple[float, ...]" = ()

    def __post_init__(self) -> None:
        if len(self.samples_per_pixel) != 4:
            raise PipelineError("a quad has exactly 4 pixels")
        if min(self.samples_per_pixel) < 0 or self.address_samples < 0:
            raise PipelineError("work counts must be non-negative")


@dataclass
class PipelineTrace:
    """Result of simulating one quad stream."""

    total_cycles: float
    stage_busy: "dict[str, float]" = field(default_factory=dict)
    quads: int = 0

    @property
    def bottleneck(self) -> str:
        return max(self.stage_busy, key=self.stage_busy.get)


class TexturePipelineSimulator:
    """In-order pipelined texture unit with PATU stages."""

    def __init__(self, config: GpuConfig, params: "TimingParams | None" = None):
        self.config = config
        self.params = params or TimingParams()

    # -- per-stage service times (cycles a quad occupies the stage) ----

    def _service_times(self, quad: QuadWork) -> "dict[str, float]":
        cfg = self.config.texture_unit
        p = self.params
        max_samples = max(quad.samples_per_pixel)
        services = {
            "texel_gen": 1.0,
            "stage1_check": p.patu_check_cycles if quad.checked else 0.0,
            "lod_select": 1.0,
            # The 4 address ALUs serve the quad's pixels in parallel,
            # so the quad occupies the stage for its total address work
            # spread over its active pixels. Hash insertion is
            # overlapped with address calculation (Section V-B).
            "addr_calc": quad.address_samples
            * p.addr_cycles_per_sample
            / max(sum(1 for s in quad.samples_per_pixel if s > 0), 1),
            "stage2_check": p.patu_check_cycles if quad.checked else 0.0,
            # Filtering: one trilinear per pipeline per 2 cycles; the
            # quad's four pipelines run in lockstep on their own pixels.
            "filter": max_samples * cfg.cycles_per_trilinear,
        }
        return services

    def run(self, quads: "list[QuadWork]") -> PipelineTrace:
        """Simulate a quad stream through the pipeline."""
        if not quads:
            raise PipelineError("need at least one quad")
        p = self.params
        stage_names = (
            "texel_gen", "stage1_check", "lod_select",
            "addr_calc", "stage2_check", "fetch", "filter",
        )
        stage_free = {name: 0.0 for name in stage_names}
        stage_busy = {name: 0.0 for name in stage_names}
        #: Completion times of in-flight misses (bounded MLP window).
        outstanding: "list[float]" = []
        mlp = max(int(p.mlp_per_unit), 1)

        finish = 0.0
        for quad in quads:
            services = self._service_times(quad)
            # Enter the pipeline as soon as the first stage frees up.
            t = max(stage_free["texel_gen"], 0.0)
            for name in ("texel_gen", "stage1_check", "lod_select",
                         "addr_calc", "stage2_check"):
                t = max(t, stage_free[name])
                service = services[name]
                stage_free[name] = t + service
                stage_busy[name] += service
                t += service

            # Fetch: misses enter a bounded outstanding window; the quad
            # proceeds when its own misses are issued, but filtering
            # waits for their completion.
            t = max(t, stage_free["fetch"])
            issue = t
            done_by = t
            for latency in quad.miss_latencies:
                if len(outstanding) >= mlp:
                    # Wait for the oldest in-flight miss to retire.
                    issue = max(issue, min(outstanding))
                    outstanding.remove(min(outstanding))
                completion = issue + latency
                outstanding.append(completion)
                done_by = max(done_by, completion)
            stage_free["fetch"] = issue
            stage_busy["fetch"] += done_by - t

            # Filtering starts once texels are available.
            t = max(done_by, stage_free["filter"])
            stage_free["filter"] = t + services["filter"]
            stage_busy["filter"] += services["filter"]
            finish = max(finish, stage_free["filter"])

        return PipelineTrace(
            total_cycles=finish, stage_busy=stage_busy, quads=len(quads)
        )


def quads_from_decision(
    n: np.ndarray,
    trilinear: np.ndarray,
    address: np.ndarray,
    checked: bool,
    *,
    miss_rate: float = 0.05,
    miss_latency: float = 24.0,
    seed: int = 0,
) -> "list[QuadWork]":
    """Group per-pixel work into quads for the simulator.

    Pixels are packed four at a time in order (the capture's tile
    order already keeps neighbours together); a deterministic RNG
    draws each quad's miss count from its texel volume.
    """
    n = np.asarray(n)
    trilinear = np.asarray(trilinear)
    address = np.asarray(address)
    if not (n.shape == trilinear.shape == address.shape):
        raise PipelineError("per-pixel arrays must align")
    rng = np.random.default_rng(seed)
    quads = []
    for start in range(0, len(n), 4):
        tri = trilinear[start : start + 4]
        addr = address[start : start + 4]
        pixel_samples = tuple(int(v) for v in tri) + (0,) * (4 - tri.size)
        texels = int(tri.sum()) * 8
        misses = rng.binomial(texels, miss_rate) if texels else 0
        quads.append(
            QuadWork(
                samples_per_pixel=pixel_samples,  # type: ignore[arg-type]
                address_samples=int(addr.sum()),
                checked=checked,
                miss_latencies=tuple([miss_latency] * misses),
            )
        )
    return quads
