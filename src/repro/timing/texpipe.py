"""Texture-pipeline cycle model.

Models the texture units of Table I as throughput resources:

* the filtering datapath sustains one trilinear sample per pipeline per
  ``cycles_per_trilinear`` cycles (4 pipelines per unit, SIMD quad);
* the address ALUs sustain ``1/addr_cycles_per_sample`` samples per
  unit per cycle;
* texel fetches hit the two-level cache hierarchy; misses overlap up to
  ``mlp_per_unit`` outstanding requests per unit;
* DRAM imposes a frame-wide bandwidth bound.

The pipeline's busy time for a frame is the max of the compute,
latency and bandwidth bounds — the standard bottleneck (roofline)
composition. The same event counts also yield the per-request *texture
filtering latency* that Fig. 18 reports.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config import GpuConfig
from ..errors import PipelineError
from ..memsys.hierarchy import HierarchyStats
from .params import TimingParams


@dataclass(frozen=True)
class TextureTiming:
    """Cycle accounting for one frame's texture work."""

    filter_cycles: float
    address_cycles: float
    patu_cycles: float
    latency_cycles: float
    bandwidth_cycles: float

    @property
    def compute_cycles(self) -> float:
        return max(self.filter_cycles, self.address_cycles) + self.patu_cycles

    @property
    def busy_cycles(self) -> float:
        """The texture pipeline's occupancy for the frame."""
        return max(self.compute_cycles, self.latency_cycles, self.bandwidth_cycles)


class TexturePipelineModel:
    """Computes :class:`TextureTiming` from frame event counts."""

    def __init__(self, config: GpuConfig, params: "TimingParams | None" = None):
        self.config = config
        self.params = params or TimingParams()

    def frame_timing(
        self,
        *,
        trilinear_samples: int,
        address_samples: int,
        checked_pixels: int,
        hier: HierarchyStats,
        dram_transfer_cycles: float,
        dram_latency: float,
    ) -> TextureTiming:
        """Build the timing breakdown for one frame.

        Args:
            trilinear_samples: samples actually filtered.
            address_samples: samples whose addresses were computed
                (includes PATU's stage-2 recalculation overhead).
            checked_pixels: pixels that went through PATU's predictor
                (0 for the baseline design).
            hier: cache/DRAM statistics from the hierarchy simulation.
            dram_transfer_cycles: cycles to move the miss traffic at
                peak bandwidth.
            dram_latency: average per-access DRAM latency (cycles).
        """
        if trilinear_samples < 0 or address_samples < 0 or checked_pixels < 0:
            raise PipelineError("event counts must be non-negative")
        cfg = self.config
        p = self.params
        units = cfg.num_texture_units
        pipelines = units * cfg.texture_unit.quad_size

        filter_cycles = (
            trilinear_samples * cfg.texture_unit.cycles_per_trilinear / pipelines
        )
        address_cycles = address_samples * p.addr_cycles_per_sample / units
        patu_cycles = checked_pixels * p.patu_check_cycles / units

        # L1 hits are fully pipelined and cost no occupancy; only misses
        # stall, overlapped across mlp_per_unit outstanding requests.
        l1_misses = hier.l1.misses
        l2_misses = hier.l2.misses
        latency_cycles = (
            l1_misses * p.l2_hit_latency + l2_misses * dram_latency
        ) / (units * p.mlp_per_unit)
        bandwidth_cycles = dram_transfer_cycles / p.dram_efficiency

        return TextureTiming(
            filter_cycles=filter_cycles,
            address_cycles=address_cycles,
            patu_cycles=patu_cycles,
            latency_cycles=latency_cycles,
            bandwidth_cycles=bandwidth_cycles,
        )

    def request_latency(
        self,
        timing: TextureTiming,
        *,
        num_requests: int,
        trilinear_samples: int,
        hier: HierarchyStats,
        dram_latency: float,
    ) -> float:
        """Average cycles to satisfy one texture request (Fig. 18 metric).

        A request is one pixel's texture lookup: its address
        calculation and filtering are serial with its own texel
        fetches, but fetches of a request's many texels overlap by
        ``request_overlap``.
        """
        if num_requests <= 0:
            raise PipelineError("need at least one texture request")
        cfg = self.config
        p = self.params
        samples_per_req = trilinear_samples / num_requests
        compute = samples_per_req * (
            cfg.texture_unit.cycles_per_trilinear + p.addr_cycles_per_sample
        )
        miss_penalty = (
            hier.l1.misses * p.l2_hit_latency + hier.l2.misses * dram_latency
        ) / num_requests / p.request_overlap
        return p.request_fixed_cycles + p.l1_hit_latency + compute + miss_penalty
