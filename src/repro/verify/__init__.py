"""Differential, metamorphic, and golden-artifact verification.

Three independent oracle layers pin the vectorized pipeline's
correctness (``docs/testing.md`` has the layer-by-layer rationale and
the tolerance policy):

* :mod:`repro.verify.reference` + :mod:`repro.verify.differential` —
  naive scalar re-derivations of the filtering and predictor math,
  compared against the production kernels on seeded random fragments.
* :mod:`repro.verify.metamorphic` — implementation-independent
  properties (self-similarity, rotation invariance, threshold
  monotonicity, LOD-shift locality, backend equivalence).
* :mod:`repro.verify.goldens` — content-hashed regression baselines
  under ``tests/goldens/`` with an ``--update-goldens`` flow.

Entry point: ``python -m repro verify`` (see :func:`run_verify`).
"""

from .goldens import (
    GoldenCheck,
    GoldenStore,
    check_experiment_golden,
    default_goldens_root,
    frame_digest_text,
)
from .fuzz import check_fuzz_spec, shrink_spec
from .report import (
    LAYER_DIFFERENTIAL,
    LAYER_FUZZ,
    LAYER_GOLDEN,
    LAYER_METAMORPHIC,
    LAYERS,
    OracleResult,
    VerifyConfig,
    VerifyReport,
)
from .runner import list_oracles, run_verify

__all__ = [
    "GoldenCheck",
    "GoldenStore",
    "LAYER_DIFFERENTIAL",
    "LAYER_FUZZ",
    "LAYER_GOLDEN",
    "LAYER_METAMORPHIC",
    "LAYERS",
    "OracleResult",
    "VerifyConfig",
    "VerifyReport",
    "check_experiment_golden",
    "check_fuzz_spec",
    "default_goldens_root",
    "shrink_spec",
    "frame_digest_text",
    "list_oracles",
    "run_verify",
]
