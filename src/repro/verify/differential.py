"""Differential oracles: vectorized kernels vs the scalar reference.

Each oracle draws a seeded random fragment batch (>= 1000 fragments —
the batches deliberately cover wrap-around coordinates, out-of-range
LODs and degenerate derivatives), runs the production vectorized kernel
and the loop-based reference of :mod:`repro.verify.reference` on the
same inputs, and compares:

* filtered colors within ``COLOR_TOL`` (= 1e-6) absolute — the
  production kernels blend in float32, the reference in float64;
* integer state — mip levels, anisotropy degrees, footprint keys and
  stage-1/stage-2 decisions — must agree *exactly*.

Every oracle is deterministic in ``cfg.seed``: a failure found in CI
reproduces locally with the same seed.
"""

from __future__ import annotations

import numpy as np

from ..core.af_ssim import af_ssim_n, af_ssim_txds, txds_from_csr
from ..core.predictor import TwoStagePredictor
from ..core.scenarios import SCENARIOS
from ..obs import TELEMETRY
from ..texture.anisotropic import anisotropic_filter
from ..texture.footprint import compute_footprints
from ..texture.mipmap import MipChain
from ..texture.sampler import bilinear_sample, trilinear_info, trilinear_sample
from ..workloads.proctex import facade_texture
from .reference import (
    ref_af_ssim_n,
    ref_af_ssim_txds,
    ref_anisotropic,
    ref_bilinear,
    ref_compute_footprint,
    ref_footprint_key,
    ref_trilinear,
    ref_trilinear_levels,
    ref_two_stage_decision,
    ref_txds,
)
from .report import LAYER_DIFFERENTIAL, OracleResult, VerifyConfig

#: Max absolute per-channel color deviation between the float32
#: production kernels and the float64 reference (empirically ~2e-7;
#: the slack below is ulp headroom, not a licence for logic drift).
COLOR_TOL = 1e-6
#: Tolerance for real-valued predictor outputs (two algebraically
#: equal formulations of Eq. 6/9/10, both in float64).
PREDICTOR_TOL = 1e-9

#: Fragments per kernel; the acceptance floor is 1000.
FRAGMENTS = 1200

_TEX_SIZE = 128


def _chain(seed: int) -> MipChain:
    """A deterministic high-frequency test texture (8 mip levels)."""
    return MipChain(facade_texture("verify_facade", size=_TEX_SIZE, seed=seed % 97))


def _uv(rng: np.random.Generator, count: int) -> "tuple[np.ndarray, np.ndarray]":
    """Normalized coordinates spanning several wrap periods."""
    return rng.uniform(-2.0, 3.0, count), rng.uniform(-2.0, 3.0, count)


def _derivatives(rng: np.random.Generator, count: int) -> np.ndarray:
    """Random (dudx, dvdx, dudy, dvdy) rows over ~4 decades of scale.

    A handful of rows get zeroed minor-axis derivatives to exercise the
    degenerate-footprint clamp (``pmin ~ 0`` must saturate at
    ``max_aniso``, not overflow).
    """
    mag = 10.0 ** rng.uniform(-4.0, -0.5, (count, 4))
    sign = rng.choice([-1.0, 1.0], (count, 4))
    d = mag * sign
    degenerate = rng.random(count) < 0.02
    d[degenerate, 2:] = 0.0
    return d


def oracle_bilinear(cfg: VerifyConfig) -> OracleResult:
    """Vectorized bilinear filtering vs the four-texel definition."""
    rng = np.random.default_rng(cfg.seed)
    chain = _chain(cfg.seed)
    u, v = _uv(rng, FRAGMENTS)
    levels = rng.integers(0, chain.num_levels, FRAGMENTS)
    max_err = 0.0
    for level in np.unique(levels):
        mask = levels == level
        got = bilinear_sample(chain, int(level), u[mask], v[mask])
        for j, frag in enumerate(np.nonzero(mask)[0]):
            want = ref_bilinear(chain, int(level), u[frag], v[frag])
            max_err = max(
                max_err, float(np.abs(got[j].astype(np.float64) - want).max())
            )
    return OracleResult(
        name="diff_bilinear",
        layer=LAYER_DIFFERENTIAL,
        passed=max_err <= COLOR_TOL,
        max_error=max_err,
        fragments=FRAGMENTS,
        details={"tolerance": COLOR_TOL, "levels": int(chain.num_levels)},
    )


def oracle_trilinear(cfg: VerifyConfig) -> OracleResult:
    """Trilinear colors within tolerance; enclosing mip levels exact.

    LODs are drawn from ``[-1, max_level + 2]`` so clamping at both
    chain ends is part of the contract under test.
    """
    rng = np.random.default_rng(cfg.seed + 1)
    chain = _chain(cfg.seed)
    u, v = _uv(rng, FRAGMENTS)
    lod = rng.uniform(-1.0, chain.max_level + 2.0, FRAGMENTS)
    info = trilinear_info(chain, u, v, lod)
    got = trilinear_sample(chain, u, v, lod, info=info)
    max_err = 0.0
    level_mismatches = 0
    for i in range(FRAGMENTS):
        want = ref_trilinear(chain, u[i], v[i], lod[i])
        max_err = max(
            max_err, float(np.abs(got[i].astype(np.float64) - want).max())
        )
        l0, l1, _ = ref_trilinear_levels(chain, lod[i])
        if int(info.l0[i]) != l0 or int(info.l1[i]) != l1:
            level_mismatches += 1
    return OracleResult(
        name="diff_trilinear",
        layer=LAYER_DIFFERENTIAL,
        passed=max_err <= COLOR_TOL and level_mismatches == 0,
        max_error=max_err,
        fragments=FRAGMENTS,
        details={"tolerance": COLOR_TOL, "level_mismatches": level_mismatches},
    )


def oracle_footprint(cfg: VerifyConfig) -> OracleResult:
    """Texel generation: N exact, LODs bit-identical, major axis exact."""
    rng = np.random.default_rng(cfg.seed + 2)
    chain = _chain(cfg.seed)
    d = _derivatives(rng, FRAGMENTS)
    fp = compute_footprints(
        d[:, 0], d[:, 1], d[:, 2], d[:, 3], _TEX_SIZE, _TEX_SIZE,
        max_aniso=16, max_level=chain.max_level,
    )
    n_mismatches = 0
    max_err = 0.0
    for i in range(FRAGMENTS):
        want = ref_compute_footprint(
            d[i, 0], d[i, 1], d[i, 2], d[i, 3], _TEX_SIZE, _TEX_SIZE,
            max_aniso=16, max_level=chain.max_level,
        )
        if int(fp.n[i]) != want["n"]:
            n_mismatches += 1
        max_err = max(
            max_err,
            abs(float(fp.lod_tf[i]) - want["lod_tf"]),
            abs(float(fp.lod_af[i]) - want["lod_af"]),
            abs(float(fp.major_du[i]) - want["major_du"]),
            abs(float(fp.major_dv[i]) - want["major_dv"]),
        )
    return OracleResult(
        name="diff_footprint",
        layer=LAYER_DIFFERENTIAL,
        passed=n_mismatches == 0 and max_err == 0.0,
        max_error=max_err,
        fragments=FRAGMENTS,
        details={"n_mismatches": n_mismatches},
    )


def oracle_anisotropic(cfg: VerifyConfig) -> OracleResult:
    """AF colors vs the Eq. (3) loop; per-sample footprint keys exact.

    Fragments are grouped by N exactly as :class:`TextureUnit` groups
    them, so the production kernel runs in its real dense-batch shape.
    """
    rng = np.random.default_rng(cfg.seed + 3)
    chain = _chain(cfg.seed)
    u, v = _uv(rng, FRAGMENTS)
    d = _derivatives(rng, FRAGMENTS)
    fp = compute_footprints(
        d[:, 0], d[:, 1], d[:, 2], d[:, 3], _TEX_SIZE, _TEX_SIZE,
        max_aniso=16, max_level=chain.max_level,
    )
    max_err = 0.0
    key_mismatches = 0
    samples = 0
    for n_value in np.unique(fp.n):
        n_value = int(n_value)
        mask = fp.n == n_value
        result = anisotropic_filter(chain, u, v, fp, mask, n_value)
        for j, frag in enumerate(np.nonzero(mask)[0]):
            want = ref_anisotropic(
                chain, u[frag], v[frag],
                float(fp.major_du[frag]), float(fp.major_dv[frag]),
                float(fp.lod_af[frag]), n_value,
            )
            max_err = max(
                max_err,
                float(np.abs(result.color[j].astype(np.float64) - want).max()),
            )
            for s in range(n_value):
                t = (s + 0.5) / n_value - 0.5
                want_key = ref_footprint_key(
                    chain,
                    u[frag] + t * fp.major_du[frag],
                    v[frag] + t * fp.major_dv[frag],
                    float(fp.lod_tf[frag]),
                )
                if int(result.sample_keys[j, s]) != want_key:
                    key_mismatches += 1
                samples += 1
    return OracleResult(
        name="diff_anisotropic",
        layer=LAYER_DIFFERENTIAL,
        passed=max_err <= COLOR_TOL and key_mismatches == 0,
        max_error=max_err,
        fragments=FRAGMENTS,
        details={
            "tolerance": COLOR_TOL,
            "af_samples": samples,
            "key_mismatches": key_mismatches,
            "mean_n": float(fp.n.mean()),
        },
    )


def oracle_af_ssim_n(cfg: VerifyConfig) -> OracleResult:
    """Eq. (6) as printed vs the overflow-free production rewriting."""
    rng = np.random.default_rng(cfg.seed + 4)
    n = np.concatenate([
        np.arange(1, 17, dtype=np.float64),          # the hardware domain
        rng.uniform(1.0, 16.0, FRAGMENTS - 16),      # continuous proxies
    ])
    got = af_ssim_n(n)
    max_err = max(
        abs(float(got[i]) - ref_af_ssim_n(float(n[i]))) for i in range(n.size)
    )
    return OracleResult(
        name="diff_af_ssim_n",
        layer=LAYER_DIFFERENTIAL,
        passed=max_err <= PREDICTOR_TOL,
        max_error=max_err,
        fragments=int(n.size),
        details={"tolerance": PREDICTOR_TOL},
    )


def oracle_txds(cfg: VerifyConfig) -> OracleResult:
    """CSR Txds + Eq. (10) vs the dict-counting entropy reference.

    Keys are drawn from a small pool so rows actually contain shared
    texel sets (the entropy is non-trivial for most rows).
    """
    rng = np.random.default_rng(cfg.seed + 5)
    lengths = rng.integers(1, 17, FRAGMENTS)
    row_ptr = np.zeros(FRAGMENTS + 1, dtype=np.int64)
    np.cumsum(lengths, out=row_ptr[1:])
    keys = np.empty(int(row_ptr[-1]), dtype=np.int64)
    for i in range(FRAGMENTS):
        pool = rng.integers(0, max(1, lengths[i] // 2) + 1, lengths[i])
        keys[row_ptr[i]:row_ptr[i + 1]] = rng.integers(0, 1 << 40) + pool
    got_t = txds_from_csr(keys, row_ptr)
    got_pred = af_ssim_txds(got_t)
    max_err = 0.0
    for i in range(FRAGMENTS):
        row = [int(k) for k in keys[row_ptr[i]:row_ptr[i + 1]]]
        want_t = ref_txds(row)
        max_err = max(max_err, abs(float(got_t[i]) - want_t))
        max_err = max(
            max_err, abs(float(got_pred[i]) - ref_af_ssim_txds(want_t))
        )
    return OracleResult(
        name="diff_txds",
        layer=LAYER_DIFFERENTIAL,
        passed=max_err <= PREDICTOR_TOL,
        max_error=max_err,
        fragments=FRAGMENTS,
        details={"tolerance": PREDICTOR_TOL, "samples": int(row_ptr[-1])},
    )


def oracle_two_stage(cfg: VerifyConfig) -> OracleResult:
    """Fig. 13 decisions: vectorized predictor vs the per-pixel flow.

    Every non-baseline scenario is checked at several thresholds; the
    stage-1/stage-2 boolean masks must match the reference exactly.
    """
    rng = np.random.default_rng(cfg.seed + 6)
    n = rng.integers(1, 17, FRAGMENTS)
    txds = rng.uniform(0.0, 1.0, FRAGMENTS)
    thresholds = (0.1, 0.4, 0.7, 0.9)
    mismatches = 0
    checked = 0
    for scenario in SCENARIOS.values():
        if not scenario.approximates:
            continue
        for threshold in thresholds:
            pred = TwoStagePredictor(scenario, threshold).predict(n, txds)
            for i in range(FRAGMENTS):
                want1, want2 = ref_two_stage_decision(
                    int(n[i]), float(txds[i]), threshold,
                    use_stage1=scenario.use_stage1,
                    use_stage2=scenario.use_stage2,
                )
                if bool(pred.stage1[i]) != want1 or bool(pred.stage2[i]) != want2:
                    mismatches += 1
                checked += 1
    TELEMETRY.count("verify.decisions_checked", checked)
    return OracleResult(
        name="diff_two_stage",
        layer=LAYER_DIFFERENTIAL,
        passed=mismatches == 0,
        max_error=0.0,
        fragments=FRAGMENTS,
        details={"decisions_checked": checked, "mismatches": mismatches},
    )


def oracle_raster_backends(cfg: VerifyConfig) -> OracleResult:
    """Sort-middle binned rasterizer vs the legacy reference, per byte.

    Renders real game frames through both backends and compares every
    G-buffer array with ``tobytes()`` — the binned pipeline's contract
    is *bit*-identity, not closeness, because the fine pass evaluates
    the exact legacy expressions on candidate subsets. Only G-buffer
    arrays are compared: the work counters (``fragments_generated``
    etc.) legitimately differ, since hierarchical-Z excludes
    depth-buried work the legacy path still evaluates.
    """
    from ..renderer.pipeline import render_gbuffer
    from ..workloads.games import get_workload

    names = (
        ("wolf-640x480",) if cfg.quick
        else ("wolf-640x480", "doom3-640x480", "stal-1280x1024")
    )
    scale = 0.125
    frame = cfg.seed % 2
    arrays = ("tex_id", "depth", "u", "v", "dudx", "dvdx", "dudy", "dvdy")
    mismatched: "list[str]" = []
    pixels = 0
    for name in names:
        workload = get_workload(name)
        width, height = workload.scaled_size(scale)
        camera = workload.camera(frame)
        legacy = render_gbuffer(
            workload.scene, camera, width, height, raster="legacy"
        )
        # Odd tile sizes change the bin geometry, never the output.
        for raster_tile in (8, 16) if name == names[0] else (8,):
            binned = render_gbuffer(
                workload.scene, camera, width, height,
                raster="binned", raster_tile=raster_tile,
            )
            pixels += width * height
            mismatched.extend(
                f"{name}@{raster_tile}:{field_name}"
                for field_name in arrays
                if getattr(legacy.gbuffer, field_name).tobytes()
                != getattr(binned.gbuffer, field_name).tobytes()
            )
    return OracleResult(
        name="diff_raster_backends",
        layer=LAYER_DIFFERENTIAL,
        passed=not mismatched,
        max_error=0.0,
        fragments=pixels,
        details={"workloads": list(names), "mismatched": mismatched},
    )


#: All differential oracles, in dependency-free execution order.
DIFFERENTIAL_ORACLES = (
    oracle_bilinear,
    oracle_trilinear,
    oracle_footprint,
    oracle_anisotropic,
    oracle_af_ssim_n,
    oracle_txds,
    oracle_two_stage,
    oracle_raster_backends,
)
