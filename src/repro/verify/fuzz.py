"""The fuzz lane: generated scenarios with the oracle stack attached.

``repro verify --fuzz N --seed S`` derives ``N`` seeded
:class:`~repro.workloads.fuzz.FuzzSpec` scenarios (cycling through the
generation profiles) and runs each through the existing oracle stack:

* **differential** — the vectorized footprint kernel vs the scalar
  reference, on derivatives sampled from the scenario's real G-buffer;
* **metamorphic** — threshold-1.0 self-similarity, rotation
  invariance of N, nested approximation sets;
* **raster bit-identity** — the binned sort-middle backend vs the
  legacy reference, per byte, on the generated scene.

A failing spec is *shrunk*: each shrinkable axis (soup density,
slivers, texture stress, UV regime, camera family, resolution, frame
count) is reduced greedily while the failure reproduces, yielding a
minimal repro dict that the CLI prints and optionally saves under
``tests/goldens/fuzz_regressions/`` — where
``tests/verify/test_fuzz_regressions.py`` replays it forever after.
"""

from __future__ import annotations

import functools
import json
import pathlib
from dataclasses import replace
from typing import Callable

import numpy as np

from ..texture.footprint import compute_footprints
from ..workloads.fuzz import (
    FUZZ_TEX_SIZE,
    MIN_DIM,
    PROFILES,
    FuzzSpec,
    fuzz_request,
    spec_for,
    workload_from_spec,
)
from .metamorphic import (
    check_af_self_similarity,
    check_rotation_invariance,
    check_threshold_monotone,
)
from .reference import ref_compute_footprint
from .report import LAYER_FUZZ, OracleResult, VerifyConfig

#: Resolution scale the fuzz lane renders specs at (specs are already
#: small; 0.5 keeps a 25-scenario run in seconds).
FUZZ_SCALE = 0.5

#: Derivative rows per scenario checked against the scalar reference
#: (the loop-based reference is the cost; rows are drawn evenly across
#: the frame's visible pixels).
DIFF_SAMPLES = 48

#: Thresholds of the per-scenario monotonicity check.
MONOTONE_THRESHOLDS = (0.0, 0.25, 0.5, 0.75, 1.0)

#: G-buffer arrays compared for raster-backend bit-identity.
GBUFFER_ARRAYS = (
    "tex_id", "depth", "u", "v", "dudx", "dvdx", "dudy", "dvdy"
)

#: Shrink budget: candidate evaluations per failing spec. Each
#: evaluation re-renders a (shrinking) scenario, so this bounds the
#: lane's worst case.
SHRINK_BUDGET = 48

#: Schema of saved regression-corpus entries.
CORPUS_SCHEMA = 1


@functools.lru_cache(maxsize=4)
def _session(scale: float):
    from ..renderer.session import RenderSession

    return RenderSession(scale=scale)


def _deriv_rows(gbuffer) -> np.ndarray:
    """Visible-pixel derivative rows ``(k, 4)`` of one G-buffer.

    Upcast to float64 so the vectorized kernel and the scalar
    reference see bit-identical inputs (the G-buffer stores float32;
    the differential contract is exactness *given the same inputs*).
    """
    mask = gbuffer.tex_id >= 0
    return np.stack(
        [gbuffer.dudx[mask], gbuffer.dvdx[mask],
         gbuffer.dudy[mask], gbuffer.dvdy[mask]],
        axis=1,
    ).astype(np.float64)


def _check_differential_footprint(derivs: np.ndarray) -> "dict[str, object]":
    """Vectorized footprints vs the scalar reference on real derivatives."""
    if not derivs.size:
        return {"passed": True, "rows": 0, "mismatches": 0, "max_error": 0.0}
    step = max(1, derivs.shape[0] // DIFF_SAMPLES)
    rows = derivs[::step][:DIFF_SAMPLES]
    max_level = int(np.log2(FUZZ_TEX_SIZE))
    fp = compute_footprints(
        rows[:, 0], rows[:, 1], rows[:, 2], rows[:, 3],
        FUZZ_TEX_SIZE, FUZZ_TEX_SIZE, max_aniso=16, max_level=max_level,
    )
    mismatches = 0
    max_err = 0.0
    for i in range(rows.shape[0]):
        want = ref_compute_footprint(
            rows[i, 0], rows[i, 1], rows[i, 2], rows[i, 3],
            FUZZ_TEX_SIZE, FUZZ_TEX_SIZE, max_aniso=16, max_level=max_level,
        )
        if int(fp.n[i]) != want["n"]:
            mismatches += 1
        max_err = max(
            max_err,
            abs(float(fp.lod_tf[i]) - want["lod_tf"]),
            abs(float(fp.lod_af[i]) - want["lod_af"]),
            abs(float(fp.major_du[i]) - want["major_du"]),
            abs(float(fp.major_dv[i]) - want["major_dv"]),
        )
    return {
        "passed": mismatches == 0 and max_err == 0.0,
        "rows": int(rows.shape[0]),
        "mismatches": mismatches,
        "max_error": max_err,
    }


def _check_raster_identity(workload, camera, width, height) -> "dict[str, object]":
    """Binned vs legacy G-buffers of one generated frame, per byte."""
    from ..renderer.pipeline import render_gbuffer

    legacy = render_gbuffer(
        workload.scene, camera, width, height, raster="legacy"
    )
    binned = render_gbuffer(
        workload.scene, camera, width, height, raster="binned"
    )
    mismatched = [
        name for name in GBUFFER_ARRAYS
        if getattr(legacy.gbuffer, name).tobytes()
        != getattr(binned.gbuffer, name).tobytes()
    ]
    return {
        "passed": not mismatched,
        "mismatched": mismatched,
        "gbuffer": binned.gbuffer,
    }


def check_fuzz_spec(
    spec: FuzzSpec, *, scale: float = FUZZ_SCALE
) -> "dict[str, object]":
    """Run the full per-scenario oracle stack over one spec.

    Returns ``{"passed", "failed", "pixels", "checks"}`` where
    ``failed`` lists the names of failing checks and ``checks`` maps
    each check to its outcome dict. Reused verbatim by the regression-
    corpus replayer, so a saved spec exercises exactly what found it.
    """
    workload = workload_from_spec(spec)
    width, height = workload.scaled_size(scale)
    camera = workload.camera(0)

    checks: "dict[str, dict[str, object]]" = {}

    raster = _check_raster_identity(workload, camera, width, height)
    gbuffer = raster.pop("gbuffer")
    checks["raster_bit_identity"] = raster

    derivs = _deriv_rows(gbuffer)
    checks["differential_footprint"] = _check_differential_footprint(derivs)
    if derivs.size:
        checks["metamorphic_rotation"] = check_rotation_invariance(
            derivs, FUZZ_TEX_SIZE
        )
    else:
        checks["metamorphic_rotation"] = {"passed": True, "n_mismatches": 0}

    session = _session(scale)
    capture = session.capture_frame(workload, 0)
    checks["metamorphic_af_self"] = check_af_self_similarity(session, capture)
    checks["metamorphic_monotone"] = check_threshold_monotone(
        capture.n, capture.txds, MONOTONE_THRESHOLDS
    )

    failed = sorted(
        name for name, outcome in checks.items() if not outcome["passed"]
    )
    return {
        "passed": not failed,
        "failed": failed,
        "pixels": int(capture.num_pixels),
        "checks": checks,
    }


def _shrink_candidates(spec: FuzzSpec):
    """Reduced variants of a spec, most-aggressive first per axis."""
    if spec.frames > 1:
        yield replace(spec, frames=1)
    if spec.meshes > 0:
        yield replace(spec, meshes=0)
    if spec.meshes > 1:
        yield replace(spec, meshes=spec.meshes // 2)
    if spec.slivers > 0:
        yield replace(spec, slivers=0)
    if spec.slivers > 1:
        yield replace(spec, slivers=spec.slivers // 2)
    if spec.tex_stress != 1.0:
        yield replace(spec, tex_stress=1.0)
    if spec.uv_regime != "normal":
        yield replace(spec, uv_regime="normal")
    if spec.camera != "forward":
        yield replace(spec, camera="forward")
    if spec.width > MIN_DIM or spec.height > MIN_DIM:
        yield replace(
            spec,
            width=max(MIN_DIM, spec.width // 2 // 4 * 4),
            height=max(MIN_DIM, spec.height // 2 // 4 * 4),
        )


def shrink_spec(
    spec: FuzzSpec,
    still_fails: "Callable[[FuzzSpec], bool]",
    *,
    budget: int = SHRINK_BUDGET,
) -> FuzzSpec:
    """Greedily minimize a failing spec while the failure reproduces.

    Classic delta-debugging loop: try each axis reduction in turn and
    restart from the first one that still fails, until a full pass
    over the candidates keeps the failure on none of them (a local
    minimum) or the evaluation budget runs out.
    """
    current = spec
    attempts = 0
    progress = True
    while progress and attempts < budget:
        progress = False
        for candidate in _shrink_candidates(current):
            attempts += 1
            if still_fails(candidate):
                current = candidate
                progress = True
                break
            if attempts >= budget:
                break
    return current


def save_regression(
    entry: "dict[str, object]", root: "pathlib.Path | str"
) -> pathlib.Path:
    """Persist one shrunk failure as a corpus file; returns its path."""
    from ..ioutil import atomic_write_text
    from ..obs.machine import git_revision

    root = pathlib.Path(root)
    root.mkdir(parents=True, exist_ok=True)
    path = root / f"fuzz_{entry['seed']}_{entry['profile']}.json"
    payload = {
        "schema": CORPUS_SCHEMA,
        "found_rev": git_revision(),
        **entry,
    }
    atomic_write_text(path, json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path


def oracle_fuzz_scenarios(cfg: VerifyConfig) -> OracleResult:
    """``cfg.fuzz`` generated scenarios through the full oracle stack.

    Scenario ``i`` uses seed ``cfg.seed + i`` and profile
    ``PROFILES[i % len(PROFILES)]``, so any failure names its exact
    reproduction (and ``--seed`` shifts the whole exploration window).
    Each failing spec is shrunk to a minimal repro carrying the same
    failing check set.
    """
    if cfg.fuzz <= 0:
        return OracleResult(
            name="fuzz_scenarios",
            layer=LAYER_FUZZ,
            passed=True,
            skipped=True,
            details={"reason": "fuzz lane off (pass --fuzz N to enable)"},
        )
    failures: "list[dict[str, object]]" = []
    saved: "list[str]" = []
    pixels = 0
    for i in range(cfg.fuzz):
        seed = cfg.seed + i
        profile = PROFILES[i % len(PROFILES)]
        spec = spec_for(seed, profile)
        outcome = check_fuzz_spec(spec)
        pixels += int(outcome["pixels"])
        if outcome["passed"]:
            continue
        failed = set(outcome["failed"])

        def reproduces(candidate: FuzzSpec) -> bool:
            return bool(failed & set(check_fuzz_spec(candidate)["failed"]))

        minimal = shrink_spec(spec, reproduces)
        entry = {
            "request": fuzz_request(seed, profile),
            "seed": seed,
            "profile": profile,
            "failed": sorted(failed),
            "spec": spec.to_dict(),
            "minimal_spec": minimal.to_dict(),
        }
        if cfg.fuzz_save is not None:
            saved.append(str(save_regression(entry, cfg.fuzz_save)))
        failures.append(entry)
    details: "dict[str, object]" = {
        "scenarios": cfg.fuzz,
        "profiles": list(PROFILES),
        "failures": failures,
    }
    if saved:
        details["saved"] = saved
    return OracleResult(
        name="fuzz_scenarios",
        layer=LAYER_FUZZ,
        passed=not failures,
        max_error=float(len(failures)),
        fragments=pixels,
        details=details,
    )


FUZZ_ORACLES = (oracle_fuzz_scenarios,)
