"""Golden-artifact manager: content-hashed regression baselines.

Goldens live under ``tests/goldens/`` as human-readable ``.txt``
artifacts plus a ``manifest.json`` that records, per golden, its kind,
its SHA-256, and the parameters it was generated under. The verify
runner's golden layer re-generates each artifact and compares bytes;
``repro verify --update-goldens`` rewrites changed artifacts (and
*only* changed ones — re-running it twice in a row is a no-op, which
is itself an acceptance criterion).

Two golden kinds:

* ``table`` — the formatted text table of an experiment at pinned
  quick parameters (byte-exact; the engine guarantees backend-
  independent bytes).
* ``frame`` — a per-array digest listing (sha256/dtype/shape for every
  serialized field of a :class:`~repro.renderer.session.FrameCapture`).
  Hashing each array separately keeps the artifact diffable: a
  regression names the arrays that moved instead of one opaque hash.

The experiment runner calls :func:`check_experiment_golden` after each
run — when the run's parameters match a golden's recorded parameters
but the bytes differ, it counts ``verify.stale_goldens`` and warns.
Staleness detection never fails an experiment; ``repro verify`` is the
enforcing entry point.
"""

from __future__ import annotations

import difflib
import hashlib
import json
import pathlib
from dataclasses import dataclass, field

from ..ioutil import atomic_write_text
from ..obs import TELEMETRY

__all__ = [
    "GOLDEN_EXPERIMENTS",
    "GoldenCheck",
    "GoldenStore",
    "check_experiment_golden",
    "default_goldens_root",
    "frame_digest_text",
]

#: Manifest layout version.
MANIFEST_VERSION = 1

#: Check statuses.
STATUS_MATCH = "match"
STATUS_STALE = "stale"
STATUS_MISSING = "missing"
STATUS_PARAMS_MISMATCH = "params-mismatch"

#: Experiments with a pinned-parameter table golden. The params must
#: match an ExperimentContext exactly for staleness detection to apply.
GOLDEN_EXPERIMENTS: "dict[str, dict[str, object]]" = {
    "fig17": {
        "scale": 0.125,
        "frames": 1,
        "workloads": ["wolf-640x480"],
    },
}


def default_goldens_root() -> pathlib.Path:
    """The in-repo golden store (``tests/goldens`` next to ``src``)."""
    return pathlib.Path(__file__).resolve().parents[3] / "tests" / "goldens"


def _sha256(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


@dataclass
class GoldenCheck:
    """Outcome of comparing one regenerated artifact against its golden."""

    name: str
    status: str
    diff: str = ""
    details: "dict[str, object]" = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return self.status == STATUS_MATCH


class GoldenStore:
    """Load/check/update goldens under one root directory."""

    def __init__(self, root: "str | pathlib.Path") -> None:
        self.root = pathlib.Path(root)
        self.manifest_path = self.root / "manifest.json"

    # -- manifest -------------------------------------------------------

    def load_manifest(self) -> "dict[str, dict[str, object]]":
        if not self.manifest_path.exists():
            return {}
        data = json.loads(self.manifest_path.read_text())
        return dict(data.get("entries", {}))

    def _save_manifest(self, entries: "dict[str, dict[str, object]]") -> None:
        payload = {
            "version": MANIFEST_VERSION,
            "entries": {k: entries[k] for k in sorted(entries)},
        }
        atomic_write_text(
            self.manifest_path,
            json.dumps(payload, indent=2, sort_keys=True) + "\n",
        )

    def artifact_path(self, name: str) -> pathlib.Path:
        return self.root / f"{name}.txt"

    def names(self) -> "list[str]":
        return sorted(self.load_manifest())

    # -- check / update -------------------------------------------------

    def check(
        self, name: str, text: str, params: "dict[str, object]"
    ) -> GoldenCheck:
        """Compare freshly generated ``text`` against the stored golden.

        ``params`` must equal the parameters the golden was generated
        under — a mismatch means the comparison is meaningless (the
        golden answers a different question), reported distinctly from
        stale content.
        """
        entries = self.load_manifest()
        entry = entries.get(name)
        path = self.artifact_path(name)
        if entry is None or not path.exists():
            return GoldenCheck(name, STATUS_MISSING)
        if entry.get("params") != params:
            return GoldenCheck(
                name,
                STATUS_PARAMS_MISMATCH,
                details={"stored": entry.get("params"), "current": params},
            )
        stored = path.read_text()
        if stored == text:
            return GoldenCheck(name, STATUS_MATCH)
        diff = "".join(
            difflib.unified_diff(
                stored.splitlines(keepends=True),
                text.splitlines(keepends=True),
                fromfile=f"goldens/{name}.txt (stored)",
                tofile=f"goldens/{name}.txt (regenerated)",
                n=2,
            )
        )
        return GoldenCheck(
            name,
            STATUS_STALE,
            diff=diff,
            details={
                "stored_sha256": entry.get("sha256"),
                "regenerated_sha256": _sha256(text),
            },
        )

    def update(
        self, name: str, text: str, kind: str, params: "dict[str, object]"
    ) -> bool:
        """Write one golden; returns whether anything changed.

        Byte-compares first so an unchanged golden is never rewritten —
        this is what makes ``--update-goldens`` idempotent.
        """
        entries = self.load_manifest()
        entry = entries.get(name)
        path = self.artifact_path(name)
        digest = _sha256(text)
        unchanged = (
            entry is not None
            and entry.get("kind") == kind
            and entry.get("sha256") == digest
            and entry.get("params") == params
            and path.exists()
            and path.read_text() == text
        )
        if unchanged:
            return False
        self.root.mkdir(parents=True, exist_ok=True)
        atomic_write_text(path, text)
        entries[name] = {"kind": kind, "sha256": digest, "params": params}
        self._save_manifest(entries)
        return True


# ---------------------------------------------------------------------------
# Artifact builders
# ---------------------------------------------------------------------------


def frame_digest_text(capture) -> str:
    """Per-array digest listing of one frame capture (diffable golden).

    Covers exactly the arrays the on-disk capture format serializes
    (:data:`repro.renderer.serialization._ARRAY_FIELDS`), so the golden
    tracks the same state the capture store round-trips.
    """
    import numpy as np

    from ..renderer.serialization import _ARRAY_FIELDS

    lines = ["# frame capture array digests (sha256 of C-order bytes)"]
    for fname in _ARRAY_FIELDS:
        arr = np.ascontiguousarray(getattr(capture, fname))
        digest = hashlib.sha256(arr.tobytes()).hexdigest()
        lines.append(
            f"{fname:<20} {str(arr.dtype):<10} "
            f"{'x'.join(str(d) for d in arr.shape) or 'scalar':<14} {digest}"
        )
    return "\n".join(lines) + "\n"


# ---------------------------------------------------------------------------
# Experiment-runner staleness hook
# ---------------------------------------------------------------------------


def check_experiment_golden(exp_id: str, ctx, table_text: str) -> "GoldenCheck | None":
    """Staleness probe called by the experiment runner after each run.

    Only fires when ``exp_id`` has a pinned golden *and* the context's
    parameters equal the golden's recorded parameters; otherwise the
    run simply is not comparable and ``None`` is returned. A stale
    result warns and bumps ``verify.stale_goldens`` — it never fails
    the experiment.
    """
    spec = GOLDEN_EXPERIMENTS.get(exp_id)
    if spec is None:
        return None
    params = {
        "scale": ctx.scale,
        "frames": ctx.frames,
        "workloads": list(ctx.workload_list),
    }
    if params != spec:
        return None
    store = GoldenStore(default_goldens_root())
    check = store.check(f"table_{exp_id}", table_text, params)
    if check.status == STATUS_STALE:
        TELEMETRY.count("verify.stale_goldens")
        TELEMETRY.progress(
            f"golden table_{exp_id} is stale — run "
            "`python -m repro verify` to see the diff, or "
            "`... verify --update-goldens` if the change is intended"
        )
    return check
