"""Metamorphic oracles: properties any correct implementation satisfies.

Where the differential layer pins the implementation to a reference,
this layer pins it to *mathematics*: relations between outputs that
must hold regardless of how the pipeline computes them.

* **AF vs AF** — a design point that approximates nothing reconstructs
  the baseline image bit-for-bit, so its MSSIM is exactly 1.
* **Rotation invariance** — the anisotropy degree N is a ratio of
  footprint axes; rotating UV space by 90 degrees (on a square
  texture) permutes the axes and must not change N.
* **Threshold monotonicity** — raising the AF-SSIM threshold can only
  shrink the approximated set (the predictions do not move).
* **LOD-shift locality** — toggling LOD-shift elimination (scenario
  ``patu`` vs ``afssim_n_txds``) re-colors *only* approximated pixels.
* **Backend equivalence** — the engine's process backend produces
  byte-identical experiment tables to the serial backend.

The capture-based checks are exposed as pure functions over
``(capture, ...)`` so the test suite can run them against its own
miniature scenes; the ``oracle_*`` wrappers render a small Table II
workload (wolf-640x480) deterministically.
"""

from __future__ import annotations

import numpy as np

from ..core.patu import FilterMode, PerceptionAwareTextureUnit
from ..core.predictor import TwoStagePredictor
from ..core.scenarios import SCENARIOS
from ..obs import TELEMETRY
from ..texture.footprint import compute_footprints
from ..workloads.games import get_workload
from .report import LAYER_METAMORPHIC, OracleResult, VerifyConfig

#: Float tolerance for invariances that hold analytically but travel
#: through transcendentals (log2/hypot) in permuted argument order.
INVARIANCE_TOL = 1e-12

#: Workload the oracle wrappers render (small, deterministic).
VERIFY_WORKLOAD = "wolf-640x480"

_capture_cache: "dict[float, tuple[object, object]]" = {}


def _session_capture(scale: float):
    """Render (once per process) the verify workload at ``scale``."""
    cached = _capture_cache.get(scale)
    if cached is None:
        from ..renderer.session import RenderSession

        session = RenderSession(scale=scale)
        capture = session.capture_frame(get_workload(VERIFY_WORKLOAD), 0)
        cached = (session, capture)
        _capture_cache[scale] = cached
    return cached


def _verify_scale(cfg: VerifyConfig) -> float:
    return 0.125 if cfg.quick else 0.25


# ---------------------------------------------------------------------------
# Pure property checks (reusable from the test suite)
# ---------------------------------------------------------------------------


def check_af_self_similarity(session, capture) -> "dict[str, object]":
    """A threshold-1.0 PATU point approximates nothing: MSSIM == 1 exactly."""
    result = session.evaluate(
        capture, SCENARIOS["patu"], 1.0, store_image=True
    )
    identical = bool(
        np.array_equal(result.luminance, capture.baseline_luminance)
    )
    return {
        "max_error": abs(1.0 - result.mssim),
        "approximation_rate": result.approximation_rate,
        "luminance_identical": identical,
        "passed": (
            result.mssim == 1.0
            and result.approximation_rate == 0.0
            and identical
        ),
    }


def check_rotation_invariance(
    derivs: np.ndarray, tex_size: int, *, max_aniso: int = 16
) -> "dict[str, object]":
    """N (and both LODs) under a 90-degree UV rotation on a square texture.

    Rotating UV by 90 degrees maps the per-screen-direction derivative
    pairs ``(du, dv) -> (dv, -du)``; the footprint ellipse is the same
    set of points, so its axis ratio — and therefore N — cannot change.
    """
    dudx, dvdx, dudy, dvdy = (derivs[:, i] for i in range(4))
    fp = compute_footprints(
        dudx, dvdx, dudy, dvdy, tex_size, tex_size, max_aniso=max_aniso
    )
    fp_rot = compute_footprints(
        dvdx, -dudx, dvdy, -dudy, tex_size, tex_size, max_aniso=max_aniso
    )
    n_mismatches = int((fp.n != fp_rot.n).sum())
    max_err = float(
        max(
            np.abs(fp.lod_tf - fp_rot.lod_tf).max(),
            np.abs(fp.lod_af - fp_rot.lod_af).max(),
        )
    )
    return {
        "max_error": max_err,
        "n_mismatches": n_mismatches,
        "passed": n_mismatches == 0 and max_err <= INVARIANCE_TOL,
    }


def check_threshold_monotone(
    n: np.ndarray, txds: np.ndarray, thresholds: "tuple[float, ...]"
) -> "dict[str, object]":
    """Approximated sets are nested: t2 >= t1 implies approx(t2) ⊆ approx(t1)."""
    scenario = SCENARIOS["patu"]
    ordered = sorted(thresholds)
    violations = 0
    counts = []
    prev = None
    for threshold in ordered:
        approx = TwoStagePredictor(scenario, threshold).predict(n, txds).approximated
        counts.append(int(approx.sum()))
        if prev is not None and not bool(np.all(~approx | prev)):
            violations += 1
        prev = approx
    non_increasing = all(a >= b for a, b in zip(counts, counts[1:]))
    return {
        "max_error": float(violations),
        "counts": counts,
        "passed": violations == 0 and non_increasing,
    }


def check_lod_shift_localized(capture, threshold: float) -> "dict[str, object]":
    """LOD-shift elimination re-colors only the approximated pixels.

    ``patu`` and ``afssim_n_txds`` share both prediction stages and
    differ only in what LOD approximated pixels sample at — so their
    decisions must coincide and their reconstructions may differ
    nowhere else.
    """
    with_reuse = PerceptionAwareTextureUnit(
        SCENARIOS["patu"], threshold
    ).decide(capture.n, capture.txds)
    without = PerceptionAwareTextureUnit(
        SCENARIOS["afssim_n_txds"], threshold
    ).decide(capture.n, capture.txds)
    same_decisions = bool(
        np.array_equal(
            with_reuse.prediction.approximated, without.prediction.approximated
        )
    )

    def reconstruct(decision) -> np.ndarray:
        colors = capture.af_color.copy()
        for mode, table in (
            (FilterMode.TF_TF_LOD, capture.tf_color),
            (FilterMode.TF_AF_LOD, capture.tfa_color),
        ):
            mask = decision.mode == mode
            colors[mask] = table[mask]
        return colors

    delta = reconstruct(with_reuse) != reconstruct(without)
    changed = delta.any(axis=1)
    approximated = with_reuse.prediction.approximated
    leaked = int((changed & ~approximated).sum())
    return {
        "max_error": float(leaked),
        "approximated": int(approximated.sum()),
        "recolored": int(changed.sum()),
        "same_decisions": same_decisions,
        "passed": leaked == 0 and same_decisions,
    }


# ---------------------------------------------------------------------------
# Oracle wrappers
# ---------------------------------------------------------------------------


def oracle_af_self_ssim(cfg: VerifyConfig) -> OracleResult:
    session, capture = _session_capture(_verify_scale(cfg))
    outcome = check_af_self_similarity(session, capture)
    return OracleResult(
        name="meta_af_self_ssim",
        layer=LAYER_METAMORPHIC,
        passed=bool(outcome.pop("passed")),
        max_error=float(outcome.pop("max_error")),
        fragments=capture.num_pixels,
        details=outcome,
    )


def oracle_rotation_invariance(cfg: VerifyConfig) -> OracleResult:
    rng = np.random.default_rng(cfg.seed + 10)
    count = 1500
    mag = 10.0 ** rng.uniform(-4.0, -0.5, (count, 4))
    derivs = mag * rng.choice([-1.0, 1.0], (count, 4))
    outcome = check_rotation_invariance(derivs, 128)
    return OracleResult(
        name="meta_rotation_n",
        layer=LAYER_METAMORPHIC,
        passed=bool(outcome.pop("passed")),
        max_error=float(outcome.pop("max_error")),
        fragments=count,
        details=outcome,
    )


def oracle_threshold_monotone(cfg: VerifyConfig) -> OracleResult:
    _, capture = _session_capture(_verify_scale(cfg))
    thresholds = tuple(round(t, 2) for t in np.arange(0.0, 1.01, 0.05))
    outcome = check_threshold_monotone(capture.n, capture.txds, thresholds)
    return OracleResult(
        name="meta_threshold_monotone",
        layer=LAYER_METAMORPHIC,
        passed=bool(outcome.pop("passed")),
        max_error=float(outcome.pop("max_error")),
        fragments=capture.num_pixels,
        details={"thresholds": len(thresholds), **outcome},
    )


def oracle_lod_shift_localized(cfg: VerifyConfig) -> OracleResult:
    _, capture = _session_capture(_verify_scale(cfg))
    outcome = check_lod_shift_localized(capture, 0.4)
    return OracleResult(
        name="meta_lod_shift_local",
        layer=LAYER_METAMORPHIC,
        passed=bool(outcome.pop("passed")),
        max_error=float(outcome.pop("max_error")),
        fragments=capture.num_pixels,
        details=outcome,
    )


def oracle_engine_parallel(cfg: VerifyConfig) -> OracleResult:
    """Serial vs process-pool execution of a real experiment, byte-equal.

    Reuses the engine end-to-end: two fresh contexts plan and run the
    Fig. 17 threshold sweep on one workload; the ``--jobs 2`` table
    must match the serial table byte-for-byte. Skipped under
    ``--quick`` (spawning a pool dominates a quick run's budget).
    """
    if cfg.quick:
        return OracleResult(
            name="meta_engine_parallel",
            layer=LAYER_METAMORPHIC,
            passed=True,
            skipped=True,
            details={"reason": "process-pool oracle skipped in --quick mode"},
        )
    from ..experiments import fig17_threshold
    from ..experiments.runner import ExperimentContext, format_table

    kwargs = dict(scale=0.125, frames=1, workloads=(VERIFY_WORKLOAD,))
    serial = format_table(
        fig17_threshold.run(ExperimentContext(jobs=1, **kwargs))
    )
    parallel = format_table(
        fig17_threshold.run(ExperimentContext(jobs=2, **kwargs))
    )
    equal = serial == parallel
    if not equal:
        TELEMETRY.count("verify.backend_divergence")
    return OracleResult(
        name="meta_engine_parallel",
        layer=LAYER_METAMORPHIC,
        passed=equal,
        max_error=0.0 if equal else 1.0,
        fragments=serial.count("\n"),
        details={"experiment": "fig17", "jobs": 2, "byte_equal": equal},
    )


#: All metamorphic oracles, in execution order.
METAMORPHIC_ORACLES = (
    oracle_af_self_ssim,
    oracle_rotation_invariance,
    oracle_threshold_monotone,
    oracle_lod_shift_localized,
    oracle_engine_parallel,
)
