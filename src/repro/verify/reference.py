"""Scalar reference oracle: naive re-derivations of the filtering math.

Every function here reimplements one vectorized kernel of
:mod:`repro.texture` or :mod:`repro.core` as a straight-line,
per-fragment Python loop, directly from the definitions (OpenGL-style
bilinear/trilinear filtering, Eq. 3 anisotropic averaging, and the
paper's Eq. 5/6/8/9/10 predictors). The differential oracle layer
(:mod:`repro.verify.differential`) compares the two implementations on
seeded random fragment batches; because the reference shares *no code
path* with the production kernels (no broadcasting, no fancy indexing,
no grouped dense kernels), an indexing or vectorization bug in either
side shows up as a mismatch.

Deliberate exception to full independence: transcendentals
(``log2``/``hypot``) go through numpy *scalar* calls, which use the
same ufunc loops as the vectorized code. This pins their
last-ulp behaviour so integer LOD/N agreement can be asserted
*exactly* — a 1-ulp libm difference at a ``floor`` boundary would
otherwise be an un-actionable flake, not a caught bug.

Tolerance policy (see ``docs/testing.md``): colors within ``1e-6``
absolute (the production kernels blend in float32, the reference in
float64); integer state (mip levels, anisotropy degree, footprint
keys) must agree exactly.
"""

from __future__ import annotations

import math

import numpy as np

from ..texture.mipmap import MipChain
from ..texture.sampler import _COORD_BITS, _COORD_MASK

__all__ = [
    "ref_af_ssim_n",
    "ref_af_ssim_txds",
    "ref_anisotropic",
    "ref_bilinear",
    "ref_compute_footprint",
    "ref_footprint_key",
    "ref_trilinear",
    "ref_trilinear_levels",
    "ref_two_stage_decision",
    "ref_txds",
]


def _texel(level: np.ndarray, iy: int, ix: int) -> np.ndarray:
    """One RGBA texel with wrap addressing, as float64."""
    h, w = level.shape[:2]
    return np.asarray(level[iy % h, ix % w], dtype=np.float64)


def ref_bilinear(chain: MipChain, level: int, u: float, v: float) -> np.ndarray:
    """Bilinear filtering of one sample at one mip level (definition form).

    The sample point in texel space is ``u * W - 0.5`` (texel centers at
    half-integer normalized coordinates); the four surrounding texels
    are blended with the fractional weights.
    """
    arr = chain.levels[level]
    h, w = arr.shape[:2]
    tx = u * w - 0.5
    ty = v * h - 0.5
    ix = math.floor(tx)
    iy = math.floor(ty)
    fx = tx - ix
    fy = ty - iy
    out = np.zeros(4, dtype=np.float64)
    for dy, wy in ((0, 1.0 - fy), (1, fy)):
        for dx, wx in ((0, 1.0 - fx), (1, fx)):
            out += wy * wx * _texel(arr, iy + dy, ix + dx)
    return out


def ref_trilinear_levels(chain: MipChain, lod: float) -> "tuple[int, int, float]":
    """The two enclosing mip levels and the blend fraction for one LOD."""
    lod = min(max(float(lod), 0.0), float(chain.max_level))
    l0 = int(math.floor(lod))
    l1 = min(l0 + 1, chain.max_level)
    return l0, l1, lod - l0


def ref_trilinear(chain: MipChain, u: float, v: float, lod: float) -> np.ndarray:
    """Trilinear filtering: blend the bilinear results of two levels."""
    l0, l1, lfrac = ref_trilinear_levels(chain, lod)
    c0 = ref_bilinear(chain, l0, u, v)
    c1 = ref_bilinear(chain, l1, u, v)
    return c0 * (1.0 - lfrac) + c1 * lfrac


def ref_compute_footprint(
    dudx: float,
    dvdx: float,
    dudy: float,
    dvdy: float,
    tex_width: int,
    tex_height: int,
    *,
    max_aniso: int = 16,
    max_level: "int | None" = None,
) -> "dict[str, float]":
    """Footprint/LOD/anisotropy of one fragment, from the definitions.

    Returns a dict with ``px``, ``py``, ``n`` (int), ``lod_tf``,
    ``lod_af``, ``major_du``, ``major_dv`` — the scalar analogue of one
    row of :func:`repro.texture.footprint.compute_footprints`.
    """
    px = float(np.hypot(dudx * tex_width, dvdx * tex_height))
    py = float(np.hypot(dudy * tex_width, dvdy * tex_height))
    pmax = max(px, py)
    pmin = min(px, py)
    ratio = min(pmax / max(pmin, 1e-12), float(max_aniso))
    n = int(math.ceil(ratio - 1e-9))
    n = min(max(n, 1), max_aniso)
    if pmax <= 1.0:
        n = 1  # magnified: footprint smaller than a texel, AF is moot
    lod_tf = float(np.log2(max(pmax, 1.0)))
    lod_af = float(np.log2(max(pmax / n, 1.0)))
    if max_level is not None:
        lod_tf = min(lod_tf, float(max_level))
        lod_af = min(lod_af, float(max_level))
    if px >= py:
        major_du, major_dv = dudx, dvdx
    else:
        major_du, major_dv = dudy, dvdy
    return {
        "px": px,
        "py": py,
        "n": n,
        "lod_tf": lod_tf,
        "lod_af": lod_af,
        "major_du": major_du,
        "major_dv": major_dv,
    }


def ref_anisotropic(
    chain: MipChain,
    u: float,
    v: float,
    major_du: float,
    major_dv: float,
    lod_af: float,
    n: int,
) -> np.ndarray:
    """Eq. (3): average ``n`` trilinear samples along the major axis.

    Sample ``i`` sits at ``t_i = (i + 0.5) / n - 0.5`` along the
    footprint's major-axis extent, each taken at the anisotropic LOD.
    """
    acc = np.zeros(4, dtype=np.float64)
    for i in range(n):
        t = (i + 0.5) / n - 0.5
        acc += ref_trilinear(chain, u + t * major_du, v + t * major_dv, lod_af)
    return acc / n


def ref_footprint_key(
    chain: MipChain, u: float, v: float, lod: float
) -> int:
    """Pack one trilinear sample's 8-texel set identity (pure Python ints).

    Mirrors the documented layout of
    :func:`repro.texture.sampler.footprint_keys_from_info`: the coarse
    level index, then the wrapped footprint coordinates of both levels,
    each in ``_COORD_BITS``-bit fields.
    """
    l0, l1, _ = ref_trilinear_levels(chain, lod)
    parts = []
    for level in (l0, l1):
        w, h = chain.level_size(level)
        parts.append(math.floor(u * w - 0.5))
        parts.append(math.floor(v * h - 0.5))
    iu0, iv0, iu1, iv1 = parts
    key = l0
    for part in (iu0, iv0, iu1, iv1):
        key = (key << _COORD_BITS) | (part & _COORD_MASK)
    return key


# ---------------------------------------------------------------------------
# Predictors (paper Eq. 5, 6, 8, 9, 10)
# ---------------------------------------------------------------------------


def ref_af_ssim_n(n: float) -> float:
    """Eq. (6) exactly as printed: ``(2N / (N^2 + 1))^2``.

    The production kernel uses the overflow-free rewriting
    ``(2 / (N + 1/N))^2``; agreement of the two forms is itself part of
    what the differential oracle checks.
    """
    return (2.0 * n / (n * n + 1.0)) ** 2


def ref_txds(keys: "list[int]") -> float:
    """Eq. (8)+(9): entropy of the sample->texel-set distribution.

    ``keys`` are one pixel's AF sample footprint keys; samples sharing
    a key share an 8-texel set. Counting through a dict and summing
    ``-p log2 p`` per *group* is deliberately unlike the production
    per-element-count formulation.
    """
    n = len(keys)
    if n <= 1:
        return 1.0
    counts: "dict[int, int]" = {}
    for key in keys:
        counts[key] = counts.get(key, 0) + 1
    h = 0.0
    for c in counts.values():
        p = c / n
        h -= p * math.log2(p)
    t = 1.0 - h / math.log2(n)
    return min(max(t, 0.0), 1.0)


def ref_af_ssim_txds(t: float) -> float:
    """Eq. (10): ``(2 Txds / (Txds^2 + 1))^2``."""
    return (2.0 * t / (t * t + 1.0)) ** 2


def ref_two_stage_decision(
    n: int,
    txds: float,
    threshold: float,
    *,
    use_stage1: bool = True,
    use_stage2: bool = True,
    stage2_threshold: "float | None" = None,
) -> "tuple[bool, bool]":
    """The Fig. 13 flow for one pixel: (stage1 fired, stage2 fired).

    A pixel with ``N <= 1`` never reaches either check (it is TF-only
    by construction, Section V-B); stage 2 only sees pixels stage 1
    let through.
    """
    thr2 = threshold if stage2_threshold is None else stage2_threshold
    if n <= 1:
        return False, False
    stage1 = use_stage1 and ref_af_ssim_n(n) > threshold
    stage2 = (
        use_stage2 and not stage1 and ref_af_ssim_txds(txds) > thr2
    )
    return stage1, stage2
