"""Typed results of a verification run and the JSON report schema.

A verify run executes a list of *oracles* — independent checks of the
pipeline's correctness — and aggregates one :class:`OracleResult` per
oracle into a :class:`VerifyReport`. The report is machine-readable
(``repro verify --report``) so CI and future perf PRs can gate on it.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field

from ..ioutil import atomic_write_text
from ..obs import jsonable

#: Report schema version — bump on breaking layout changes.
REPORT_SCHEMA = 1

#: Oracle layers, in presentation order.
LAYER_DIFFERENTIAL = "differential"
LAYER_METAMORPHIC = "metamorphic"
LAYER_GOLDEN = "golden"
LAYER_FUZZ = "fuzz"
LAYERS = (LAYER_DIFFERENTIAL, LAYER_METAMORPHIC, LAYER_GOLDEN, LAYER_FUZZ)


@dataclass(frozen=True)
class VerifyConfig:
    """Knobs shared by every oracle in one run."""

    seed: int = 0
    quick: bool = False
    #: Root of the golden-artifact store (``None`` = the in-repo
    #: ``tests/goldens`` directory).
    goldens_root: "pathlib.Path | None" = None
    #: Regenerate goldens instead of checking them.
    update_goldens: bool = False
    #: Generated scenarios the fuzz lane runs (0 = lane skipped).
    fuzz: int = 0
    #: Where the fuzz lane saves shrunk minimal repro specs (``None``
    #: = print only).
    fuzz_save: "pathlib.Path | None" = None


@dataclass
class OracleResult:
    """Outcome of one oracle.

    ``max_error`` is the largest absolute deviation the oracle
    observed (0.0 for exact/boolean checks); ``fragments`` counts the
    independent samples/pixels/rows it examined. ``details`` is free-
    form but JSON-ready.
    """

    name: str
    layer: str
    passed: bool
    max_error: float = 0.0
    fragments: int = 0
    skipped: bool = False
    duration_s: float = 0.0
    details: "dict[str, object]" = field(default_factory=dict)

    @property
    def status(self) -> str:
        if self.skipped:
            return "SKIP"
        return "PASS" if self.passed else "FAIL"

    def to_dict(self) -> "dict[str, object]":
        return {
            "name": self.name,
            "layer": self.layer,
            "status": self.status,
            "passed": self.passed,
            "skipped": self.skipped,
            "max_error": self.max_error,
            "fragments": self.fragments,
            "duration_s": round(self.duration_s, 6),
            "details": jsonable(self.details),
        }


@dataclass
class VerifyReport:
    """All oracle outcomes of one ``repro verify`` invocation."""

    seed: int
    quick: bool
    results: "list[OracleResult]" = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(r.passed or r.skipped for r in self.results)

    @property
    def failures(self) -> "list[OracleResult]":
        return [r for r in self.results if not r.passed and not r.skipped]

    def layer_results(self, layer: str) -> "list[OracleResult]":
        return [r for r in self.results if r.layer == layer]

    def to_dict(self) -> "dict[str, object]":
        return {
            "schema": REPORT_SCHEMA,
            "seed": self.seed,
            "quick": self.quick,
            "passed": self.passed,
            "oracles_run": sum(1 for r in self.results if not r.skipped),
            "oracles_failed": len(self.failures),
            "fragments_checked": sum(r.fragments for r in self.results),
            "oracles": [r.to_dict() for r in self.results],
        }

    def write(self, path) -> pathlib.Path:
        """Atomically write the JSON report (crash-safe like all artifacts)."""
        import json

        text = json.dumps(self.to_dict(), indent=2, sort_keys=False) + "\n"
        return atomic_write_text(path, text)

    def format_summary(self) -> str:
        """Human-readable per-oracle table (stdout companion of the JSON)."""
        name_w = max([len("oracle")] + [len(r.name) for r in self.results]) + 2
        lines = [
            f"{'oracle':<{name_w}}{'layer':<14}{'status':<8}"
            f"{'max_error':>12}{'fragments':>11}"
        ]
        lines.append("-" * len(lines[0]))
        for r in self.results:
            err = "-" if r.skipped else f"{r.max_error:.2e}"
            lines.append(
                f"{r.name:<{name_w}}{r.layer:<14}{r.status:<8}"
                f"{err:>12}{r.fragments:>11}"
            )
        verdict = "PASS" if self.passed else "FAIL"
        lines.append("-" * len(lines[0]))
        lines.append(
            f"verify: {verdict} "
            f"({sum(1 for r in self.results if not r.skipped)} oracle(s) run, "
            f"{len(self.failures)} failed, "
            f"{sum(1 for r in self.results if r.skipped)} skipped)"
        )
        return "\n".join(lines)
