"""The verify runner: executes the three oracle layers and aggregates.

``run_verify`` is what ``python -m repro verify`` calls: it resets the
fault injector (oracle verdicts must be hermetic — a leftover fault
plan from an earlier run in the same process would turn verification
into noise), runs every registered oracle under a telemetry span, and
returns a :class:`~repro.verify.report.VerifyReport` ready for
``format_summary()`` / ``write()``.

The golden layer lives here (rather than its own module) because its
oracles are thin: regenerate an artifact with the production pipeline,
then delegate to :class:`~repro.verify.goldens.GoldenStore`.
"""

from __future__ import annotations

import time

from ..obs import TELEMETRY
from ..resilience import FAULTS
from .differential import DIFFERENTIAL_ORACLES
from .fuzz import FUZZ_ORACLES
from .goldens import (
    GOLDEN_EXPERIMENTS,
    GoldenStore,
    default_goldens_root,
    frame_digest_text,
)
from .metamorphic import METAMORPHIC_ORACLES, VERIFY_WORKLOAD, _session_capture
from .report import (
    LAYER_GOLDEN,
    OracleResult,
    VerifyConfig,
    VerifyReport,
)

__all__ = ["list_oracles", "run_verify"]

#: Scale the frame-digest golden is pinned at (shared with the quick
#: metamorphic capture so a verify run renders it once).
GOLDEN_FRAME_SCALE = 0.125

#: Cap on the unified diff embedded in a stale golden's details.
_DIFF_LIMIT = 4000


def _golden_store(cfg: VerifyConfig) -> GoldenStore:
    return GoldenStore(cfg.goldens_root or default_goldens_root())


def _golden_result(
    cfg: VerifyConfig,
    name: str,
    kind: str,
    text: str,
    params: "dict[str, object]",
) -> OracleResult:
    """Check-or-update one golden and wrap the outcome as an oracle."""
    store = _golden_store(cfg)
    if cfg.update_goldens:
        changed = store.update(name, text, kind, params)
        return OracleResult(
            name=f"golden_{name}",
            layer=LAYER_GOLDEN,
            passed=True,
            fragments=text.count("\n"),
            details={"mode": "update", "changed": changed},
        )
    check = store.check(name, text, params)
    if check.status == "missing":
        return OracleResult(
            name=f"golden_{name}",
            layer=LAYER_GOLDEN,
            passed=True,
            skipped=True,
            details={
                "status": check.status,
                "hint": "golden not generated yet; "
                "run `python -m repro verify --update-goldens`",
            },
        )
    details: "dict[str, object]" = {"status": check.status, **check.details}
    if check.diff:
        details["diff"] = check.diff[:_DIFF_LIMIT]
    return OracleResult(
        name=f"golden_{name}",
        layer=LAYER_GOLDEN,
        passed=check.ok,
        max_error=0.0 if check.ok else 1.0,
        fragments=text.count("\n"),
        details=details,
    )


def oracle_golden_tables(cfg: VerifyConfig) -> OracleResult:
    """Experiment tables at pinned quick parameters, byte-exact."""
    from ..experiments import REGISTRY
    from ..experiments.runner import ExperimentContext, format_table

    results = []
    for exp_id, params in sorted(GOLDEN_EXPERIMENTS.items()):
        module = REGISTRY[exp_id]
        ctx = ExperimentContext(
            scale=float(params["scale"]),
            frames=int(params["frames"]),
            workloads=tuple(params["workloads"]),
        )
        table = format_table(module.run(ctx))
        results.append(
            _golden_result(cfg, f"table_{exp_id}", "table", table, dict(params))
        )
    # Merge per-experiment outcomes into one oracle row; details keep
    # the per-golden breakdown.
    merged = OracleResult(
        name="golden_tables",
        layer=LAYER_GOLDEN,
        passed=all(r.passed for r in results),
        skipped=all(r.skipped for r in results),
        max_error=max((r.max_error for r in results), default=0.0),
        fragments=sum(r.fragments for r in results),
        details={r.name: r.details for r in results},
    )
    return merged


def oracle_golden_frame(cfg: VerifyConfig) -> OracleResult:
    """Per-array digests of one rendered frame, byte-exact."""
    _, capture = _session_capture(GOLDEN_FRAME_SCALE)
    text = frame_digest_text(capture)
    params = {
        "workload": VERIFY_WORKLOAD,
        "frame": 0,
        "scale": GOLDEN_FRAME_SCALE,
    }
    return _golden_result(
        cfg, f"frame_{VERIFY_WORKLOAD}_f0", "frame", text, params
    )


GOLDEN_ORACLES = (oracle_golden_tables, oracle_golden_frame)

#: Every oracle, in execution order (cheap differential math first,
#: then rendered metamorphic properties, then golden regeneration,
#: then the opt-in fuzz lane over generated scenarios).
ALL_ORACLES = (
    DIFFERENTIAL_ORACLES + METAMORPHIC_ORACLES + GOLDEN_ORACLES + FUZZ_ORACLES
)


def list_oracles() -> "list[tuple[str, str]]":
    """(name, layer) of every registered oracle, in execution order."""
    out = []
    for fn in ALL_ORACLES:
        probe = fn.__name__
        if probe.startswith("oracle_"):
            probe = probe[len("oracle_"):]
        layer = fn.__module__.rsplit(".", 1)[-1]
        if layer == "runner":
            layer = LAYER_GOLDEN
        out.append((probe, layer))
    return out


def run_verify(
    *,
    seed: int = 0,
    quick: bool = False,
    only: "str | None" = None,
    goldens_root=None,
    update_goldens: bool = False,
    fuzz: int = 0,
    fuzz_save=None,
) -> VerifyReport:
    """Run the oracle suite and return the aggregated report.

    ``only`` filters oracles by substring match against the oracle
    function name or its layer (``--only differential`` runs one
    layer; ``--only bilinear`` one oracle). ``fuzz`` > 0 arms the fuzz
    lane with that many generated scenarios (``fuzz_save`` persists
    shrunk failing specs as corpus files). An oracle that *raises* is
    recorded as a failure, never aborts the run.
    """
    FAULTS.reset()  # hermetic: a leftover fault plan would poison verdicts
    cfg = VerifyConfig(
        seed=seed,
        quick=quick,
        goldens_root=goldens_root,
        update_goldens=update_goldens,
        fuzz=fuzz,
        fuzz_save=fuzz_save,
    )
    report = VerifyReport(seed=seed, quick=quick)
    for fn, (name, layer) in zip(ALL_ORACLES, list_oracles()):
        if only and only not in fn.__name__ and only not in layer:
            continue
        start = time.perf_counter()
        with TELEMETRY.span("verify.oracle", oracle=fn.__name__):
            try:
                result = fn(cfg)
            except Exception as exc:  # noqa: BLE001 — report, don't abort
                result = OracleResult(
                    name=name,
                    layer=layer,
                    passed=False,
                    details={"error": f"{type(exc).__name__}: {exc}"},
                )
        result.duration_s = time.perf_counter() - start
        report.results.append(result)
        if not result.skipped:
            TELEMETRY.count("verify.oracles_run")
            TELEMETRY.count("verify.fragments_checked", result.fragments)
        if not result.passed and not result.skipped:
            TELEMETRY.count("verify.oracles_failed")
        TELEMETRY.progress(
            f"verify: {result.name} [{result.layer}] {result.status} "
            f"({result.duration_s:.2f}s)"
        )
    return report
