"""Workloads: procedural game scenes standing in for the paper's traces.

The paper replays captured OpenGL/Direct3D traces of seven commercial
games (Table II) through ATTILA-sim. Those traces are not
redistributable, so each game is substituted by a procedurally
generated scene tuned to the game's rendering character — the relevant
property being the *distribution of anisotropy and texel-footprint
overlap* its surfaces produce (see DESIGN.md §2). All content is
seeded and deterministic.
"""

from .proctex import (
    asphalt_texture,
    brick_texture,
    checker_texture,
    dirt_texture,
    facade_texture,
    grass_texture,
    metal_texture,
    noise_texture,
    stone_texture,
    water_texture,
    wood_texture,
)
from .scene import Scene, CameraPath, Workload
from .games import GAME_WORKLOADS, TABLE2_ROWS, get_workload, workload_names
from .rbench import rbench_workload
from .fuzz import (
    FUZZ_PREFIX,
    PROFILES,
    FuzzSpec,
    fuzz_request,
    fuzz_workload,
    parse_fuzz_request,
    spec_for,
)

__all__ = [
    "CameraPath",
    "FUZZ_PREFIX",
    "FuzzSpec",
    "GAME_WORKLOADS",
    "PROFILES",
    "Scene",
    "TABLE2_ROWS",
    "Workload",
    "asphalt_texture",
    "brick_texture",
    "checker_texture",
    "dirt_texture",
    "facade_texture",
    "fuzz_request",
    "fuzz_workload",
    "get_workload",
    "grass_texture",
    "metal_texture",
    "noise_texture",
    "parse_fuzz_request",
    "rbench_workload",
    "spec_for",
    "stone_texture",
    "water_texture",
    "wood_texture",
    "workload_names",
]
