"""Seeded scenario fuzzing: adversarial workloads with oracles attached.

The seven Table II scenes prove the pipeline on *representative*
content; this module generates *hostile* content — triangle soups at
grazing angles, stretched or near-degenerate UV mappings, extreme
texture rates, tile-straddling slivers — as first-class
:class:`~repro.workloads.scene.Workload` objects. A fuzz workload is
addressed by the request name ``fuzz@<seed>[:profile]`` and resolves
through :func:`repro.engine.worker.resolve_workload` like any Table II
game, so every CLI entry point, experiment module, capture store and
checkpoint fingerprint accepts fuzz scenarios with zero special-casing.

Everything is derived deterministically from a typed :class:`FuzzSpec`:
same spec, byte-identical scene and camera path, on any machine. The
spec is JSON-able (``to_dict``/``from_dict``) so the verify fuzz lane
(:mod:`repro.verify.fuzz`) can shrink a failing spec to a minimal repro
dict and park it in ``tests/goldens/fuzz_regressions/``.
"""

from __future__ import annotations

import functools
import math
from dataclasses import dataclass, replace

import numpy as np

from ..errors import WorkloadError
from ..geometry.camera import Camera
from ..geometry.mesh import make_quad
from .proctex import checker_texture, facade_texture, noise_texture
from .scene import Scene, Workload

#: Workload-request prefix: ``"fuzz@7:grazing"`` is seed 7 of the
#: grazing profile (``":default"`` may be omitted).
FUZZ_PREFIX = "fuzz@"

#: Named generation profiles. Each biases the seed-derived spec toward
#: one failure surface; ``default`` leaves the draw unbiased.
PROFILES = (
    "default",
    "grazing",
    "stretched",
    "degenerate",
    "slivers",
    "texrate",
)

#: Camera-path families a spec may select.
CAMERA_FAMILIES = ("forward", "orbit", "dive")

#: UV regimes: how the soup quads map texture space onto geometry.
UV_REGIMES = ("normal", "stretched", "degenerate", "grazing")

#: Hard bounds keeping any spec (including hand-edited corpus entries)
#: cheap enough for tier-1: a fuzz frame is a test input, not content.
MAX_MESHES = 64
MAX_SLIVERS = 64
MAX_FRAMES = 8
MAX_DIM = 512
MIN_DIM = 32
MAX_TEX_STRESS = 64.0

#: Texture edge of the generated scenes (small: mip math saturates the
#: same way at 128 as at 512, and fuzz runs render many scenes).
FUZZ_TEX_SIZE = 128


@dataclass(frozen=True)
class FuzzSpec:
    """One generated scenario, fully determined by its field values.

    ``seed`` drives every random draw; the remaining fields are the
    *shrinkable* axes — the verify lane reduces them one at a time to
    find a minimal failing spec.
    """

    seed: int
    camera: str = "forward"
    meshes: int = 6
    uv_regime: str = "normal"
    tex_stress: float = 1.0
    slivers: int = 0
    width: int = 192
    height: int = 144
    frames: int = 2

    def __post_init__(self) -> None:
        if self.camera not in CAMERA_FAMILIES:
            raise WorkloadError(
                f"unknown camera family {self.camera!r}; "
                f"expected one of {CAMERA_FAMILIES}"
            )
        if self.uv_regime not in UV_REGIMES:
            raise WorkloadError(
                f"unknown uv regime {self.uv_regime!r}; "
                f"expected one of {UV_REGIMES}"
            )
        if not 0 <= self.meshes <= MAX_MESHES:
            raise WorkloadError(f"meshes must be in [0, {MAX_MESHES}]")
        if not 0 <= self.slivers <= MAX_SLIVERS:
            raise WorkloadError(f"slivers must be in [0, {MAX_SLIVERS}]")
        if not 1 <= self.frames <= MAX_FRAMES:
            raise WorkloadError(f"frames must be in [1, {MAX_FRAMES}]")
        if not (MIN_DIM <= self.width <= MAX_DIM
                and MIN_DIM <= self.height <= MAX_DIM):
            raise WorkloadError(
                f"resolution must be within [{MIN_DIM}, {MAX_DIM}]^2, "
                f"got {self.width}x{self.height}"
            )
        if not 0.0 < self.tex_stress <= MAX_TEX_STRESS:
            raise WorkloadError(
                f"tex_stress must be in (0, {MAX_TEX_STRESS}]"
            )

    def to_dict(self) -> "dict[str, object]":
        return {
            "seed": self.seed,
            "camera": self.camera,
            "meshes": self.meshes,
            "uv_regime": self.uv_regime,
            "tex_stress": self.tex_stress,
            "slivers": self.slivers,
            "width": self.width,
            "height": self.height,
            "frames": self.frames,
        }

    @classmethod
    def from_dict(cls, data: "dict[str, object]") -> "FuzzSpec":
        try:
            return cls(
                seed=int(data["seed"]),
                camera=str(data.get("camera", "forward")),
                meshes=int(data.get("meshes", 6)),
                uv_regime=str(data.get("uv_regime", "normal")),
                tex_stress=float(data.get("tex_stress", 1.0)),
                slivers=int(data.get("slivers", 0)),
                width=int(data.get("width", 192)),
                height=int(data.get("height", 144)),
                frames=int(data.get("frames", 2)),
            )
        except KeyError as exc:
            raise WorkloadError(f"fuzz spec missing field {exc}") from None
        except (TypeError, ValueError) as exc:
            raise WorkloadError(f"malformed fuzz spec: {exc}") from None


def fuzz_request(seed: int, profile: str = "default") -> str:
    """The request name of a profile-derived fuzz workload."""
    if profile == "default":
        return f"{FUZZ_PREFIX}{seed}"
    return f"{FUZZ_PREFIX}{seed}:{profile}"


def parse_fuzz_request(name: str) -> "tuple[int, str]":
    """``"fuzz@<seed>[:profile]"`` -> ``(seed, profile)``."""
    if not name.startswith(FUZZ_PREFIX):
        raise WorkloadError(f"not a fuzz workload request: {name!r}")
    head, sep, profile = name[len(FUZZ_PREFIX):].partition(":")
    if sep and not profile:
        raise WorkloadError(
            f"malformed fuzz request {name!r}: empty profile after ':'"
        )
    profile = profile or "default"
    try:
        seed = int(head)
    except ValueError:
        raise WorkloadError(
            f"malformed fuzz seed in {name!r}; "
            f"expected 'fuzz@<seed>[:profile]'"
        ) from None
    if seed < 0:
        raise WorkloadError(
            f"fuzz seed must be non-negative, got {seed} in {name!r}"
        )
    if profile not in PROFILES:
        raise WorkloadError(
            f"unknown fuzz profile {profile!r} in {name!r}; "
            f"available: {PROFILES}"
        )
    return seed, profile


def spec_for(seed: int, profile: str = "default") -> FuzzSpec:
    """Derive the :class:`FuzzSpec` a (seed, profile) pair names.

    The draw is seeded by ``(seed, profile index)`` so the same seed
    explores different corners under different profiles, yet every
    field of the result is reproducible from the name alone.
    """
    if profile not in PROFILES:
        raise WorkloadError(
            f"unknown fuzz profile {profile!r}; available: {PROFILES}"
        )
    rng = np.random.default_rng([int(seed), PROFILES.index(profile)])
    spec = FuzzSpec(
        seed=int(seed),
        camera=CAMERA_FAMILIES[int(rng.integers(len(CAMERA_FAMILIES)))],
        meshes=int(rng.integers(3, 10)),
        uv_regime=UV_REGIMES[int(rng.integers(len(UV_REGIMES)))],
        tex_stress=float(np.round(2.0 ** rng.uniform(-1.0, 2.0), 3)),
        slivers=int(rng.integers(0, 4)),
    )
    if profile == "grazing":
        spec = replace(spec, uv_regime="grazing", camera="dive")
    elif profile == "stretched":
        spec = replace(spec, uv_regime="stretched")
    elif profile == "degenerate":
        spec = replace(spec, uv_regime="degenerate")
    elif profile == "slivers":
        spec = replace(spec, slivers=int(6 + rng.integers(0, 6)))
    elif profile == "texrate":
        spec = replace(
            spec,
            tex_stress=float(
                min(spec.tex_stress * 16.0, MAX_TEX_STRESS)
            ),
        )
    return spec


def _soup_quad(rng: np.random.Generator, regime: str) -> np.ndarray:
    """Corner positions of one triangle-soup quad under a UV regime.

    The quad is ``center ± e1 ± e2``; the regime shapes the two edge
    vectors. All regimes keep a strictly positive area — "degenerate"
    means *nearly* degenerate UV footprints, not invalid geometry (the
    pipeline contract the oracles check only covers valid scenes).
    """
    center = np.array([
        rng.uniform(-24.0, 24.0),
        rng.uniform(0.5, 9.0),
        rng.uniform(-120.0, -12.0),
    ])

    def unit() -> np.ndarray:
        v = rng.normal(size=3)
        return v / max(np.linalg.norm(v), 1e-9)

    e1 = unit()
    # A second direction guaranteed non-parallel to e1.
    e2 = unit()
    e2 -= e1 * float(e1 @ e2)
    norm = np.linalg.norm(e2)
    if norm < 1e-6:  # pathological draw: fall back to a fixed orthogonal
        e2 = np.cross(e1, [0.0, 1.0, 0.0])
        e2 /= max(np.linalg.norm(e2), 1e-9)
    else:
        e2 /= norm

    if regime == "stretched":
        e1 *= rng.uniform(8.0, 18.0)
        e2 *= rng.uniform(0.2, 0.6)
    elif regime == "degenerate":
        # Tiny quads; the huge uv_scale applied by the caller makes the
        # per-pixel UV footprint near-degenerate.
        extent = rng.uniform(0.05, 0.25)
        e1 *= extent
        e2 *= extent * rng.uniform(0.1, 1.0)
    elif regime == "grazing":
        # Long, almost-horizontal slabs: seen edge-on from a forward
        # camera, maximal anisotropy.
        e1 = np.array([rng.uniform(2.0, 6.0), rng.uniform(-0.2, 0.2), 0.0])
        e2 = np.array([0.0, rng.uniform(-0.3, 0.3), rng.uniform(12.0, 40.0)])
        center[1] = rng.uniform(0.2, 2.5)
    else:  # normal
        e1 *= rng.uniform(1.5, 6.0)
        e2 *= rng.uniform(1.5, 6.0)

    return np.stack([
        center - e1 - e2,
        center + e1 - e2,
        center + e1 + e2,
        center - e1 + e2,
    ])


def build_scene(spec: FuzzSpec) -> Scene:
    """Generate the spec's scene (uncached — see :func:`fuzz_workload`).

    Layout: a receding ground plane (the canonical AF consumer — also
    guarantees ``Scene.validate()`` holds for every spec, including
    ``meshes=0`` shrinks), ``spec.meshes`` soup quads shaped by the UV
    regime, and ``spec.slivers`` thin vertical strips that straddle
    many raster tiles.
    """
    rng = np.random.default_rng([spec.seed, 1])
    scene = Scene(clear_color=(0.2, 0.25, 0.3, 1.0))
    scene.add_texture(
        checker_texture("fuzz_checker", size=FUZZ_TEX_SIZE, tiles=8)
    )
    scene.add_texture(
        facade_texture("fuzz_facade", size=FUZZ_TEX_SIZE,
                       seed=spec.seed % 251 + 1)
    )
    scene.add_texture(
        noise_texture("fuzz_noise", size=FUZZ_TEX_SIZE,
                      seed=spec.seed % 241 + 1, color=(0.7, 0.65, 0.6))
    )
    textures = ("fuzz_checker", "fuzz_facade", "fuzz_noise")

    ground = np.array(
        [[-60.0, 0.0, 20.0], [60.0, 0.0, 20.0],
         [60.0, 0.0, -300.0], [-60.0, 0.0, -300.0]]
    )
    scene.add(make_quad(
        ground, "fuzz_noise",
        uv_scale=min(16.0 * spec.tex_stress, 512.0),
        two_sided=True, subdivisions=5,
    ))

    for i in range(spec.meshes):
        corners = _soup_quad(rng, spec.uv_regime)
        uv_scale = float(rng.uniform(1.0, 6.0)) * spec.tex_stress
        if spec.uv_regime == "degenerate":
            uv_scale *= float(rng.uniform(20.0, 60.0))
        scene.add(make_quad(
            corners, textures[i % len(textures)],
            uv_scale=min(uv_scale, 4096.0),
            two_sided=True,
        ))

    for i in range(spec.slivers):
        x = float(rng.uniform(-6.0, 6.0))
        z = float(rng.uniform(-80.0, -15.0))
        half_w = float(rng.uniform(0.02, 0.08))
        corners = np.array([
            [x - half_w, -2.0, z], [x + half_w, -2.0, z],
            [x + half_w, 30.0, z], [x - half_w, 30.0, z],
        ])
        scene.add(make_quad(
            corners, textures[i % len(textures)],
            uv_scale=min(2.0 * spec.tex_stress, 512.0),
            two_sided=True,
        ))
    return scene


def build_camera_path(spec: FuzzSpec):
    """The spec's camera path (one deterministic closure per spec)."""
    rng = np.random.default_rng([spec.seed, 2])
    phase = float(rng.uniform(0.0, 2.0 * math.pi))
    family = spec.camera

    if family == "orbit":
        radius = float(rng.uniform(18.0, 36.0))
        height = float(rng.uniform(3.0, 14.0))
        center = (0.0, 1.0, -45.0)

        def path(frame: int) -> Camera:
            theta = phase + 0.45 * frame
            return Camera(
                eye=(
                    center[0] + radius * math.cos(theta),
                    height,
                    center[2] + radius * math.sin(theta),
                ),
                target=center,
            )

        return path

    if family == "dive":
        start_y = float(rng.uniform(14.0, 26.0))

        def path(frame: int) -> Camera:
            # Descend toward the ground: the view angle steepens to
            # grazing as frames advance.
            y = max(start_y / (1.0 + 1.2 * frame), 1.2)
            return Camera(
                eye=(0.0, y, 18.0 - 5.0 * frame),
                target=(0.0, 0.4, -70.0),
            )

        return path

    step = float(rng.uniform(4.0, 9.0))
    sway = float(rng.uniform(0.0, 0.8))

    def path(frame: int) -> Camera:
        dx = sway * math.sin(phase + 0.7 * frame)
        return Camera(
            eye=(dx, 3.0, 16.0 - step * frame),
            target=(dx, 2.0, -60.0),
        )

    return path


@functools.lru_cache(maxsize=32)
def workload_from_spec(spec: FuzzSpec, abbr: "str | None" = None) -> Workload:
    """Build (and cache) the :class:`Workload` a spec describes."""
    return Workload(
        abbr=abbr or f"{FUZZ_PREFIX}{spec.seed}",
        title=f"Fuzz scenario (seed {spec.seed}, {spec.uv_regime})",
        width=spec.width,
        height=spec.height,
        library="fuzz",
        scene=build_scene(spec),
        camera_path=build_camera_path(spec),
        num_frames=spec.frames,
    )


def fuzz_workload(seed: int, profile: str = "default") -> Workload:
    """The workload behind a ``fuzz@<seed>[:profile]`` request."""
    return workload_from_spec(
        spec_for(seed, profile), abbr=fuzz_request(seed, profile)
    )
