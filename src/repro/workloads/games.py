"""The seven 3D gaming benchmarks of Table II, as procedural scenes.

Each builder recreates the rendering *character* of its game — the mix
of grazing-angle surfaces (which drive anisotropy degree N up), camera-
facing surfaces (which PATU can approximate) and texture content —
since that mix is what determines both AF's cost and PATU's opportunity
(DESIGN.md §2 documents this substitution).

The scene geometry is shared between resolutions of the same game
(HL2 and Doom3 run at three resolutions each, Section VI).
"""

from __future__ import annotations

import functools
import math

import numpy as np

from ..errors import WorkloadError
from ..geometry.camera import Camera
from ..geometry.mesh import make_box, make_quad
from .proctex import (
    asphalt_texture,
    dirt_texture,
    brick_texture,
    checker_texture,
    facade_texture,
    grass_texture,
    metal_texture,
    noise_texture,
    stone_texture,
    water_texture,
    wood_texture,
)
from .scene import Scene, Workload


def _ground(x0, x1, z_near, z_far, texture, uv_scale, y=0.0, subdivisions=6):
    """A large receding ground plane — the canonical AF consumer."""
    corners = np.array(
        [[x0, y, z_near], [x1, y, z_near], [x1, y, z_far], [x0, y, z_far]],
        dtype=np.float64,
    )
    return make_quad(corners, texture, uv_scale=uv_scale,
                     two_sided=True, subdivisions=subdivisions)


def _wall(p0, p1, height, texture, uv_scale, base_y=0.0, subdivisions=3):
    """A vertical wall from p0=(x,z) to p1=(x,z)."""
    x0, z0 = p0
    x1, z1 = p1
    corners = np.array(
        [
            [x0, base_y, z0],
            [x1, base_y, z1],
            [x1, base_y + height, z1],
            [x0, base_y + height, z0],
        ],
        dtype=np.float64,
    )
    return make_quad(corners, texture, uv_scale=uv_scale,
                     two_sided=True, subdivisions=subdivisions)


def _forward_path(eye0, target0, step, frames_to_target_ratio=0.0):
    """Camera path moving forward along -Z with a slight sway."""
    ex, ey, ez = eye0
    tx, ty, tz = target0

    def path(frame: int) -> Camera:
        dz = -step * frame
        sway = 0.4 * math.sin(frame * 0.7)
        return Camera(
            eye=(ex + sway, ey, ez + dz),
            target=(tx + sway, ty, tz + dz),
        )

    return path


@functools.lru_cache(maxsize=None)
def _hl2_scene() -> Scene:
    """Half-Life 2: outdoor terrain, water, distant mountains, buildings."""
    scene = Scene(clear_color=(0.55, 0.65, 0.8, 1.0))
    scene.add_texture(grass_texture("grass", size=512))
    scene.add_texture(grass_texture("grass2", size=512, seed=12))
    scene.add_texture(water_texture("water", size=512))
    scene.add_texture(noise_texture("mountain", size=512, seed=41,
                                    color=(0.55, 0.5, 0.48)))
    scene.add_texture(facade_texture("facade", size=512))
    scene.add_texture(brick_texture("brick", size=512))

    scene.add(_ground(-120, 0, 20, -400, "grass", uv_scale=20))
    scene.add(_ground(0, 25, 20, -400, "grass2", uv_scale=20))
    # Water channel to the right, slightly below ground level.
    scene.add(_ground(25, 110, 10, -380, "water", uv_scale=12, y=-0.5))
    # Distant mountain backdrop (camera-facing -> low anisotropy).
    scene.add(_wall((-150, -390), (150, -390), 70, "mountain", uv_scale=6))
    # Buildings along the left side (oblique facades).
    for i, z in enumerate((-40, -90, -150, -220)):
        scene.add(make_box((-30 - 4 * i, 9, z), (18, 18, 22), "facade", uv_scale=2))
    scene.add(make_box((8, 3, -60), (6, 6, 6), "brick", uv_scale=2))
    return scene


def _hl2_path(frame: int) -> Camera:
    return _forward_path((0.0, 3.0, 18.0), (2.0, 2.0, -60.0), 6.0)(frame)


@functools.lru_cache(maxsize=None)
def _doom3_scene() -> Scene:
    """Doom3: a dark metal corridor — all four bounding surfaces grazing."""
    scene = Scene(clear_color=(0.02, 0.02, 0.03, 1.0))
    scene.add_texture(metal_texture("metal", size=512))
    scene.add_texture(metal_texture("metal_floor", size=512, seed=61))
    scene.add_texture(metal_texture("metal_ceil", size=512, seed=63))
    scene.add_texture(noise_texture("pipes", size=512, seed=67,
                                    color=(0.45, 0.4, 0.35)))
    scene.add_texture(facade_texture("panel", seed=71))

    scene.add(_ground(-6, 6, 15, -200, "metal_floor", uv_scale=24))
    scene.add(_ground(-6, 6, 15, -200, "metal_ceil", uv_scale=24, y=7.0))
    scene.add(_wall((-6, 15), (-6, -200), 7, "metal", uv_scale=22))
    scene.add(_wall((6, 15), (6, -200), 7, "pipes", uv_scale=22))
    # End wall and crates (camera-facing content).
    scene.add(_wall((-6, -198), (6, -198), 7, "panel", uv_scale=2))
    for z in (-35, -80, -130):
        scene.add(make_box((2.5, 1.2, z), (2.4, 2.4, 2.4), "panel", uv_scale=1))
    return scene


def _doom3_path(frame: int) -> Camera:
    return _forward_path((0.0, 3.2, 12.0), (0.0, 3.0, -40.0), 7.0)(frame)


@functools.lru_cache(maxsize=None)
def _grid_scene() -> Scene:
    """GRID: a race track — extreme grazing asphalt dominates the frame."""
    scene = Scene(clear_color=(0.6, 0.7, 0.85, 1.0))
    scene.add_texture(asphalt_texture("track", size=512))
    scene.add_texture(checker_texture("kerb", tiles=16,
                                      color_a=(0.85, 0.2, 0.2), color_b=(0.95, 0.95, 0.95)))
    scene.add_texture(grass_texture("verge", size=512, seed=43))
    scene.add_texture(facade_texture("billboard", seed=47))
    scene.add_texture(brick_texture("barrier", size=512, seed=48))

    scene.add(_ground(-10, 10, 12, -500, "track", uv_scale=48, subdivisions=8))
    scene.add(_ground(-13, -10, 12, -500, "kerb", uv_scale=64))
    scene.add(_ground(10, 13, 12, -500, "kerb", uv_scale=64))
    scene.add(_ground(-80, -13, 12, -500, "verge", uv_scale=32))
    scene.add(_ground(13, 80, 12, -500, "verge", uv_scale=32))
    # Pit barriers lining both sides of the track (grazing walls).
    scene.add(_wall((-14, 12), (-14, -500), 2.5, "barrier", uv_scale=40))
    scene.add(_wall((14, 12), (14, -500), 2.5, "barrier", uv_scale=40))
    for z in (-60, -160, -280):
        scene.add(_wall((-24, z), (-12, z - 4), 8, "billboard", uv_scale=1, base_y=1))
    return scene


def _grid_path(frame: int) -> Camera:
    return _forward_path((0.0, 1.6, 10.0), (0.0, 1.0, -80.0), 10.0)(frame)


@functools.lru_cache(maxsize=None)
def _nfs_scene() -> Scene:
    """Need For Speed: a city street canyon — road plus oblique facades."""
    scene = Scene(clear_color=(0.45, 0.5, 0.62, 1.0))
    scene.add_texture(asphalt_texture("street", size=512, seed=53))
    scene.add_texture(facade_texture("tower_a", size=512, seed=54))
    scene.add_texture(facade_texture("tower_b", size=512, seed=55))
    scene.add_texture(noise_texture("sidewalk", size=512, seed=56,
                                    color=(0.6, 0.6, 0.6)))

    scene.add(_ground(-8, 8, 12, -400, "street", uv_scale=36, subdivisions=8))
    scene.add(_ground(-16, -8, 12, -400, "sidewalk", uv_scale=44))
    scene.add(_ground(8, 16, 12, -400, "sidewalk", uv_scale=44))
    scene.add(_wall((-16, 10), (-16, -400), 40, "tower_a", uv_scale=14))
    scene.add(_wall((16, 10), (16, -400), 40, "tower_b", uv_scale=14))
    return scene


def _nfs_path(frame: int) -> Camera:
    return _forward_path((0.0, 2.0, 8.0), (0.0, 1.6, -60.0), 12.0)(frame)


@functools.lru_cache(maxsize=None)
def _stal_scene() -> Scene:
    """S.T.A.L.K.E.R.: open wasteland with ruins and fences."""
    scene = Scene(clear_color=(0.5, 0.52, 0.5, 1.0))
    scene.add_texture(dirt_texture("dirt", size=512, seed=81))
    scene.add_texture(brick_texture("ruin", size=512, seed=83))
    scene.add_texture(wood_texture("fence", size=512, seed=87))
    scene.add_texture(grass_texture("scrub", size=512, seed=89))

    scene.add(_ground(-150, 150, 20, -400, "dirt", uv_scale=18))
    scene.add(_ground(-150, -40, 20, -400, "scrub", uv_scale=16, y=0.05))
    scene.add(_wall((-25, -50), (-10, -70), 6, "ruin", uv_scale=4))
    scene.add(_wall((15, -100), (35, -95), 5, "ruin", uv_scale=4))
    scene.add(_wall((-5, -160), (20, -170), 7, "ruin", uv_scale=4))
    scene.add(_wall((40, 0), (40, -300), 2.5, "fence", uv_scale=26))
    return scene


def _stal_path(frame: int) -> Camera:
    return _forward_path((0.0, 2.4, 15.0), (3.0, 1.5, -70.0), 8.0)(frame)


@functools.lru_cache(maxsize=None)
def _ut3_scene() -> Scene:
    """Unreal Tournament 3: a tech arena with ramps and platforms."""
    scene = Scene(clear_color=(0.2, 0.22, 0.3, 1.0))
    scene.add_texture(metal_texture("deck", size=512, seed=91))
    scene.add_texture(metal_texture("hull", size=512, seed=93))
    scene.add_texture(metal_texture("hull2", size=512, seed=94))
    scene.add_texture(checker_texture("hazard", tiles=8,
                                      color_a=(0.9, 0.75, 0.1), color_b=(0.1, 0.1, 0.1)))
    scene.add_texture(facade_texture("console", seed=97))

    scene.add(_ground(-40, 40, 15, -220, "deck", uv_scale=30))
    scene.add(_wall((-40, 15), (-40, -220), 20, "hull", uv_scale=18))
    scene.add(_wall((40, 15), (40, -220), 20, "hull2", uv_scale=18))
    # Ramp: a tilted quad (moderate anisotropy, changes with view).
    ramp = np.array(
        [[-10, 0, -60], [10, 0, -60], [10, 8, -100], [-10, 8, -100]], dtype=np.float64
    )
    scene.add(make_quad(ramp, "hazard", uv_scale=6, two_sided=True, subdivisions=3))
    scene.add(make_box((0, 10, -140), (24, 4, 24), "deck", uv_scale=4))
    scene.add(make_box((-20, 3, -50), (6, 6, 6), "console", uv_scale=1))
    return scene


def _ut3_path(frame: int) -> Camera:
    return _forward_path((0.0, 4.0, 12.0), (0.0, 3.0, -70.0), 6.0)(frame)


@functools.lru_cache(maxsize=None)
def _wolf_scene() -> Scene:
    """Wolfenstein: a low-fi stone dungeon corridor."""
    scene = Scene(clear_color=(0.05, 0.05, 0.06, 1.0))
    scene.add_texture(stone_texture("stone", size=512))
    scene.add_texture(stone_texture("stone2", size=512, seed=25))
    scene.add_texture(wood_texture("door", seed=101))
    scene.add_texture(noise_texture("floor", size=512, seed=103,
                                    color=(0.45, 0.42, 0.4)))

    scene.add(_ground(-5, 5, 12, -150, "floor", uv_scale=20))
    scene.add(_ground(-5, 5, 12, -150, "stone", uv_scale=20, y=6.0))
    scene.add(_wall((-5, 12), (-5, -150), 6, "stone", uv_scale=18))
    scene.add(_wall((5, 12), (5, -150), 6, "stone2", uv_scale=18))
    scene.add(_wall((-5, -148), (5, -148), 6, "door", uv_scale=2))
    return scene


def _wolf_path(frame: int) -> Camera:
    return _forward_path((0.0, 2.8, 10.0), (0.0, 2.6, -35.0), 6.0)(frame)


#: Table II rows: (abbr, full name, resolutions, library).
TABLE2_ROWS = [
    ("HL2", "Half-life 2", [(1600, 1200), (1280, 1024), (640, 480)], "DirectX3D"),
    ("doom3", "Doom3", [(1600, 1200), (1280, 1024), (640, 480)], "OpenGL"),
    ("grid", "GRID", [(1280, 1024)], "DirectX3D"),
    ("nfs", "Need For Speed", [(1280, 1024)], "DirectX3D"),
    ("stal", "S.T.A.L.K.E.R.: Call of Pripyat", [(1280, 1024)], "DirectX3D"),
    ("Ut3", "Unreal Tournament 3", [(1280, 1024)], "DirectX3D"),
    ("wolf", "Wolfenstein", [(640, 480)], "DirectX3D"),
]

_BUILDERS = {
    "HL2": (_hl2_scene, _hl2_path),
    "doom3": (_doom3_scene, _doom3_path),
    "grid": (_grid_scene, _grid_path),
    "nfs": (_nfs_scene, _nfs_path),
    "stal": (_stal_scene, _stal_path),
    "Ut3": (_ut3_scene, _ut3_path),
    "wolf": (_wolf_scene, _wolf_path),
}


@functools.lru_cache(maxsize=None)
def _build_workloads() -> "dict[str, Workload]":
    out: "dict[str, Workload]" = {}
    for abbr, title, resolutions, library in TABLE2_ROWS:
        scene_fn, path = _BUILDERS[abbr]
        for width, height in resolutions:
            wl = Workload(
                abbr=abbr,
                title=title,
                width=width,
                height=height,
                library=library,
                scene=scene_fn(),
                camera_path=path,
            )
            out[wl.name] = wl
    return out


def workload_names() -> "list[str]":
    """All Table II configuration names, in presentation order."""
    return list(_build_workloads().keys())


def get_workload(name: str) -> Workload:
    """Look up a workload by its ``abbr-WxH`` name."""
    workloads = _build_workloads()
    try:
        return workloads[name]
    except KeyError:
        raise WorkloadError(
            f"unknown workload {name!r}; available: {sorted(workloads)}"
        ) from None


#: Name -> Workload mapping for all Table II configurations.
GAME_WORKLOADS = _build_workloads()
