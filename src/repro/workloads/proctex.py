"""Procedural texture synthesis.

Game textures mix low-frequency structure with high-frequency detail;
the high-frequency content is what makes anisotropic filtering visibly
matter at grazing angles (Fig. 3), so every generator layers multiple
octaves of band-limited noise or sharp-edged patterns. All generators
are deterministic in (name, size, seed).
"""

from __future__ import annotations

import numpy as np

from ..errors import WorkloadError
from ..texture.image import Texture2D


def _rng(seed: int) -> np.random.Generator:
    return np.random.default_rng(seed)


def _upsample(grid: np.ndarray, size: int) -> np.ndarray:
    """Bilinearly upsample a small random grid to ``size`` (periodic)."""
    g = grid.shape[0]
    coords = np.arange(size) * g / size
    i0 = coords.astype(np.int64)
    f = coords - i0
    i1 = (i0 + 1) % g
    top = grid[np.ix_(i0, i0)]
    right = grid[np.ix_(i0, i1)]
    bottom = grid[np.ix_(i1, i0)]
    diag = grid[np.ix_(i1, i1)]
    fx = f[None, :]
    fy = f[:, None]
    return (
        top * (1 - fx) * (1 - fy)
        + right * fx * (1 - fy)
        + bottom * (1 - fx) * fy
        + diag * fx * fy
    )


def fbm_noise(size: int, seed: int, octaves: int = 5, base_cells: int = 4) -> np.ndarray:
    """Fractal (multi-octave) value noise in [0, 1], tileable."""
    if size & (size - 1):
        raise WorkloadError(f"noise size must be a power of two, got {size}")
    rng = _rng(seed)
    out = np.zeros((size, size), dtype=np.float64)
    amplitude = 1.0
    total = 0.0
    cells = base_cells
    for _ in range(octaves):
        cells = min(cells, size)
        grid = rng.random((cells, cells))
        out += amplitude * _upsample(grid, size)
        total += amplitude
        amplitude *= 0.55
        cells *= 2
    return out / total


def _tint(gray: np.ndarray, color, variation: float = 0.0, seed: int = 0) -> np.ndarray:
    """Colorize a grayscale field with an RGB tint and optional hue noise."""
    color = np.asarray(color, dtype=np.float64)
    rgb = gray[..., None] * color[None, None, :]
    if variation > 0:
        n = fbm_noise(gray.shape[0], seed + 7, octaves=3)
        rgb *= 1.0 + variation * (n[..., None] - 0.5)
    alpha = np.ones(gray.shape + (1,), dtype=np.float64)
    return np.clip(np.concatenate([rgb, alpha], axis=-1), 0.0, 1.0)


def noise_texture(name: str, size: int = 256, seed: int = 1, color=(1, 1, 1)) -> Texture2D:
    """Plain fractal-noise texture."""
    return Texture2D(name, _tint(fbm_noise(size, seed), color))


def checker_texture(
    name: str, size: int = 256, tiles: int = 8,
    color_a=(0.9, 0.9, 0.9), color_b=(0.15, 0.15, 0.15),
) -> Texture2D:
    """Checkerboard — the classic worst case for grazing-angle aliasing."""
    if tiles < 1 or size % tiles:
        raise WorkloadError(f"tiles must divide size: {tiles} vs {size}")
    idx = np.indices((size, size)).sum(axis=0) // (size // tiles) % 2
    a = np.asarray(color_a, dtype=np.float64)
    b = np.asarray(color_b, dtype=np.float64)
    rgb = np.where(idx[..., None] == 0, a, b)
    alpha = np.ones((size, size, 1))
    return Texture2D(name, np.concatenate([rgb, alpha], axis=-1))


def grass_texture(name: str = "grass", size: int = 256, seed: int = 11) -> Texture2D:
    """Grass: green fbm with sharp blade detail, bare patches and flowers.

    The high-contrast micro-structure (dark patches, bright specks) is
    what keeps grazing-angle blur perceptible — a plain low-contrast
    noise field would make AF visually irrelevant.
    """
    base = fbm_noise(size, seed, octaves=6, base_cells=8)
    detail = fbm_noise(size, seed + 1, octaves=3, base_cells=64)
    gray = 0.3 + 0.45 * base + 0.35 * detail
    gray = np.where(base < 0.35, gray * 0.45, gray)  # bare-earth patches
    rgba = _tint(gray, (0.35, 0.62, 0.25), variation=0.5, seed=seed)
    specks = fbm_noise(size, seed + 5, octaves=2, base_cells=128) > 0.88
    rgba[specks] = (0.9, 0.85, 0.4, 1.0)  # dry blades / flowers
    return Texture2D(name, rgba)


def water_texture(name: str = "water", size: int = 256, seed: int = 13) -> Texture2D:
    """Water: rippled noise with strong directional streaks."""
    base = fbm_noise(size, seed, octaves=5, base_cells=4)
    y = np.linspace(0, 14 * np.pi, size)
    ripple = 0.5 + 0.5 * np.sin(y[:, None] + 6.0 * base)
    gray = 0.55 + 0.3 * ripple * base
    return Texture2D(name, _tint(gray, (0.4, 0.6, 0.9), variation=0.25, seed=seed))


def asphalt_texture(
    name: str = "asphalt", size: int = 256, seed: int = 17, lane_marks: bool = True
) -> Texture2D:
    """Road asphalt: coarse aggregate, cracks, optional lane markings."""
    grain = fbm_noise(size, seed, octaves=5, base_cells=32)
    gray = 0.18 + 0.35 * grain
    cracks = fbm_noise(size, seed + 2, octaves=4, base_cells=8)
    gray = np.where(np.abs(cracks - 0.5) < 0.015, 0.05, gray)
    speckle = fbm_noise(size, seed + 4, octaves=2, base_cells=128) > 0.9
    gray = np.where(speckle, 0.75, gray)
    rgba = _tint(gray, (1.0, 1.0, 1.05), variation=0.15, seed=seed)
    if lane_marks:
        x = np.arange(size)
        center = np.abs(x - size // 2) < size // 48
        dashes = (np.arange(size) // (size // 8)) % 2 == 0
        mark = center[None, :] & dashes[:, None]
        rgba[mark] = (0.95, 0.9, 0.55, 1.0)
    return Texture2D(name, rgba)


def dirt_texture(name: str = "dirt", size: int = 256, seed: int = 15) -> Texture2D:
    """Cracked earth: coarse grain, dark crack lines, bright stones.

    Strong macro contrast that survives several mip levels, so
    disabling AF blurs visibly even in the mid-field.
    """
    grain = fbm_noise(size, seed, octaves=5, base_cells=16)
    gray = 0.35 + 0.4 * grain
    cracks = fbm_noise(size, seed + 2, octaves=4, base_cells=6)
    gray = np.where(np.abs(cracks - 0.5) < 0.02, 0.08, gray)
    stones = fbm_noise(size, seed + 4, octaves=2, base_cells=96) > 0.87
    gray = np.where(stones, 0.85, gray)
    return Texture2D(name, _tint(gray, (0.62, 0.5, 0.36), variation=0.3, seed=seed))


def brick_texture(name: str = "brick", size: int = 256, seed: int = 19) -> Texture2D:
    """Brick wall: offset courses with mortar lines and surface noise."""
    rows = 8
    cols = 4
    y = np.arange(size)
    x = np.arange(size)
    row = y * rows // size
    offset = (row % 2) * (size // (2 * cols))
    xx = (x[None, :] + offset[:, None]) % size
    mortar_y = (y % (size // rows)) < max(size // 64, 1)
    mortar_x = (xx % (size // cols)) < max(size // 64, 1)
    mortar = mortar_y[:, None] | mortar_x
    grain = fbm_noise(size, seed, octaves=4, base_cells=16)
    gray = np.where(mortar, 0.75, 0.5 + 0.2 * grain)
    rgb = np.where(
        mortar[..., None], (0.78, 0.76, 0.72), (0.62, 0.3, 0.22)
    ) * gray[..., None] * 1.4
    alpha = np.ones((size, size, 1))
    return Texture2D(name, np.clip(np.concatenate([rgb, alpha], axis=-1), 0, 1))


def stone_texture(name: str = "stone", size: int = 256, seed: int = 23) -> Texture2D:
    """Rough stone blocks (Wolfenstein-style dungeon walls)."""
    blocks = 4
    y = np.arange(size)
    joint = (y % (size // blocks)) < max(size // 48, 1)
    grain = fbm_noise(size, seed, octaves=5, base_cells=8)
    gray = np.where(joint[:, None], 0.25, 0.45 + 0.3 * grain)
    return Texture2D(name, _tint(gray, (0.75, 0.72, 0.65), variation=0.3, seed=seed))


def metal_texture(name: str = "metal", size: int = 256, seed: int = 29) -> Texture2D:
    """Brushed tech metal with panel seams (Doom3/UT3 corridors)."""
    streaks = fbm_noise(size, seed, octaves=3, base_cells=64)
    x = np.arange(size)
    seam = ((x % (size // 4)) < max(size // 64, 1)).astype(np.float64)
    gray = 0.35 + 0.25 * streaks - 0.2 * seam[None, :]
    rivets = fbm_noise(size, seed + 3, octaves=2, base_cells=32) > 0.82
    gray = np.where(rivets, gray + 0.25, gray)
    return Texture2D(name, _tint(np.clip(gray, 0, 1), (0.62, 0.66, 0.72)))


def wood_texture(name: str = "wood", size: int = 256, seed: int = 31) -> Texture2D:
    """Plank wood: rings distorted by noise, plank gaps."""
    yy = np.linspace(0, 1, size)[:, None] * np.ones((1, size))
    warp = fbm_noise(size, seed, octaves=4, base_cells=4)
    rings = 0.5 + 0.5 * np.sin(2 * np.pi * (yy * 12 + warp * 2.5))
    x = np.arange(size)
    gaps = ((x % (size // 4)) < max(size // 96, 1))[None, :]
    gray = np.where(gaps, 0.2, 0.45 + 0.3 * rings)
    return Texture2D(name, _tint(gray, (0.72, 0.5, 0.3), variation=0.2, seed=seed))


def facade_texture(name: str = "facade", size: int = 256, seed: int = 37) -> Texture2D:
    """Building facade: window grid with lit/unlit variation.

    The high-contrast window lattice is what makes the Fig. 15 LOD
    shift visible (lights in the rooms disappearing at coarser LODs).
    """
    rng = _rng(seed)
    wall = 0.4 + 0.15 * fbm_noise(size, seed, octaves=3, base_cells=8)
    rgba = _tint(wall, (0.75, 0.73, 0.7))
    cells = 8
    cell = size // cells
    win0 = cell // 4
    win1 = cell - cell // 4
    lit = rng.random((cells, cells)) > 0.55
    for gy in range(cells):
        for gx in range(cells):
            y0, x0 = gy * cell, gx * cell
            color = (0.95, 0.85, 0.45, 1.0) if lit[gy, gx] else (0.1, 0.12, 0.2, 1.0)
            rgba[y0 + win0 : y0 + win1, x0 + win0 : x0 + win1] = color
    return Texture2D(name, rgba)
