"""R.Bench substitute: a next-generation high-texture-rate benchmark.

The paper's Figure 4 runs the Relative Benchmark on an iPhone 7 Plus at
2K and 4K to show AF's frame-rate cost on a real device. We stand in a
synthetic scene that is deliberately texture-heavier than the game
workloads — layered high-detail surfaces at grazing angles, large
texture tiling factors — so the texture pipeline dominates exactly as
R.Bench's "high-quality color effects and large texture data" do.
"""

from __future__ import annotations

import functools
import math

import numpy as np

from ..errors import WorkloadError
from ..geometry.camera import Camera
from ..geometry.mesh import make_box, make_quad
from .proctex import (
    asphalt_texture,
    checker_texture,
    facade_texture,
    metal_texture,
    noise_texture,
    water_texture,
)
from .scene import Scene, Workload

#: Fig. 4 resolutions: "2K" and "4K".
RBENCH_RESOLUTIONS = {"2K": (2560, 1440), "4K": (3840, 2160)}


@functools.lru_cache(maxsize=None)
def _rbench_scene() -> Scene:
    scene = Scene(clear_color=(0.3, 0.4, 0.6, 1.0))
    scene.add_texture(asphalt_texture("rb_ground", seed=201, lane_marks=False))
    scene.add_texture(water_texture("rb_water", seed=203))
    scene.add_texture(metal_texture("rb_panel", seed=205))
    scene.add_texture(facade_texture("rb_city", seed=207))
    scene.add_texture(checker_texture("rb_detail", tiles=32))
    scene.add_texture(noise_texture("rb_cliff", seed=209, color=(0.5, 0.45, 0.4)))

    def ground(x0, x1, z0, z1, tex, uv, y=0.0, sub=8):
        corners = np.array(
            [[x0, y, z0], [x1, y, z0], [x1, y, z1], [x0, y, z1]], dtype=np.float64
        )
        return make_quad(corners, tex, uv_scale=uv, two_sided=True, subdivisions=sub)

    # Stacked grazing layers: terraces of detailed surfaces.
    scene.add(ground(-200, 200, 20, -600, "rb_ground", 80))
    scene.add(ground(-200, 0, 10, -600, "rb_water", 48, y=-0.8))
    scene.add(ground(-40, 40, 0, -600, "rb_detail", 100, y=0.1))
    # Canyon walls with fine panel detail.
    wall_l = np.array(
        [[-60, 0, 20], [-60, 0, -600], [-60, 45, -600], [-60, 45, 20]], np.float64
    )
    wall_r = np.array(
        [[60, 0, -600], [60, 0, 20], [60, 45, 20], [60, 45, -600]], np.float64
    )
    scene.add(make_quad(wall_l, "rb_city", uv_scale=24, two_sided=True, subdivisions=4))
    scene.add(make_quad(wall_r, "rb_panel", uv_scale=24, two_sided=True, subdivisions=4))
    scene.add(make_quad(
        np.array([[-200, 0, -590], [200, 0, -590], [200, 90, -590], [-200, 90, -590]],
                 np.float64),
        "rb_cliff", uv_scale=10, two_sided=True, subdivisions=2))
    for z in (-80, -200, -360):
        scene.add(make_box((20, 6, z), (12, 12, 12), "rb_panel", uv_scale=3))
    return scene


def _rbench_path(frame: int) -> Camera:
    sway = 1.5 * math.sin(frame * 0.5)
    dz = -9.0 * frame
    return Camera(
        eye=(sway, 3.5, 18.0 + dz),
        target=(sway * 0.5, 2.0, -80.0 + dz),
        fov_y_deg=70.0,
    )


def rbench_workload(resolution: str = "2K", num_frames: int = 8) -> Workload:
    """Build the R.Bench substitute at ``"2K"`` or ``"4K"``."""
    try:
        width, height = RBENCH_RESOLUTIONS[resolution]
    except KeyError:
        raise WorkloadError(
            f"unknown R.Bench resolution {resolution!r}; "
            f"expected one of {sorted(RBENCH_RESOLUTIONS)}"
        ) from None
    return Workload(
        abbr=f"R.Bench-{resolution}",
        title="Relative Benchmark (substitute)",
        width=width,
        height=height,
        library="OpenGL_ES3",
        scene=_rbench_scene(),
        camera_path=_rbench_path,
        num_frames=num_frames,
    )
