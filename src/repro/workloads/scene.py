"""Scenes, camera paths and workload definitions.

A :class:`Workload` bundles everything needed to replay one Table II
row: a scene (meshes + textures), a camera path (one camera per frame)
and the nominal resolution. Workloads are rendered at
``resolution * scale`` — the ``scale`` knob keeps pure-Python runtimes
tractable while preserving relative resolution ratios (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..errors import WorkloadError
from ..geometry.camera import Camera
from ..geometry.mesh import Mesh
from ..texture.image import Texture2D

#: A camera path maps a frame index to a camera.
CameraPath = Callable[[int], Camera]


@dataclass
class Scene:
    """A static scene: draw-call meshes plus their texture registry."""

    meshes: "list[Mesh]" = field(default_factory=list)
    textures: "dict[str, Texture2D]" = field(default_factory=dict)
    clear_color: "tuple[float, float, float, float]" = (0.35, 0.55, 0.85, 1.0)

    def add(self, mesh: Mesh) -> None:
        """Add a mesh; its texture must be registered before rendering."""
        self.meshes.append(mesh)

    def add_texture(self, texture: Texture2D) -> None:
        if texture.name in self.textures:
            raise WorkloadError(f"duplicate texture name {texture.name!r}")
        self.textures[texture.name] = texture

    def validate(self) -> None:
        """Check every mesh references a registered texture."""
        for mesh in self.meshes:
            if mesh.texture not in self.textures:
                raise WorkloadError(
                    f"mesh references unregistered texture {mesh.texture!r}"
                )
        if not self.meshes:
            raise WorkloadError("scene has no meshes")

    @property
    def total_triangles(self) -> int:
        return sum(m.num_triangles for m in self.meshes)

    @property
    def total_vertices(self) -> int:
        return sum(m.num_vertices for m in self.meshes)


@dataclass(frozen=True)
class Workload:
    """One benchmark configuration (a Table II row at one resolution)."""

    abbr: str
    title: str
    width: int
    height: int
    library: str
    scene: Scene
    camera_path: CameraPath
    num_frames: int = 8

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise WorkloadError(f"bad resolution {self.width}x{self.height}")
        if self.num_frames < 1:
            raise WorkloadError("workload needs at least one frame")
        self.scene.validate()

    @property
    def name(self) -> str:
        """The paper's presentation name, e.g. ``HL2-1600x1200``."""
        return f"{self.abbr}-{self.width}x{self.height}"

    def camera(self, frame: int) -> Camera:
        if not 0 <= frame < self.num_frames:
            raise WorkloadError(
                f"frame {frame} out of range [0, {self.num_frames})"
            )
        return self.camera_path(frame)

    def scaled_size(self, scale: float) -> "tuple[int, int]":
        """Rendered resolution under a global scale factor.

        Dimensions are rounded to multiples of 4 (quad and SSIM-window
        friendly) with a floor of 32 pixels.
        """
        if not 0.0 < scale <= 1.0:
            raise WorkloadError(f"scale must be in (0, 1], got {scale}")
        w = max(int(round(self.width * scale / 4)) * 4, 32)
        h = max(int(round(self.height * scale / 4)) * 4, 32)
        return w, h
