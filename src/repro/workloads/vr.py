"""Multi-view (VR) workloads.

The paper's simulator integration explicitly includes "multi-view VR"
(Section VI) and motivates AF with virtual reality throughout. This
module turns any Table II game into a stereo workload: each logical
time step renders two views from eye positions separated by an
interpupillary distance along the camera's right vector. Even frames
are the left eye, odd frames the right — the scheduling real multiview
pipelines use.

PATU's opportunity grows under VR for the same reason it grows with
resolution: twice the fragments, and the slightly different viewing
angles decorrelate the two eyes' anisotropy only weakly, so the
approximation rate holds across views.
"""

from __future__ import annotations

import dataclasses

import numpy as np

from ..errors import WorkloadError
from ..geometry.camera import Camera
from ..geometry.linalg import normalize
from .games import get_workload
from .scene import Workload

#: Default interpupillary distance in world units (~6.4 cm at 1u = 1m).
DEFAULT_IPD = 0.064


def _eye_offset(camera: Camera, ipd: float, side: float) -> Camera:
    """Shift a camera half an IPD along its right vector."""
    eye = np.asarray(camera.eye, dtype=np.float64)
    target = np.asarray(camera.target, dtype=np.float64)
    forward = normalize(target - eye)
    right = np.cross(forward, np.asarray(camera.up, dtype=np.float64))
    right = normalize(right)
    shift = right * (side * ipd / 2.0)
    return dataclasses.replace(
        camera,
        eye=tuple(eye + shift),
        target=tuple(target + shift),
    )


def vr_workload(
    base_name: str,
    *,
    ipd: float = DEFAULT_IPD,
    time_steps: "int | None" = None,
) -> Workload:
    """Build the stereo variant of a Table II workload.

    The result has ``2 * time_steps`` frames: frame ``2k`` is the left
    eye and ``2k + 1`` the right eye of the base workload's frame ``k``.
    """
    if ipd <= 0:
        raise WorkloadError(f"ipd must be positive, got {ipd}")
    base = get_workload(base_name)
    steps = base.num_frames if time_steps is None else time_steps
    if not 1 <= steps <= base.num_frames:
        raise WorkloadError(
            f"time_steps must be in [1, {base.num_frames}], got {steps}"
        )

    def stereo_path(frame: int) -> Camera:
        step, eye_index = divmod(frame, 2)
        side = -1.0 if eye_index == 0 else 1.0
        return _eye_offset(base.camera_path(step), ipd, side)

    return Workload(
        abbr=f"VR-{base.abbr}",
        title=f"{base.title} (stereo)",
        width=base.width,
        height=base.height,
        library=base.library,
        scene=base.scene,
        camera_path=stereo_path,
        num_frames=2 * steps,
    )
