"""Tests for claim evaluation and report generation."""

import pytest

from repro.analysis.claims import PAPER_CLAIMS, evaluate_claims
from repro.analysis.report import build_report, run_all
from repro.errors import ExperimentError
from repro.experiments.runner import ExperimentContext, ExperimentResult


def _fake_results():
    return {
        "fig5": ExperimentResult(
            experiment="fig5", title="t",
            rows=[
                {"workload": "a", "speedup": 1.5, "energy_reduction": 0.35},
                {"workload": "average", "speedup": 1.4, "energy_reduction": 0.3},
            ],
        ),
        "fig19": ExperimentResult(
            experiment="fig19", title="t",
            rows=[{"workload": "average", "patu_speedup": 1.15,
                   "patu_mssim": 0.95}],
        ),
    }


class TestClaims:
    def test_only_present_experiments_evaluated(self):
        outcomes = evaluate_claims(_fake_results())
        names = {o.claim.name for o in outcomes}
        assert any("Fig. 5" in n for n in names)
        assert not any("Fig. 12" in n for n in names)

    def test_holds_within_band(self):
        outcomes = {o.claim.name: o for o in evaluate_claims(_fake_results())}
        speedup = outcomes["AF-off speedup (Fig. 5)"]
        assert speedup.measured == pytest.approx(1.4)
        assert speedup.holds

    def test_violation_detected(self):
        results = _fake_results()
        results["fig5"].rows[-1]["speedup"] = 5.0
        outcomes = {o.claim.name: o for o in evaluate_claims(results)}
        assert not outcomes["AF-off speedup (Fig. 5)"].holds

    def test_missing_average_row_raises(self):
        bad = {
            "fig5": ExperimentResult(
                experiment="fig5", title="t",
                rows=[{"workload": "a", "speedup": 1.0}],
            )
        }
        with pytest.raises(ExperimentError):
            evaluate_claims(bad)

    def test_claim_measure_requires_experiment(self):
        claim = PAPER_CLAIMS[0]
        with pytest.raises(ExperimentError):
            claim.measure({})

    def test_all_paper_claims_have_sane_bands(self):
        for claim in PAPER_CLAIMS:
            assert claim.lo <= claim.hi
            # Paper value must lie inside or near the acceptance band.
            assert claim.lo <= claim.paper_value * 1.5 + 0.1


class TestReport:
    def test_report_contains_claims_and_tables(self):
        text = build_report(_fake_results())
        assert text.startswith("# PATU reproduction report")
        assert "| AF-off speedup (Fig. 5) |" in text
        assert "== fig19" in text

    def test_run_all_rejects_unknown_ids(self):
        ctx = ExperimentContext(scale=0.1, frames=1, workloads=("wolf-640x480",))
        with pytest.raises(ExperimentError):
            run_all(ctx, experiment_ids=("fig99",))

    def test_run_all_static_subset(self):
        ctx = ExperimentContext(scale=0.1, frames=1, workloads=("wolf-640x480",))
        results = run_all(ctx, experiment_ids=("table1", "table2"))
        assert set(results) == {"table1", "table2"}
        text = build_report(results)
        assert "Frequency" in text
