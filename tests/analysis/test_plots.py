"""Tests for the ASCII chart helpers."""

import pytest

from repro.analysis.plots import bar_chart, line_chart
from repro.errors import ReproError


class TestLineChart:
    def test_renders_title_and_legend(self):
        text = line_chart(
            [0, 1, 2], {"speedup": [1.0, 1.1, 1.2]}, title="Fig. 17"
        )
        assert text.startswith("Fig. 17")
        assert "o speedup" in text

    def test_marks_land_on_extremes(self):
        text = line_chart([0.0, 1.0], {"y": [0.0, 1.0]}, width=20, height=6)
        rows = [line for line in text.splitlines() if "|" in line and "+" not in line]
        # Lowest value in the bottom row, highest in the top row.
        assert "o" in rows[0]
        assert "o" in rows[-1]

    def test_multiple_series_distinct_markers(self):
        text = line_chart(
            [0, 1], {"a": [0, 1], "b": [1, 0]}
        )
        assert "o a" in text and "x b" in text

    def test_constant_series_handled(self):
        text = line_chart([0, 1, 2], {"flat": [0.5, 0.5, 0.5]})
        assert "flat" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            line_chart([0, 1], {})
        with pytest.raises(ReproError):
            line_chart([0], {"a": [1]})
        with pytest.raises(ReproError):
            line_chart([0, 1], {"a": [1]})
        with pytest.raises(ReproError):
            line_chart([0, 1], {"a": [1, 2]}, width=5)


class TestBarChart:
    def test_bars_proportional(self):
        text = bar_chart(["small", "large"], [1.0, 2.0], width=20)
        small_line, large_line = text.splitlines()
        assert small_line.count("#") * 2 == large_line.count("#")

    def test_values_printed(self):
        text = bar_chart(["x"], [1.234])
        assert "1.234" in text

    def test_baseline_marker(self):
        text = bar_chart(["a"], [0.5], width=20, baseline=1.0)
        assert ":" in text

    def test_validation(self):
        with pytest.raises(ReproError):
            bar_chart(["a"], [1.0, 2.0])
        with pytest.raises(ReproError):
            bar_chart([], [])
        with pytest.raises(ReproError):
            bar_chart(["a"], [0.0])
