"""Shared fixtures: tiny deterministic scenes and sessions.

Unit tests use purpose-built miniature workloads instead of the full
Table II scenes so the whole suite stays fast; the game scenes get
their own (session-scoped) smoke tests.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import GpuConfig
from repro.experiments.runner import reset_default_context
from repro.geometry.camera import Camera
from repro.obs import TELEMETRY
from repro.resilience import FAULTS
from repro.geometry.mesh import make_box, make_quad
from repro.renderer.session import RenderSession
from repro.texture.image import Texture2D
from repro.texture.mipmap import MipChain
from repro.workloads.proctex import checker_texture, facade_texture
from repro.workloads.scene import Scene, Workload


def _mini_scene() -> Scene:
    scene = Scene(clear_color=(0.3, 0.5, 0.8, 1.0))
    scene.add_texture(checker_texture("mini_floor", size=128, tiles=8))
    scene.add_texture(facade_texture("mini_wall", size=128, seed=5))
    corners = np.array(
        [[-20, 0, 5], [20, 0, 5], [20, 0, -120], [-20, 0, -120]], dtype=np.float64
    )
    scene.add(make_quad(corners, "mini_floor", uv_scale=12.0,
                        two_sided=True, subdivisions=3))
    scene.add(make_box((0.0, 2.0, -30.0), (4.0, 4.0, 4.0), "mini_wall"))
    return scene


def _mini_camera(frame: int) -> Camera:
    return Camera(eye=(0.0, 2.5, 8.0 - frame), target=(0.0, 1.0, -30.0))


@pytest.fixture(scope="session")
def mini_workload() -> Workload:
    return Workload(
        abbr="mini",
        title="Miniature test scene",
        width=128,
        height=96,
        library="test",
        scene=_mini_scene(),
        camera_path=_mini_camera,
        num_frames=4,
    )


@pytest.fixture(scope="session")
def session() -> RenderSession:
    return RenderSession(GpuConfig(), scale=1.0, scale_caches=False)


@pytest.fixture(scope="session")
def capture(session, mini_workload):
    return session.capture_frame(mini_workload, 0)


@pytest.fixture(scope="session")
def checker_chain() -> MipChain:
    return MipChain(checker_texture("chk", size=64, tiles=4))


@pytest.fixture(scope="session")
def gradient_chain() -> MipChain:
    """A smooth horizontal gradient texture (easy to reason about)."""
    size = 64
    ramp = np.linspace(0.0, 1.0, size)[None, :] * np.ones((size, 1))
    return MipChain(Texture2D("ramp", ramp))


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(1234)


@pytest.fixture(autouse=True)
def _isolated_ledger(tmp_path, monkeypatch):
    """Point the run ledger at a throwaway directory.

    CLI tests invoke ``main()`` in the checkout's cwd; without the
    override every ``experiment``/``profile``/``verify`` call would
    grow a real ``.repro/ledger`` inside the repository.
    """
    from repro.obs.ledger import LEDGER_DIR_ENV

    monkeypatch.setenv(LEDGER_DIR_ENV, str(tmp_path / "ledger"))


@pytest.fixture(autouse=True)
def _isolated_global_state():
    """Keep the process-wide singletons from leaking between tests.

    The default experiment context caches rendered frames keyed only by
    (workload, frame), the fault injector is a module-level global, and
    the capture-store hit/miss/write counters accumulate in the global
    telemetry registry; a test (or verify run) that touches any of them
    must not affect its neighbours — oracle reports are hermetic.
    """
    FAULTS.reset()
    TELEMETRY.reset()
    yield
    FAULTS.reset()
    TELEMETRY.reset()
    reset_default_context()
