"""Tests for the ablation knobs: split thresholds and table capacity."""

import numpy as np
import pytest

from repro.core.patu import PerceptionAwareTextureUnit
from repro.core.predictor import TwoStagePredictor
from repro.core.scenarios import AFSSIM_N_TXDS, PATU
from repro.errors import ReproError


class TestSplitThreshold:
    def test_default_is_unified(self):
        p = TwoStagePredictor(PATU, 0.4)
        assert p.stage2_threshold == 0.4

    def test_split_applies_to_stage2_only(self):
        n = np.array([8, 8])
        txds = np.array([0.5, 0.5])
        # Unified 0.4: txds 0.5 -> AF_SSIM(Txds) ~ 0.64 > 0.4 -> approx.
        unified = TwoStagePredictor(AFSSIM_N_TXDS, 0.4).predict(n, txds)
        assert unified.stage2.all()
        # Split with a strict stage-2 threshold: no stage-2 approximations.
        strict = TwoStagePredictor(
            AFSSIM_N_TXDS, 0.4, stage2_threshold=0.9
        ).predict(n, txds)
        assert not strict.stage2.any()
        # Stage 1 unaffected by the split knob.
        assert np.array_equal(unified.stage1, strict.stage1)

    def test_loose_stage2_approximates_more(self):
        n = np.array([8] * 10)
        txds = np.linspace(0.1, 0.9, 10)
        tight = TwoStagePredictor(AFSSIM_N_TXDS, 0.4, stage2_threshold=0.8)
        loose = TwoStagePredictor(AFSSIM_N_TXDS, 0.4, stage2_threshold=0.1)
        assert (
            loose.predict(n, txds).approximated.sum()
            >= tight.predict(n, txds).approximated.sum()
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            TwoStagePredictor(PATU, 0.4, stage2_threshold=1.5)


class TestHashCapacity:
    def _decide(self, entries, n, txds):
        return PerceptionAwareTextureUnit(
            PATU, 0.4, hash_entries=entries
        ).decide(np.asarray(n), np.asarray(txds, dtype=float))

    def test_full_table_is_default_behaviour(self):
        full = self._decide(16, [8, 12, 16], [1.0, 1.0, 1.0])
        assert full.prediction.approximated.all()

    def test_overflowing_pixels_fall_back_to_af(self):
        d = self._decide(8, [8, 12, 16], [1.0, 1.0, 1.0])
        # N=8 fits an 8-entry table; N=12/16 overflow -> full AF.
        assert d.prediction.approximated.tolist() == [True, False, False]
        assert d.trilinear_samples.tolist() == [1, 12, 16]

    def test_stage1_unaffected_by_capacity(self):
        # N=2 is approximated at stage 1 regardless of the table.
        d = self._decide(1, [2], [0.0])
        assert d.prediction.stage1[0]
        assert d.prediction.approximated[0]

    def test_insertions_capped_at_capacity(self):
        d = self._decide(4, [16], [0.0])
        assert d.hash_insertions[0] == 4

    def test_smaller_table_never_approximates_more(self):
        rng = np.random.default_rng(31)
        n = rng.integers(1, 17, 64)
        txds = rng.random(64)
        big = self._decide(16, n, txds)
        small = self._decide(4, n, txds)
        assert (
            small.prediction.approximated.sum()
            <= big.prediction.approximated.sum()
        )

    def test_validation(self):
        with pytest.raises(ReproError):
            PerceptionAwareTextureUnit(PATU, 0.4, hash_entries=0)
        with pytest.raises(ReproError):
            PerceptionAwareTextureUnit(PATU, 0.4, hash_entries=32)


class TestSessionIntegration:
    def test_session_threads_knobs_through(self, session, capture):
        from repro.core.scenarios import SCENARIOS

        full = session.evaluate(capture, SCENARIOS["patu"], 0.4)
        small = session.evaluate(
            capture, SCENARIOS["patu"], 0.4, hash_entries=4
        )
        assert small.approximation_rate <= full.approximation_rate
        split = session.evaluate(
            capture, SCENARIOS["patu"], 0.4, stage2_threshold=0.99
        )
        assert split.approximation_rate <= full.approximation_rate
