"""Tests for the AF-SSIM formulation (Eq. 4-6, 8-10)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.af_ssim import (
    af_ssim_from_similarity,
    af_ssim_n,
    af_ssim_txds,
    entropy,
    sharing_fraction_from_csr,
    txds,
    txds_from_csr,
)
from repro.errors import ReproError


class TestAfSsimFromSimilarity:
    def test_identity_similarity_gives_one(self):
        assert af_ssim_from_similarity(1.0) == pytest.approx(1.0, abs=1e-6)

    def test_decays_away_from_one(self):
        values = af_ssim_from_similarity(np.array([0.25, 0.5, 1.0, 2.0, 4.0]))
        assert values[2] == values.max()
        assert values[0] < values[1] < values[2]
        assert values[4] < values[3] < values[2]

    @given(st.floats(min_value=0.0, max_value=100.0))
    def test_bounded_in_unit_interval(self, mu):
        v = float(af_ssim_from_similarity(mu))
        assert 0.0 <= v <= 1.0 + 1e-9


class TestAfSsimN:
    def test_n_equal_one_is_perfect(self):
        assert af_ssim_n(1) == pytest.approx(1.0)

    def test_paper_value_for_max_aniso(self):
        # (2*16 / (256+1))^2 ~= 0.0155: AF essential for N=16 pixels.
        assert af_ssim_n(16) == pytest.approx((32.0 / 257.0) ** 2)

    def test_strictly_decreasing_in_n(self):
        values = af_ssim_n(np.arange(1, 17))
        assert np.all(np.diff(values) < 0)

    def test_rejects_invalid_n(self):
        with pytest.raises(ReproError):
            af_ssim_n(0)

    @given(st.integers(min_value=1, max_value=16))
    def test_matches_similarity_formula_without_constant(self, n):
        # Eq. (6) is Eq. (5) with mu := N and C1 -> 0.
        expected = (2.0 * n / (n * n + 1.0)) ** 2
        assert af_ssim_n(n) == pytest.approx(expected)


class TestEntropy:
    def test_certain_event_has_zero_entropy(self):
        assert entropy(np.array([1.0])) == pytest.approx(0.0)

    def test_uniform_distribution_hits_upper_bound(self):
        for m in (2, 4, 8, 16):
            p = np.full(m, 1.0 / m)
            assert entropy(p) == pytest.approx(np.log2(m))

    def test_paper_example_vector(self):
        # Fig. 11: probability vector {0.6, 0.2, 0.2}.
        h = entropy(np.array([0.6, 0.2, 0.2]))
        expected = -(0.6 * np.log2(0.6) + 2 * 0.2 * np.log2(0.2))
        assert h == pytest.approx(expected)

    def test_rejects_non_distribution(self):
        with pytest.raises(ReproError):
            entropy(np.array([0.5, 0.2]))
        with pytest.raises(ReproError):
            entropy(np.array([-0.5, 1.5]))
        with pytest.raises(ReproError):
            entropy(np.array([]))

    @given(
        st.lists(st.floats(min_value=0.01, max_value=1.0), min_size=1, max_size=16)
    )
    def test_bounds_hold_for_any_distribution(self, weights):
        p = np.asarray(weights) / np.sum(weights)
        h = entropy(p)
        assert -1e-9 <= h <= np.log2(len(p)) + 1e-9


class TestTxds:
    def test_single_sample_is_fully_similar(self):
        assert txds(np.array([1.0]), 1) == pytest.approx(1.0)

    def test_concentrated_distribution_is_one(self):
        assert txds(np.array([1.0]), 4) == pytest.approx(1.0)

    def test_uniform_distribution_is_zero(self):
        assert txds(np.full(8, 0.125), 8) == pytest.approx(0.0)

    def test_paper_example(self):
        # Fig. 11: N=5 samples, vector {0.6, 0.2, 0.2}.
        value = txds(np.array([0.6, 0.2, 0.2]), 5)
        h = entropy(np.array([0.6, 0.2, 0.2]))
        assert value == pytest.approx(1.0 - h / np.log2(5))

    def test_rejects_bad_sample_size(self):
        with pytest.raises(ReproError):
            txds(np.array([1.0]), 0)


class TestAfSsimTxds:
    def test_extremes(self):
        assert af_ssim_txds(1.0) == pytest.approx(1.0)
        assert af_ssim_txds(0.0) == pytest.approx(0.0)

    def test_monotone_increasing(self):
        t = np.linspace(0.0, 1.0, 21)
        values = af_ssim_txds(t)
        assert np.all(np.diff(values) >= -1e-12)

    def test_rejects_out_of_range(self):
        with pytest.raises(ReproError):
            af_ssim_txds(1.5)


class TestTxdsFromCsr:
    def test_all_samples_share_one_set(self):
        keys = np.array([7, 7, 7, 7])
        row_ptr = np.array([0, 4])
        assert txds_from_csr(keys, row_ptr)[0] == pytest.approx(1.0)

    def test_all_samples_distinct(self):
        keys = np.array([1, 2, 3, 4])
        row_ptr = np.array([0, 4])
        assert txds_from_csr(keys, row_ptr)[0] == pytest.approx(0.0)

    def test_single_sample_rows_default_to_one(self):
        keys = np.array([1, 2, 3])
        row_ptr = np.array([0, 1, 2, 3])
        assert np.allclose(txds_from_csr(keys, row_ptr), 1.0)

    def test_mixed_row_lengths(self):
        # Row 0: {5,5,9} (N=3), row 1: {1} (N=1), row 2: {2,2,2,2} (N=4).
        keys = np.array([5, 5, 9, 1, 2, 2, 2, 2])
        row_ptr = np.array([0, 3, 4, 8])
        out = txds_from_csr(keys, row_ptr)
        h_row0 = entropy(np.array([2 / 3, 1 / 3]))
        assert out[0] == pytest.approx(1.0 - h_row0 / np.log2(3))
        assert out[1] == pytest.approx(1.0)
        assert out[2] == pytest.approx(1.0)

    @given(st.lists(st.integers(min_value=0, max_value=3), min_size=2, max_size=16))
    def test_matches_direct_entropy_computation(self, key_list):
        keys = np.asarray(key_list, dtype=np.int64)
        row_ptr = np.array([0, len(keys)])
        out = txds_from_csr(keys, row_ptr)[0]
        _, counts = np.unique(keys, return_counts=True)
        expected = txds(counts / counts.sum(), len(keys))
        assert out == pytest.approx(max(0.0, min(1.0, expected)))


class TestSharingFraction:
    def test_all_share_center(self):
        keys = np.array([3, 3, 3, 3, 3])
        row_ptr = np.array([0, 5])
        assert sharing_fraction_from_csr(keys, row_ptr)[0] == pytest.approx(1.0)

    def test_fig11_scenario(self):
        # 3 of 5 samples share the center's set -> 0.6 as in Fig. 11/12.
        keys = np.array([8, 8, 8, 4, 6])
        row_ptr = np.array([0, 5])
        assert sharing_fraction_from_csr(keys, row_ptr)[0] == pytest.approx(0.6)

    def test_center_is_middle_sample(self):
        # Center of N=4 is index (4-1)//2 = 1; only sample 1 matches itself.
        keys = np.array([1, 2, 3, 4])
        row_ptr = np.array([0, 4])
        assert sharing_fraction_from_csr(keys, row_ptr)[0] == pytest.approx(0.25)
