"""Tests for the texel-address hash table, including equivalence with
the vectorized Txds path used by the renderer."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.af_ssim import txds, txds_from_csr
from repro.core.hash_table import (
    BITS_PER_ENTRY,
    HASH_TABLE_ENTRIES,
    TexelAddressHashTable,
)
from repro.errors import ReproError


class TestBasicOperation:
    def test_first_insert_allocates(self):
        table = TexelAddressHashTable()
        assert table.insert(42) is False
        assert table.occupancy == 1

    def test_repeat_insert_hits_and_counts(self):
        table = TexelAddressHashTable()
        table.insert(42)
        assert table.insert(42) is True
        assert table.insert(42) is True
        assert table.occupancy == 1
        assert table.probability_vector() == [1.0]

    def test_probability_vector_paper_example(self):
        # Fig. 11: three samples share one set, two have their own.
        table = TexelAddressHashTable()
        for key in (10, 10, 10, 20, 30):
            table.insert(key)
        assert sorted(table.probability_vector(), reverse=True) == [0.6, 0.2, 0.2]

    def test_reset_clears_everything(self):
        table = TexelAddressHashTable()
        table.insert(1)
        table.reset()
        assert table.occupancy == 0
        with pytest.raises(ReproError):
            table.probability_vector()

    def test_overflow_raises(self):
        table = TexelAddressHashTable(entries=2)
        table.insert(1)
        table.insert(2)
        with pytest.raises(ReproError):
            table.insert(3)

    def test_max_aniso_fits_exactly(self):
        table = TexelAddressHashTable()
        for key in range(HASH_TABLE_ENTRIES):
            table.insert(key)
        assert table.occupancy == HASH_TABLE_ENTRIES

    def test_empty_probability_vector_rejected(self):
        with pytest.raises(ReproError):
            TexelAddressHashTable().probability_vector()

    def test_rejects_zero_entries(self):
        with pytest.raises(ReproError):
            TexelAddressHashTable(entries=0)


class TestStorageAccounting:
    def test_paper_bits_per_entry(self):
        # (8 x 32) + 4 = 260 bits (Section V-D).
        assert BITS_PER_ENTRY == 260

    def test_table_storage(self):
        assert TexelAddressHashTable.storage_bits() == 16 * 260


class TestEquivalenceWithVectorizedTxds:
    """The hardware-faithful sequential table and the vectorized CSR
    path must compute identical Txds values — this is the correctness
    anchor for the renderer's fast path."""

    @given(
        st.lists(
            st.integers(min_value=0, max_value=5), min_size=2, max_size=16
        )
    )
    def test_txds_matches(self, keys):
        table = TexelAddressHashTable()
        for key in keys:
            table.insert(key)
        sequential = txds(np.asarray(table.probability_vector()), len(keys))
        vectorized = txds_from_csr(
            np.asarray(keys, dtype=np.int64), np.array([0, len(keys)])
        )[0]
        assert vectorized == pytest.approx(np.clip(sequential, 0.0, 1.0), abs=1e-9)

    @given(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=16),
            min_size=1,
            max_size=8,
        )
    )
    def test_txds_matches_multi_pixel(self, pixels):
        keys = np.asarray([k for row in pixels for k in row], dtype=np.int64)
        row_ptr = np.cumsum([0] + [len(row) for row in pixels])
        vectorized = txds_from_csr(keys, row_ptr)
        for i, row in enumerate(pixels):
            table = TexelAddressHashTable()
            for key in row:
                table.insert(key)
            expected = txds(np.asarray(table.probability_vector()), len(row))
            assert vectorized[i] == pytest.approx(
                np.clip(expected, 0.0, 1.0), abs=1e-9
            )
