"""Tests for the PATU decision logic (Section V)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.patu import FilterMode, PerceptionAwareTextureUnit
from repro.core.scenarios import AFSSIM_N, AFSSIM_N_TXDS, BASELINE, PATU


def _decide(scenario, threshold, n, txds):
    return PerceptionAwareTextureUnit(scenario, threshold).decide(
        np.asarray(n), np.asarray(txds, dtype=float)
    )


class TestFilterModes:
    def test_baseline_runs_af_on_anisotropic_pixels(self):
        d = _decide(BASELINE, 1.0, [4, 8], [0.5, 0.5])
        assert (d.mode == FilterMode.AF).all()

    def test_isotropic_pixels_are_plain_trilinear(self):
        d = _decide(BASELINE, 1.0, [1], [1.0])
        assert d.mode[0] == FilterMode.TF_TF_LOD
        assert d.trilinear_samples[0] == 1

    def test_patu_uses_af_lod_for_approximated_pixels(self):
        d = _decide(PATU, 0.4, [2], [1.0])
        assert d.mode[0] == FilterMode.TF_AF_LOD

    def test_n_txds_uses_tf_lod_and_suffers_lod_shift(self):
        d = _decide(AFSSIM_N_TXDS, 0.4, [2], [1.0])
        assert d.mode[0] == FilterMode.TF_TF_LOD


class TestWorkAccounting:
    def test_af_pixel_filters_n_samples(self):
        d = _decide(BASELINE, 1.0, [4, 7], [0.0, 0.0])
        assert d.trilinear_samples.tolist() == [4, 7]
        assert d.address_samples.tolist() == [4, 7]

    def test_stage1_approximation_computes_one_address(self):
        # N=2 is approximated at stage 1 under threshold 0.4: only the
        # single TF sample's addresses are ever computed.
        d = _decide(PATU, 0.4, [2], [0.0])
        assert d.prediction.stage1[0]
        assert d.address_samples[0] == 1
        assert d.trilinear_samples[0] == 1

    def test_stage2_approximation_pays_recalculation(self):
        # N=8 survives stage 1, inserts into the hash table, gets
        # approximated at stage 2 -> 8 computed + 1 recalculated.
        d = _decide(PATU, 0.4, [8], [1.0])
        assert d.prediction.stage2[0]
        assert d.address_samples[0] == 9
        assert d.trilinear_samples[0] == 1
        assert d.hash_insertions[0] == 8

    def test_af_pixel_still_inserts_into_hash_table(self):
        # A pixel that fails both checks still went through stage 2.
        d = _decide(PATU, 0.4, [8], [0.0])
        assert not d.prediction.approximated[0]
        assert d.hash_insertions[0] == 8
        assert d.trilinear_samples[0] == 8

    def test_stage1_approximated_pixels_skip_hash_table(self):
        d = _decide(PATU, 0.4, [2], [0.0])
        assert d.hash_insertions[0] == 0

    def test_n_only_scenario_never_touches_hash_table(self):
        d = _decide(AFSSIM_N, 0.4, [8, 2], [1.0, 1.0])
        assert d.total_hash_insertions == 0

    @given(
        st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=64),
        st.floats(min_value=0.0, max_value=1.0),
    )
    def test_trilinear_work_never_exceeds_baseline(self, ns, threshold):
        txds = np.linspace(0.0, 1.0, len(ns))
        base = _decide(BASELINE, 1.0, ns, txds)
        patu = _decide(PATU, threshold, ns, txds)
        assert patu.total_trilinear <= base.total_trilinear
        # Approximated pixels always filter exactly one sample.
        approx = patu.prediction.approximated
        assert (patu.trilinear_samples[approx] == 1).all()

    @given(st.lists(st.integers(min_value=1, max_value=16), min_size=1, max_size=64))
    def test_address_work_at_least_trilinear_work(self, ns):
        txds = np.full(len(ns), 0.5)
        d = _decide(PATU, 0.4, ns, txds)
        assert (d.address_samples >= d.trilinear_samples).all()


class TestApproximationRate:
    def test_rate_counts_approximated_fraction(self):
        d = _decide(PATU, 0.4, [2, 2, 8, 8], [0.0, 0.0, 0.0, 0.0])
        assert d.approximation_rate == pytest.approx(0.5)
