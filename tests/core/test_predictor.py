"""Tests for the two-stage prediction flow (Fig. 13)."""

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.core.predictor import TwoStagePredictor
from repro.core.scenarios import AFSSIM_N, AFSSIM_N_TXDS, BASELINE
from repro.errors import ReproError


def _predict(scenario, threshold, n, txds):
    return TwoStagePredictor(scenario, threshold).predict(
        np.asarray(n), np.asarray(txds, dtype=float)
    )


class TestThresholdSemantics:
    def test_baseline_never_approximates(self):
        r = _predict(BASELINE, 0.0, [1, 4, 16], [1.0, 1.0, 1.0])
        assert not r.approximated.any()

    def test_threshold_zero_disables_af_everywhere(self):
        # Every anisotropic pixel has AF_SSIM(N) > 0 -> all approximated.
        r = _predict(AFSSIM_N, 0.0, [2, 3, 16], [0.0, 0.0, 0.0])
        assert r.approximated.all()

    def test_threshold_one_is_baseline(self):
        # AF_SSIM is <= 1, never > 1 -> nothing approximated.
        r = _predict(AFSSIM_N_TXDS, 1.0, [2, 3, 16], [1.0, 1.0, 1.0])
        assert not r.approximated.any()

    def test_isotropic_pixels_bypass_checks(self):
        # N == 1 pixels never need AF so they never count as approximated.
        r = _predict(AFSSIM_N_TXDS, 0.0, [1, 1], [0.0, 1.0])
        assert not r.approximated.any()

    def test_stage1_cut_at_0_4_keeps_n_3_and_above(self):
        # AF_SSIM(2) ~ 0.64 > 0.4 but AF_SSIM(3) ~ 0.36 < 0.4.
        r = _predict(AFSSIM_N, 0.4, [2, 3], [0.0, 0.0])
        assert r.stage1.tolist() == [True, False]


class TestStageInteraction:
    def test_stage2_only_fires_for_stage1_survivors(self):
        r = _predict(AFSSIM_N_TXDS, 0.4, [2, 8, 8], [1.0, 1.0, 0.0])
        assert r.stage1.tolist() == [True, False, False]
        assert r.stage2.tolist() == [False, True, False]
        assert r.approximated.tolist() == [True, True, False]

    def test_stages_are_disjoint(self):
        r = _predict(AFSSIM_N_TXDS, 0.3, [2, 4, 8, 16], [0.9, 0.8, 0.2, 0.95])
        assert not (r.stage1 & r.stage2).any()

    def test_stage2_disabled_for_n_only_scenario(self):
        r = _predict(AFSSIM_N, 0.4, [8, 8], [1.0, 1.0])
        assert not r.stage2.any()

    @given(
        st.integers(min_value=2, max_value=16),
        st.floats(min_value=0.0, max_value=1.0),
        st.floats(min_value=0.01, max_value=0.99),
    )
    def test_approximation_monotone_in_threshold(self, n, txds, threshold):
        lo = _predict(AFSSIM_N_TXDS, threshold, [n], [txds])
        hi = _predict(AFSSIM_N_TXDS, min(threshold + 0.3, 1.0), [n], [txds])
        # Raising the threshold can only turn approximation OFF.
        assert lo.approximated[0] or not hi.approximated[0]


class TestValidation:
    def test_rejects_out_of_range_threshold(self):
        with pytest.raises(ReproError):
            TwoStagePredictor(AFSSIM_N, 1.5)

    def test_rejects_shape_mismatch(self):
        with pytest.raises(ReproError):
            _predict(AFSSIM_N, 0.4, [2, 3], [0.5])

    def test_approximation_rate_empty_input(self):
        r = _predict(AFSSIM_N, 0.4, [], [])
        assert r.approximation_rate == 0.0
