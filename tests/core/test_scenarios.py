"""Tests for the design-scenario matrix."""

import pytest

from repro.core.scenarios import (
    AFSSIM_N,
    AFSSIM_N_TXDS,
    BASELINE,
    PATU,
    SCENARIOS,
    Scenario,
    get_scenario,
)
from repro.errors import ReproError


def test_paper_presentation_order():
    assert list(SCENARIOS) == ["baseline", "afssim_n", "afssim_n_txds", "patu"]


def test_baseline_never_approximates():
    assert not BASELINE.approximates
    assert not BASELINE.use_stage1
    assert not BASELINE.use_stage2
    assert not BASELINE.lod_reuse


def test_afssim_n_is_stage1_only():
    assert AFSSIM_N.use_stage1
    assert not AFSSIM_N.use_stage2
    assert not AFSSIM_N.lod_reuse  # suffers the Fig. 15 LOD shift


def test_combined_design_adds_stage2():
    assert AFSSIM_N_TXDS.use_stage1 and AFSSIM_N_TXDS.use_stage2
    assert not AFSSIM_N_TXDS.lod_reuse


def test_patu_is_full_design():
    assert PATU.use_stage1 and PATU.use_stage2 and PATU.lod_reuse


def test_stage2_requires_stage1():
    # Fig. 13: pixels reach the hash table only after stage 1 passes.
    with pytest.raises(ReproError):
        Scenario(name="bad", label="bad", use_stage1=False, use_stage2=True,
                 lod_reuse=False)


def test_lod_reuse_requires_approximation():
    with pytest.raises(ReproError):
        Scenario(name="bad", label="bad", use_stage1=False, use_stage2=False,
                 lod_reuse=True)


def test_lookup_by_name():
    assert get_scenario("patu") is PATU


def test_lookup_unknown_name_is_helpful():
    with pytest.raises(ReproError, match="unknown scenario"):
        get_scenario("PATU")  # names are case-sensitive
