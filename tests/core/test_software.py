"""Tests for the Section III software-approximation alternative."""

import numpy as np
import pytest

from repro.core.patu import FilterMode
from repro.core.software import SOFTWARE, software_decision
from repro.errors import ReproError


class TestScenarioTag:
    def test_software_has_no_hardware_stages(self):
        assert not SOFTWARE.use_stage1
        assert not SOFTWARE.use_stage2
        assert not SOFTWARE.lod_reuse
        assert SOFTWARE.name == "software"


class TestGroupDecision:
    def test_whole_group_decided_together(self):
        tex = np.array([0, 0, 0, 1, 1, 1])
        n = np.array([2, 2, 16, 2, 2, 2])
        # Group 0 mean AF_SSIM over {2,2,16} ~ 0.43; group 1 (all 2s) 0.64.
        d = software_decision(tex, n, threshold=0.5)
        assert d.prediction.approximated.tolist() == [
            False, False, False, True, True, True,
        ]

    def test_coarseness_drags_perceivable_pixels_along(self):
        # The paper's granularity complaint: one N=16 pixel inside an
        # otherwise-isotropic draw call loses its AF when the group
        # average passes.
        tex = np.zeros(8, dtype=np.int64)
        n = np.array([2, 2, 2, 2, 2, 2, 2, 16])
        d = software_decision(tex, n, threshold=0.4)
        assert d.prediction.approximated[-1]
        assert d.trilinear_samples[-1] == 1  # its AF was skipped

    def test_no_lod_reuse_available(self):
        tex = np.zeros(3, dtype=np.int64)
        n = np.array([4, 4, 4])
        d = software_decision(tex, n, threshold=0.9)
        assert not (d.mode == FilterMode.TF_AF_LOD).any()

    def test_no_hash_table_or_recalculation_costs(self):
        tex = np.zeros(4, dtype=np.int64)
        n = np.array([8, 8, 8, 8])
        d = software_decision(tex, n, threshold=0.0)
        assert d.total_hash_insertions == 0
        assert np.array_equal(d.address_samples, d.trilinear_samples)

    def test_threshold_extremes(self):
        tex = np.array([0, 1])
        n = np.array([4, 8])
        everything = software_decision(tex, n, threshold=0.0)
        nothing = software_decision(tex, n, threshold=1.0)
        assert everything.prediction.approximated.all()
        assert not nothing.prediction.approximated.any()

    def test_isotropic_pixels_not_counted(self):
        tex = np.zeros(2, dtype=np.int64)
        n = np.array([1, 1])
        d = software_decision(tex, n, threshold=0.0)
        assert not d.prediction.approximated.any()
        assert (d.mode == FilterMode.TF_TF_LOD).all()

    def test_validation(self):
        with pytest.raises(ReproError):
            software_decision(np.zeros(2), np.ones(2), threshold=2.0)
        with pytest.raises(ReproError):
            software_decision(np.zeros(3), np.ones(2), threshold=0.5)


class TestOperatingPointCount:
    def test_software_points_bounded_by_group_count(self):
        rng = np.random.default_rng(9)
        tex = rng.integers(0, 4, 128)
        n = rng.integers(1, 17, 128)
        signatures = set()
        for t in np.arange(0.0, 1.001, 0.02):
            d = software_decision(tex, n, float(t))
            signatures.add(tuple(sorted(
                int(g) for g in np.unique(tex[d.prediction.approximated])
            )))
        # At most one new operating point per draw call, plus "none".
        assert len(signatures) <= 4 + 1
