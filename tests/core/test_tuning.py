"""Tests for the threshold tuning utilities."""

import pytest

from repro.core.scenarios import SCENARIOS
from repro.core.tuning import (
    AdaptiveThresholdController,
    TuningPoint,
    find_best_point,
    sweep,
    threshold_for_quality,
)
from repro.errors import ReproError


class TestSweep:
    def test_endpoints(self, session, capture):
        points = sweep(session, capture, thresholds=(0.0, 1.0))
        assert points[0].threshold == 0.0
        assert points[-1].mssim == pytest.approx(1.0, abs=1e-9)
        assert points[0].speedup >= points[-1].speedup - 1e-9

    def test_metric_is_product(self):
        p = TuningPoint(threshold=0.4, speedup=1.2, mssim=0.9)
        assert p.metric == pytest.approx(1.08)


class TestBestPoint:
    def test_best_point_maximizes_metric(self, session, capture):
        thresholds = (0.0, 0.4, 1.0)
        points = sweep(session, capture, thresholds=thresholds)
        best = find_best_point(session, capture, thresholds=thresholds)
        assert best.metric == pytest.approx(max(p.metric for p in points))


class TestThresholdForQuality:
    def test_trivial_target_is_zero(self, session, capture):
        # AF-off quality on the mini scene is well above 0.5.
        assert threshold_for_quality(session, capture, 0.5) == 0.0

    def test_found_threshold_meets_target(self, session, capture):
        off = session.evaluate(capture, SCENARIOS["patu"], 0.0)
        target = min(off.mssim + 0.01, 0.999)
        t = threshold_for_quality(session, capture, target, tolerance=0.05)
        achieved = session.evaluate(capture, SCENARIOS["patu"], t).mssim
        assert achieved >= target - 1e-9
        assert 0.0 < t <= 1.0

    def test_validation(self, session, capture):
        with pytest.raises(ReproError):
            threshold_for_quality(session, capture, 1.5)
        with pytest.raises(ReproError):
            threshold_for_quality(session, capture, 0.9, tolerance=0.0)


class TestAdaptiveController:
    def test_threshold_rises_when_quality_low(self):
        ctl = AdaptiveThresholdController(target_mssim=0.95,
                                          initial_threshold=0.4)
        nxt = ctl.observe(0.85)
        assert nxt > 0.4

    def test_threshold_falls_when_quality_slack(self):
        ctl = AdaptiveThresholdController(target_mssim=0.90,
                                          initial_threshold=0.6)
        nxt = ctl.observe(0.99)
        assert nxt < 0.6

    def test_threshold_stays_bounded(self):
        ctl = AdaptiveThresholdController(target_mssim=1.0, gain=100.0)
        for _ in range(5):
            ctl.observe(0.0)
        assert ctl.threshold == 1.0

    def test_closed_loop_converges_toward_target(self, session, mini_workload):
        captures = [session.capture_frame(mini_workload, i % 2) for i in range(6)]
        ctl = AdaptiveThresholdController(target_mssim=0.98,
                                          initial_threshold=0.0, gain=3.0)
        points = ctl.run(session, captures)
        assert len(points) == 6
        # Quality error shrinks from the first to the last frame.
        assert abs(points[-1].mssim - 0.98) <= abs(points[0].mssim - 0.98) + 1e-9

    def test_history_recorded(self):
        ctl = AdaptiveThresholdController()
        ctl.observe(0.9)
        ctl.observe(0.95)
        assert len(ctl.history) == 2

    def test_validation(self):
        with pytest.raises(ReproError):
            AdaptiveThresholdController(target_mssim=0.0)
        with pytest.raises(ReproError):
            AdaptiveThresholdController(initial_threshold=2.0)
        with pytest.raises(ReproError):
            AdaptiveThresholdController(gain=0.0)
        ctl = AdaptiveThresholdController()
        with pytest.raises(ReproError):
            ctl.observe(1.5)
