"""Tests for the content-addressed on-disk capture store."""

import os
import pathlib
import subprocess
import sys

import numpy as np
import pytest

import repro
from repro.engine.capture_store import (
    CORRUPT_SUBDIR,
    CaptureStore,
    capture_spec,
    spec_digest,
)
from repro.obs import TELEMETRY

SPEC_KWARGS = dict(scale=1.0, tile_size=16, max_anisotropy=16, compressed=False)


@pytest.fixture
def store(tmp_path):
    return CaptureStore(tmp_path / "captures")


class TestKeying:
    def test_digest_is_deterministic(self):
        a = capture_spec("wolf-640x480", 0, **SPEC_KWARGS)
        b = capture_spec("wolf-640x480", 0, **SPEC_KWARGS)
        assert spec_digest(a) == spec_digest(b)

    @pytest.mark.parametrize(
        "change",
        [
            {"frame": 1},
            {"scale": 0.5},
            {"tile_size": 32},
            {"max_anisotropy": 8},
            {"compressed": True},
        ],
    )
    def test_digest_sensitive_to_every_axis(self, change):
        base = dict(workload="wolf-640x480", frame=0, **SPEC_KWARGS)
        varied = {**base, **change}
        a = capture_spec(base.pop("workload"), base.pop("frame"), **base)
        b = capture_spec(varied.pop("workload"), varied.pop("frame"), **varied)
        assert spec_digest(a) != spec_digest(b)

    def test_digest_stable_across_processes(self, tmp_path):
        """The store key must not depend on per-process state (hash
        randomization, dict order): parallel workers and later sessions
        all have to address the same file."""
        spec = capture_spec("VR@2:doom3-1280x1024", 3, **SPEC_KWARGS)
        code = (
            "from repro.engine.capture_store import capture_spec, spec_digest\n"
            "spec = capture_spec('VR@2:doom3-1280x1024', 3, scale=1.0,\n"
            "                    tile_size=16, max_anisotropy=16,\n"
            "                    compressed=False)\n"
            "print(spec_digest(spec))\n"
        )
        src = str(pathlib.Path(repro.__file__).resolve().parents[1])
        env = dict(os.environ)
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        out = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
        )
        assert out.stdout.strip() == spec_digest(spec)

    def test_path_name_is_filesystem_safe(self, store):
        spec = capture_spec("VR@2:doom3-1280x1024", 0, **SPEC_KWARGS)
        name = store.path_for(spec).name
        assert "@" not in name and ":" not in name
        assert name.endswith(".npz")


class TestRoundTrip:
    def test_put_then_get(self, store, capture):
        spec = capture_spec(capture.workload_name, 0, **SPEC_KWARGS)
        path = store.put(spec, capture)
        assert path.exists()
        loaded = store.get(spec)
        assert loaded is not None
        assert loaded.workload_name == capture.workload_name
        assert np.array_equal(loaded.n, capture.n)
        assert np.array_equal(loaded.sample_row_ptr, capture.sample_row_ptr)
        assert np.array_equal(loaded.sample_keys, capture.sample_keys)
        assert store.stats.writes == 1 and store.stats.hits == 1

    def test_miss_counts(self, store):
        spec = capture_spec("nothing", 0, **SPEC_KWARGS)
        assert store.get(spec) is None
        assert store.stats.misses == 1

    def test_bad_entry_is_a_miss_and_recoverable(self, store, capture):
        spec = capture_spec(capture.workload_name, 0, **SPEC_KWARGS)
        path = store.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz archive")
        assert store.get(spec) is None
        assert store.stats.misses == 1
        store.put(spec, capture)
        assert store.get(spec) is not None

    def test_len_counts_entries(self, store, capture):
        assert len(store) == 0
        store.put(capture_spec("a", 0, **SPEC_KWARGS), capture)
        store.put(capture_spec("b", 0, **SPEC_KWARGS), capture)
        assert len(store) == 2


class TestTelemetryAgreement:
    @pytest.fixture(autouse=True)
    def _disabled_after(self):
        yield
        TELEMETRY.enabled = False

    def test_counters_match_stats_and_stderr_text(self, store, capture):
        """The ``store.*`` telemetry counters, the ``StoreStats``
        object and the "capture store: ..." stderr line are three views
        of the same traffic — they must never disagree."""
        TELEMETRY.reset()
        TELEMETRY.enabled = True
        spec_a = capture_spec("a", 0, **SPEC_KWARGS)
        spec_b = capture_spec("b", 0, **SPEC_KWARGS)
        assert store.get(spec_a) is None  # miss
        store.put(spec_a, capture)  # write
        assert store.get(spec_a) is not None  # hit
        assert store.get(spec_a) is not None  # hit
        assert store.get(spec_b) is None  # miss

        stats = store.stats
        assert (stats.hits, stats.misses, stats.writes) == (2, 2, 1)
        assert TELEMETRY.counter_value("store.hits") == stats.hits
        assert TELEMETRY.counter_value("store.misses") == stats.misses
        assert TELEMETRY.counter_value("store.writes") == stats.writes
        assert str(stats) == "2 hit(s), 2 miss(es), 1 write(s)"

    def test_disabled_telemetry_still_tracks_stats(self, store, capture):
        TELEMETRY.reset()
        TELEMETRY.enabled = False
        spec = capture_spec("a", 0, **SPEC_KWARGS)
        store.get(spec)
        store.put(spec, capture)
        store.get(spec)
        assert (store.stats.hits, store.stats.misses) == (1, 1)
        assert TELEMETRY.counter_value("store.hits") == 0


class TestQuarantine:
    @pytest.fixture(autouse=True)
    def _disabled_after(self):
        yield
        TELEMETRY.enabled = False

    def _plant_garbage(self, store, capture):
        spec = capture_spec(capture.workload_name, 0, **SPEC_KWARGS)
        path = store.path_for(spec)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_bytes(b"not an npz archive")
        return spec, path

    def test_bad_entry_moves_to_corrupt_sibling(self, store, capture):
        spec, path = self._plant_garbage(store, capture)
        assert store.get(spec) is None
        assert not path.exists()  # out of the lookup path...
        quarantined = store.root / CORRUPT_SUBDIR / path.name
        assert quarantined.read_bytes() == b"not an npz archive"  # ...bytes kept
        assert store.stats.corrupt == 1
        # the slot is immediately reusable
        store.put(spec, capture)
        assert store.get(spec) is not None

    def test_corrupt_counter_and_stats_text(self, store, capture):
        TELEMETRY.reset()
        TELEMETRY.enabled = True
        spec, _path = self._plant_garbage(store, capture)
        store.get(spec)
        assert TELEMETRY.counter_value("store.corrupt") == store.stats.corrupt == 1
        assert str(store.stats) == "0 hit(s), 1 miss(es), 0 write(s), 1 corrupt"

    def test_stats_text_omits_corrupt_when_zero(self, store):
        assert "corrupt" not in str(store.stats)

    def test_quarantined_entries_are_invisible_to_len(self, store, capture):
        store.put(capture_spec("good", 0, **SPEC_KWARGS), capture)
        spec, _path = self._plant_garbage(store, capture)
        store.get(spec)
        assert len(store) == 1

    def test_vanished_file_still_counts_detection(self, store, tmp_path):
        missing = store.root / "ghost.npz"
        store.root.mkdir(parents=True, exist_ok=True)
        assert store.quarantine(missing) is None
        assert store.stats.corrupt == 1
